"""Extension — optimal broadcast under LogGP (paper reference [9]).

The paper's lineage: Karp, Sahay, Santos & Schauser derived optimal
broadcast schedules under LogP with explicit formulas; the paper then
argues simulation is needed once patterns get irregular.  This bench
regenerates the regular-pattern side of that story: linear vs binomial
vs greedy-optimal broadcast completion times across machine sizes, each
closed form cross-checked against an executable schedule (the Split-C
active-message runtime).

Asserted: optimal <= binomial <= linear everywhere (with the binomial
advantage growing with P), and formula == execution for every point.

The benchmark times the greedy optimal-schedule construction for P=256.
"""

from _shared import PARAMS, emit, scale_banner

from repro.analysis import format_table
from repro.core import (
    binomial_broadcast_pattern,
    binomial_broadcast_time,
    linear_broadcast_time,
    optimal_broadcast_schedule,
    simulate_tree_broadcast,
)

SIZE = 1160  # the sample pattern's message length
PROC_COUNTS = (2, 4, 8, 16, 32, 64)


def test_collective_broadcast(benchmark):
    benchmark(lambda: optimal_broadcast_schedule(PARAMS, 256, SIZE))

    rows = []
    for n in PROC_COUNTS:
        linear = linear_broadcast_time(PARAMS, n, SIZE)
        binomial = binomial_broadcast_time(PARAMS, n, SIZE)
        sched = optimal_broadcast_schedule(PARAMS, n, SIZE)

        # cross-check closed forms against executable schedules
        executed = simulate_tree_broadcast(
            PARAMS.with_(P=n), binomial_broadcast_pattern(n, SIZE)
        ).completion_time
        assert abs(executed - binomial) < 1e-6
        executed_opt = simulate_tree_broadcast(
            PARAMS.with_(P=n), sched.to_pattern(SIZE, n)
        ).completion_time
        assert abs(executed_opt - sched.completion_time) < 1e-6

        assert sched.completion_time <= binomial + 1e-9 <= linear + 1e-9
        rows.append(
            {
                "P": n,
                "linear_us": linear,
                "binomial_us": binomial,
                "optimal_us": sched.completion_time,
                "optimal_vs_linear": linear / sched.completion_time,
            }
        )

    assert rows[-1]["optimal_vs_linear"] > rows[0]["optimal_vs_linear"], (
        "tree broadcasts must pull further ahead as P grows"
    )
    text = "\n".join(
        [
            "Extension — broadcast schedules under LogGP (Karp et al. lineage)",
            scale_banner(),
            "",
            format_table(
                rows,
                ["P", "linear_us", "binomial_us", "optimal_us", "optimal_vs_linear"],
                title=f"{SIZE}-byte broadcast on the Meiko parameters "
                "(every closed form verified against an executed schedule)",
                floatfmt="{:.1f}",
            ),
            "",
            "regular patterns admit formulas (this table); the paper's point is "
            "that GE wavefronts and irregular layouts do not — hence simulation.",
        ]
    )
    emit("collectives_broadcast", text)

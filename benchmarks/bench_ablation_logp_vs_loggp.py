"""Ablation — LogP vs LogGP: why the per-byte term G matters.

The paper adopts LogGP (its reference [2], Alexandrov, Ionescu, Schauser,
Scheiman) precisely because GE moves whole blocks: "LogGP extends [LogP]
by ... the gap per byte for long messages, leading to more realistic
predictions".  This ablation re-runs the GE prediction with ``G = 0``
(LogP semantics: a block transfer costs the same as a one-byte message)
and quantifies the damage against the emulated machine.

Asserted: dropping G under-predicts the communication time at every
block size and the full LogGP prediction is closer to the emulated
measurement everywhere.  The under-prediction is most severe (roughly
2x) in the bandwidth-bound small-block regime where back-to-back block
transfers dominate; at very large blocks pipeline *waiting* — priced
identically by both models — dilutes the ratio.

The benchmark times a G=0 prediction run.
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, rows_for, scale_banner

from repro.analysis import format_table
from repro.apps import GEConfig, build_ge_trace
from repro.core import ProgramSimulator
from repro.layouts import DiagonalLayout

LOGP = PARAMS.with_(G=0.0, name="logp-no-G")


def test_ablation_logp_vs_loggp(benchmark):
    rows_out = []
    ratios = {}
    for b in BLOCK_SIZES:
        trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
        loggp = ProgramSimulator(PARAMS, COST_MODEL).run(trace)
        logp = ProgramSimulator(LOGP, COST_MODEL).run(trace)
        measured = next(r for r in rows_for("diagonal") if r.b == b).measured

        assert logp.comm_us < loggp.comm_us, "G=0 must under-price communication"
        gap_loggp = abs(measured.comm_us - loggp.comm_us)
        gap_logp = abs(measured.comm_us - logp.comm_us)
        assert gap_loggp < gap_logp, "LogGP must predict comm closer than LogP"

        ratios[b] = loggp.comm_us / logp.comm_us
        rows_out.append(
            {
                "b": b,
                "measured_comm_s": measured.comm_us / 1e6,
                "loggp_comm_s": loggp.comm_us / 1e6,
                "logp_comm_s": logp.comm_us / 1e6,
                "loggp/logp": ratios[b],
            }
        )

    assert max(ratios.values()) > 1.3, (
        "somewhere in the sweep the per-byte term must matter substantially"
    )
    assert all(r > 1.0 for r in ratios.values())

    b = max(BLOCK_SIZES)
    trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
    benchmark.pedantic(
        lambda: ProgramSimulator(LOGP, COST_MODEL).run(trace), rounds=3, iterations=1
    )

    text = "\n".join(
        [
            "Ablation — LogP (G=0) vs LogGP communication prediction",
            scale_banner(),
            "",
            format_table(
                rows_out,
                ["b", "measured_comm_s", "loggp_comm_s", "logp_comm_s", "loggp/logp"],
                title="GE communication time, diagonal mapping: dropping the "
                "per-byte gap G collapses block-transfer costs",
                floatfmt="{:.4f}",
            ),
            "",
            "LogP prices a whole block like a single byte; in the "
            "bandwidth-bound regime the LogGP prediction is ~2x larger (and "
            "right) — the paper's reason for building on LogGP rather than LogP.",
        ]
    )
    emit("ablation_logp_vs_loggp", text)

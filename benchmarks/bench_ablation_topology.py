"""Ablation — the single-L abstraction vs real network topologies.

LogGP folds the whole network into one latency ``L``.  That is benign on
the Meiko CS-2 because its fat-tree interconnect keeps hop counts nearly
uniform; it would be less benign on a mesh or a ring.  This bench
re-executes one full GE program with topology-aware per-message latencies
— each topology calibrated to the *same mean latency* L (what a
micro-benchmark would measure) — and reports the divergence from the
uniform-L prediction.

Finding (asserted): once calibrated to the same mean, *every* topology's
whole-program time lands within a few percent of the uniform-L
prediction — the wavefront's critical path averages over so many
messages that per-pair latency spread washes out.  The single-L
abstraction is not just adequate for the CS-2's fat tree; it is robust
for this application class.  (Individual *steps* do diverge — the test
suite shows far pairs on a ring cost more — it is the program-level
aggregate that concentrates.)

The benchmark times one topology-aware whole-program run.
"""

from _shared import COST_MODEL, MATRIX_N, PARAMS, emit, scale_banner

from repro.analysis import format_table
from repro.apps import GEConfig, build_ge_trace
from repro.core.des_check import simulate_causal
from repro.layouts import DiagonalLayout
from repro.machine import FatTree, Mesh2D, RingTopology
from repro.trace.program import ProgramTrace


def run_with_latency(trace: ProgramTrace, latency_of=None) -> float:
    """Whole-program causal simulation with per-message latency override."""
    clocks = {p: 0.0 for p in range(trace.num_procs)}
    for step in trace.steps:
        for proc, ops in step.work.items():
            clocks[proc] += sum(COST_MODEL.cost(w.op, w.b) for w in ops)
        if step.pattern is None or not step.pattern.remote_messages():
            continue
        participants = {
            p for m in step.pattern.remote_messages() for p in (m.src, m.dst)
        }
        starts = {p: clocks[p] for p in participants}
        result = simulate_causal(
            PARAMS, step.pattern, start_times=starts, latency_of=latency_of
        )
        for p in participants:
            clocks[p] = result.ctimes.get(p, clocks[p])
    return max(clocks.values(), default=0.0)


def test_ablation_topology(benchmark):
    b = 48 if MATRIX_N % 48 == 0 else 40
    trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))

    uniform_total = run_with_latency(trace, latency_of=None)
    topologies = {
        "fat-tree (CS-2 shape)": FatTree(PARAMS.P, arity=4),
        "2D mesh": Mesh2D(4, PARAMS.P // 4),
        "ring": RingTopology(PARAMS.P),
    }
    rows = []
    divergence = {}
    for name, topo in topologies.items():
        switch = PARAMS.L / topo.mean_hops()  # same mean latency as uniform L
        total = run_with_latency(trace, latency_of=topo.latency_fn(switch))
        divergence[name] = abs(total - uniform_total) / uniform_total
        rows.append(
            {
                "topology": name,
                "diameter_hops": float(topo.diameter()),
                "mean_hops": topo.mean_hops(),
                "total_s": total / 1e6,
                "vs_uniform_%": 100 * (total - uniform_total) / uniform_total,
            }
        )

    assert divergence["fat-tree (CS-2 shape)"] < 0.05, (
        "on the CS-2's own topology the single-L abstraction must hold to a "
        "few percent"
    )
    assert all(d < 0.05 for d in divergence.values()), (
        "mean-matched topologies concentrate onto the uniform-L prediction "
        "for wavefront traffic"
    )

    tree = topologies["fat-tree (CS-2 shape)"]
    fn = tree.latency_fn(PARAMS.L / tree.mean_hops())
    benchmark.pedantic(
        lambda: run_with_latency(trace, latency_of=fn), rounds=3, iterations=1
    )

    text = "\n".join(
        [
            "Ablation — uniform L vs topology-aware latencies",
            scale_banner(),
            "",
            f"GE {MATRIX_N}x{MATRIX_N}, b={b}, diagonal mapping; every topology "
            f"calibrated to mean latency L={PARAMS.L:g}us "
            f"(uniform-L total: {uniform_total / 1e6:.4f} s)",
            "",
            format_table(
                rows,
                ["topology", "diameter_hops", "mean_hops", "total_s", "vs_uniform_%"],
                floatfmt="{:.3f}",
            ),
            "",
            "every mean-matched topology tracks the single-L prediction to "
            "within a few percent: the wavefront's critical path averages "
            "over many messages, so per-pair latency spread washes out — "
            "the paper's one-parameter network abstraction is robust for "
            "this application class, not merely adequate for the fat tree.",
        ]
    )
    emit("ablation_topology", text)

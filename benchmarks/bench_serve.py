"""Load test of the prediction service under a zipf-distributed mix.

Eight client threads hammer one in-process :class:`PredictionService`
(the same object ``repro serve`` wraps in a ``ThreadingHTTPServer``)
with ≥ 1000 requests drawn zipf-style (weight ∝ 1/rank^s) over a
bounded universe of distinct GE points — the access pattern a shared
prediction endpoint actually sees: a hot head, a long tail.

The cache is sized to *half* the distinct universe, so the run
exercises every tier: the hot head answers from memory, the evicted
tail from the experiment store, and each point is simulated at most
once (single-flight absorbs concurrent duplicates).

Gates (both hard, on every host):

* ``identical``  — for every distinct point, the served digest equals
  ``point_digest(summarize_ge_point(...))`` computed directly, and all
  responses for the same point agree.  The serve layer may never trade
  correctness for latency.
* ``hit_rate``   — ≥ 80% of successful requests answered from a cache
  tier (memory / store / in-flight).  By construction the miss count
  is bounded by the distinct-point count, so a failure here means the
  cache or single-flight table is broken, not that the mix was unlucky.

Latency (server-side, exact nearest-rank quantiles — the tracker
window exceeds the request count) and throughput are recorded, not
gated: they land in ``BENCH_serve.json`` at the repo root, which CI
regenerates and uploads as an artifact.

Run standalone with ``python benchmarks/bench_serve.py`` or via
``pytest benchmarks/bench_serve.py``.
"""

import json
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _shared import COST_MODEL, FAST, LAYOUTS, PARAMS  # noqa: E402

from repro.core.predictor import summarize_ge_point  # noqa: E402
from repro.obs import RunRecord, loggp_dict  # noqa: E402
from repro.serve import (  # noqa: E402
    PredictionClient,
    PredictionService,
    ServeConfig,
    point_digest,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: the serve workload has its own scale: many *distinct* cheap points
#: (prediction only, no emulated measurement) rather than few expensive
#: ones — the cache hierarchy is the thing under load, not the kernel.
MATRIX_N = 240 if FAST else 480
BLOCK_SIZES = (
    (8, 10, 12, 16, 20, 24, 30, 40)
    if FAST
    else (8, 10, 12, 15, 16, 20, 24, 30, 32, 40, 48, 60, 80, 96, 120)
)
SEEDS = (0, 1)
REQUESTS = 1200 if FAST else 2400
THREADS = 8
ZIPF_S = 1.1
ZIPF_SEED = 2026
HIT_RATE_GATE = 0.80


def request_universe() -> list[dict]:
    """Every distinct request document of the run, hottest first."""
    return [
        {"n": MATRIX_N, "b": b, "layout": layout, "seed": seed}
        for b in BLOCK_SIZES
        for layout in LAYOUTS
        for seed in SEEDS
    ]


def zipf_schedule(universe: list[dict]) -> list[dict]:
    """REQUESTS docs drawn with weight ∝ 1/rank^s (deterministic)."""
    rng = random.Random(ZIPF_SEED)
    ranked = list(universe)
    rng.shuffle(ranked)  # popularity is not correlated with block size
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(ranked))]
    return rng.choices(ranked, weights=weights, k=REQUESTS)


def hammer(service: PredictionService, schedule: list[dict]):
    """Drive the schedule from THREADS client threads; return digests.

    Returns ``(digests, errors)`` where ``digests`` maps each distinct
    point key to the set of digests its responses carried (the identity
    gate requires every set to be a singleton).
    """
    client = PredictionClient.in_process(service)
    digests: dict[tuple, set] = {}
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(THREADS)

    def worker(tid: int):
        local: dict[tuple, set] = {}
        failures: list[str] = []
        barrier.wait()
        for doc in schedule[tid::THREADS]:
            try:
                answer = client.predict_doc(dict(doc))
            except Exception as exc:  # noqa: BLE001 — recorded, gated below
                failures.append(f"{doc}: {exc}")
                continue
            key = (doc["n"], doc["b"], doc["layout"], doc["seed"])
            local.setdefault(key, set()).add(answer.digest)
        with lock:
            for key, seen in local.items():
                digests.setdefault(key, set()).update(seen)
            errors.extend(failures)

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return digests, errors


def run_bench() -> dict:
    universe = request_universe()
    schedule = zipf_schedule(universe)

    with tempfile.TemporaryDirectory() as tmp:
        config = ServeConfig(
            store_dir=str(Path(tmp) / "store"),
            cache_size=max(8, len(universe) // 2),  # force tier-2 traffic
            batch_window_s=0.005,
            executor="auto",
        )
        with PredictionService(config) as service:
            t0 = time.perf_counter()
            digests, errors = hammer(service, schedule)
            duration_s = time.perf_counter() - t0
            stats = service.stats()

    # -- gate 1: bit-identity against the direct serial engine ---------------
    direct = {
        (doc["n"], doc["b"], doc["layout"], doc["seed"]): point_digest(
            summarize_ge_point(
                doc["n"], doc["b"], doc["layout"], PARAMS, COST_MODEL,
                with_measured=False, seed=doc["seed"],
            )
        )
        for doc in universe
    }
    drifted = sorted(
        key for key, seen in digests.items() if seen != {direct[key]}
    )
    identical = not errors and not drifted and len(digests) == len(universe)

    record = {
        "schema": "repro.bench.serve/v1",
        "fast": FAST,
        "scale": {
            "n": MATRIX_N,
            "block_sizes": list(BLOCK_SIZES),
            "layouts": list(LAYOUTS),
            "seeds": list(SEEDS),
        },
        "distinct_points": len(universe),
        "requests": REQUESTS,
        "threads": THREADS,
        "zipf_s": ZIPF_S,
        "cache_size": max(8, len(universe) // 2),
        "duration_s": round(duration_s, 4),
        "throughput_rps": round(REQUESTS / duration_s, 1),
        "hit_rate": stats["hit_rate"],
        "hit_rate_gate": HIT_RATE_GATE,
        "tiers": stats["tiers"],
        "batches": stats["batches"],
        "evictions": stats["cache"]["evictions"],
        "latency_us": stats["latency_us"],
        "errors": len(errors),
        "drifted_points": len(drifted),
        "identical": identical,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    manifest = RunRecord.begin("bench:serve")
    manifest.note(
        params=loggp_dict(PARAMS), engine="serve",
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES),
                  "requests": REQUESTS, "threads": THREADS,
                  "zipf_s": ZIPF_S, "fast": FAST},
        **{k: record[k] for k in
           ("distinct_points", "hit_rate", "tiers", "batches",
            "throughput_rps", "latency_us", "identical")},
    ).finish().write()

    mode = "REPRO_FAST reduced scale" if FAST else "paper scale"
    lat = stats["latency_us"]
    print()
    print(f"prediction service — {mode}: n={MATRIX_N}, "
          f"{len(universe)} distinct points, {PARAMS.describe()}")
    print(f"  requests                    : {REQUESTS} "
          f"from {THREADS} threads (zipf s={ZIPF_S})")
    print(f"  wall / throughput           : {duration_s:8.3f} s "
          f"/ {record['throughput_rps']:.0f} req/s")
    print(f"  cache hit rate              : {stats['hit_rate']:.3f} "
          f"(gate >= {HIT_RATE_GATE})")
    print(f"  tiers                       : {stats['tiers']}")
    print(f"  batches                     : {stats['batches']['count']} "
          f"({stats['batches']['points']} points, "
          f"max {stats['batches']['max_size']})")
    print(f"  latency p50 / p90 / p99     : {lat['p50']:.0f} / "
          f"{lat['p90']:.0f} / {lat['p99']:.0f} us")
    print(f"  served == direct            : {identical}")
    print(f"  recorded -> {BENCH_JSON.name}")
    return record


def test_serve_load():
    record = run_bench()
    assert record["identical"], (
        f"served answers drifted from the direct engine "
        f"({record['drifted_points']} points, {record['errors']} errors)"
    )
    assert record["hit_rate"] >= HIT_RATE_GATE, (
        f"cache hit rate {record['hit_rate']:.3f} below "
        f"gate {HIT_RATE_GATE} — tiers {record['tiers']}"
    )


if __name__ == "__main__":
    rec = run_bench()
    if not rec["identical"]:
        sys.exit(
            f"FAIL: served answers drifted from the direct engine "
            f"({rec['drifted_points']} points, {rec['errors']} errors)"
        )
    if rec["hit_rate"] < HIT_RATE_GATE:
        sys.exit(
            f"FAIL: cache hit rate {rec['hit_rate']:.3f} below "
            f"gate {HIT_RATE_GATE}"
        )

"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the reproduced figure tables inline; they are always also
written to ``benchmarks/results/``.  ``REPRO_FAST=1`` reduces the scale
(see ``_shared.py``).
"""

import sys
from pathlib import Path

# make `import _shared` work regardless of how pytest sets sys.path
sys.path.insert(0, str(Path(__file__).resolve().parent))

"""Ablation — overlapping communication and computation (paper §7).

"Analyzing the program simulation for overlapping communication and
computation steps ... [is a] subject for future development."  The
overlap extension lets a processor pay only its engaged send/receive time
on top of computation, pinned by its last receive (data dependency).

Asserted: overlap never slows any configuration, and its benefit is
largest where communication is the biggest share of the runtime (small
blocks).  The benchmark times one overlap-mode prediction.
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, scale_banner

from repro.analysis import format_table
from repro.apps import GEConfig, build_ge_trace
from repro.core import ProgramSimulator
from repro.layouts import DiagonalLayout


def test_ablation_overlap(benchmark):
    rows_out = []
    savings = {}
    for b in BLOCK_SIZES:
        trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
        plain = ProgramSimulator(PARAMS, COST_MODEL).run(trace)
        overlap = ProgramSimulator(PARAMS, COST_MODEL, overlap=True).run(trace)
        assert overlap.total_us <= plain.total_us + 1e-6
        savings[b] = 1.0 - overlap.total_us / plain.total_us
        rows_out.append(
            {
                "b": b,
                "plain_s": plain.total_us / 1e6,
                "overlap_s": overlap.total_us / 1e6,
                "saving_%": 100 * savings[b],
                "comm_share_%": 100 * plain.comm_us / plain.total_us,
            }
        )

    small, large = min(BLOCK_SIZES), max(BLOCK_SIZES)
    assert savings[small] >= savings[large] - 0.02, (
        "overlap should help most where communication dominates"
    )

    b = max(BLOCK_SIZES)
    trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
    benchmark.pedantic(
        lambda: ProgramSimulator(PARAMS, COST_MODEL, overlap=True).run(trace),
        rounds=3,
        iterations=1,
    )

    text = "\n".join(
        [
            "Ablation — overlapping communication/computation (paper §7 future work)",
            scale_banner(),
            "",
            format_table(
                rows_out,
                ["b", "plain_s", "overlap_s", "saving_%", "comm_share_%"],
                title="predicted effect of comm/comp overlap, diagonal mapping",
                floatfmt="{:.3f}",
            ),
            "",
            "overlap saves the most exactly where the communication share is "
            "highest (small blocks) — quantifying how much the paper's "
            "non-overlapping restriction costs.",
        ]
    )
    emit("ablation_overlap", text)

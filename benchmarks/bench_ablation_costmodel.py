"""Ablation — why the measured cost table matters (paper §2 and §5.1).

The paper stresses that basic-op costs are nonlinear in the block size
and that "one basic operation may be less expensive than another one for
a certain block size and may become more expensive ... for another".
This ablation replaces the calibrated (Figure 6 shaped) cost table with
a naive linear-in-flops model of equal total volume and shows the damage:
the flop model misprices the small-block regime (where per-call and
per-row overheads dominate) and distorts the predicted optimum.

The benchmark times a full prediction under the flop model.
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, rows_for, scale_banner

from repro.analysis import argmin_key, format_table
from repro.apps import GEConfig, build_ge_trace
from repro.blockops import OP_NAMES, flop_count
from repro.core import FlopCostModel, ProgramSimulator
from repro.layouts import DiagonalLayout


def test_ablation_costmodel(benchmark):
    # volume-match the flop model to the calibrated one at the crossover
    b_ref = 60 if 60 in BLOCK_SIZES else BLOCK_SIZES[len(BLOCK_SIZES) // 2]
    us_per_flop = COST_MODEL.cost("op4", b_ref) / flop_count("op4", b_ref)
    flop_model = FlopCostModel(us_per_flop=us_per_flop)

    rows_out = []
    flop_curve, cal_curve = {}, {}
    for b in BLOCK_SIZES:
        trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
        cal = ProgramSimulator(PARAMS, COST_MODEL).run(trace)
        flop = ProgramSimulator(PARAMS, flop_model).run(trace)
        cal_curve[b], flop_curve[b] = cal.total_us, flop.total_us
        rows_out.append(
            {
                "b": b,
                "calibrated_s": cal.total_us / 1e6,
                "flop_model_s": flop.total_us / 1e6,
                "comp_ratio": flop.comp_us / cal.comp_us,
            }
        )

    measured = {r.b: r.measured.total_us for r in rows_for("diagonal")}
    b_meas = argmin_key(measured)
    b_cal, b_flop = argmin_key(cal_curve), argmin_key(flop_curve)
    order = sorted(BLOCK_SIZES)
    dist = lambda a, c: abs(order.index(a) - order.index(c))
    assert dist(b_cal, b_meas) <= dist(b_flop, b_meas), (
        "the calibrated table must locate the optimum at least as well"
    )
    # the flop model under-prices computation at small blocks
    small = min(BLOCK_SIZES)
    assert rows_out[0]["b"] == small
    assert rows_out[0]["comp_ratio"] < 0.9

    b = max(BLOCK_SIZES)
    trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
    benchmark.pedantic(
        lambda: ProgramSimulator(PARAMS, flop_model).run(trace), rounds=3, iterations=1
    )

    text = "\n".join(
        [
            "Ablation — measured cost table vs naive flop pricing",
            scale_banner(),
            "",
            format_table(
                rows_out,
                ["b", "calibrated_s", "flop_model_s", "comp_ratio"],
                title="predicted totals under each cost model, diagonal mapping "
                "(comp_ratio = flop-model compute / calibrated compute)",
                floatfmt="{:.3f}",
            ),
            "",
            f"optimum: measured b={b_meas}, calibrated prediction b={b_cal}, "
            f"flop-model prediction b={b_flop}.  The flop model cannot see the "
            "per-call/per-row overheads that penalise small blocks (and it has "
            "no Figure 6 crossover at all), so it is biased toward too-small "
            "blocks — the paper's motivation for *measuring* the basic ops.",
        ]
    )
    emit("ablation_costmodel", text)

"""Figure 8 — communication time alone, per layout.

The paper's claim: "the measured values fall between the simulated values
[of] the standard and worst-case [algorithms] for either layout", with
the standard simulation expected to under-predict because it ignores
local (same-processor) transfers.

Asserted here: >= 90% of the points are strictly bracketed (3% slack —
the band is razor-thin at the largest blocks where almost no concurrent
communication remains), and the standard simulation under-predicts the
measured communication time at >= 90% of points.

The benchmark times the standard communication-step algorithm on one
full-size GE wavefront pattern.
"""

from _shared import BLOCK_SIZES, MATRIX_N, PARAMS, emit, rows_for, scale_banner

from repro.analysis import bracketed_fraction, format_figure
from repro.apps import ge_wavefront_pattern
from repro.core import simulate_standard
from repro.layouts import DiagonalLayout


def test_fig8_comm_time(benchmark):
    # benchmark kernel: one wavefront communication step at b=min
    b = min(BLOCK_SIZES)
    nb = MATRIX_N // b
    layout = DiagonalLayout(nb, PARAMS.P)
    pattern = ge_wavefront_pattern(layout, nb - 1, b * b * 8)
    benchmark(lambda: simulate_standard(PARAMS, pattern, seed=0))

    sections = ["Figure 8 — communication time vs block size", scale_banner()]
    for layout_name in ("diagonal", "stripped"):
        rows = rows_for(layout_name)
        measured = {r.b: r.measured.comm_us for r in rows}
        lower = {r.b: r.pred_standard.comm_us for r in rows}
        upper = {r.b: r.pred_worstcase.comm_us for r in rows}
        series = {
            "simulated_standard": lower,
            "measured": measured,
            "simulated_worstcase": upper,
        }
        sections += ["", format_figure(f"{layout_name} mapping", series)]

        frac = bracketed_fraction(measured, lower, upper, slack=0.03)
        assert frac >= 0.9, f"{layout_name}: only {frac:.0%} of points bracketed"
        under = sum(1 for b in measured if measured[b] >= lower[b] * 0.99)
        assert under / len(measured) >= 0.9, (
            "standard simulation should under-predict (local transfers ignored)"
        )
        sections += [
            f"{layout_name}: {frac:.0%} of measured points fall inside the "
            "[standard, worst-case] band (paper: all plotted points inside)",
        ]
    emit("fig8_comm_time", "\n".join(sections))

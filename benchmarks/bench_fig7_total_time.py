"""Figure 7 — total running time vs block size, per layout.

Regenerates both panels of the paper's Figure 7 (diagonal mapping on
top, row-stripped cyclic below) with the four series the paper plots:
measured with caching, measured without caching (the separately-timed
cache-warming section subtracted), simulated standard, and simulated
worst case.  "Measured" is the emulated Meiko CS-2 (see DESIGN.md).

Shape claims asserted (the reproducible content of the figure):

* the running-time dependence on the block size is nonlinear with an
  interior optimum, for every series and both layouts;
* the curves are sawtoothed above the optimum region;
* measured-with-caching exceeds the standard prediction, and removing
  the caching section moves measurement toward the prediction;
* the predicted optimal block size is within two grid entries of the
  measured optimum, and running the predicted optimum costs little more
  than the true measured minimum (the paper's §6.3 conclusion);
* the diagonal mapping beats stripped cyclic at large block sizes.

The benchmark times one GE point end-to-end (trace + both predictions).
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, ge_sweep, rows_for, scale_banner

from repro.analysis import (
    argmin_key,
    ascii_chart,
    format_figure,
    has_interior_minimum,
    is_within_neighbors,
    sawtooth_score,
    series_from_rows,
)
from repro.core import run_ge_point


def test_fig7_total_time(benchmark):
    rows = ge_sweep()

    # benchmark kernel: one mid-size point, predictions only
    benchmark.pedantic(
        lambda: run_ge_point(
            MATRIX_N, max(BLOCK_SIZES), "diagonal", PARAMS, COST_MODEL, with_measured=False
        ),
        rounds=3,
        iterations=1,
    )

    sections = ["Figure 7 — total running time vs block size", scale_banner()]
    for layout in ("diagonal", "stripped"):
        layout_rows = rows_for(layout)
        series = series_from_rows(layout_rows, "b", lambda r: r.series())
        sections += [
            "",
            format_figure(f"{layout} mapping", series),
            "",
            ascii_chart(series, y_scale=1e6, y_label="seconds"),
        ]

        measured = series["measured_with_caching"]
        predicted = series["simulated_standard"]
        worst = series["simulated_worstcase"]
        wo_cache = series["measured_without_caching"]

        assert has_interior_minimum(measured), layout
        assert has_interior_minimum(predicted), layout
        assert sawtooth_score(predicted) >= 1, "nonlinear/sawtooth prediction curve"
        for b in BLOCK_SIZES:
            assert worst[b] >= predicted[b] - 1e-6
            assert measured[b] >= predicted[b] * 0.97
            assert wo_cache[b] <= measured[b] + 1e-6

        b_pred, b_meas = argmin_key(predicted), argmin_key(measured)
        # Cache effects shift the measured optimum toward larger blocks
        # than predicted — the paper's own gap was two grid entries
        # (predicted 30 vs measured 48); the valley here is flat to ~3%,
        # so we allow three entries but demand near-minimal real cost.
        assert is_within_neighbors(b_pred, b_meas, BLOCK_SIZES, hops=3)
        regret = measured[b_pred] / measured[b_meas]
        assert regret <= 1.10, "predicted optimum must be near-optimal in reality"
        sections += [
            f"optimal block size ({layout}): predicted {b_pred}, measured {b_meas} "
            f"(running the predicted choice costs {100 * (regret - 1):.1f}% over the "
            "true minimum — the paper reports the same near-miss behaviour: "
            "predicted 30 vs measured 48 for the diagonal mapping)",
        ]

    # cross-layout claim
    diag = {r.b: r.measured.total_us for r in rows_for("diagonal")}
    stri = {r.b: r.measured.total_us for r in rows_for("stripped")}
    for b in [b for b in BLOCK_SIZES if b >= 96]:
        assert diag[b] < stri[b], "diagonal wins at large block sizes (paper §6.3)"
    sections += [
        "",
        "diagonal beats stripped cyclic at every block size >= 96 "
        "(paper: 'the diagonal mapping works better, especially for large block sizes')",
    ]
    emit("fig7_total_time", "\n".join(sections))

"""Figure 5 — send/receive sequence of the overestimation algorithm.

Same pattern and machine as Figure 4, scheduled by the section 4.2
worst-case rule (receive everything before sending anything).  Checks the
paper's observations:

* the step's execution time increases versus the standard algorithm;
* several processors finish (nearly) simultaneously at the end;
* a processor receiving two concurrently arriving messages delays the
  second receive to fulfil the gap requirement.

The benchmark times one full run of the worst-case algorithm.
"""

from _shared import PARAMS, emit, scale_banner

from repro.analysis import describe_sequence, render_timeline
from repro.apps import sample_pattern
from repro.core import simulate_standard, simulate_worstcase


def test_fig5_worstcase_timeline(benchmark):
    pattern = sample_pattern()
    result = benchmark(lambda: simulate_worstcase(PARAMS, pattern, seed=0))
    timeline = result.timeline
    timeline.validate(pattern.messages)

    std = simulate_standard(PARAMS, pattern, seed=0)
    assert timeline.completion_time > std.completion_time, (
        "the overestimation algorithm must upper-bound the standard one"
    )

    # gap-delayed second receive at some double-receiver
    delayed = False
    for p in timeline.participants():
        recvs = [e for e in timeline.events_of(p) if e.arrival is not None]
        for r1, r2 in zip(recvs, recvs[1:]):
            if r2.arrival < r1.end + PARAMS.g and r2.start > r2.arrival:
                delayed = True
    assert delayed, "expected a receive postponed by the gap requirement"

    text = "\n".join(
        [
            "Figure 5 — worst-case (overestimation) send/receive sequence",
            scale_banner(),
            "",
            render_timeline(timeline, width=100),
            "",
            describe_sequence(timeline),
            "",
            f"standard completion : {std.completion_time:9.2f} us",
            f"worst-case completion: {timeline.completion_time:9.2f} us "
            f"({timeline.completion_time / std.completion_time:.2f}x — the paper "
            "reports the same ordering on the CS-2 parameters)",
        ]
    )
    emit("fig5_worstcase_timeline", text)

"""Extension — lost-cycles decomposition of the GE execution.

The paper positions itself among overhead-decomposition approaches
(Crovella & LeBlanc's lost-cycles analysis, its reference [4]).  This
bench applies that lens to the simulated GE runs: for each block size,
every processor-microsecond is attributed to compute / send / recv /
wait / idle, showing *where* the non-optimal block sizes lose their time
— small blocks drown in send/recv engagement and gap waiting, large
blocks in pipeline idle time.

Asserted: utilization peaks in the optimum region; the wait+idle share is
higher at both extremes than at the optimum; the worst-case algorithm
always wastes more than the standard one.

The benchmark times one whole-program profiling run.
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, scale_banner

from repro.analysis import format_table
from repro.apps import GEConfig, build_ge_trace
from repro.layouts import DiagonalLayout
from repro.machine import profile_program


def test_lost_cycles(benchmark):
    rows = []
    utils = {}
    stall = {}
    for b in BLOCK_SIZES:
        trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
        profile = profile_program(trace, PARAMS, COST_MODEL, mode="standard")
        totals = profile.bucket_totals()
        grand = sum(totals.values())
        utils[b] = profile.utilization
        stall[b] = (totals["wait"] + totals["idle"]) / grand
        rows.append(
            {
                "b": b,
                "makespan_s": profile.makespan_us / 1e6,
                "compute_%": 100 * totals["compute"] / grand,
                "send_%": 100 * totals["send"] / grand,
                "recv_%": 100 * totals["recv"] / grand,
                "wait_%": 100 * totals["wait"] / grand,
                "idle_%": 100 * totals["idle"] / grand,
            }
        )

    best = max(utils, key=utils.get)
    small, large = min(BLOCK_SIZES), max(BLOCK_SIZES)
    assert utils[best] > utils[small] and utils[best] > utils[large], (
        "utilization must peak strictly inside the block-size range"
    )
    assert stall[large] > stall[best], "large blocks must stall more (pipeline bubbles)"

    # the worst-case schedule wastes strictly more than the standard one
    trace = build_ge_trace(
        GEConfig(MATRIX_N, best, DiagonalLayout(MATRIX_N // best, PARAMS.P))
    )
    std = profile_program(trace, PARAMS, COST_MODEL, mode="standard")
    wc = profile_program(trace, PARAMS, COST_MODEL, mode="worstcase")
    assert wc.lost_cycles_us > std.lost_cycles_us

    benchmark.pedantic(
        lambda: profile_program(trace, PARAMS, COST_MODEL), rounds=3, iterations=1
    )

    text = "\n".join(
        [
            "Extension — lost-cycles decomposition of the GE execution",
            scale_banner(),
            "",
            format_table(
                rows,
                ["b", "makespan_s", "compute_%", "send_%", "recv_%", "wait_%", "idle_%"],
                title="where each processor-microsecond goes, diagonal mapping "
                "(standard LogGP schedule)",
                floatfmt="{:.1f}",
            ),
            "",
            f"utilization peaks at b={best} ({100 * utils[best]:.1f}%) — the "
            "Figure 7 optimum seen through the lost-cycles lens: small blocks "
            "lose time to send/recv engagement and gap waiting, large blocks "
            "to wavefront pipeline idling.  Worst-case schedule at the same "
            f"point wastes {wc.lost_cycles_us / std.lost_cycles_us:.2f}x the "
            "standard schedule's lost cycles.",
        ]
    )
    emit("lost_cycles", text)

"""Simulator-performance benchmarks (not a paper figure).

Times the three communication-step engines and the DES substrate on
growing workloads, so regressions in the simulation kernels themselves
are visible.  ``pytest-benchmark`` handles rounds/statistics.
"""

import pytest

from _shared import PARAMS

from repro.apps import all_to_all_pattern, random_pattern
from repro.core import simulate_causal, simulate_standard, simulate_worstcase
from repro.des import Environment


@pytest.mark.parametrize("num_msgs", [50, 500])
def test_engine_standard(benchmark, num_msgs):
    pat = random_pattern(PARAMS.P, num_msgs, seed=1, size_range=(100, 5000))
    benchmark(lambda: simulate_standard(PARAMS, pat, seed=0))


@pytest.mark.parametrize("num_msgs", [50, 500])
def test_engine_worstcase(benchmark, num_msgs):
    pat = random_pattern(PARAMS.P, num_msgs, seed=1, size_range=(100, 5000))
    benchmark(lambda: simulate_worstcase(PARAMS, pat, seed=0))


@pytest.mark.parametrize("num_msgs", [50, 500])
def test_engine_causal_des(benchmark, num_msgs):
    pat = random_pattern(PARAMS.P, num_msgs, seed=1, size_range=(100, 5000))
    benchmark(lambda: simulate_causal(PARAMS, pat))


def test_engine_all_to_all(benchmark):
    pat = all_to_all_pattern(PARAMS.P, size=4096)
    benchmark(lambda: simulate_standard(PARAMS, pat, seed=0))


def test_des_engine_raw_throughput(benchmark):
    """10k timeout events through the bare DES kernel."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(100):
                yield env.timeout(1.0)

        for _ in range(100):
            env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 100.0

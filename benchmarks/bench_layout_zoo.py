"""Extension — all four layouts on the GE evaluation.

The paper compares two layouts; the library ships two more (column
cyclic, 2-D block cyclic) as additional baselines.  This bench evaluates
all four at three representative block sizes with predictions and
emulated measurements, and checks the structural expectations:

* column-cyclic mirrors stripped-cyclic's structure (its local traffic
  runs down columns instead of along rows), landing in the same
  performance regime;
* 2-D block-cyclic balances both traffic directions and is competitive
  with the diagonal mapping at large blocks;
* the predictor ranks the layouts consistently with the emulated
  measurement at large block sizes (the paper's claim, extended to four
  layouts).

The benchmark times one 2-D block-cyclic prediction.
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, make_emulator, scale_banner

from repro.analysis import format_table
from repro.apps import GEConfig, build_ge_trace
from repro.core import ProgramSimulator, run_ge_point
from repro.layouts import LAYOUTS


def test_layout_zoo(benchmark):
    sizes = [b for b in BLOCK_SIZES if b in (20, 48, 96, 160)] or list(BLOCK_SIZES[:3])
    names = sorted(LAYOUTS)
    rows = []
    data: dict[tuple[str, int], dict[str, float]] = {}
    for b in sizes:
        for name in names:
            point = run_ge_point(
                MATRIX_N, b, name, PARAMS, COST_MODEL,
                with_measured=True, seed=0, emulator=make_emulator(),
            )
            data[(name, b)] = {
                "pred": point.pred_standard.total_us,
                "meas": point.measured.total_us,
            }
            rows.append(
                {
                    "b": b,
                    "layout": name,
                    "predicted_s": point.pred_standard.total_us / 1e6,
                    "measured_s": point.measured.total_us / 1e6,
                }
            )

    # ranking agreement at the largest block size
    big = max(sizes)
    pred_rank = sorted(names, key=lambda n: data[(n, big)]["pred"])
    meas_rank = sorted(names, key=lambda n: data[(n, big)]["meas"])
    assert pred_rank[0] == meas_rank[0], (
        "prediction and measurement must agree on the best layout at large b"
    )
    # column mirrors stripped: same regime (within 25%) at every size
    for b in sizes:
        ratio = data[("column", b)]["meas"] / data[("stripped", b)]["meas"]
        assert 0.75 < ratio < 1.33, (b, ratio)
    # block2d competitive with diagonal at the largest size (within 30%)
    ratio = data[("block2d", big)]["meas"] / data[("diagonal", big)]["meas"]
    assert ratio < 1.3

    b = max(sizes)
    trace = build_ge_trace(GEConfig(MATRIX_N, b, LAYOUTS["block2d"](MATRIX_N // b, PARAMS.P)))
    benchmark.pedantic(
        lambda: ProgramSimulator(PARAMS, COST_MODEL).run(trace), rounds=3, iterations=1
    )

    text = "\n".join(
        [
            "Extension — four data layouts on the GE evaluation",
            scale_banner(),
            "",
            format_table(
                rows,
                ["b", "layout", "predicted_s", "measured_s"],
                title="paper layouts (diagonal, stripped) plus extension "
                "baselines (column cyclic, 2-D block cyclic)",
                floatfmt="{:.4f}",
            ),
            "",
            f"best layout at b={big}: predicted {pred_rank[0]!r}, measured "
            f"{meas_rank[0]!r} (agreement) — the paper's layout-comparison "
            "use case generalises beyond its two layouts.",
        ]
    )
    emit("layout_zoo", text)

"""Ablation — incorporating a cache model into the prediction (paper §7).

The paper's main future-work item: "a model to simulate caching behavior
must be incorporated in the simulation algorithm".  This bench runs the
prediction with and without the analytic cache extension
(``CachePredictionModel``) against the emulated measurement and asserts
that the extension closes more than half of the total-time prediction
gap at every small block size — the regime where the paper's
measured/predicted divergence lives.  The remaining few percent belong
to the other un-modelled effects (per-block iteration scans, local
copies, timing noise).

The benchmark times one cache-extended prediction run.
"""

from _shared import (
    BLOCK_SIZES,
    CACHE_BYTES,
    COST_MODEL,
    MATRIX_N,
    PARAMS,
    emit,
    rows_for,
    scale_banner,
)

from repro.analysis import format_table
from repro.apps import GEConfig, build_ge_trace
from repro.core import CachePredictionModel, ProgramSimulator
from repro.layouts import DiagonalLayout


def test_ablation_cache_model(benchmark):
    small_sizes = list(BLOCK_SIZES[:3])  # the cache-distorted regime
    cache_model = CachePredictionModel(cache_bytes=CACHE_BYTES)

    rows_out = []
    improvements = 0
    for b in small_sizes:
        layout = DiagonalLayout(MATRIX_N // b, PARAMS.P)
        trace = build_ge_trace(GEConfig(MATRIX_N, b, layout))
        measured = next(r for r in rows_for("diagonal") if r.b == b).measured

        plain = ProgramSimulator(PARAMS, COST_MODEL).run(trace)
        cached = ProgramSimulator(PARAMS, COST_MODEL, cache_model=cache_model).run(trace)

        gap = lambda pred: abs(measured.total_us - pred.total_us) / measured.total_us
        rows_out.append(
            {
                "b": b,
                "measured_s": measured.total_us / 1e6,
                "plain_gap_%": 100 * gap(plain),
                "cache_gap_%": 100 * gap(cached),
            }
        )
        if gap(cached) < 0.5 * gap(plain):
            improvements += 1

    assert improvements == len(small_sizes), (
        "the cache extension must close most of the gap at every small block size"
    )

    benchmark.pedantic(
        lambda: ProgramSimulator(PARAMS, COST_MODEL, cache_model=cache_model).run(
            build_ge_trace(
                GEConfig(MATRIX_N, max(BLOCK_SIZES),
                         DiagonalLayout(MATRIX_N // max(BLOCK_SIZES), PARAMS.P))
            )
        ),
        rounds=3,
        iterations=1,
    )

    text = "\n".join(
        [
            "Ablation — cache model in the prediction (paper §7 future work)",
            scale_banner(),
            "",
            format_table(
                rows_out,
                ["b", "measured_s", "plain_gap_%", "cache_gap_%"],
                title="total-time prediction gap vs emulated measurement, diagonal "
                "mapping (small blocks = where the paper saw cache distortion)",
                floatfmt="{:.2f}",
            ),
            "",
            "the analytic cache model closes most of the small-block prediction "
            "gap (a slight overshoot remains: real LRU residency gets some "
            "reuse the closed form does not see) — confirming the paper's "
            "diagnosis that caching is the dominant missing effect.",
        ]
    )
    emit("ablation_cache_model", text)

"""CI guard: fail when simulator throughput regresses against the baseline.

Usage::

    python benchmarks/check_throughput.py MANIFEST [BASELINE]
    python benchmarks/check_throughput.py --kernel [BENCH_JSON [BASELINE]]
    python benchmarks/check_throughput.py --obs-enabled [BENCH_JSON [BASELINE]]

In the default mode ``MANIFEST`` is a ``RunRecord`` JSON written by
``repro observe``; ``BASELINE`` defaults to
``benchmarks/baselines/obs_throughput.json``.  Exits non-zero when the
manifest's ``events_per_sec`` is more than the baseline's ``tolerance``
(fraction, default 0.30) below the baseline value.

``--kernel`` checks the fast-kernel bench instead: ``BENCH_JSON``
defaults to ``BENCH_kernel.json`` at the repo root (written by
``benchmarks/bench_kernel.py``) and ``BASELINE`` to
``benchmarks/baselines/kernel_throughput.json``.  The guarded value is
the steady-state ``points_per_sec_fast``; when the bench ran on a host
with fewer than 4 CPUs the check is skipped with a notice (wall-clock
on small runners is too noisy to gate — bit-identity is still enforced
inside the bench itself).

``--obs-enabled`` guards the always-on tracing promise instead:
``BENCH_JSON`` defaults to ``BENCH_obs.json`` at the repo root (written
by ``benchmarks/bench_obs_overhead.py``) and ``BASELINE`` to
``benchmarks/baselines/obs_enabled.json``.  The check fails when
``enabled_overhead_pct`` (the cost of the default-config ring-buffer
tracer on the Fig. 7 sweep) exceeds the baseline's
``max_enabled_overhead_pct`` (10%), or when the bench's
``disabled_overhead_pct`` exceeds its own recorded target.  Like the
kernel gate, the overhead comparison is skipped with a notice on hosts
with fewer than 4 CPUs.

``REPRO_THROUGHPUT_TOLERANCE`` overrides either throughput tolerance,
e.g. for noisier runners.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baselines" / "obs_throughput.json"
KERNEL_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
KERNEL_BASELINE = (
    Path(__file__).resolve().parent / "baselines" / "kernel_throughput.json"
)
OBS_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
OBS_ENABLED_BASELINE = (
    Path(__file__).resolve().parent / "baselines" / "obs_enabled.json"
)


def check_kernel(argv: list[str]) -> int:
    """The ``--kernel`` mode: guard BENCH_kernel.json's steady-state rate."""
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = Path(argv[0]) if argv else KERNEL_BENCH_JSON
    baseline_path = Path(argv[1]) if len(argv) == 2 else KERNEL_BASELINE
    record = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    if not record.get("identical", False):
        print("FAIL: BENCH_kernel.json reports fast != reference results")
        return 1

    cpus = record.get("cpu_count", 0)
    got = record.get("points_per_sec_fast")
    ref = baseline["points_per_sec_fast"]
    tolerance = float(
        os.environ.get("REPRO_THROUGHPUT_TOLERANCE", baseline.get("tolerance", 0.30))
    )
    floor = ref * (1.0 - tolerance)

    if not got:
        print(f"FAIL: {bench_path} has no points_per_sec_fast")
        return 1
    print(
        f"kernel throughput: {got:.2f} points/s steady-state "
        f"(baseline {ref:.2f}, floor {floor:.2f} at -{tolerance:.0%}, "
        f"speedup {record.get('speedup', 0.0):.2f}x on {cpus} CPUs)"
    )
    if cpus < 4:
        print(
            f"SKIP: bench ran on {cpus} CPU(s) — below 4, wall-clock too noisy "
            "to gate (bit-identity was still checked by the bench)"
        )
        return 0
    if got < floor:
        print(f"FAIL: kernel throughput regressed more than {tolerance:.0%} below baseline")
        return 1
    print("OK")
    return 0


def check_obs_enabled(argv: list[str]) -> int:
    """The ``--obs-enabled`` mode: guard the enabled-tracing overhead."""
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = Path(argv[0]) if argv else OBS_BENCH_JSON
    baseline_path = Path(argv[1]) if len(argv) == 2 else OBS_ENABLED_BASELINE
    record = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    got = record.get("enabled_overhead_pct")
    disabled = record.get("disabled_overhead_pct")
    ceiling = float(baseline["max_enabled_overhead_pct"])
    cpus = record.get("cpu_count", 0)

    if got is None or disabled is None:
        print(
            f"FAIL: {bench_path} lacks enabled/disabled overhead fields — "
            "regenerate with benchmarks/bench_obs_overhead.py"
        )
        return 1
    print(
        f"obs overhead: enabled {got:+.1f}% (ceiling {ceiling:.0f}%), "
        f"disabled bound {disabled:.3f}% "
        f"(target < {record.get('target_disabled_pct', 5.0)}%), "
        f"{record.get('per_event_emit_ns', 0.0):.1f} ns/event on {cpus} CPUs"
    )
    if disabled >= float(record.get("target_disabled_pct", 5.0)):
        print("FAIL: disabled-tracing overhead bound exceeds its target")
        return 1
    if cpus < 4:
        print(
            f"SKIP: bench ran on {cpus} CPU(s) — below 4, wall-clock too noisy "
            "to gate the enabled-overhead ratio"
        )
        return 0
    if got > ceiling:
        print(
            f"FAIL: enabled tracing costs {got:.1f}% > {ceiling:.0f}% — "
            "the always-on tracing promise regressed"
        )
        return 1
    print("OK")
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--kernel":
        return check_kernel(argv[1:])
    if argv and argv[0] == "--obs-enabled":
        return check_obs_enabled(argv[1:])
    if not argv or len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    manifest = json.loads(Path(argv[0]).read_text())
    baseline_path = Path(argv[1]) if len(argv) == 2 else DEFAULT_BASELINE
    baseline = json.loads(baseline_path.read_text())

    got = manifest.get("events_per_sec")
    ref = baseline["events_per_sec"]
    tolerance = float(
        os.environ.get("REPRO_THROUGHPUT_TOLERANCE", baseline.get("tolerance", 0.30))
    )
    floor = ref * (1.0 - tolerance)

    if not got:
        print(
            f"FAIL: manifest {argv[0]} has no events_per_sec "
            f"(event_count={manifest.get('event_count')}, wall_s={manifest.get('wall_s')})"
        )
        return 1

    expected = baseline.get("event_count")
    if expected and manifest.get("event_count") != expected:
        print(
            f"note: event count {manifest.get('event_count')} differs from "
            f"baseline's {expected} — workloads may have diverged"
        )

    print(
        f"throughput: {got:,.0f} events/s (baseline {ref:,.0f}, "
        f"floor {floor:,.0f} at -{tolerance:.0%})"
    )
    if got < floor:
        print(f"FAIL: throughput regressed more than {tolerance:.0%} below baseline")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""CI guard: fail when simulator throughput regresses against the baseline.

Usage::

    python benchmarks/check_throughput.py MANIFEST [BASELINE]

``MANIFEST`` is a ``RunRecord`` JSON written by ``repro observe``;
``BASELINE`` defaults to ``benchmarks/baselines/obs_throughput.json``.
Exits non-zero when the manifest's ``events_per_sec`` is more than the
baseline's ``tolerance`` (fraction, default 0.30) below the baseline
value.  ``REPRO_THROUGHPUT_TOLERANCE`` overrides the tolerance, e.g. for
noisier runners.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baselines" / "obs_throughput.json"


def main(argv: list[str]) -> int:
    if not argv or len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    manifest = json.loads(Path(argv[0]).read_text())
    baseline_path = Path(argv[1]) if len(argv) == 2 else DEFAULT_BASELINE
    baseline = json.loads(baseline_path.read_text())

    got = manifest.get("events_per_sec")
    ref = baseline["events_per_sec"]
    tolerance = float(
        os.environ.get("REPRO_THROUGHPUT_TOLERANCE", baseline.get("tolerance", 0.30))
    )
    floor = ref * (1.0 - tolerance)

    if not got:
        print(
            f"FAIL: manifest {argv[0]} has no events_per_sec "
            f"(event_count={manifest.get('event_count')}, wall_s={manifest.get('wall_s')})"
        )
        return 1

    expected = baseline.get("event_count")
    if expected and manifest.get("event_count") != expected:
        print(
            f"note: event count {manifest.get('event_count')} differs from "
            f"baseline's {expected} — workloads may have diverged"
        )

    print(
        f"throughput: {got:,.0f} events/s (baseline {ref:,.0f}, "
        f"floor {floor:,.0f} at -{tolerance:.0%})"
    )
    if got < floor:
        print(f"FAIL: throughput regressed more than {tolerance:.0%} below baseline")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

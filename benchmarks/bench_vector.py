"""Batch (SoA) kernel vs scalar fast kernel on the Figure 7 workloads.

The vectorized batch kernel (:mod:`repro.kernel.vector`) advances many
sweep points per step over one compiled program plan; this bench
quantifies what that buys over the scalar fast kernel on the two shapes
the sweep engine actually dispatches:

* ``grid``  — the Figure 7 prediction grid (every block size × both
  layouts, predictions only): one batch call vs a scalar
  ``summarize_ge_point`` loop, both on the fast path, both cold.
* ``lanes`` — a replicate batch (one GE configuration, many seeds, the
  UQ engine's shape): ``simulate_programs_batch`` vs per-lane scalar
  ``ProgramSimulator`` runs.

Gates:

* ``identical`` — batch results are ``repr``-equal to scalar results on
  every point/lane/mode.  **The hard gate**, enforced on every host.
* ``speedup_grid`` — scalar / batch wall-clock on the grid workload.
  Target ≥ 1.1× (the batch path's win is algorithmic — lean event-free
  step sims plus SoA comp phases — not parallelism, so it is modest but
  CPU-count independent); asserted only at paper scale on hosts with
  ≥ 4 CPUs — reduced-scale points are too cheap for the lean sims to
  pay, and small-runner wall-clock is too noisy to gate.

Results land in ``BENCH_vector.json`` at the repo root.  Run standalone
with ``python benchmarks/bench_vector.py`` or via
``pytest benchmarks/bench_vector.py``.
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _shared import (  # noqa: E402
    BLOCK_SIZES,
    COST_MODEL,
    FAST,
    LAYOUTS,
    MATRIX_N,
    PARAMS,
    scale_banner,
)

from repro.core import ProgramSimulator  # noqa: E402
from repro.kernel import clear_all_caches, fast_path  # noqa: E402
from repro.kernel.vector import (  # noqa: E402
    GE_MODES,
    evaluate_ge_points_batch,
    ge_plan,
)
from repro.obs import RunRecord, loggp_dict  # noqa: E402
from repro.sweep import expand_grid  # noqa: E402

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_vector.json"
TARGET_SPEEDUP = 1.1
LANE_SEEDS = tuple(range(8))
LANE_B = 60


def _grid_workload():
    # The scalar baseline replicates run_ge_point's scalar fast branch
    # explicitly (shared trace cache + RunningTimePredictor): with the
    # kernel enabled and no tracer, summarize_ge_point itself routes
    # through the batch kernel, which would compare batch against batch.
    from repro.core.predictor import (
        GERow,
        RunningTimePredictor,
        _flatten_ge_row,
    )
    from repro.kernel.tracecache import ge_trace

    grid = expand_grid(MATRIX_N, BLOCK_SIZES, LAYOUTS, with_measured=False)

    clear_all_caches()
    with fast_path(True):
        t0 = time.perf_counter()
        scalar = []
        for p in grid:
            trace = ge_trace(p.n, p.b, p.layout, PARAMS.P)
            pred_std, pred_wc = RunningTimePredictor(
                PARAMS, COST_MODEL, seed=p.seed
            ).predict_both(trace)
            scalar.append(
                _flatten_ge_row(
                    GERow(n=p.n, b=p.b, layout=p.layout,
                          pred_standard=pred_std, pred_worstcase=pred_wc,
                          measured=None),
                    p.seed,
                )
            )
        scalar_s = time.perf_counter() - t0

    clear_all_caches()
    with fast_path(True):
        t0 = time.perf_counter()
        batch = evaluate_ge_points_batch(grid, PARAMS, COST_MODEL)
        batch_s = time.perf_counter() - t0

    identical = all(
        {k: repr(v) for k, v in b.items()} == {k: repr(v) for k, v in s.items()}
        for b, s in zip(batch, scalar)
    )
    return len(grid), scalar_s, batch_s, identical


def _lane_workload():
    plan = ge_plan(MATRIX_N, LANE_B, "diagonal", PARAMS.P)
    lanes = [(PARAMS, COST_MODEL)] * len(LANE_SEEDS)

    clear_all_caches()
    with fast_path(True):
        t0 = time.perf_counter()
        scalar = [
            {
                mode: ProgramSimulator(
                    PARAMS, COST_MODEL, mode=mode, seed=seed
                ).run(plan.trace)
                for mode in GE_MODES
            }
            for seed in LANE_SEEDS
        ]
        scalar_s = time.perf_counter() - t0

    clear_all_caches()
    from repro.kernel.vector import simulate_programs_batch

    t0 = time.perf_counter()
    batch = simulate_programs_batch(plan, lanes, list(LANE_SEEDS), modes=GE_MODES)
    batch_s = time.perf_counter() - t0

    def key(report):
        return (
            repr(report.total_us),
            repr(report.per_proc_total_us),
            repr(report.per_proc_comp_us),
            repr(report.per_proc_comm_busy_us),
        )

    identical = all(
        key(b[mode]) == key(s[mode])
        for b, s in zip(batch, scalar)
        for mode in GE_MODES
    )
    return len(LANE_SEEDS), scalar_s, batch_s, identical


def run_bench() -> dict:
    cpus = os.cpu_count() or 1
    grid_pts, grid_scalar_s, grid_batch_s, grid_ok = _grid_workload()
    lane_n, lane_scalar_s, lane_batch_s, lane_ok = _lane_workload()

    record = {
        "bench": "vector",
        "scale": scale_banner(),
        "fast": FAST,
        "n": MATRIX_N,
        "block_sizes": list(BLOCK_SIZES),
        "layouts": list(LAYOUTS),
        "cpu_count": cpus,
        "grid_points": grid_pts,
        "grid_scalar_s": grid_scalar_s,
        "grid_batch_s": grid_batch_s,
        "speedup_grid": grid_scalar_s / grid_batch_s if grid_batch_s else float("inf"),
        "points_per_sec_batch": grid_pts / grid_batch_s if grid_batch_s else 0.0,
        "lane_count": lane_n,
        "lane_b": LANE_B,
        "lane_scalar_s": lane_scalar_s,
        "lane_batch_s": lane_batch_s,
        "speedup_lanes": lane_scalar_s / lane_batch_s if lane_batch_s else float("inf"),
        "target_speedup": TARGET_SPEEDUP,
        "speedup_gated": cpus >= 4 and not FAST,
        "identical": grid_ok and lane_ok,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    manifest = RunRecord.begin("bench:vector")
    manifest.note(
        params=loggp_dict(PARAMS), engine="vector",
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES),
                  "layouts": list(LAYOUTS), "fast": FAST},
        **{k: record[k] for k in
           ("grid_points", "cpu_count", "grid_scalar_s", "grid_batch_s",
            "speedup_grid", "speedup_lanes", "identical")},
    ).finish().write()

    print()
    print(f"vector batch kernel — {scale_banner()}")
    print(f"  grid points                : {grid_pts}")
    print(f"  grid scalar (fast)         : {grid_scalar_s:8.3f} s")
    print(f"  grid batch  (SoA)          : {grid_batch_s:8.3f} s")
    print(f"  grid speedup               : {record['speedup_grid']:.2f}x")
    print(f"  lanes ({lane_n} seeds, b={LANE_B})    "
          f"  : {lane_scalar_s:8.3f} s scalar / {lane_batch_s:8.3f} s batch "
          f"({record['speedup_lanes']:.2f}x)")
    print(f"  batch == scalar            : {record['identical']}")
    print(f"  recorded -> {BENCH_JSON.name}")
    return record


def test_vector_batch_speedup():
    record = run_bench()
    assert record["identical"], "batch kernel drifted from scalar results"
    if record["speedup_gated"]:
        assert record["speedup_grid"] >= TARGET_SPEEDUP, (
            f"grid speedup {record['speedup_grid']:.2f}x below "
            f"{TARGET_SPEEDUP}x on {record['cpu_count']} CPUs"
        )


if __name__ == "__main__":
    rec = run_bench()
    if not rec["identical"]:
        sys.exit("FAIL: batch kernel results differ from scalar results")
    if rec["speedup_gated"] and rec["speedup_grid"] < TARGET_SPEEDUP:
        sys.exit(
            f"FAIL: grid speedup {rec['speedup_grid']:.2f}x below target "
            f"{TARGET_SPEEDUP}x"
        )

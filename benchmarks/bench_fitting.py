"""Extension — recovering the LogGP parameters by micro-benchmarking.

The paper's machine parameters came from the LogP/LogGP assessment
methodology (Culler et al.).  This bench closes the loop inside the
reproduction: run the micro-benchmark suite against (a) the exact LogGP
simulator and (b) the jittered emulated network, fit L/o/g/G from the
observations, and quantify the recovery error.

Asserted: exact recovery from the clean model (machine precision);
sender-side parameters (o, g, G) stay exact under latency jitter, and L
is recovered within 15%; the fitted machine reproduces the sample
pattern's completion time.

The benchmark times one full fit (micro-benchmarks + inversion).
"""

from _shared import PARAMS, emit, scale_banner

from repro.analysis import format_table
from repro.apps import sample_pattern
from repro.core import assess_fit, emulator_runner, fit_loggp, simulate_standard
from repro.machine import JitteredNetwork


def test_parameter_fitting(benchmark):
    clean_runner = emulator_runner(PARAMS)
    fitted_clean = benchmark(lambda: fit_loggp(clean_runner, num_procs=PARAMS.P))
    errors_clean = assess_fit(fitted_clean, PARAMS)
    assert max(errors_clean.values()) < 1e-9

    net = JitteredNetwork(params=PARAMS, seed=7)
    fitted_noisy = fit_loggp(
        emulator_runner(PARAMS, latency_of=net.latency_of), num_procs=PARAMS.P, repeats=15
    )
    errors_noisy = assess_fit(fitted_noisy, PARAMS)
    assert errors_noisy["o"] < 1e-9
    assert errors_noisy["g"] < 1e-9
    assert errors_noisy["G"] < 1e-9
    assert errors_noisy["L"] < 0.15

    pat = sample_pattern()
    t_true = simulate_standard(PARAMS, pat).completion_time
    t_fit = simulate_standard(fitted_clean.with_(P=PARAMS.P), pat).completion_time
    assert abs(t_fit - t_true) < 1e-6

    rows = []
    for name in ("L", "o", "g", "G"):
        rows.append(
            {
                "parameter": name,
                "truth": getattr(PARAMS, name),
                "fit_clean": getattr(fitted_clean, name),
                "fit_jittered": getattr(fitted_noisy, name),
                "jitter_err_%": 100 * errors_noisy[name],
            }
        )
    text = "\n".join(
        [
            "Extension — LogGP parameter recovery from micro-benchmarks",
            scale_banner(),
            "",
            format_table(
                rows,
                ["parameter", "truth", "fit_clean", "fit_jittered", "jitter_err_%"],
                title="micro-benchmark assessment (send-cost, burst, round-trip)",
                floatfmt="{:.4f}",
            ),
            "",
            "the clean fit is exact (the inversion matches the model); under "
            "latency jitter only L — the jittered quantity — moves, by the "
            "median-of-repeats residual.  The fitted machine reproduces the "
            "Figure 4 sample-pattern completion to machine precision.",
        ]
    )
    emit("fitting", text)

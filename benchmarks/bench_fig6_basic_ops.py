"""Figure 6 — running time of the basic operations vs block size.

Two reproductions of the paper's measurement:

* the deterministic calibrated table (the Meiko-CS-2 stand-in used by the
  prediction experiments) — checked for the paper's shape claims: Op1
  most expensive for small blocks, all four roughly equal near the
  crossover, the full multiplication about twice Op1 for large blocks;
* a live host measurement of the real NumPy implementations (the paper's
  methodology applied to this machine) — reported for comparison; its
  absolute values are host-dependent.

The benchmark times the dominant basic operation (Op4) at the paper's
optimal-region block size.
"""

from _shared import BLOCK_SIZES, emit, scale_banner

import numpy as np

from repro.analysis import crossover_points, format_table
from repro.blockops import OP_NAMES, calibrated_table, measure_op_costs, op4_update


def test_fig6_basic_ops(benchmark):
    # --- benchmark kernel: the trailing-update op at b=48 ----------------
    rng = np.random.default_rng(0)
    blk, col, row = (rng.standard_normal((48, 48)) for _ in range(3))
    benchmark(lambda: op4_update(blk, col, row))

    # --- calibrated (CS-2 stand-in) table --------------------------------
    table = calibrated_table(BLOCK_SIZES)
    small_b, large_b = min(BLOCK_SIZES), max(BLOCK_SIZES)

    costs_small = {op: table[op][small_b] for op in OP_NAMES}
    assert max(costs_small, key=costs_small.get) == "op1", (
        "Op1 must dominate at small block sizes"
    )
    costs_large = {op: table[op][large_b] for op in OP_NAMES}
    assert max(costs_large, key=costs_large.get) == "op4"
    ratio = costs_large["op4"] / costs_large["op1"]
    assert 1.5 <= ratio <= 2.2, "Op4 ~ 2x Op1 at large blocks (paper Figure 6)"
    crossings = crossover_points(table["op1"], table["op4"])
    assert len(crossings) == 1 and 40 <= crossings[0] <= 80, (
        "exactly one Op1/Op4 crossover near b~60"
    )

    # --- host measurement of the real implementations --------------------
    host_sizes = [b for b in BLOCK_SIZES if b <= 96]
    host = measure_op_costs(host_sizes, repeats=3, seed=0)

    def rows_from(tbl, sizes):
        return [
            {"b": b, **{op: tbl[op][b] / 1000.0 for op in OP_NAMES}} for b in sizes
        ]

    text = "\n".join(
        [
            "Figure 6 — basic-operation running times vs block size",
            scale_banner(),
            "",
            format_table(
                rows_from(table, BLOCK_SIZES),
                ["b", *OP_NAMES],
                title="calibrated CS-2 stand-in [milliseconds]",
            ),
            "",
            f"Op1/Op4 crossover at b={crossings[0]} "
            f"(paper: most expensive op changes near b~60); "
            f"Op4/Op1 at b={large_b}: {ratio:.2f}x",
            "",
            format_table(
                rows_from(host, host_sizes),
                ["b", *OP_NAMES],
                title="host-measured NumPy implementations [milliseconds] "
                "(machine-dependent; methodology reproduction only)",
            ),
        ]
    )
    emit("fig6_basic_ops", text)

"""Ablation — automatic optimum search heuristics (paper §7).

"Future work may be done to automatically determine these optimal values
from the predicted running times.  This reduces to a search problem and
therefore some heuristics have to be used."

Compares the three searches over the *predicted* total-time curve on
evaluation count (each evaluation = one whole-program simulation) and
regret measured on the emulated machine: how much worse than the true
measured optimum is the block size each heuristic picks.

The benchmark times a local-descent search end-to-end, simulations
included.
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, rows_for, scale_banner

from repro.analysis import format_table
from repro.core import exhaustive_search, local_descent, run_ge_point, ternary_search


def test_ablation_optimizer(benchmark):
    predicted = {r.b: r.pred_standard.total_us for r in rows_for("diagonal")}
    measured = {r.b: r.measured.total_us for r in rows_for("diagonal")}
    best_measured = min(measured.values())

    rows_out = []
    for name, search in (
        ("exhaustive", exhaustive_search),
        ("descent", local_descent),
        ("ternary", ternary_search),
    ):
        result = search(lambda b: predicted[b], BLOCK_SIZES)
        regret = measured[result.best] / best_measured - 1.0
        rows_out.append(
            {
                "method": name,
                "picked_b": float(result.best),
                "evaluations": float(result.evaluations),
                "real_regret_%": 100 * regret,
            }
        )
        assert regret <= 0.15, f"{name} must land near the real optimum"

    exhaustive_evals = next(r for r in rows_out if r["method"] == "exhaustive")["evaluations"]
    for r in rows_out:
        if r["method"] != "exhaustive":
            assert r["evaluations"] <= exhaustive_evals

    # benchmark: descent with *live* simulations (not the cached curve)
    live_sizes = [b for b in BLOCK_SIZES if b >= 48]

    def live_descent():
        return local_descent(
            lambda b: run_ge_point(
                MATRIX_N, b, "diagonal", PARAMS, COST_MODEL, with_measured=False
            ).pred_standard.total_us,
            live_sizes,
        )

    benchmark.pedantic(live_descent, rounds=1, iterations=1)

    text = "\n".join(
        [
            "Ablation — automatic optimum search over predicted running times",
            scale_banner(),
            "",
            format_table(
                rows_out,
                ["method", "picked_b", "evaluations", "real_regret_%"],
                title="search heuristics on the diagonal-mapping curve "
                "(regret = real cost of the pick vs true measured optimum)",
                floatfmt="{:.1f}",
            ),
            "",
            "descent and ternary need a fraction of the simulations and still "
            "land within the paper's 'not far from the real minimum' tolerance; "
            "on sawtoothed curves they may settle on a local optimum — the "
            "paper's own framing ('locally optimal value').",
        ]
    )
    emit("ablation_optimizer", text)

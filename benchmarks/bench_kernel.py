"""Steady-state throughput of the fast simulation kernel.

The kernel (:mod:`repro.kernel`) exists to make the Figure 7 sweep hot
path — GE predictions (all three engines' work lives here) plus the
emulated "measured" run per point — cheap enough for dense grids and
Monte Carlo studies.  This bench quantifies it on exactly that workload
and gates the two claims the kernel makes:

* ``identical``        — the fast sweep's ``results_sha256`` equals the
  reference sweep's.  **The hard gate**: any bit of drift fails the
  bench outright, on every host.
* ``speedup``          — reference wall-clock / steady-state fast
  wall-clock.  Target ≥ 2×; asserted only on hosts with ≥ 4 CPUs
  (small/noisy runners can't time reliably; ``cpu_count`` is recorded
  so the number can be judged in context).

"Steady state" means caches warm: the first fast pass populates the
cost memos and shared traces (and doubles as the identity run), the
second pass is the one timed.  ``points_per_sec_fast`` from that pass
lands in ``BENCH_kernel.json`` at the repo root, which
``benchmarks/check_throughput.py --kernel`` compares against the
checked-in baseline (``benchmarks/baselines/kernel_throughput.json``)
in CI.  Run standalone with ``python benchmarks/bench_kernel.py`` or
via ``pytest benchmarks/bench_kernel.py``.
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _shared import (  # noqa: E402
    BLOCK_SIZES,
    COST_MODEL,
    FAST,
    LAYOUTS,
    MATRIX_N,
    PARAMS,
    scale_banner,
)

from repro.kernel import clear_all_caches, fast_path  # noqa: E402
from repro.obs import RunRecord, loggp_dict  # noqa: E402
from repro.sweep import expand_grid, run_sweep  # noqa: E402

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
TARGET_SPEEDUP = 2.0


def _timed_sweep(grid, fast: bool):
    with fast_path(fast):
        t0 = time.perf_counter()
        result = run_sweep(grid, PARAMS, COST_MODEL, workers=1, store=None)
        elapsed = time.perf_counter() - t0
    return result, elapsed


def run_bench() -> dict:
    grid = expand_grid(MATRIX_N, BLOCK_SIZES, LAYOUTS, with_measured=True)
    cpus = os.cpu_count() or 1

    clear_all_caches()
    ref, ref_s = _timed_sweep(grid, fast=False)
    clear_all_caches()
    warm, warmup_s = _timed_sweep(grid, fast=True)   # cold caches + identity run
    steady, fast_s = _timed_sweep(grid, fast=True)   # caches warm: the timed pass

    identical = ref.digest() == warm.digest() == steady.digest()
    speedup = ref_s / fast_s if fast_s else float("inf")
    record = {
        "bench": "kernel",
        "scale": scale_banner(),
        "fast_scale": FAST,
        "n": MATRIX_N,
        "block_sizes": list(BLOCK_SIZES),
        "layouts": list(LAYOUTS),
        "points": len(grid),
        "cpu_count": cpus,
        "reference_s": ref_s,
        "warmup_s": warmup_s,
        "fast_s": fast_s,
        "points_per_sec_ref": len(grid) / ref_s,
        "points_per_sec_fast": len(grid) / fast_s,
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_gated": cpus >= 4,
        "identical": identical,
        "results_sha256": steady.digest(),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    manifest = RunRecord.begin("bench:kernel")
    manifest.note(
        params=loggp_dict(PARAMS), engine="kernel",
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES),
                  "layouts": list(LAYOUTS), "fast_scale": FAST},
        **{k: record[k] for k in
           ("points", "cpu_count", "reference_s", "fast_s",
            "points_per_sec_fast", "speedup", "identical", "results_sha256")},
    ).finish().write()

    print()
    print(f"fast kernel — {scale_banner()}")
    print(f"  grid points               : {len(grid)}")
    print(f"  reference (REPRO_FAST off): {ref_s:8.3f} s "
          f"({record['points_per_sec_ref']:.2f} points/s)")
    print(f"  fast, cold caches         : {warmup_s:8.3f} s")
    print(f"  fast, steady state        : {fast_s:8.3f} s "
          f"({record['points_per_sec_fast']:.2f} points/s)")
    print(f"  speedup                   : {speedup:.2f}x "
          f"(target >= {TARGET_SPEEDUP}x, {cpus} CPUs"
          f"{'' if cpus >= 4 else ' — below 4, target not gated'})")
    print(f"  fast == reference         : {identical}")
    print(f"  recorded -> {BENCH_JSON.name}")
    return record


def test_kernel_throughput():
    record = run_bench()
    assert record["identical"], "fast kernel drifted from reference results"
    if record["speedup_gated"]:
        assert record["speedup"] >= TARGET_SPEEDUP, (
            f"speedup {record['speedup']:.2f}x below {TARGET_SPEEDUP}x "
            f"on {record['cpu_count']} CPUs"
        )


if __name__ == "__main__":
    rec = run_bench()
    if not rec["identical"]:
        sys.exit("FAIL: fast kernel results differ from reference results")
    if rec["speedup_gated"] and rec["speedup"] < TARGET_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {rec['speedup']:.2f}x below target "
            f"{TARGET_SPEEDUP}x on {rec['cpu_count']} CPUs"
        )

"""Shared infrastructure for the figure-reproduction benchmarks.

Scale control
-------------
``REPRO_FAST=1`` in the environment switches from the paper's full scale
(960x960, all 14 block sizes — a few minutes of simulation) to a reduced
480x480 sweep (seconds).  The claims checked are the same.

The expensive GE sweep is computed once per pytest session and shared by
the Figure 7/8/9 benches; each bench prints the exact series the paper
plots and also writes it to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
import pathlib
from functools import lru_cache

from repro import MEIKO_CS2, CalibratedCostModel
from repro.apps import PAPER_BLOCK_SIZES, PAPER_MATRIX_N
from repro.blockops import CS2_CACHE_BYTES
from repro.core.predictor import GERow, run_ge_point
from repro.machine import MachineEmulator
from repro.obs import RunRecord, loggp_dict

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

FAST = os.environ.get("REPRO_FAST", "0") == "1"

#: the paper's configuration (full) or the reduced one (fast)
MATRIX_N = 480 if FAST else PAPER_MATRIX_N
BLOCK_SIZES = (
    tuple(b for b in PAPER_BLOCK_SIZES if MATRIX_N % b == 0 and b >= 15)
    if FAST
    else PAPER_BLOCK_SIZES
)
LAYOUTS = ("diagonal", "stripped")
PARAMS = MEIKO_CS2
COST_MODEL = CalibratedCostModel()

#: per-node cache.  Each processor holds n^2*8/P bytes of blocks no matter
#: the block size; the fast scale shrinks that footprint 4x, so the cache
#: shrinks with it to keep the paper's overflow regime (and hence all the
#: cache-effect claims) intact.
CACHE_BYTES = CS2_CACHE_BYTES // 4 if FAST else CS2_CACHE_BYTES


def make_emulator(seed: int = 0) -> MachineEmulator:
    """A fresh emulated Meiko CS-2 at the active scale."""
    return MachineEmulator(
        params=PARAMS, cost_model=COST_MODEL, cache_bytes=CACHE_BYTES, seed=seed
    )


@lru_cache(maxsize=1)
def ge_sweep() -> tuple[GERow, ...]:
    """The full GE evaluation sweep (cached for the whole session)."""
    rows = []
    for layout in LAYOUTS:
        for b in BLOCK_SIZES:
            rows.append(
                run_ge_point(
                    MATRIX_N,
                    b,
                    layout,
                    PARAMS,
                    COST_MODEL,
                    with_measured=True,
                    seed=0,
                    emulator=make_emulator(seed=0),
                )
            )
    return tuple(rows)


def rows_for(layout: str) -> list[GERow]:
    """Sweep rows of one layout, ordered by block size."""
    return sorted((r for r in ge_sweep() if r.layout == layout), key=lambda r: r.b)


def emit(name: str, text: str, **run_facts) -> None:
    """Print a figure table and persist it under benchmarks/results/.

    Also writes a :class:`repro.obs.RunRecord` manifest for the bench run
    (to ``$REPRO_RUNS_DIR`` or ``.repro/runs``), so the benchmark suite
    leaves the same machine-readable trail the CLI does.  ``run_facts``
    are merged into the record (e.g. ``makespan_us=...``).
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    record = RunRecord.begin(f"bench:{name}")
    record.note(
        params=loggp_dict(PARAMS),
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES), "fast": FAST},
        results_txt=str(RESULTS_DIR / f"{name}.txt"),
        **run_facts,
    )
    record.finish().write()


def scale_banner() -> str:
    """One line describing the active scale (prefixed to every figure)."""
    mode = "REPRO_FAST reduced scale" if FAST else "paper scale"
    return (
        f"{mode}: n={MATRIX_N}, P={PARAMS.P}, block sizes {list(BLOCK_SIZES)}, "
        f"{PARAMS.describe()}"
    )

"""Observability overhead guard.

PR 1 made the simulators observable; PR 6's ring-buffer tracer makes
observability affordable.  This bench quantifies both halves of that
claim on the Figure 7 prediction sweep:

* ``disabled_overhead_pct`` — an upper bound on what the disabled hooks
  cost, computed as (number of emission-site checks) x (measured cost of
  one ``get_tracer().enabled`` check) relative to the sweep time.  The
  check count is bounded by the events an *enabled* run emits, since
  every disabled site corresponds to at most one suppressed event.
  Target (asserted always): **< 5%**.
* ``enabled_overhead_pct`` — the honest price of recording: the same
  sweep under a live default-config tracer, relative to the disabled
  run.  Target (asserted on >= 4-CPU hosts, and CI-gated by
  ``check_throughput.py --obs-enabled``): **<= 10%**.  The pre-ring-buffer
  tracer measured 109% here.
* ``per_event_emit_ns`` — the marginal recording cost per retained
  event, ``(enabled_s - disabled_s) / events``.
* ``sampled`` — the same sweep again under ``--trace-sample 16``-style
  config, demonstrating what deterministic sampling buys on top.

Results are printed and recorded into ``BENCH_obs.json`` at the repo
root — the perf-trajectory entry CI checks.
"""

import json
import os
import time
from pathlib import Path

from _shared import BLOCK_SIZES, COST_MODEL, FAST, MATRIX_N, PARAMS, scale_banner

from repro.core import run_ge_point
from repro.obs import RunRecord, TraceConfig, Tracer, get_tracer, loggp_dict, tracing

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
TARGET_DISABLED_PCT = 5.0
TARGET_ENABLED_PCT = 10.0
#: the sampled demonstration config (1-in-16 on the per-message categories)
SAMPLE_SPEC = "send=16,recv=16"


def _kernel():
    """The Fig. 7 kernel: prediction-only sweep over the block grid."""
    for b in BLOCK_SIZES:
        run_ge_point(
            MATRIX_N, b, "diagonal", PARAMS, COST_MODEL, with_measured=False
        )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _per_check_cost_s(checks: int = 1_000_000) -> float:
    """Measured cost of one disabled emission-site check."""
    t0 = time.perf_counter()
    for _ in range(checks):
        get_tracer().enabled  # noqa: B018 - the expression IS the workload
    return (time.perf_counter() - t0) / checks


def _traced_sweep(config=None, repeats=2):
    """Best-of-``repeats`` enabled sweep: (seconds, retained events, tracer).

    A fresh tracer per repeat (the previous one is freed before the next
    run starts), so each repetition pays the same cold-buffer cost and
    the minimum is comparable with ``_best_of`` on the disabled side.
    """
    best = float("inf")
    tracer = None
    for _ in range(repeats):
        tracer = Tracer(config=config)
        with tracing(tracer):
            t0 = time.perf_counter()
            _kernel()
            best = min(best, time.perf_counter() - t0)
    return best, len(tracer.events), tracer


def test_obs_overhead(benchmark):
    _kernel()  # warm calibration tables and trace builders

    disabled_s = _best_of(_kernel, repeats=3)
    # sampled first: the default-config tracer below retains millions of
    # records, and holding those while timing the sampled sweep would
    # charge the smaller run for the bigger run's memory pressure
    sampled_s, sampled_events, _ = _traced_sweep(
        TraceConfig.parse(sample=SAMPLE_SPEC)
    )
    enabled_s, events, tracer = _traced_sweep()

    per_check_s = _per_check_cost_s()
    per_event_emit_ns = 1e9 * (enabled_s - disabled_s) / events if events else 0.0
    disabled_overhead_pct = 100.0 * (events * per_check_s) / disabled_s
    enabled_overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s
    sampled_overhead_pct = 100.0 * (sampled_s - disabled_s) / disabled_s
    cpu_count = os.cpu_count() or 1

    benchmark.pedantic(_kernel, rounds=1, iterations=1)

    record = {
        "bench": "obs_overhead",
        "scale": scale_banner(),
        "fast": FAST,
        "n": MATRIX_N,
        "block_sizes": list(BLOCK_SIZES),
        "cpu_count": cpu_count,
        "categories": "all",
        "sample_rate": 1,
        "sweep_disabled_s": disabled_s,
        "sweep_enabled_s": enabled_s,
        "events": events,
        "events_per_sec": events / enabled_s if enabled_s else None,
        "per_check_ns": per_check_s * 1e9,
        "per_event_emit_ns": per_event_emit_ns,
        "disabled_overhead_pct": disabled_overhead_pct,
        "enabled_overhead_pct": enabled_overhead_pct,
        "target_disabled_pct": TARGET_DISABLED_PCT,
        "target_enabled_pct": TARGET_ENABLED_PCT,
        "sampled": {
            "sample": SAMPLE_SPEC,
            "sweep_s": sampled_s,
            "events": sampled_events,
            "overhead_pct": sampled_overhead_pct,
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    manifest = RunRecord.begin("bench:obs_overhead")
    manifest.note(
        params=loggp_dict(PARAMS), engine="standard",
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES), "fast": FAST},
        disabled_overhead_pct=disabled_overhead_pct,
        enabled_overhead_pct=enabled_overhead_pct,
    ).finish(tracer=tracer)
    # the meaningful wall time is the traced sweep, not begin()->finish()
    manifest.note(
        wall_s=enabled_s, event_count=events, events_per_sec=events / enabled_s
    ).write()

    print()
    print(f"observability overhead — {scale_banner()}")
    print(f"  sweep, tracing disabled : {disabled_s:8.3f} s")
    print(f"  sweep, tracing enabled  : {enabled_s:8.3f} s "
          f"({enabled_overhead_pct:+.1f}%, target <= {TARGET_ENABLED_PCT}%)")
    print(f"  sweep, sampled {SAMPLE_SPEC:>14s} : {sampled_s:8.3f} s "
          f"({sampled_overhead_pct:+.1f}%, {sampled_events} events)")
    print(f"  events recorded         : {events} "
          f"({events / enabled_s:,.0f} events/s)")
    print(f"  per-event emission      : {per_event_emit_ns:.1f} ns")
    print(f"  disabled-site check     : {per_check_s * 1e9:.1f} ns")
    print(f"  disabled overhead bound : {disabled_overhead_pct:.3f}% "
          f"(target < {TARGET_DISABLED_PCT}%)")
    print(f"  recorded -> {BENCH_JSON.name}")

    assert disabled_overhead_pct < TARGET_DISABLED_PCT
    if cpu_count >= 4:
        assert enabled_overhead_pct <= TARGET_ENABLED_PCT
    else:
        print(f"  note: {cpu_count} CPU(s) < 4 — enabled gate left to CI's "
              "check_throughput --obs-enabled")

"""Observability overhead guard.

The tracing hooks threaded through the simulators must be free when
nobody is listening: the ambient tracer defaults to a ``NullTracer`` and
every emission site either reads ``get_tracer().enabled`` once per run or
branches on a local boolean.  This bench quantifies that claim on the
Figure 7 prediction sweep:

* ``disabled_overhead_pct`` — an upper bound on what the disabled hooks
  cost, computed as (number of emission-site checks) x (measured cost of
  one ``get_tracer().enabled`` check) relative to the sweep time.  The
  check count is bounded by the events an *enabled* run emits, since
  every disabled site corresponds to at most one suppressed event.
  Target (asserted): **< 5%**.
* ``enabled_overhead_pct`` — the honest price of recording: the same
  sweep under a live tracer, relative to the disabled run.
* ``events_per_sec`` — simulator throughput with tracing on (the number
  CI tracks against ``benchmarks/baselines/obs_throughput.json``).

Results are printed and recorded into ``BENCH_obs.json`` at the repo
root — the first entry of the ``BENCH_*`` perf trajectory.
"""

import json
import time
from pathlib import Path

from _shared import BLOCK_SIZES, COST_MODEL, FAST, MATRIX_N, PARAMS, scale_banner

from repro.core import run_ge_point
from repro.obs import RunRecord, Tracer, get_tracer, loggp_dict, tracing

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
TARGET_PCT = 5.0


def _kernel():
    """The Fig. 7 kernel: prediction-only sweep over the block grid."""
    for b in BLOCK_SIZES:
        run_ge_point(
            MATRIX_N, b, "diagonal", PARAMS, COST_MODEL, with_measured=False
        )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _per_check_cost_s(checks: int = 1_000_000) -> float:
    """Measured cost of one disabled emission-site check."""
    t0 = time.perf_counter()
    for _ in range(checks):
        get_tracer().enabled  # noqa: B018 - the expression IS the workload
    return (time.perf_counter() - t0) / checks


def test_obs_disabled_overhead(benchmark):
    _kernel()  # warm calibration tables and trace builders

    disabled_s = _best_of(_kernel, repeats=3)

    tracer = Tracer()
    with tracing(tracer):
        enabled_s = _best_of(_kernel, repeats=1)
    events = len(tracer.events)

    per_check_s = _per_check_cost_s()
    disabled_overhead_pct = 100.0 * (events * per_check_s) / disabled_s
    enabled_overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    benchmark.pedantic(_kernel, rounds=1, iterations=1)

    record = {
        "bench": "obs_overhead",
        "scale": scale_banner(),
        "fast": FAST,
        "n": MATRIX_N,
        "block_sizes": list(BLOCK_SIZES),
        "sweep_disabled_s": disabled_s,
        "sweep_enabled_s": enabled_s,
        "events": events,
        "events_per_sec": events / enabled_s if enabled_s else None,
        "per_check_ns": per_check_s * 1e9,
        "disabled_overhead_pct": disabled_overhead_pct,
        "enabled_overhead_pct": enabled_overhead_pct,
        "target_disabled_pct": TARGET_PCT,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    manifest = RunRecord.begin("bench:obs_overhead")
    manifest.note(
        params=loggp_dict(PARAMS), engine="standard",
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES), "fast": FAST},
        disabled_overhead_pct=disabled_overhead_pct,
    ).finish()
    # the meaningful wall time is the traced sweep, not begin()->finish()
    manifest.note(
        wall_s=enabled_s, event_count=events, events_per_sec=events / enabled_s
    ).write()

    print()
    print(f"observability overhead — {scale_banner()}")
    print(f"  sweep, tracing disabled : {disabled_s:8.3f} s")
    print(f"  sweep, tracing enabled  : {enabled_s:8.3f} s "
          f"({enabled_overhead_pct:+.1f}%)")
    print(f"  events recorded         : {events} "
          f"({events / enabled_s:,.0f} events/s)")
    print(f"  disabled-site check     : {per_check_s * 1e9:.1f} ns")
    print(f"  disabled overhead bound : {disabled_overhead_pct:.3f}% "
          f"(target < {TARGET_PCT}%)")
    print(f"  recorded -> {BENCH_JSON.name}")

    assert disabled_overhead_pct < TARGET_PCT

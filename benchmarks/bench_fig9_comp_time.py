"""Figure 9 — computation time, per layout.

The paper: "For the computation running times, the simulation predicts
values that are very close to the measured ones.  Differences are
introduced here by the overhead of iterating through all the blocks each
processor is assigned to ... For small block sizes, each processor is
assigned a larger number of blocks, so that the overhead ... will be
greater."

Asserted here: predicted computation time is within 25% of measured at
every point, measured >= predicted (up to timing noise), and the
under-prediction gap at the smallest block size exceeds the gap at the
largest one.

The benchmark times the computation-phase pricing of a whole GE trace
(cost-model lookups over every basic-op invocation).
"""

from _shared import BLOCK_SIZES, COST_MODEL, MATRIX_N, PARAMS, emit, rows_for, scale_banner

from repro.analysis import format_figure, relative_gap
from repro.apps import GEConfig, build_ge_trace
from repro.core import ProgramSimulator
from repro.layouts import DiagonalLayout


def test_fig9_comp_time(benchmark):
    # benchmark kernel: price all computation phases of a mid-size trace
    b = 60 if MATRIX_N % 60 == 0 else max(BLOCK_SIZES)
    trace = build_ge_trace(GEConfig(MATRIX_N, b, DiagonalLayout(MATRIX_N // b, PARAMS.P)))
    sim = ProgramSimulator(PARAMS, COST_MODEL)

    def price_comp():
        return sum(
            sum(COST_MODEL.cost(w.op, w.b) for ops in step.work.values() for w in ops)
            for step in trace.steps
        )

    benchmark(price_comp)
    del sim

    sections = ["Figure 9 — computation time vs block size", scale_banner()]
    for layout_name in ("diagonal", "stripped"):
        rows = rows_for(layout_name)
        measured = {r.b: r.measured.comp_us for r in rows}
        simulated = {r.b: r.pred_standard.comp_us for r in rows}
        sections += [
            "",
            format_figure(
                f"{layout_name} mapping", {"simulated": simulated, "measured": measured}
            ),
        ]

        gaps = {}
        for bb in BLOCK_SIZES:
            gaps[bb] = relative_gap(simulated[bb], measured[bb])
            assert abs(gaps[bb]) < 0.25, (layout_name, bb, gaps[bb])
            assert measured[bb] >= simulated[bb] * 0.97
        assert gaps[min(BLOCK_SIZES)] > gaps[max(BLOCK_SIZES)] - 0.02, (
            "under-prediction must be worst for small blocks (iteration overhead)"
        )
        sections += [
            f"{layout_name}: under-prediction {100 * gaps[min(BLOCK_SIZES)]:.1f}% at "
            f"b={min(BLOCK_SIZES)} shrinking to {100 * gaps[max(BLOCK_SIZES)]:.1f}% at "
            f"b={max(BLOCK_SIZES)} (paper: same trend, caused by per-block iteration)",
        ]
    emit("fig9_comp_time", "\n".join(sections))

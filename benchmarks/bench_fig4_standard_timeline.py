"""Figure 4 — send/receive sequence of the standard algorithm.

Runs the Figure 2 algorithm on the sample pattern with the Meiko-CS-2
parameters and regenerates the paper's timeline figure (as ASCII), the
per-processor finish times, and the properties the paper points out:

* all three scheduling conditions hold (gaps, ASAP sends, receive
  priority) — enforced by ``StepTimeline.validate``;
* the double-receiver processor handles both receives before its second
  send (receive priority in action);
* one processor terminates the step last, defining the completion time.

The benchmark times one full run of the standard simulation algorithm.
"""

from _shared import PARAMS, emit, scale_banner

from repro.analysis import describe_sequence, render_timeline
from repro.apps import sample_pattern
from repro.core import OpKind, simulate_standard


def test_fig4_standard_timeline(benchmark):
    pattern = sample_pattern()
    result = benchmark(lambda: simulate_standard(PARAMS, pattern, seed=0))
    timeline = result.timeline
    timeline.validate(pattern.messages)

    # the paper's receive-priority narrative: some processor with both
    # receives and multiple sends performs a receive *between* its sends —
    # a pending send postponed in favour of an arrived message.  (Whether
    # one or both receives land before the 2nd send depends on the exact
    # o/g/G reconstruction; the priority behaviour itself is the claim.)
    preempted = False
    for p in timeline.participants():
        ops = timeline.events_of(p)
        sends = [e for e in ops if e.kind is OpKind.SEND]
        if len(sends) < 2:
            continue
        if any(
            e.kind is OpKind.RECV and sends[0].end <= e.start and e.end <= sends[-1].start
            for e in ops
        ):
            preempted = True
    assert preempted, "a receive must pre-empt a pending send somewhere"

    finishes = timeline.per_proc_finish()
    last = max(finishes, key=finishes.get)
    text = "\n".join(
        [
            "Figure 4 — standard algorithm send/receive sequence",
            scale_banner(),
            "",
            render_timeline(timeline, width=100),
            "",
            describe_sequence(timeline),
            "",
            f"P{last} terminates the communication step last, at "
            f"{timeline.completion_time:.2f} us "
            "(paper: ~70-80 us on the real CS-2 parameters; absolute values "
            "depend on the OCR-reconstructed o/g/G — see DESIGN.md).",
        ]
    )
    emit("fig4_standard_timeline", text)

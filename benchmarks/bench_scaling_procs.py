"""Extension — predicted scaling behaviour across processor counts.

Paper introduction: "The prediction of running times is also useful for
analyzing the scaling behavior of parallel programs."  This bench fixes
the matrix and block size at the diagonal mapping's optimum region and
sweeps the processor count, reporting speedup, efficiency and the
Karp-Flatt serial-fraction estimate.

Asserted: speedup grows with P but sub-linearly, and efficiency erodes
to below 50% at large P.  The Karp-Flatt serial-fraction estimate is
reported per point; for this wavefront its shape is informative rather
than monotone (per-processor communication shrinks with P while pipeline
bubbles grow with it).

The benchmark times one prediction at the largest processor count.
"""

from _shared import COST_MODEL, MATRIX_N, PARAMS, emit, scale_banner

from repro.analysis import format_table, karp_flatt, scaling_study
from repro.apps import GEConfig, build_ge_trace
from repro.core import ProgramSimulator
from repro.layouts import DiagonalLayout

BLOCK = 48
PROC_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def predict(P: int) -> float:
    layout = DiagonalLayout(MATRIX_N // BLOCK, P)
    trace = build_ge_trace(GEConfig(MATRIX_N, BLOCK, layout))
    sim = ProgramSimulator(PARAMS.with_(P=P), COST_MODEL, mode="standard")
    return sim.run(trace).total_us


def test_scaling_procs(benchmark):
    points = scaling_study(predict, PROC_COUNTS)
    base = points[0]
    rows = []
    for pt in points:
        row = {
            "P": pt.procs,
            "total_s": pt.total_us / 1e6,
            "speedup": pt.speedup,
            "efficiency": pt.efficiency,
        }
        if pt.procs > base.procs:
            row["karp_flatt"] = karp_flatt(pt, base)
        rows.append(row)

    speedups = {pt.procs: pt.speedup for pt in points}
    effs = {pt.procs: pt.efficiency for pt in points}
    assert speedups[8] > speedups[2] > 1.0, "speedup must grow with P"
    assert speedups[64] < 64, "and stay sub-linear"
    assert effs[64] < effs[2], "efficiency must erode as P grows"
    assert any(pt.efficiency < 0.5 for pt in points), "efficiency eventually halves"

    benchmark.pedantic(lambda: predict(PROC_COUNTS[-1]), rounds=3, iterations=1)

    text = "\n".join(
        [
            "Extension — predicted GE scaling behaviour vs processor count",
            scale_banner(),
            "",
            format_table(
                rows,
                ["P", "total_s", "speedup", "efficiency", "karp_flatt"],
                title=f"{MATRIX_N}x{MATRIX_N} GE, b={BLOCK}, diagonal mapping "
                "(LogGP standard prediction)",
                floatfmt="{:.3f}",
            ),
            "",
            "the rising Karp-Flatt column identifies the non-scalable part as "
            "communication overhead growing with the machine — exactly what a "
            "designer would use the paper's tool to discover before porting.",
        ]
    )
    emit("scaling_procs", text)

"""Combined kernel + executor wall-clock of the Figure 7 sweep.

The headline workload — the full Figure 7 GE sweep (every block size ×
both layouts, predictions *and* the emulated "measured" run), cold
cache, no experiment store — run three ways:

* ``reference_s``   — ``run_sweep(..., workers=1)`` with the fast path
  **off**: the seed engine, the bit-identity anchor everything else is
  judged against.
* ``serial_fast_s`` — ``executor="serial"`` with the fast path on: the
  vectorized batch kernel, no pool.
* ``auto_s``        — ``executor="auto"`` with the fast path on: the
  self-tuning executor probes one point, estimates the grid, measures
  spawn overhead and picks its strategy (recorded in ``decision``).

Gates:

* ``identical``         — all three produce the same ``results_sha256``.
  **The hard gate**: any drift fails the bench on every host.
* ``combined_speedup``  — ``reference_s / auto_s``.  Target 10× at
  paper scale, but the pool's makespan is *critical-path bound*: the
  heaviest point (b=10, ≈ 23% of the grid's :func:`point_weight`) runs
  on one worker start-to-finish, so no CPU count can push ``auto_s``
  below ``serial_fast_s × heaviest_share``.  The bench computes that
  bound (``attainable_speedup``) from the measured serial time, the
  analytic weight share, and the CPU count, and hard-gates at
  ``min(target, 0.75 × attainable)`` — honest on every host, while
  recording how far the host physically allows.  Gated only at paper
  scale on ≥ 4 CPUs; at reduced ``REPRO_FAST`` scale (cheap points
  shrink the kernel's share) the numbers are recorded but not asserted.
* ``serial_regression`` — on a 1-CPU host auto must not lose to forced
  serial by more than 5% (the 0.87x regression this executor exists to
  prevent: auto resolves to serial there, so the two runs share a code
  path).

Results land in ``BENCH_sweep.json`` at the repo root (CI regenerates
and uploads it as an artifact).  Run standalone with
``python benchmarks/bench_sweep.py`` or via
``pytest benchmarks/bench_sweep.py``.
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _shared import (  # noqa: E402
    BLOCK_SIZES,
    COST_MODEL,
    FAST,
    LAYOUTS,
    MATRIX_N,
    PARAMS,
    scale_banner,
)

from repro.kernel import clear_all_caches, fast_path  # noqa: E402
from repro.kernel.memo import point_weight  # noqa: E402
from repro.obs import RunRecord, loggp_dict  # noqa: E402
from repro.sweep import expand_grid, run_sweep  # noqa: E402

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
TARGET_SPEEDUP = 10.0
SERIAL_SLACK = 1.05


def _timed_sweep(grid, fast: bool, **kwargs):
    clear_all_caches()
    with fast_path(fast):
        t0 = time.perf_counter()
        result = run_sweep(grid, PARAMS, COST_MODEL, store=None, **kwargs)
        elapsed = time.perf_counter() - t0
    return result, elapsed


def run_bench() -> dict:
    grid = expand_grid(MATRIX_N, BLOCK_SIZES, LAYOUTS, with_measured=True)
    cpus = os.cpu_count() or 1

    reference, reference_s = _timed_sweep(grid, fast=False, workers=1)
    serial_fast, serial_fast_s = _timed_sweep(grid, fast=True, executor="serial")
    auto, auto_s = _timed_sweep(grid, fast=True, executor="auto", workers=None)

    ref_digest = reference.digest()
    identical = (
        serial_fast.digest() == ref_digest and auto.digest() == ref_digest
    )
    combined = reference_s / auto_s if auto_s else float("inf")

    # Critical-path bound on the pool: the heaviest point runs on one
    # worker start-to-finish, so the makespan can't drop below the larger
    # of (serial work / cpus) and (heaviest point's share of serial work).
    weights = [point_weight(p.n, p.b, p.with_measured) for p in grid]
    heaviest_share = max(weights) / sum(weights) if weights else 0.0
    makespan_floor_s = max(
        serial_fast_s / cpus, serial_fast_s * heaviest_share
    )
    attainable = (
        reference_s / makespan_floor_s if makespan_floor_s else float("inf")
    )
    effective_target = min(TARGET_SPEEDUP, 0.75 * attainable)

    record = {
        "bench": "sweep",
        "scale": scale_banner(),
        "fast": FAST,
        "n": MATRIX_N,
        "block_sizes": list(BLOCK_SIZES),
        "layouts": list(LAYOUTS),
        "points": len(grid),
        "cpu_count": cpus,
        "reference_s": reference_s,
        "serial_fast_s": serial_fast_s,
        "auto_s": auto_s,
        "kernel_speedup": reference_s / serial_fast_s if serial_fast_s else float("inf"),
        "executor_speedup": serial_fast_s / auto_s if auto_s else float("inf"),
        "combined_speedup": combined,
        "target_speedup": TARGET_SPEEDUP,
        "heaviest_point_share": heaviest_share,
        "makespan_floor_s": makespan_floor_s,
        "attainable_speedup": attainable,
        "effective_target": effective_target,
        "speedup_gated": cpus >= 4 and not FAST,
        "serial_slack": SERIAL_SLACK,
        "serial_regression_gated": cpus == 1,
        "decision": auto.stats.decision,
        "identical": identical,
        "results_sha256": ref_digest,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    manifest = RunRecord.begin("bench:sweep")
    manifest.note(
        params=loggp_dict(PARAMS), engine="sweep",
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES),
                  "layouts": list(LAYOUTS), "fast": FAST},
        **{k: record[k] for k in
           ("points", "cpu_count", "reference_s", "serial_fast_s", "auto_s",
            "combined_speedup", "decision", "identical", "results_sha256")},
    ).finish().write()

    print()
    print(f"sweep engine — {scale_banner()}")
    print(f"  grid points                 : {len(grid)}")
    print(f"  reference (seed engine)     : {reference_s:8.3f} s")
    print(f"  serial + batch kernel       : {serial_fast_s:8.3f} s "
          f"({record['kernel_speedup']:.2f}x)")
    print(f"  auto executor               : {auto_s:8.3f} s "
          f"-> {auto.stats.executor} x{auto.stats.workers}")
    print(f"  combined speedup            : {combined:.2f}x "
          f"(target {TARGET_SPEEDUP}x; host bound {attainable:.2f}x, "
          f"gate >= {effective_target:.2f}x, {cpus} CPUs"
          f"{'' if record['speedup_gated'] else ' — not gated'})")
    print(f"  all digests == reference    : {identical}")
    print(f"  recorded -> {BENCH_JSON.name}")
    return record


def test_sweep_combined_speedup():
    record = run_bench()
    assert record["identical"], "fast/auto sweep drifted from the seed engine"
    if record["speedup_gated"]:
        assert record["combined_speedup"] >= record["effective_target"], (
            f"combined speedup {record['combined_speedup']:.2f}x below "
            f"gate {record['effective_target']:.2f}x "
            f"(host bound {record['attainable_speedup']:.2f}x, "
            f"target {TARGET_SPEEDUP}x) on {record['cpu_count']} CPUs"
        )
    if record["serial_regression_gated"]:
        assert record["auto_s"] <= record["serial_fast_s"] * SERIAL_SLACK, (
            f"auto {record['auto_s']:.2f}s is more than "
            f"{SERIAL_SLACK - 1:.0%} slower than serial "
            f"{record['serial_fast_s']:.2f}s on a 1-CPU host"
        )


if __name__ == "__main__":
    rec = run_bench()
    if not rec["identical"]:
        sys.exit("FAIL: fast/auto sweep results differ from the seed engine")
    if rec["speedup_gated"] and rec["combined_speedup"] < rec["effective_target"]:
        sys.exit(
            f"FAIL: combined speedup {rec['combined_speedup']:.2f}x below "
            f"gate {rec['effective_target']:.2f}x "
            f"(host bound {rec['attainable_speedup']:.2f}x, "
            f"target {TARGET_SPEEDUP}x)"
        )
    if rec["serial_regression_gated"] and (
        rec["auto_s"] > rec["serial_fast_s"] * SERIAL_SLACK
    ):
        sys.exit(
            f"FAIL: auto executor {rec['auto_s']:.2f}s regressed more than "
            f"{SERIAL_SLACK - 1:.0%} vs serial {rec['serial_fast_s']:.2f}s "
            "on a 1-CPU host"
        )

"""Serial vs parallel wall-clock of the Figure 7 sweep.

The sweep engine (:mod:`repro.sweep`) exists to make paper-scale grid
studies as fast as the hardware allows; this bench quantifies that on
the headline workload — the full Figure 7 GE sweep (every block size ×
both layouts, predictions *and* the emulated "measured" run), cold
cache (no experiment store attached):

* ``serial_s``    — ``run_sweep(..., workers=1)``, the in-process
  reference engine;
* ``parallel_s``  — ``run_sweep(..., workers=4)`` (override with
  ``REPRO_SWEEP_WORKERS``);
* ``identical``   — whether the two engines produced bit-identical
  summaries on every point.  **This is the hard gate**: the bench fails
  if parallel results drift from serial ones by any amount.
* ``speedup``     — serial / parallel.  Target ≥ 2× with 4 workers;
  asserted only on hosts with ≥ 4 CPUs, because process parallelism
  cannot speed up a CPU-bound sweep on fewer cores (``cpu_count`` is
  recorded so the number can be judged in context).

Results land in ``BENCH_sweep.json`` at the repo root (CI regenerates
and uploads it as an artifact).  Run standalone with
``python benchmarks/bench_sweep.py`` or via
``pytest benchmarks/bench_sweep.py``.
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _shared import (  # noqa: E402
    BLOCK_SIZES,
    COST_MODEL,
    FAST,
    LAYOUTS,
    MATRIX_N,
    PARAMS,
    scale_banner,
)

from repro.obs import RunRecord, loggp_dict  # noqa: E402
from repro.sweep import expand_grid, run_sweep  # noqa: E402

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "4"))
TARGET_SPEEDUP = 2.0


def _timed_sweep(grid, workers: int):
    t0 = time.perf_counter()
    result = run_sweep(grid, PARAMS, COST_MODEL, workers=workers, store=None)
    return result, time.perf_counter() - t0


def run_bench() -> dict:
    grid = expand_grid(MATRIX_N, BLOCK_SIZES, LAYOUTS, with_measured=True)
    cpus = os.cpu_count() or 1

    serial, serial_s = _timed_sweep(grid, workers=1)
    parallel, parallel_s = _timed_sweep(grid, workers=WORKERS)

    identical = serial.summaries == parallel.summaries
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    record = {
        "bench": "sweep",
        "scale": scale_banner(),
        "fast": FAST,
        "n": MATRIX_N,
        "block_sizes": list(BLOCK_SIZES),
        "layouts": list(LAYOUTS),
        "points": len(grid),
        "cpu_count": cpus,
        "workers": WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_gated": cpus >= 4,
        "identical": identical,
        "results_sha256": parallel.digest(),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    manifest = RunRecord.begin("bench:sweep")
    manifest.note(
        params=loggp_dict(PARAMS), engine="sweep",
        workload={"n": MATRIX_N, "block_sizes": list(BLOCK_SIZES),
                  "layouts": list(LAYOUTS), "fast": FAST},
        **{k: record[k] for k in
           ("points", "cpu_count", "workers", "serial_s", "parallel_s",
            "speedup", "identical", "results_sha256")},
    ).finish().write()

    print()
    print(f"sweep engine — {scale_banner()}")
    print(f"  grid points               : {len(grid)}")
    print(f"  serial   (workers=1)      : {serial_s:8.3f} s")
    print(f"  parallel (workers={WORKERS})      : {parallel_s:8.3f} s")
    print(f"  speedup                   : {speedup:.2f}x "
          f"(target >= {TARGET_SPEEDUP}x, {cpus} CPUs"
          f"{'' if cpus >= 4 else ' — below 4, target not gated'})")
    print(f"  parallel == serial        : {identical}")
    print(f"  recorded -> {BENCH_JSON.name}")
    return record


def test_sweep_parallel_speedup():
    record = run_bench()
    assert record["identical"], "parallel sweep drifted from serial results"
    if record["speedup_gated"]:
        assert record["speedup"] >= TARGET_SPEEDUP, (
            f"speedup {record['speedup']:.2f}x below {TARGET_SPEEDUP}x "
            f"with {record['workers']} workers on {record['cpu_count']} CPUs"
        )


if __name__ == "__main__":
    rec = run_bench()
    if not rec["identical"]:
        sys.exit("FAIL: parallel sweep results differ from serial results")
    if rec["speedup_gated"] and rec["speedup"] < TARGET_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {rec['speedup']:.2f}x below target "
            f"{TARGET_SPEEDUP}x with {rec['workers']} workers"
        )

"""Figure 3 — the sample communication pattern.

Reproduces the paper's 10-processor GE-diagonal pattern (reconstructed;
see DESIGN.md) and reports its structure: the directed edges, per-
processor degrees, and the properties the prose relies on (DAG, several
wavefront diagonals, uniform 1160-byte messages).  The benchmark times
pattern construction + validation + cycle analysis.
"""

from _shared import emit, scale_banner

from repro.apps import SAMPLE_MESSAGE_BYTES, SAMPLE_PATTERN_EDGES, sample_pattern
from repro.analysis import format_table


def build_and_analyse():
    pat = sample_pattern()
    pat.validate()
    return pat, pat.has_cycle()


def test_fig3_sample_pattern(benchmark):
    pat, cyclic = benchmark(build_and_analyse)

    assert pat.num_procs == 10
    assert len(pat) == len(SAMPLE_PATTERN_EDGES) == 14
    assert not cyclic, "the sample pattern must be a DAG (paper section 4)"
    assert all(m.size == SAMPLE_MESSAGE_BYTES for m in pat)
    # one processor receives two messages and sends two (the paper's
    # receive-priority narrative needs such a node)
    assert any(pat.in_degree(p) == 2 and pat.out_degree(p) == 2 for p in range(10))

    rows = [
        {
            "proc": f"P{p}",
            "sends": float(pat.out_degree(p)),
            "receives": float(pat.in_degree(p)),
        }
        for p in range(10)
    ]
    table = format_table(
        rows, ["proc", "sends", "receives"],
        title=(
            "Figure 3 — sample communication pattern "
            f"(uniform {SAMPLE_MESSAGE_BYTES}-byte messages)\n"
            f"edges: {list(SAMPLE_PATTERN_EDGES)}\n" + scale_banner()
        ),
        floatfmt="{:.0f}",
    )
    emit("fig3_sample_pattern", table)

#!/usr/bin/env python
"""Cannon's matrix multiplication: the paper's other in-class algorithm.

Section 2 of the paper names Cannon's algorithm as a representative of
the restricted class (systolic, oblivious, alternating comp/comm).  This
example:

1. verifies the numerical executor against NumPy,
2. predicts the running time for several processor-grid sizes, and
3. shows the computation/communication trade-off as the grid grows
   (more processors = smaller blocks = less compute per node but more
   messages).

Run:  python examples/cannon_matmul.py [n]
"""

import sys

import numpy as np

from repro import MEIKO_CS2, CalibratedCostModel, CannonConfig, build_cannon_trace
from repro.analysis import format_table
from repro.apps import execute_cannon
from repro.core import ProgramSimulator
from repro.core.units import us_to_s


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 480

    # 1. numerical check
    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((48, 48)), rng.standard_normal((48, 48))
    assert np.allclose(execute_cannon(a, b, 16), a @ b)
    print("numerical check: execute_cannon(a, b, 16) == a @ b   [ok]\n")

    # 2-3. prediction across grid sizes
    cost_model = CalibratedCostModel()
    rows = []
    for q in (1, 2, 4, 8):
        num_procs = q * q
        if n % q:
            continue
        cfg = CannonConfig(n=n, num_procs=num_procs)
        trace = build_cannon_trace(cfg)
        params = MEIKO_CS2.with_(P=num_procs)
        report = ProgramSimulator(params, cost_model, mode="standard").run(trace)
        rows.append(
            {
                "grid": f"{q}x{q}",
                "block": cfg.b,
                "total_s": us_to_s(report.total_us),
                "comp_s": us_to_s(report.comp_us),
                "comm_s": us_to_s(report.comm_us),
                "messages": float(trace.total_messages(include_local=False)),
            }
        )
    print(format_table(rows, ["grid", "block", "total_s", "comp_s", "comm_s", "messages"],
                       title=f"Cannon's algorithm, {n}x{n} matrices (LogGP prediction)"))
    print()
    best = min(rows, key=lambda r: r["total_s"])
    print(f"best grid for n={n}: {best['grid']} (predicted {best['total_s']:.4f} s)")
    print("note the classic trade-off: compute shrinks ~q^2 per node while "
          "rotation traffic grows with q.")


if __name__ == "__main__":
    main()

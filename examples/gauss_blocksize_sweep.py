#!/usr/bin/env python
"""Find the optimal block size for the blocked Gaussian Elimination.

The paper's headline use case: sweep the block size, predict the running
time of each configuration with the LogGP simulation, and pick the
optimum — then check against the emulated machine what running that
choice would really cost.  Also demonstrates the automatic optimum search
(the paper's future-work item) and how many simulations each heuristic
needs.

Run:  python examples/gauss_blocksize_sweep.py [n]
      (default n=480; n=960 reproduces the paper's scale, slower)
"""

import sys

from repro import MEIKO_CS2, CalibratedCostModel, run_ge_sweep
from repro.analysis import format_figure, series_from_rows
from repro.core import exhaustive_search, local_descent, ternary_search
from repro.core.predictor import run_ge_point
from repro.core.units import us_to_s


def divisor_block_sizes(n: int) -> list[int]:
    """Block sizes in the paper's range that divide n."""
    return [b for b in (10, 12, 15, 16, 20, 24, 30, 32, 40, 48, 60, 64, 80, 96, 120, 160) if n % b == 0]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 480
    layout = "diagonal"
    block_sizes = divisor_block_sizes(n)
    cost_model = CalibratedCostModel()
    print(f"sweeping {n}x{n} GE on {MEIKO_CS2.describe()}, layout={layout}")
    print(f"candidate block sizes: {block_sizes}\n")

    rows = run_ge_sweep(
        n,
        block_sizes,
        [layout],
        MEIKO_CS2,
        cost_model,
        with_measured=True,
        progress=lambda lay, b: print(f"  simulating b={b} ..."),
    )
    series = series_from_rows(rows, "b", lambda r: r.series())
    print()
    print(format_figure(f"Total running time, {layout} layout (n={n})", series))
    print()

    # --- automatic optimum search (paper section 7) -----------------------
    cache: dict[int, float] = {
        r.b: r.pred_standard.total_us for r in rows
    }
    measured = {r.b: r.measured.total_us for r in rows}

    def evaluate(b: int) -> float:
        return cache[b]

    print("automatic optimum search over the predicted curve:")
    for name, search in (
        ("exhaustive", exhaustive_search),
        ("local descent", local_descent),
        ("ternary", ternary_search),
    ):
        result = search(evaluate, block_sizes)
        regret = measured[result.best] / min(measured.values())
        print(
            f"  {name:14s} -> b={result.best:4d} "
            f"({result.evaluations:2d} evaluations, "
            f"real cost {us_to_s(measured[result.best]):.4f} s, "
            f"{(regret - 1) * 100:.1f}% above the true measured minimum)"
        )


if __name__ == "__main__":
    main()

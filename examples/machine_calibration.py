#!/usr/bin/env python
"""Calibrate a machine: fit LogGP parameters, then ask what to optimise.

The workflow a practitioner runs before using the paper's predictor on a
new machine:

1. **fit** — run the micro-benchmark suite (single sends, bursts, a
   round trip) against the machine — here, the jittered emulated network
   — and invert the closed forms to recover L, o, g, G;
2. **validate** — check the fitted machine predicts an independent
   workload like the true one;
3. **ask questions** — sensitivity analysis: for *your* workload at
   *your* block size, which parameter would a hardware upgrade most
   usefully improve?

Run:  python examples/machine_calibration.py
"""

from repro import MEIKO_CS2, CalibratedCostModel, GEConfig, ProgramSimulator, build_ge_trace
from repro.analysis import format_table, parameter_elasticities
from repro.apps import sample_pattern
from repro.core import assess_fit, emulator_runner, fit_loggp, simulate_standard
from repro.layouts import DiagonalLayout
from repro.machine import JitteredNetwork


def main() -> None:
    truth = MEIKO_CS2

    # --- 1. fit ------------------------------------------------------------
    print("fitting LogGP parameters from micro-benchmarks (jittered network)...")
    net = JitteredNetwork(params=truth, seed=11)
    fitted = fit_loggp(
        emulator_runner(truth, latency_of=net.latency_of),
        num_procs=truth.P,
        repeats=15,
    )
    rows = [
        {
            "parameter": name,
            "truth": getattr(truth, name),
            "fitted": getattr(fitted, name),
            "err_%": 100 * assess_fit(fitted, truth)[name],
        }
        for name in ("L", "o", "g", "G")
    ]
    print(format_table(rows, ["parameter", "truth", "fitted", "err_%"],
                       floatfmt="{:.4f}"))
    print()

    # --- 2. validate ---------------------------------------------------------
    pat = sample_pattern()
    t_true = simulate_standard(truth, pat).completion_time
    t_fit = simulate_standard(fitted.with_(P=truth.P), pat).completion_time
    print(
        f"validation on the Figure 3 sample pattern: truth {t_true:.2f} us, "
        f"fitted machine {t_fit:.2f} us ({100 * abs(t_fit - t_true) / t_true:.2f}% off)\n"
    )

    # --- 3. sensitivity -------------------------------------------------------
    cm = CalibratedCostModel()
    print("which parameter matters for GE communication time? (elasticities)")
    rows = []
    for b in (10, 24, 60, 120):
        trace = build_ge_trace(GEConfig(240, b, DiagonalLayout(240 // b, truth.P)))
        res = parameter_elasticities(
            lambda p: ProgramSimulator(p, cm).run(trace).comm_us, truth
        )
        rows.append({"b": b, **{k: v for k, v in sorted(res.elasticity.items())}})
    print(format_table(rows, ["b", "G", "L", "g", "o"], floatfmt="{:+.3f}"))
    print(
        "\nreading: at small blocks the per-message gap g competes with "
        "bandwidth G; by b=24 the transfer is bandwidth-bound (buy G); at "
        "large blocks no network parameter helps much — the time is "
        "pipeline-bound, change the block size instead."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Irregular communication patterns and the active-message substrate.

The paper's algorithms were designed "to deal with both irregular
communication and irregular mapping patterns" — cases where no closed
formula exists.  This example:

1. builds a deliberately irregular pattern (random sizes, random fan-out),
   simulates it with all three engines (standard / worst-case / causal)
   and renders the timelines;
2. runs the same traffic through the Split-C-style active-message runtime
   (handlers fire on receive, receives pre-empt pending sends), showing
   the substrate the Figure 2 algorithm models.

Run:  python examples/irregular_pattern.py [seed]
"""

import sys

from repro import MEIKO_CS2, simulate_causal, simulate_standard, simulate_worstcase
from repro.analysis import describe_sequence, render_timeline
from repro.apps import random_pattern
from repro.machine import SplitCMachine


def simulation_demo(seed: int) -> None:
    pattern = random_pattern(8, 14, seed=seed, size_range=(200, 4000))
    print(f"irregular pattern ({pattern}), seed={seed}")
    print(f"machine: {MEIKO_CS2.describe()}\n")

    for name, sim in (
        ("standard (Fig. 2)", simulate_standard),
        ("worst case (§4.2)", simulate_worstcase),
        ("causal DES", simulate_causal),
    ):
        res = sim(MEIKO_CS2, pattern, seed=seed)
        res.timeline.validate(pattern.messages)
        print(f"{name:18s} completion {res.completion_time:9.2f} us")
    print()
    res = simulate_standard(MEIKO_CS2, pattern, seed=seed)
    print(render_timeline(res.timeline, width=100))
    print()


def active_message_demo() -> None:
    print("=" * 72)
    print("Split-C-style active messages: a 4-hop forwarding wave")
    print("=" * 72)
    log = []

    def program(machine: SplitCMachine) -> None:
        def forwarder(pid: int, nxt: int | None):
            def handler(src: int, payload):
                log.append(f"P{pid} got {payload!r} from P{src} at t={machine.env.now:.1f}us")
                if nxt is not None:
                    machine.port(pid).store(nxt, size=1160, payload=payload)
                machine.port(pid).finish()

            return handler

        machine.on_receive(1, forwarder(1, 3))
        machine.on_receive(3, forwarder(3, 5))
        machine.on_receive(5, forwarder(5, 7))
        machine.on_receive(7, forwarder(7, None))
        machine.port(0).store(1, size=1160, payload="pivot row")
        machine.port(0).finish()

    machine = SplitCMachine(MEIKO_CS2)
    timeline = machine.run(program)
    timeline.validate()
    for line in log:
        print(" ", line)
    print()
    print(describe_sequence(timeline))


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    simulation_demo(seed)
    active_message_demo()

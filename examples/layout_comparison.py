#!/usr/bin/env python
"""Compare data layouts for the blocked Gaussian Elimination.

The paper's second stated purpose: "to determine differences in running
times for different data layouts".  This compares the paper's two layouts
(row-stripped cyclic, diagonal) plus the extension layouts (column
cyclic, 2-D block cyclic) at several block sizes, with static layout
metrics alongside the simulated and emulated times.

Run:  python examples/layout_comparison.py [n]
"""

import sys

from repro import MEIKO_CS2, CalibratedCostModel, run_ge_point
from repro.analysis import format_table
from repro.core.units import us_to_s
from repro.layouts import LAYOUTS, adjacency_conflicts, load_imbalance


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 480
    block_sizes = [b for b in (20, 48, 96, 160) if n % b == 0]
    cost_model = CalibratedCostModel()
    print(f"{n}x{n} GE on {MEIKO_CS2.describe()}\n")

    # static layout metrics
    metric_rows = []
    for name, cls in sorted(LAYOUTS.items()):
        layout = cls(n // 48, MEIKO_CS2.P)
        metric_rows.append(
            {
                "layout": name,
                "load_imbalance": load_imbalance(layout),
                "adjacency_conflicts": float(adjacency_conflicts(layout)),
            }
        )
    print(format_table(metric_rows, ["layout", "load_imbalance", "adjacency_conflicts"],
                       title=f"static metrics (nb={n // 48} grid)"))
    print()

    rows = []
    for b in block_sizes:
        for name in sorted(LAYOUTS):
            point = run_ge_point(n, b, name, MEIKO_CS2, cost_model, with_measured=True)
            rows.append(
                {
                    "b": b,
                    "layout": name,
                    "predicted_s": us_to_s(point.pred_standard.total_us),
                    "measured_s": us_to_s(point.measured.total_us),
                    "comm_s": us_to_s(point.measured.comm_us),
                }
            )
    print(format_table(rows, ["b", "layout", "predicted_s", "measured_s", "comm_s"],
                       title="per-layout running times"))
    print()

    for b in block_sizes:
        here = [r for r in rows if r["b"] == b]
        best_pred = min(here, key=lambda r: r["predicted_s"])["layout"]
        best_meas = min(here, key=lambda r: r["measured_s"])["layout"]
        verdict = "agrees" if best_pred == best_meas else "DISAGREES"
        print(f"b={b:4d}: prediction picks {best_pred!r}, measurement picks {best_meas!r} ({verdict})")


if __name__ == "__main__":
    main()

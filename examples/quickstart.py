#!/usr/bin/env python
"""Quickstart: simulate a communication step and predict a program's runtime.

This walks the two levels of the library:

1. **Communication-step level** (paper Figures 3-5): take the paper's
   sample pattern, run the standard (Figure 2) and worst-case (§4.2)
   LogGP simulation algorithms, and render the send/receive sequences.
2. **Whole-program level** (paper Figures 7-9): build the blocked
   Gaussian Elimination trace for one configuration, predict its running
   time, and compare against the emulated Meiko CS-2 "measurement".

Run:  python examples/quickstart.py
"""

from repro import (
    MEIKO_CS2,
    CalibratedCostModel,
    GEConfig,
    MachineEmulator,
    RunningTimePredictor,
    build_ge_trace,
    sample_pattern,
    simulate_standard,
    simulate_worstcase,
)
from repro.analysis import render_timeline
from repro.core.units import us_to_s
from repro.layouts import DiagonalLayout


def communication_step_demo() -> None:
    print("=" * 72)
    print("1. Communication-step simulation (the paper's Figures 4 and 5)")
    print("=" * 72)
    pattern = sample_pattern()  # Figure 3: 10 processors, 1160-byte messages
    print(f"pattern: {pattern}")
    print(f"machine: {MEIKO_CS2.describe()}\n")

    std = simulate_standard(MEIKO_CS2, pattern, seed=0)
    print(f"standard algorithm   completes at {std.completion_time:8.2f} us")
    print(render_timeline(std.timeline, width=90))
    print()

    wc = simulate_worstcase(MEIKO_CS2, pattern, seed=0)
    print(f"worst-case algorithm completes at {wc.completion_time:8.2f} us")
    print(render_timeline(wc.timeline, width=90))
    print()
    ratio = wc.completion_time / std.completion_time
    print(f"overestimation factor: {ratio:.2f}x  (worst case bounds the standard)\n")


def whole_program_demo() -> None:
    print("=" * 72)
    print("2. Whole-program prediction vs emulated measurement (Figure 7)")
    print("=" * 72)
    n, b = 480, 48
    layout = DiagonalLayout(n // b, MEIKO_CS2.P)
    trace = build_ge_trace(GEConfig(n=n, b=b, layout=layout))
    print(f"app: {n}x{n} blocked Gaussian Elimination, b={b}, {layout!r}")
    print(f"trace: {trace}\n")

    cost_model = CalibratedCostModel()
    predictor = RunningTimePredictor(MEIKO_CS2, cost_model)
    pred_std, pred_wc = predictor.predict_both(trace)
    measured = MachineEmulator(MEIKO_CS2, cost_model, seed=0).run(trace)

    rows = [
        ("simulated (standard)", pred_std.total_us),
        ("simulated (worst case)", pred_wc.total_us),
        ("measured w/  caching", measured.total_us),
        ("measured w/o caching", measured.total_without_cache_us),
    ]
    for name, us in rows:
        print(f"  {name:24s} {us_to_s(us):8.4f} s")
    print()
    print(
        f"  breakdown (standard prediction): comp {us_to_s(pred_std.comp_us):.4f} s, "
        f"comm {us_to_s(pred_std.comm_us):.4f} s"
    )
    print(
        f"  breakdown (measured)           : comp {us_to_s(measured.comp_us):.4f} s, "
        f"comm {us_to_s(measured.comm_us):.4f} s, "
        f"cache section {us_to_s(measured.cache_us):.4f} s"
    )


if __name__ == "__main__":
    communication_step_demo()
    whole_program_demo()

#!/usr/bin/env python
"""Broadcast schedules under LogGP — regular patterns with closed forms.

The paper's reference [9] (Karp, Sahay, Santos, Schauser) derived optimal
broadcast under LogP analytically.  This example compares three broadcast
strategies on the reconstructed Meiko parameters:

* **linear** — the root sends to everyone itself (gap-bound),
* **binomial** — recruits forward in doubling rounds,
* **greedy optimal** — every informed processor keeps transmitting, each
  new copy aimed at the earliest-informable processor,

and shows how the machine parameters move the trade-off: a high-gap
machine punishes the linear broadcast hardest, a high-latency machine
compresses the gap between binomial and optimal.

Every number here is both a closed form and an executed schedule on the
Split-C active-message runtime — the example asserts they agree.

Run:  python examples/broadcast_study.py
"""

from repro import MEIKO_CS2
from repro.analysis import format_table
from repro.core import (
    binomial_broadcast_pattern,
    binomial_broadcast_time,
    linear_broadcast_time,
    optimal_broadcast_schedule,
    simulate_tree_broadcast,
)

SIZE = 1160


def study(params, label: str) -> None:
    print(f"--- {label}: {params.describe()} ---")
    rows = []
    for n in (4, 8, 16, 32):
        machine = params.with_(P=n)
        sched = optimal_broadcast_schedule(params, n, SIZE)
        executed = simulate_tree_broadcast(
            machine, binomial_broadcast_pattern(n, SIZE)
        ).completion_time
        assert abs(executed - binomial_broadcast_time(params, n, SIZE)) < 1e-6
        rows.append(
            {
                "P": n,
                "linear_us": linear_broadcast_time(params, n, SIZE),
                "binomial_us": binomial_broadcast_time(params, n, SIZE),
                "optimal_us": sched.completion_time,
                "distinct_senders": float(len({s for s, _, _ in sched.sends})),
            }
        )
    print(format_table(
        rows,
        ["P", "linear_us", "binomial_us", "optimal_us", "distinct_senders"],
        floatfmt="{:.1f}",
    ))
    print()


def main() -> None:
    study(MEIKO_CS2, "Meiko CS-2 (reconstructed)")
    study(MEIKO_CS2.with_(g=50.0, name="high-gap"), "high-gap machine")
    study(MEIKO_CS2.with_(L=100.0, name="high-latency"), "high-latency machine")
    print(
        "high gap -> the root is injection-bound, recruits matter most;\n"
        "high latency -> every tree level costs a full L, flattening the\n"
        "advantage of clever schedules.  All closed forms above were\n"
        "verified against executed active-message schedules."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Lost-cycles profile of a GE run + SVG timeline export.

Two diagnosis tools layered on the simulation:

* the **lost-cycles profile** (Crovella & LeBlanc's decomposition, the
  paper's reference [4]): where does every processor-microsecond go —
  compute, send, recv, waiting, or idling?
* **critical-path analysis** of a single communication step: which chain
  of operations pins the completion time, and how much slack everything
  else has.

Also writes ``fig4_sample.svg`` — the paper's Figure 4 as a vector
graphic — next to this script.

Run:  python examples/lost_cycles.py
"""

from pathlib import Path

from repro import MEIKO_CS2, CalibratedCostModel, GEConfig, build_ge_trace
from repro.analysis import critical_path, operation_slack, save_timeline_svg
from repro.apps import sample_pattern
from repro.core import simulate_standard
from repro.layouts import DiagonalLayout
from repro.machine import profile_program


def profile_demo() -> None:
    cm = CalibratedCostModel()
    for b in (12, 48, 120):
        trace = build_ge_trace(GEConfig(480, b, DiagonalLayout(480 // b, 8)))
        profile = profile_program(trace, MEIKO_CS2, cm)
        totals = profile.bucket_totals()
        grand = sum(totals.values())
        shares = ", ".join(f"{k} {100 * v / grand:4.1f}%" for k, v in totals.items())
        print(f"b={b:4d}: makespan {profile.makespan_us / 1e6:.3f}s  {shares}")
    print()
    trace = build_ge_trace(GEConfig(480, 48, DiagonalLayout(10, 8)))
    print(profile_program(trace, MEIKO_CS2, cm).describe())
    print()


def critical_path_demo() -> None:
    pattern = sample_pattern()
    result = simulate_standard(MEIKO_CS2, pattern)
    path = critical_path(result.timeline)
    print(path.describe())
    slack = operation_slack(result.timeline)
    loose = sum(1 for s in slack.values() if s > 1.0)
    print(
        f"\n{loose} of {len(slack)} operations have > 1 us of slack; "
        f"the path crosses processors {path.processors} over {path.wire_hops} hops."
    )
    out = Path(__file__).with_name("fig4_sample.svg")
    save_timeline_svg(result.timeline, out, title="Figure 4 — standard algorithm")
    print(f"wrote {out}")


if __name__ == "__main__":
    profile_demo()
    critical_path_demo()

#!/usr/bin/env python
"""Predicting a non-GE program: Jacobi stencil with its own op set.

The paper's framework is not Gaussian-Elimination-specific: any oblivious
program over equal-sized blocks with a finite basic-op set qualifies
(section 2).  This example defines the stencil's own basic operation
("jacobi", priced per strip height), predicts the sweep time across
processor counts, and checks strong-scaling behaviour: computation
scales down with P while halo exchange stays flat — so speedup saturates.

Run:  python examples/stencil_prediction.py [n] [iterations]
"""

import sys

import numpy as np

from repro import MEIKO_CS2, ProgramSimulator, StencilConfig, build_stencil_trace
from repro.analysis import format_table
from repro.apps import execute_jacobi, stencil_cost_table
from repro.core.units import us_to_ms


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 20

    # numerical sanity: relaxation actually smooths
    grid = np.zeros((32, 32))
    grid[0, :] = 1.0
    out = execute_jacobi(grid, iterations=50)
    assert out[1:-1, 1:-1].max() < 1.0 and out[1:-1, 1:-1].min() > 0.0
    print("numerical check: Jacobi relaxation smooths the interior   [ok]\n")

    rows = []
    base_total = None
    for procs in (1, 2, 4, 8, 16, 32):
        if n % procs:
            continue
        cfg = StencilConfig(n=n, num_procs=procs, iterations=iterations)
        cost_model = stencil_cost_table(n, [cfg.rows_per_proc])
        trace = build_stencil_trace(cfg)
        params = MEIKO_CS2.with_(P=procs)
        report = ProgramSimulator(params, cost_model).run(trace)
        if base_total is None:
            base_total = report.total_us
        rows.append(
            {
                "P": procs,
                "strip": cfg.rows_per_proc,
                "total_ms": us_to_ms(report.total_us),
                "comp_ms": us_to_ms(report.comp_us),
                "comm_ms": us_to_ms(report.comm_us),
                "speedup": base_total / report.total_us,
            }
        )
    print(format_table(
        rows,
        ["P", "strip", "total_ms", "comp_ms", "comm_ms", "speedup"],
        title=f"Jacobi stencil, {n}x{n} grid, {iterations} sweeps (LogGP prediction)",
    ))
    print(
        "\ncomputation shrinks ~1/P while halo time stays flat: the predicted "
        "speedup saturates exactly where the comm_ms column catches comp_ms."
    )


if __name__ == "__main__":
    main()

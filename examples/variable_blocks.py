#!/usr/bin/env python
"""Variable-sized blocks: one of the paper's future-work extensions.

Section 7: "Analyzing the program simulation ... for variable-sized
blocks are also subjects for future development."  The trace
representation here carries the block size per *operation*, so a program
whose blocks shrink toward the trailing corner — a common trick to keep
the GE wavefront load balanced as the active region shrinks — is directly
representable.

This example builds a toy two-phase program: a "coarse" phase on 64x64
blocks and a "fine" phase on 16x16 blocks, each with its own
communication, and predicts the effect of moving the phase boundary.

Run:  python examples/variable_blocks.py
"""

from repro import MEIKO_CS2, CalibratedCostModel, ProgramSimulator, TraceBuilder
from repro.analysis import format_table
from repro.core.units import us_to_ms

P = 8
COARSE_B, FINE_B = 64, 16
TOTAL_PHASES = 12


def build(phase_boundary: int):
    """``phase_boundary`` coarse phases, then fine phases, on a ring."""
    tb = TraceBuilder(num_procs=P)
    for phase in range(TOTAL_PHASES):
        b = COARSE_B if phase < phase_boundary else FINE_B
        # a coarse phase does one big op per proc; a fine phase does the
        # equivalent area in many small ops (16 small ops ~ 1 big one)
        ops = 1 if b == COARSE_B else (COARSE_B // FINE_B) ** 2
        for proc in range(P):
            for i in range(ops):
                tb.work(proc, "op4", b, block=(proc, i), iteration=phase)
        for proc in range(P):
            tb.message(proc, (proc + 1) % P, b * b * 8)
        tb.end_step(label=f"phase {phase} (b={b})")
    return tb.build(meta={"app": "variable-blocks"})


def main() -> None:
    cost_model = CalibratedCostModel()
    sim = ProgramSimulator(MEIKO_CS2, cost_model, mode="standard")
    rows = []
    for boundary in range(0, TOTAL_PHASES + 1, 2):
        report = sim.run(build(boundary))
        rows.append(
            {
                "coarse_phases": boundary,
                "fine_phases": TOTAL_PHASES - boundary,
                "total_ms": us_to_ms(report.total_us),
                "comp_ms": us_to_ms(report.comp_us),
                "comm_ms": us_to_ms(report.comm_us),
            }
        )
    print(format_table(
        rows,
        ["coarse_phases", "fine_phases", "total_ms", "comp_ms", "comm_ms"],
        title="variable-sized blocks: coarse 64x64 vs fine 16x16 phases",
    ))
    best = min(rows, key=lambda r: r["total_ms"])
    print(
        f"\nbest split: {best['coarse_phases']} coarse + {best['fine_phases']} fine phases "
        f"({best['total_ms']:.2f} ms) — small blocks pay per-op overhead, big "
        f"blocks pay per-byte wire time; the simulator prices both."
    )


if __name__ == "__main__":
    main()

"""Tests for the four GE basic operations (repro.blockops.ops)."""

import numpy as np
import pytest

from repro.blockops import (
    OP_NAMES,
    flop_count,
    op1_factor,
    op1_factor_ref,
    op2_row,
    op2_row_ref,
    op3_col,
    op3_col_ref,
    op4_update,
    op4_update_ref,
)


def dominant(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestOp1:
    def test_factors_multiply_back(self):
        a = dominant(12)
        f = op1_factor(a)
        assert np.allclose(f.lower @ f.upper, a)

    def test_lower_is_unit_lower_triangular(self):
        f = op1_factor(dominant(9))
        assert np.allclose(f.lower, np.tril(f.lower))
        assert np.allclose(np.diag(f.lower), 1.0)

    def test_upper_is_upper_triangular(self):
        f = op1_factor(dominant(9))
        assert np.allclose(f.upper, np.triu(f.upper))

    def test_inverses_are_inverses(self):
        f = op1_factor(dominant(10))
        eye = np.eye(10)
        assert np.allclose(f.lower @ f.lower_inv, eye)
        assert np.allclose(f.upper @ f.upper_inv, eye)

    def test_inverses_stay_triangular(self):
        f = op1_factor(dominant(8))
        assert np.allclose(f.lower_inv, np.tril(f.lower_inv))
        assert np.allclose(f.upper_inv, np.triu(f.upper_inv))

    def test_1x1_block(self):
        f = op1_factor(np.array([[4.0]]))
        assert f.upper[0, 0] == 4.0
        assert f.upper_inv[0, 0] == pytest.approx(0.25)

    def test_zero_pivot_raises(self):
        with pytest.raises(ZeroDivisionError):
            op1_factor(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            op1_factor(np.zeros((3, 4)))

    def test_input_not_mutated(self):
        a = dominant(6)
        copy = a.copy()
        op1_factor(a)
        assert np.array_equal(a, copy)

    def test_matches_scipy_lu_on_dominant_matrix(self):
        """Without pivoting on a diagonally dominant matrix, L/U must agree
        with scipy's pivoted LU whose permutation is identity-free only in
        value: we verify via reconstruction instead."""
        import scipy.linalg

        a = dominant(16, seed=3)
        f = op1_factor(a)
        p, l, u = scipy.linalg.lu(a)
        assert np.allclose(f.lower @ f.upper, p @ l @ u)


class TestOp234:
    def test_op2_is_left_multiplication(self):
        rng = np.random.default_rng(1)
        li = np.tril(rng.standard_normal((6, 6)), -1) + np.eye(6)
        b = rng.standard_normal((6, 6))
        assert np.allclose(op2_row(li, b), li @ b)

    def test_op3_is_right_multiplication(self):
        rng = np.random.default_rng(2)
        ui = np.triu(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        b = rng.standard_normal((6, 6))
        assert np.allclose(op3_col(b, ui), b @ ui)

    def test_op4_is_multiply_subtract(self):
        rng = np.random.default_rng(3)
        b, c, r = (rng.standard_normal((5, 5)) for _ in range(3))
        assert np.allclose(op4_update(b, c, r), b - c @ r)

    def test_op_pipeline_eliminates_block_column(self):
        """One full elimination iteration at block level zeroes the block
        below the pivot: Op3's output times the pivot's U gives back the
        original column block."""
        a_kk = dominant(8, seed=5)
        a_ik = np.random.default_rng(6).standard_normal((8, 8))
        f = op1_factor(a_kk)
        l_ik = op3_col(a_ik, f.upper_inv)
        assert np.allclose(l_ik @ f.upper, a_ik)


class TestReferencesAgree:
    """Pure-Python scalar references match the vectorised implementations."""

    def test_op1_ref(self):
        a = dominant(7, seed=9)
        fast, ref = op1_factor(a), op1_factor_ref(a)
        assert np.allclose(fast.lower, ref.lower)
        assert np.allclose(fast.upper, ref.upper)
        assert np.allclose(fast.lower_inv, ref.lower_inv)
        assert np.allclose(fast.upper_inv, ref.upper_inv)

    def test_op2_ref(self):
        rng = np.random.default_rng(10)
        li = np.tril(rng.standard_normal((5, 5)), -1) + np.eye(5)
        b = rng.standard_normal((5, 5))
        assert np.allclose(op2_row(li, b), op2_row_ref(li, b))

    def test_op3_ref(self):
        rng = np.random.default_rng(11)
        ui = np.triu(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        b = rng.standard_normal((5, 5))
        assert np.allclose(op3_col(b, ui), op3_col_ref(b, ui))

    def test_op4_ref(self):
        rng = np.random.default_rng(12)
        b, c, r = (rng.standard_normal((4, 4)) for _ in range(3))
        assert np.allclose(op4_update(b, c, r), op4_update_ref(b, c, r))


class TestFlopCounts:
    def test_known_values(self):
        assert flop_count("op1", 3) == pytest.approx(4 / 3 * 27)
        assert flop_count("op2", 3) == 27.0
        assert flop_count("op3", 3) == 27.0
        assert flop_count("op4", 3) == pytest.approx(2 * 27 + 9)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            flop_count("op5", 3)

    def test_all_named_ops_counted(self):
        for op in OP_NAMES:
            assert flop_count(op, 10) > 0

"""Tests for the discrete-event simulation kernel (repro.des.engine)."""

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_clock_starts_at_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_step_empty_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_run_until_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.run(until=42.0)
        assert env.now == 42.0


class TestTimeout:
    def test_timeout_fires_at_delay(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(3.5)
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [3.5]

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc(env):
            got.append((yield env.timeout(1.0, value="payload")))

        env.process(proc(env))
        env.run()
        assert got == ["payload"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeouts_execute_in_time_order(self):
        env = Environment()
        order = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc(env, "late", 5.0))
        env.process(proc(env, "early", 1.0))
        env.process(proc(env, "mid", 3.0))
        env.run()
        assert order == ["early", "mid", "late"]

    def test_equal_time_fifo_order(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abc":
            env.process(proc(env, name))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_succeed_delivers_value(self):
        env = Environment()
        ev = env.event()
        got = []

        def waiter(env):
            got.append((yield ev))

        env.process(waiter(env))
        ev.succeed(99)
        env.run()
        assert got == [99]

    def test_double_trigger_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_propagates_into_waiting_process(self):
        env = Environment()
        caught = []

        def waiter(env, ev):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        ev = env.event()
        env.process(waiter(env, ev))
        ev.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failure_escapes_run(self):
        env = Environment()
        env.event().fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_yield_already_processed_event_resumes_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed("early")
        times = []

        def late_waiter(env):
            yield env.timeout(5.0)
            value = yield ev  # processed long ago
            times.append((env.now, value))

        env.process(late_waiter(env))
        env.run()
        assert times == [(5.0, "early")]


class TestProcess:
    def test_process_return_value_is_event_value(self):
        env = Environment()

        def child(env):
            yield env.timeout(2.0)
            return "result"

        def parent(env, results):
            results.append((yield env.process(child(env))))

        results = []
        env.process(parent(env, results))
        env.run()
        assert results == ["result"]

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_exception_in_process_escapes_run(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise ValueError("inner")

        env.process(bad(env))
        with pytest.raises(ValueError, match="inner"):
            env.run()

    def test_is_alive_transitions(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_cross_environment_event_rejected(self):
        env1, env2 = Environment(), Environment()
        t2 = env2.timeout(1.0)

        def proc(env):
            yield t2

        env1.process(proc(env1))
        with pytest.raises(SimulationError, match="different environment"):
            env1.run()

    def test_interrupt_delivers_cause(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                log.append((env.now, i.cause))

        def interrupter(env, victim):
            yield env.timeout(3.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [(3.0, "wake up")]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_everything(self):
        env = Environment()
        done = []

        def proc(env):
            yield AllOf(env, [env.timeout(1.0), env.timeout(4.0), env.timeout(2.0)])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [4.0]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc(env):
            yield AnyOf(env, [env.timeout(9.0), env.timeout(2.0)])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2.0]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        done = []

        def proc(env):
            yield env.all_of([])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0.0]

    def test_all_of_collects_values(self):
        env = Environment()
        values = []

        def proc(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(2.0, value="b")
            result = yield env.all_of([t1, t2])
            values.append(sorted(result.values()))

        env.process(proc(env))
        env.run()
        assert values == [["a", "b"]]


class TestRunUntil:
    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.0)
            return "finished"

        p = env.process(proc(env))
        assert env.run(until=p) == "finished"
        assert env.now == 2.0

    def test_run_until_never_firing_event_raises(self):
        env = Environment()
        with pytest.raises(SimulationError, match="ran dry"):
            env.run(until=env.event())

    def test_run_until_time_stops_midway(self):
        env = Environment()
        fired = []

        def proc(env, delay):
            yield env.timeout(delay)
            fired.append(delay)

        env.process(proc(env, 1.0))
        env.process(proc(env, 10.0))
        env.run(until=5.0)
        assert fired == [1.0]
        assert env.now == 5.0
        env.run()
        assert fired == [1.0, 10.0]

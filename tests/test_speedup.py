"""Tests for scalability analysis (repro.analysis.speedup)."""

import pytest

from repro.analysis import ScalingPoint, karp_flatt, saturation_point, scaling_study
from repro.apps import StencilConfig, build_stencil_trace, stencil_cost_table
from repro.core import MEIKO_CS2, ProgramSimulator


class TestScalingStudy:
    def test_ideal_scaling(self):
        points = scaling_study(lambda p: 1000.0 / p, [1, 2, 4, 8])
        for pt in points:
            assert pt.speedup == pytest.approx(pt.procs)
            assert pt.efficiency == pytest.approx(1.0)

    def test_flat_scaling(self):
        points = scaling_study(lambda p: 1000.0, [1, 2, 4])
        assert all(pt.speedup == pytest.approx(1.0) for pt in points)
        assert points[-1].efficiency == pytest.approx(0.25)

    def test_relative_baseline(self):
        points = scaling_study(lambda p: 1000.0 / p, [2, 4])
        assert points[0].speedup == pytest.approx(1.0)
        assert points[1].speedup == pytest.approx(2.0)
        assert points[1].efficiency == pytest.approx(1.0)  # relative to P=2

    def test_validation(self):
        with pytest.raises(ValueError):
            scaling_study(lambda p: 1.0, [])
        with pytest.raises(ValueError):
            scaling_study(lambda p: 0.0, [1, 2])
        with pytest.raises(ValueError):
            ScalingPoint(procs=0, total_us=1.0, speedup=1.0, efficiency=1.0)


class TestKarpFlatt:
    def test_pure_serial_fraction(self):
        """Amdahl with serial fraction f: T(p) = f + (1-f)/p; Karp-Flatt
        recovers f exactly."""
        f = 0.2
        t = lambda p: f + (1 - f) / p
        base = ScalingPoint(procs=1, total_us=t(1), speedup=1.0, efficiency=1.0)
        for p in (2, 4, 8, 16):
            pt = ScalingPoint(procs=p, total_us=t(p), speedup=0.0, efficiency=0.0)
            assert karp_flatt(pt, base) == pytest.approx(f)

    def test_requires_more_processors(self):
        base = ScalingPoint(procs=4, total_us=10.0, speedup=1.0, efficiency=1.0)
        with pytest.raises(ValueError):
            karp_flatt(base, base)


class TestSaturation:
    def test_detects_floor_crossing(self):
        points = scaling_study(lambda p: 1000.0 / min(p, 4), [1, 2, 4, 8, 16])
        assert saturation_point(points, efficiency_floor=0.9) == 8

    def test_none_when_scaling_holds(self):
        points = scaling_study(lambda p: 1000.0 / p, [1, 2, 4])
        assert saturation_point(points) is None

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            saturation_point([], efficiency_floor=0.0)


class TestEndToEnd:
    def test_stencil_scaling_saturates(self):
        """The paper's intro use case: predicted scaling behaviour.  The
        halo-bound stencil must show sub-linear predicted speedup."""
        n, iters = 256, 6

        def predict(P: int) -> float:
            cfg = StencilConfig(n=n, num_procs=P, iterations=iters)
            cm = stencil_cost_table(n, [cfg.rows_per_proc])
            trace = build_stencil_trace(cfg)
            return ProgramSimulator(MEIKO_CS2.with_(P=P), cm).run(trace).total_us

        points = scaling_study(predict, [1, 2, 4, 8, 16, 32])
        speedups = {pt.procs: pt.speedup for pt in points}
        assert speedups[4] > 2.0  # real speedup at small P
        assert speedups[32] < 32 * 0.8  # but clearly sub-linear at 32
        assert all(
            a.total_us >= b.total_us * 0.999
            for a, b in zip(points, points[1:])
        ), "more processors never predicted slower for this stencil"

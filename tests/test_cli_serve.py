"""The ``repro serve`` CLI verb (``--check`` self-test mode).

The long-running server loop itself is exercised hermetically in
``tests/test_serve_server.py`` (same handler class, in-memory streams);
here the CLI wiring is pinned: flag parsing, the self-test exit code,
machine-readable output, and the run manifest.
"""

import json

import pytest

from repro.cli import build_parser, main


class TestServeCheck:
    def test_check_exits_zero(self, capsys):
        assert main(["serve", "--check", "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "serve self-test: ok" in out
        assert "computed -> memory" in out

    def test_check_json_document(self, capsys):
        assert main(["serve", "--check", "--json", "--no-manifest"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "ok"
        assert doc["tiers"] == ["computed", "memory"]
        stats = doc["stats"]
        assert stats["requests"] == {"total": 2, "ok": 2, "error": 0}
        assert stats["tiers"]["computed"] == 1
        assert stats["tiers"]["memory"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["batches"]["count"] == 1

    def test_check_with_store_and_serve_manifests(self, tmp_path, capsys):
        store = tmp_path / "store"
        serve_runs = tmp_path / "serve-runs"
        assert main([
            "serve", "--check", "--json", "--no-manifest",
            "--store", str(store), "--serve-manifests", str(serve_runs),
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["store_dir"] == str(store)
        # one store entry, one batch manifest, two request manifests
        assert len(list(store.glob("ge_*.json"))) == 1
        assert len(list(serve_runs.glob("serve-batch-*.json"))) == 1
        assert len(list(serve_runs.glob("serve-req-*.json"))) == 2

    def test_check_writes_run_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "serve.json"
        assert main([
            "serve", "--check", "--manifest-out", str(manifest),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(manifest.read_text())
        assert doc["command"] == "serve"
        assert doc["engine"] == "serve"
        assert doc["workload"]["check"] is True
        assert doc["extra"]["serve"]["requests"]["ok"] == 2
        assert doc["extra"]["digest"]


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.cache_size == 4096
        assert args.batch_window_ms == pytest.approx(10.0)
        assert args.batch_max == 64
        assert args.workers == "auto"
        assert args.check is False

    def test_machine_flags_reach_the_service_defaults(self, capsys):
        # a custom -P flows into the self-test request's fingerprint
        assert main([
            "serve", "--check", "--json", "--no-manifest", "-P", "4",
        ]) == 0
        small = json.loads(capsys.readouterr().out)["digest"]
        assert main(["serve", "--check", "--json", "--no-manifest"]) == 0
        default = json.loads(capsys.readouterr().out)["digest"]
        assert small != default

    def test_workers_flag_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "many"])

"""Tests for network topologies (repro.machine.topology)."""

import pytest

from repro.core import MEIKO_CS2, CommPattern, simulate_causal
from repro.machine import FatTree, Mesh2D, RingTopology, Topology, UniformTopology


ALL = [
    UniformTopology(8),
    FatTree(8, arity=4),
    FatTree(16, arity=2),
    Mesh2D(4, 2),
    RingTopology(8),
]


class TestCommonContract:
    @pytest.mark.parametrize("topo", ALL, ids=lambda t: type(t).__name__ + str(t.num_procs))
    def test_self_distance_zero(self, topo):
        for p in range(topo.num_procs):
            assert topo.hops(p, p) == 0

    @pytest.mark.parametrize("topo", ALL, ids=lambda t: type(t).__name__ + str(t.num_procs))
    def test_symmetry(self, topo):
        for s in range(topo.num_procs):
            for d in range(topo.num_procs):
                assert topo.hops(s, d) == topo.hops(d, s)

    @pytest.mark.parametrize("topo", ALL, ids=lambda t: type(t).__name__ + str(t.num_procs))
    def test_positive_between_distinct(self, topo):
        for s in range(topo.num_procs):
            for d in range(topo.num_procs):
                if s != d:
                    assert topo.hops(s, d) >= 1

    @pytest.mark.parametrize("topo", ALL, ids=lambda t: type(t).__name__ + str(t.num_procs))
    def test_triangle_inequality(self, topo):
        n = topo.num_procs
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            UniformTopology(4).hops(4, 0)

    def test_mean_and_diameter(self):
        ring = RingTopology(8)
        assert ring.diameter() == 4
        assert 0 < ring.mean_hops() <= ring.diameter()

    def test_single_proc(self):
        assert UniformTopology(1).mean_hops() == 0.0


class TestSpecificTopologies:
    def test_uniform(self):
        topo = UniformTopology(4, uniform_hops=3)
        assert topo.hops(0, 3) == 3
        assert topo.diameter() == 3

    def test_fat_tree_siblings_two_hops(self):
        topo = FatTree(16, arity=4)
        assert topo.hops(0, 1) == 2  # same leaf switch
        assert topo.hops(0, 3) == 2
        assert topo.hops(0, 4) == 4  # next subtree

    def test_fat_tree_binary(self):
        topo = FatTree(8, arity=2)
        assert topo.hops(0, 1) == 2
        assert topo.hops(0, 2) == 4
        assert topo.hops(0, 7) == 6
        assert topo.diameter() == 6

    def test_fat_tree_hop_variance_small(self):
        """The CS-2 rationale: a fat tree keeps hop counts within a 2x-3x
        band, which is why a single L is a fair abstraction."""
        topo = FatTree(16, arity=4)
        hops = [
            topo.hops(s, d) for s in range(16) for d in range(16) if s != d
        ]
        assert max(hops) / min(hops) <= 2.0

    def test_mesh_manhattan(self):
        topo = Mesh2D(4, 4)
        assert topo.coords(0) == (0, 0)
        assert topo.coords(5) == (1, 1)
        assert topo.hops(0, 15) == 6
        assert topo.diameter() == 6

    def test_ring_shorter_way(self):
        topo = RingTopology(10)
        assert topo.hops(0, 9) == 1
        assert topo.hops(0, 5) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTree(8, arity=1)
        with pytest.raises(ValueError):
            Mesh2D(0, 4)
        with pytest.raises(ValueError):
            UniformTopology(4, uniform_hops=0)


class TestLatencyIntegration:
    def test_latency_fn_scales_hops(self):
        topo = Mesh2D(4, 2)
        fn = topo.latency_fn(switch_us=3.0)
        from repro.core import Message

        assert fn(Message(src=0, dst=7, size=1, uid=0)) == 3.0 * topo.hops(0, 7)

    def test_negative_switch_rejected(self):
        with pytest.raises(ValueError):
            UniformTopology(2).latency_fn(-1.0)

    def test_uniform_equivalent(self):
        topo = UniformTopology(8, uniform_hops=2)
        assert topo.uniform_equivalent(4.5) == pytest.approx(9.0)

    def test_topology_aware_simulation(self):
        """Far pairs on a ring take longer than near pairs; a uniform
        topology treats them identically."""
        ring = RingTopology(8)
        near = CommPattern(8, edges=[(0, 1, 1)])
        far = CommPattern(8, edges=[(0, 4, 1)])
        fn = ring.latency_fn(switch_us=MEIKO_CS2.L)
        t_near = simulate_causal(MEIKO_CS2, near, latency_of=fn).completion_time
        t_far = simulate_causal(MEIKO_CS2, far, latency_of=fn).completion_time
        assert t_far > t_near

    def test_fat_tree_close_to_uniform_on_ge_traffic(self):
        """Calibrated to the same mean latency, the fat-tree-aware
        simulation stays within ~15% of the uniform-L one on a GE
        wavefront step — the quantified version of the paper's single-L
        design decision."""
        from repro.apps import ge_wavefront_pattern
        from repro.layouts import DiagonalLayout

        layout = DiagonalLayout(8, 8)
        pattern = ge_wavefront_pattern(layout, 7, 4608)
        tree = FatTree(8, arity=4)
        switch = MEIKO_CS2.L / tree.mean_hops()  # same average latency
        t_topo = simulate_causal(
            MEIKO_CS2, pattern, latency_of=tree.latency_fn(switch)
        ).completion_time
        t_uniform = simulate_causal(MEIKO_CS2, pattern).completion_time
        assert abs(t_topo - t_uniform) / t_uniform < 0.15

"""Tests for the parallel triangular solve (repro.apps.triangular)."""

import numpy as np
import pytest

from repro.apps import (
    TriangularConfig,
    build_trsv_trace,
    execute_trsv,
    trsv_cost_table,
)
from repro.core import MEIKO_CS2, ProgramSimulator
from repro.layouts import DiagonalLayout, RowStrippedCyclicLayout


def unit_lower(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.tril(rng.standard_normal((n, n)), -1) + np.eye(n)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TriangularConfig(n=10, b=3, layout=DiagonalLayout(3, 2))
        with pytest.raises(ValueError):
            TriangularConfig(n=12, b=3, layout=DiagonalLayout(3, 2))

    def test_nb(self):
        cfg = TriangularConfig(n=12, b=3, layout=DiagonalLayout(4, 2))
        assert cfg.nb == 4


class TestTrace:
    def cfg(self, nb=4, b=4, P=4, layout_cls=RowStrippedCyclicLayout):
        return TriangularConfig(n=nb * b, b=b, layout=layout_cls(nb, P))

    def test_step_count(self):
        trace = build_trsv_trace(self.cfg(nb=5))
        assert len(trace) == 2 * 5 - 1  # solve+update pairs, last solve alone

    def test_solve_steps_have_one_op(self):
        trace = build_trsv_trace(self.cfg())
        solves = [s for s in trace.steps if s.label.startswith("solve")]
        assert all(s.total_ops() == 1 for s in solves)
        assert all(
            ops[0].op == "trsolve" for s in solves for ops in s.work.values()
        )

    def test_update_counts_shrink(self):
        trace = build_trsv_trace(self.cfg(nb=4))
        updates = [s for s in trace.steps if s.label.startswith("update")]
        counts = [s.total_ops() for s in updates]
        assert counts == [3, 2, 1]

    def test_broadcast_targets_distinct_processors(self):
        cfg = self.cfg(nb=6, P=3)
        trace = build_trsv_trace(cfg)
        first = trace.steps[0]
        dests = [m.dst for m in first.pattern.messages]
        assert len(dests) == len(set(dests))

    def test_prediction_runs(self):
        cfg = self.cfg(nb=6, b=8, P=4)
        cm = trsv_cost_table([8])
        report = ProgramSimulator(MEIKO_CS2, cm).run(build_trsv_trace(cfg))
        assert report.total_us > 0
        assert report.comp_us > 0

    def test_pipeline_has_limited_parallelism(self):
        """The substitution's predicted speedup saturates early: doubling
        P beyond the pipeline depth barely helps (contrast with GE)."""
        b = 8
        cm = trsv_cost_table([b])
        totals = {}
        for P in (1, 2, 4, 8):
            cfg = TriangularConfig(n=16 * b, b=b, layout=RowStrippedCyclicLayout(16, P))
            trace = build_trsv_trace(cfg)
            totals[P] = ProgramSimulator(MEIKO_CS2.with_(P=P), cm).run(trace).total_us
        assert totals[2] < totals[1]  # some speedup exists
        assert totals[8] > totals[1] / 8 * 2  # but far from linear


class TestNumericalExecution:
    @pytest.mark.parametrize("b", [1, 4, 8, 16])
    def test_matches_numpy_solve(self, b):
        n = 16
        lower = unit_lower(n, seed=b)
        rhs = np.random.default_rng(b + 100).standard_normal(n)
        x = execute_trsv(lower, rhs, b)
        assert np.allclose(x, np.linalg.solve(lower, rhs))

    def test_residual_is_small(self):
        lower = unit_lower(32, seed=3)
        rhs = np.random.default_rng(4).standard_normal(32)
        x = execute_trsv(lower, rhs, 8)
        assert np.allclose(lower @ x, rhs)

    def test_validation(self):
        with pytest.raises(ValueError):
            execute_trsv(np.zeros((3, 4)), np.zeros(3), 1)
        with pytest.raises(ValueError):
            execute_trsv(unit_lower(4), np.zeros(3), 2)
        with pytest.raises(ValueError):
            execute_trsv(unit_lower(4), np.zeros(4), 3)
        with pytest.raises(ValueError):
            execute_trsv(np.eye(4) * 2.0, np.zeros(4), 2)  # not unit diagonal


class TestCostTable:
    def test_two_ops_priced(self):
        cm = trsv_cost_table([4, 8])
        assert cm.cost("update", 8) > cm.cost("trsolve", 8) / 2
        with pytest.raises(ValueError):
            cm.cost("op1", 8)

"""The serve observability surface: ``/v1/stats``, ``/metrics``, trace stitching.

Three contracts:

* **Stats schema** — ``/v1/stats`` reports uptime, per-tier cache
  hit/miss accounting and the batch-size distribution (the regression
  pin for satellite dashboards).
* **Metrics exposition** — ``GET /metrics`` is valid Prometheus text:
  the in-repo strict linter accepts every line, and parsing it recovers
  the service's counters/histograms.
* **Request stitching** — every traced request produces a
  ``serve.request → serve.cache / serve.batch`` span tree with zero
  orphans; a client-supplied ``trace`` field re-parents the tree under
  the client's span and is echoed in the response.
"""

import io
import json

import pytest

from repro.obs import Tracer, tracing
from repro.obs.promtext import parse, parse_samples
from repro.obs.telemetry import TraceContext, validate_span_tree
from repro.serve import PredictionService, ServeConfig, make_handler

DOC = {"n": 120, "b": 30, "layout": "diagonal"}


def make_service(tmp_path, **overrides) -> PredictionService:
    overrides.setdefault("store_dir", str(tmp_path / "store"))
    overrides.setdefault("batch_window_s", 0.002)
    return PredictionService(ServeConfig(**overrides))


class _Channel:
    """An in-memory two-way byte stream standing in for a socket."""

    def __init__(self, raw: bytes):
        self._rf = io.BytesIO(raw)
        self.wf = io.BytesIO()

    def makefile(self, mode, *args, **kwargs):
        return self._rf if "r" in mode else self.wf

    def sendall(self, data):
        self.wf.write(data)


def http_raw(service, method: str, path: str, body=None):
    """One request through the live handler; returns (status, headers, body)."""
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    if body is not None:
        payload = json.dumps(body).encode()
        head += (
            f"Content-Length: {len(payload)}\r\n"
            "Content-Type: application/json\r\n\r\n"
        )
        raw = head.encode() + payload
    else:
        raw = (head + "\r\n").encode()
    channel = _Channel(raw)
    make_handler(service)(channel, ("127.0.0.1", 0), None)
    response = channel.wf.getvalue()
    head_block, _, response_body = response.partition(b"\r\n\r\n")
    lines = head_block.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, response_body


class TestStatsSchema:
    def test_stats_document_schema(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)          # computed
            service.handle(DOC)          # memory hit
            service.handle({**DOC, "b": 33})  # protocol error
            stats = service.stats()
        assert stats["uptime_s"] > 0
        assert stats["requests"] == {"total": 3, "ok": 2, "error": 1}
        assert stats["cache_tiers"] == {
            "memory": {"hits": 1, "misses": 1},
            "store": {"hits": 0, "misses": 1},
            "inflight": {"dedups": 0},
        }
        assert stats["batches"]["sizes"] == {"1": 1}
        assert stats["inflight"] == 0

    def test_store_tier_hit_accounting(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)
        # a fresh service over the same store answers from tier 2
        with make_service(tmp_path) as reborn:
            reborn.handle(DOC)
            tiers = reborn.stats()["cache_tiers"]
        assert tiers["store"] == {"hits": 1, "misses": 0}
        assert tiers["memory"] == {"hits": 0, "misses": 1}

    def test_batch_size_distribution(self, tmp_path):
        docs = [{**DOC, "b": b} for b in (20, 30, 40)]
        with make_service(tmp_path, batch_window_s=0.25) as service:
            import threading
            barrier = threading.Barrier(len(docs))

            def shoot(doc):
                barrier.wait()
                service.handle(doc)

            threads = [threading.Thread(target=shoot, args=(d,)) for d in docs]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            service.handle({**DOC, "b": 60})  # second, singleton batch
            sizes = service.stats()["batches"]["sizes"]
        assert sizes == {"3": 1, "1": 1}
        assert sum(int(k) * v for k, v in sizes.items()) == 4

    def test_stats_over_http_matches_handle(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)
            status, headers, body = http_raw(service, "GET", "/v1/stats")
        assert status == 200
        doc = json.loads(body)
        assert doc["requests"]["ok"] == 1
        assert "cache_tiers" in doc and "uptime_s" in doc


class TestMetricsEndpoint:
    def test_metrics_parse_with_in_repo_parser(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)
            service.handle(DOC)
            text = service.metrics_text()
        snap = parse(text)
        assert snap["counters"]["serve.requests"] == 2.0
        assert snap["counters"]["serve.tier.computed"] == 1.0
        assert snap["counters"]["serve.tier.memory"] == 1.0
        assert snap["counters"]["serve.batches"] == 1.0
        assert snap["histograms"]["serve.latency_us"]["count"] == 2
        assert snap["histograms"]["serve.batch_size"]["max"] == 1.0
        assert snap["gauges"]["serve.uptime_s"] > 0

    def test_metrics_lint_every_line(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)
            samples = parse_samples(service.metrics_text())
        families = {family for family, _, _ in samples}
        # the latency quantiles ride along as exposition extras
        assert "repro_serve_latency_us" in families
        quantiles = {
            labels["quantile"]
            for family, labels, _ in samples
            if family == "repro_serve_latency_us"
        }
        assert quantiles == {"0.5", "0.9", "0.99"}

    def test_metrics_http_content_type(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)
            status, headers, body = http_raw(service, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert parse(body.decode())["counters"]["serve.requests"] == 1.0

    def test_error_requests_counted(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle({**DOC, "b": 33})
            snap = parse(service.metrics_text())
        assert snap["counters"]["serve.requests"] == 1.0
        assert snap["counters"]["serve.errors"] == 1.0

    def test_tracer_metrics_folded_in_when_tracing(self, tmp_path):
        tracer = Tracer()
        with tracing(tracer), make_service(tmp_path) as service:
            service.handle(DOC)
            snap = parse(service.metrics_text())
        # the ambient tracer's registry (sweep counters) joins the view
        assert snap["counters"]["sweep.points_computed"] == 1.0
        assert snap["counters"]["serve.requests"] == 1.0


class TestRequestStitching:
    def test_request_tree_has_zero_orphans(self, tmp_path):
        tracer = Tracer()
        with tracing(tracer), make_service(tmp_path) as service:
            service.handle(DOC)
            service.handle(DOC)
        report = validate_span_tree(tracer.events)
        assert report.ok
        names = {e.name for e in tracer.events if (e.attrs or {}).get("span_id")}
        assert {"serve.request", "serve.cache", "serve.batch"} <= names
        # both requests share the service's root trace
        assert len(report.traces) == 1

    def test_response_echoes_trace_block(self, tmp_path):
        with make_service(tmp_path) as service:
            response = service.handle(DOC)
        trace = response["trace"]
        assert set(trace) == {"trace_id", "span_id", "parent_span_id"}
        ctx = TraceContext(trace["trace_id"], trace["parent_span_id"])
        assert ctx.child("serve.request", 0).span_id == trace["span_id"]

    def test_request_sequence_distinguishes_spans(self, tmp_path):
        with make_service(tmp_path) as service:
            first = service.handle(DOC)["trace"]
            second = service.handle(DOC)["trace"]
        assert first["trace_id"] == second["trace_id"]
        assert first["span_id"] != second["span_id"]

    def test_client_supplied_trace_reparents_the_tree(self, tmp_path):
        upstream = TraceContext.root("client").child("client.op", 0)
        doc = {**DOC, "trace": upstream.to_dict()}
        tracer = Tracer()
        with tracing(tracer), make_service(tmp_path) as service:
            response = service.handle(doc)
        assert response["trace"]["trace_id"] == upstream.trace_id
        assert response["trace"]["parent_span_id"] == upstream.span_id
        # the upstream span lives in the client's process: without it the
        # tree has an orphan, with it as an extra root it validates
        assert not validate_span_tree(tracer.events).ok
        report = validate_span_tree(
            tracer.events, extra_roots=[upstream.span_id]
        )
        assert report.ok and report.spans >= 3

    def test_traced_and_untraced_share_cache_entry(self, tmp_path):
        upstream = TraceContext.root("client").child("client.op", 0)
        with make_service(tmp_path) as service:
            cold = service.handle(DOC)
            traced = service.handle({**DOC, "trace": upstream.to_dict()})
        assert traced["cache"]["tier"] == "memory"
        assert traced["fingerprint"] == cold["fingerprint"]
        assert traced["digest"] == cold["digest"]

    def test_batch_span_parents_under_leader_request(self, tmp_path):
        tracer = Tracer()
        with tracing(tracer), make_service(tmp_path) as service:
            service.handle(DOC)
        spans = {
            e.name: e.attrs for e in tracer.events
            if (e.attrs or {}).get("span_id")
        }
        assert spans["serve.batch"]["parent_span_id"] == \
            spans["serve.request"]["span_id"]
        assert spans["serve.cache"]["parent_span_id"] == \
            spans["serve.request"]["span_id"]

"""Statistical golden regression for the UQ engine — exact equality.

The Monte Carlo engine is fully seeded, so its summaries are *exact*
quantities, not noisy ones: the checked-in ``uq_golden_fig7.json`` pins
every statistic of every metric for a small Figure 7 slice with ``==``
(no tolerances).  Any change to the perturbation model, the sampler's
stream addressing, the simulators or the reduction moves these values
and must regenerate the golden deliberately
(``PYTHONPATH=src python tests/data/regen_uq_golden.py``).

The same golden is asserted under 1 and 2 workers: the digests cannot
depend on how the replicate grid was scheduled.
"""

import json
from pathlib import Path

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.uq import UQSpec, run_uq

GOLDEN_PATH = Path(__file__).parent / "data" / "uq_golden_fig7.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def run_from_config(config, workers=1):
    return run_uq(
        config["n"], config["blocks"], config["layouts"],
        MEIKO_CS2, CalibratedCostModel(),
        spec=UQSpec(**config["spec"]),
        replicates=config["replicates"],
        ci=config["ci"],
        base_seed=config["base_seed"],
        with_measured=config["with_measured"],
        workers=workers,
    )


@pytest.fixture(scope="module")
def result(golden):
    return run_from_config(golden["config"])


class TestGoldenSummaries:
    def test_summaries_exactly_equal(self, golden, result):
        assert result.to_rows() == golden["summaries"]

    def test_summary_digest(self, golden, result):
        assert result.summary_digest() == golden["summary_sha256"]

    def test_replicate_digest(self, golden, result):
        assert result.replicate_digest() == golden["results_sha256"]

    def test_metrics_complete(self, golden):
        """A measured golden run must pin every metric, none null."""
        for row in golden["summaries"]:
            assert all(stats is not None for stats in row["metrics"].values())
            for stats in row["metrics"].values():
                assert stats["min"] <= stats["ci_lo"] <= stats["ci_hi"] <= stats["max"]


class TestGoldenUnderWorkers:
    def test_two_workers_reproduce_the_golden_exactly(self, golden):
        result = run_from_config(golden["config"], workers=2)
        assert result.summary_digest() == golden["summary_sha256"]
        assert result.replicate_digest() == golden["results_sha256"]
        assert result.to_rows() == golden["summaries"]

"""Single-flight dedup: N concurrent identical misses, one simulation.

The contract under test (the heart of the serve layer's cost story):

* A burst of identical cold requests runs **exactly one** simulation —
  asserted two independent ways: the tracer records exactly one
  ``serve.batch`` span with one computed point, and the kernel memo's
  calibration counter (`cost_observation_count`, incremented once per
  point actually evaluated) lands on exactly 1.
* Every one of the N responses is digest-identical to the serial
  :func:`repro.core.predictor.summarize_ge_point` answer.
* Distinct cold points arriving inside one batching window coalesce
  into **one** batch (one sweep dispatch), not N.
"""

import threading

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.predictor import summarize_ge_point
from repro.kernel.memo import clear_cost_observations, cost_observation_count
from repro.obs import Tracer, tracing
from repro.serve import PredictionService, ServeConfig
from repro.serve.protocol import point_digest

CM = CalibratedCostModel()

DOC = {"n": 120, "b": 30, "layout": "diagonal"}


def hammer(service, docs):
    """Fire one request per doc from simultaneously-released threads."""
    barrier = threading.Barrier(len(docs))
    results = [None] * len(docs)

    def shoot(i, doc):
        barrier.wait()
        results[i] = service.handle(doc)

    threads = [
        threading.Thread(target=shoot, args=(i, doc))
        for i, doc in enumerate(docs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def spans(tracer, name):
    return [e for e in tracer.events if e.name == name]


class TestSingleFlight:
    def test_n_threads_one_simulation(self, tmp_path):
        clear_cost_observations()
        tracer = Tracer()
        config = ServeConfig(
            store_dir=str(tmp_path / "store"), batch_window_s=0.25
        )
        with tracing(tracer), PredictionService(config) as service:
            results = hammer(service, [dict(DOC)] * 8)
            stats = service.stats()

        # one simulation, however you count it
        assert cost_observation_count() == 1
        batch_spans = spans(tracer, "serve.batch")
        assert len(batch_spans) == 1
        assert batch_spans[0].attrs["points"] == 1
        assert batch_spans[0].attrs["computed"] == 1
        assert stats["batches"] == {
            "count": 1, "points": 1, "max_size": 1, "sizes": {"1": 1},
        }

        # exactly one leader; everyone else rode the in-flight future
        # (or, if scheduled late, the already-cached entry)
        tiers = [r["cache"]["tier"] for r in results]
        assert tiers.count("computed") == 1
        assert all(t in ("computed", "inflight", "memory") for t in tiers)

        # all N answers digest-identical to the serial reference
        direct = summarize_ge_point(
            120, 30, "diagonal", MEIKO_CS2, CM, with_measured=False, seed=0
        )
        expected = point_digest(direct)
        assert all(r["digest"] == expected for r in results)
        assert all(r["result"] == direct for r in results)

        # every request-path span was recorded without interleaving
        # corruption: one serve.request and serve.cache slice per request
        assert len(spans(tracer, "serve.request")) == 8
        assert len(spans(tracer, "serve.cache")) == 8

    def test_distinct_misses_coalesce_into_one_batch(self, tmp_path):
        clear_cost_observations()
        tracer = Tracer()
        docs = [
            {"n": 120, "b": b, "layout": layout}
            for b in (20, 30)
            for layout in ("diagonal", "stripped")
        ]
        config = ServeConfig(
            store_dir=str(tmp_path / "store"), batch_window_s=0.25
        )
        with tracing(tracer), PredictionService(config) as service:
            results = hammer(service, docs)
            stats = service.stats()

        assert all(r["status"] == "ok" for r in results)
        assert cost_observation_count() == len(docs)
        batch_spans = spans(tracer, "serve.batch")
        assert len(batch_spans) == 1
        assert batch_spans[0].attrs["points"] == len(docs)
        assert stats["batches"]["max_size"] == len(docs)
        # four distinct entries, each the serial answer bit for bit
        for doc, response in zip(docs, results):
            direct = summarize_ge_point(
                doc["n"], doc["b"], doc["layout"], MEIKO_CS2, CM,
                with_measured=False, seed=0,
            )
            assert response["digest"] == point_digest(direct)

    def test_followers_after_resolution_hit_memory(self, tmp_path):
        config = ServeConfig(
            store_dir=str(tmp_path / "store"), batch_window_s=0.002
        )
        with PredictionService(config) as service:
            first = service.handle(DOC)
            late = hammer(service, [dict(DOC)] * 4)
        assert first["cache"]["tier"] == "computed"
        assert all(r["cache"]["tier"] == "memory" for r in late)
        assert all(r["digest"] == first["digest"] for r in late)

"""Tests for data layouts (repro.layouts)."""

import numpy as np
import pytest

from repro.layouts import (
    LAYOUTS,
    BlockCyclic2DLayout,
    ColumnCyclicLayout,
    DiagonalLayout,
    RowStrippedCyclicLayout,
    adjacency_conflicts,
    load_imbalance,
)

ALL_LAYOUT_CLASSES = [
    RowStrippedCyclicLayout,
    DiagonalLayout,
    ColumnCyclicLayout,
    BlockCyclic2DLayout,
]


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL_LAYOUT_CLASSES)
    def test_owners_in_range(self, cls):
        layout = cls(nb=12, num_procs=4)
        for i in range(12):
            for j in range(12):
                assert 0 <= layout.owner(i, j) < 4

    @pytest.mark.parametrize("cls", ALL_LAYOUT_CLASSES)
    def test_blocks_partitioned(self, cls):
        layout = cls(nb=10, num_procs=5)
        counts = layout.block_counts()
        assert sum(counts.values()) == 100

    @pytest.mark.parametrize("cls", ALL_LAYOUT_CLASSES)
    def test_out_of_grid_rejected(self, cls):
        layout = cls(nb=4, num_procs=2)
        with pytest.raises(IndexError):
            layout.owner(4, 0)
        with pytest.raises(IndexError):
            layout.owner(0, -1)

    @pytest.mark.parametrize("cls", ALL_LAYOUT_CLASSES)
    def test_owner_matrix_matches_owner(self, cls):
        layout = cls(nb=6, num_procs=3)
        mat = layout.owner_matrix()
        for i in range(6):
            for j in range(6):
                assert mat[i, j] == layout.owner(i, j)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            RowStrippedCyclicLayout(nb=0, num_procs=2)
        with pytest.raises(ValueError):
            RowStrippedCyclicLayout(nb=2, num_procs=0)

    def test_registry_complete(self):
        assert set(LAYOUTS) == {"stripped", "diagonal", "column", "block2d"}


class TestStripped:
    def test_rows_are_local(self):
        """Row-wise propagation involves no message transfer (paper §6.2)."""
        layout = RowStrippedCyclicLayout(nb=16, num_procs=8)
        for i in range(16):
            owners = {layout.owner(i, j) for j in range(16)}
            assert len(owners) == 1

    def test_cyclic_assignment(self):
        layout = RowStrippedCyclicLayout(nb=16, num_procs=8)
        assert layout.owner(0, 3) == 0
        assert layout.owner(9, 3) == 1

    def test_wavefront_load_is_uneven(self):
        """Only ~half the processors are active on an anti-diagonal whose
        length is P, when nb is a multiple of P... (actually stripped puts
        each diagonal's blocks on consecutive rows, so a diagonal shorter
        than P misses processors entirely)."""
        layout = RowStrippedCyclicLayout(nb=16, num_procs=8)
        diag = layout.antidiagonal(4)  # 5 blocks on rows 0..4
        owners = {layout.owner(i, j) for i, j in diag}
        assert owners == {0, 1, 2, 3, 4}  # procs 5..7 idle


class TestDiagonal:
    def test_diagonal_blocks_spread_across_processors(self):
        """Paper: the diagonal mapping assigns the blocks of each diagonal
        to different processors."""
        layout = DiagonalLayout(nb=16, num_procs=8)
        for d in range(31):
            blocks = layout.antidiagonal(d)
            owners = [layout.owner(i, j) for i, j in blocks]
            expected_distinct = min(len(blocks), 8)
            assert len(set(owners)) == expected_distinct

    def test_globally_balanced(self):
        layout = DiagonalLayout(nb=16, num_procs=8)
        assert load_imbalance(layout) == pytest.approx(1.0)

    def test_adjacency_conflicts_possible_but_rare(self):
        """Paper: small probability that row- or column-adjacent blocks
        land on one processor (unlike stripped rows, where it is certain)."""
        layout = DiagonalLayout(nb=16, num_procs=8)
        conflicts = adjacency_conflicts(layout)
        total_pairs = 2 * 16 * 15
        assert 0 <= conflicts < total_pairs * 0.25


class TestColumnAndBlock2D:
    def test_columns_are_local(self):
        layout = ColumnCyclicLayout(nb=8, num_procs=4)
        for j in range(8):
            owners = {layout.owner(i, j) for i in range(8)}
            assert len(owners) == 1

    def test_block2d_grid(self):
        layout = BlockCyclic2DLayout(nb=8, num_procs=4)
        assert (layout.pr, layout.pc) == (2, 2)
        assert layout.owner(0, 0) == 0
        assert layout.owner(1, 1) == 3

    def test_block2d_explicit_grid(self):
        layout = BlockCyclic2DLayout(nb=8, num_procs=6, grid=(2, 3))
        assert layout.owner(1, 2) == 1 * 3 + 2

    def test_block2d_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            BlockCyclic2DLayout(nb=8, num_procs=6, grid=(2, 2))

    def test_block2d_balanced_when_divisible(self):
        layout = BlockCyclic2DLayout(nb=8, num_procs=4)
        assert load_imbalance(layout) == pytest.approx(1.0)


class TestMetricsAndHelpers:
    def test_antidiagonal_enumeration(self):
        layout = RowStrippedCyclicLayout(nb=4, num_procs=2)
        assert layout.antidiagonal(0) == [(0, 0)]
        assert layout.antidiagonal(3) == [(0, 3), (1, 2), (2, 1), (3, 0)]
        assert layout.antidiagonal(6) == [(3, 3)]
        with pytest.raises(IndexError):
            layout.antidiagonal(7)

    def test_stripped_rows_conflict_everywhere(self):
        layout = RowStrippedCyclicLayout(nb=4, num_procs=4)
        # every horizontal neighbour pair is a conflict: 4 rows * 3 pairs
        assert adjacency_conflicts(layout) == 12

    def test_blocks_of(self):
        layout = RowStrippedCyclicLayout(nb=4, num_procs=2)
        blocks = layout.blocks_of(1)
        assert blocks == [(1, 0), (1, 1), (1, 2), (1, 3), (3, 0), (3, 1), (3, 2), (3, 3)]

    def test_iter_blocks_row_major(self):
        layout = RowStrippedCyclicLayout(nb=2, num_procs=2)
        assert list(layout.iter_blocks()) == [
            (0, 0, 0),
            (0, 1, 0),
            (1, 0, 1),
            (1, 1, 1),
        ]

    def test_load_imbalance_single_proc(self):
        layout = RowStrippedCyclicLayout(nb=4, num_procs=1)
        assert load_imbalance(layout) == 1.0

"""The canonical machine fingerprint: one identity for stores, memos, UQ.

``repro.core.fingerprint`` is the single answer to "is this the same
machine?".  These tests pin its two contracts: *stability* (the same
machine fingerprints identically across instances and processes — store
resume depends on it) and *sensitivity* (any change to the parameters,
the cost model, or the UQ spec changes the key — cache safety depends on
it).  The round-trip tests close the loop the ISSUE asked for: a UQ spec
serialised into a manifest and re-loaded lands in the same store
keyspace.
"""

from __future__ import annotations

import json

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.costmodel import FlopCostModel, TableCostModel
from repro.core.fingerprint import (
    FINGERPRINT_VERSION,
    cost_model_fingerprint,
    loggp_fingerprint,
    machine_fingerprint,
)
from repro.experiments import ExperimentStore
from repro.kernel import memoize
from repro.machine.perturbed import ScaledCostModel
from repro.uq import UQSpec


# -- stability ---------------------------------------------------------------

def test_loggp_fingerprint_is_repr_exact():
    fp = loggp_fingerprint(MEIKO_CS2)
    assert fp == loggp_fingerprint(MEIKO_CS2.with_())
    # a change below the %g display precision must still miss
    nudged = MEIKO_CS2.with_(G=MEIKO_CS2.G * (1 + 1e-15))
    assert loggp_fingerprint(nudged) != fp


def test_cost_model_fingerprint_stable_across_instances():
    assert cost_model_fingerprint(CalibratedCostModel()) == cost_model_fingerprint(
        CalibratedCostModel()
    )
    table = {"op1": {16: 1.25, 32: 9.5}, "op4": {16: 2.0}}
    assert cost_model_fingerprint(TableCostModel(table)) == cost_model_fingerprint(
        TableCostModel(json.loads(json.dumps(table), object_hook=_int_keys))
    )


def _int_keys(doc):
    return {int(k) if k.lstrip("-").isdigit() else k: v for k, v in doc.items()}


def test_machine_fingerprint_versioned_and_deterministic():
    a = machine_fingerprint(MEIKO_CS2, CalibratedCostModel())
    b = machine_fingerprint(MEIKO_CS2.with_(), CalibratedCostModel())
    assert a == b
    assert len(a) == 16
    assert FINGERPRINT_VERSION == 1


# -- sensitivity -------------------------------------------------------------

def test_machine_fingerprint_misses_on_any_change():
    cm = CalibratedCostModel()
    base = machine_fingerprint(MEIKO_CS2, cm)
    assert machine_fingerprint(MEIKO_CS2.with_(L=10.0), cm) != base
    assert machine_fingerprint(MEIKO_CS2, FlopCostModel()) != base
    assert machine_fingerprint(MEIKO_CS2, ScaledCostModel(cm, {"op1": 1.1})) != base
    assert machine_fingerprint(MEIKO_CS2, cm, extra="uq-abc") != base


def test_table_model_fingerprint_reflects_contents():
    t1 = TableCostModel({"op1": {16: 1.0}})
    t2 = TableCostModel({"op1": {16: 1.0 + 1e-12}})
    assert cost_model_fingerprint(t1) != cost_model_fingerprint(t2)


def test_probe_fallback_for_unfingerprintable_models():
    class Raw:
        def cost(self, op, b):
            return 3.0 * b

    # no fingerprint() → None at the model layer, probe fallback in the
    # composed machine fingerprint (stable for a deterministic model)
    assert cost_model_fingerprint(Raw()) is None
    a = machine_fingerprint(MEIKO_CS2, Raw())
    assert a == machine_fingerprint(MEIKO_CS2, Raw())


# -- store keys ride on the canonical helper ---------------------------------

def test_store_key_stable_across_instances(tmp_path):
    s1 = ExperimentStore(tmp_path, MEIKO_CS2, CalibratedCostModel())
    s2 = ExperimentStore(tmp_path, MEIKO_CS2.with_(), CalibratedCostModel())
    key = s1.key(240, 30, "diagonal", seed=0)
    assert key == s2.key(240, 30, "diagonal", seed=0)
    assert key.endswith(".json")


def test_store_key_misses_on_machine_or_tag_change(tmp_path):
    cm = CalibratedCostModel()
    base = ExperimentStore(tmp_path, MEIKO_CS2, cm).key(240, 30, "diagonal")
    assert ExperimentStore(tmp_path, MEIKO_CS2.with_(g=15.0), cm).key(
        240, 30, "diagonal"
    ) != base
    assert ExperimentStore(tmp_path, MEIKO_CS2, FlopCostModel()).key(
        240, 30, "diagonal"
    ) != base
    assert ExperimentStore(tmp_path, MEIKO_CS2, cm, extra_tag="uq-x").key(
        240, 30, "diagonal"
    ) != base


def test_store_and_memo_agree_on_model_identity():
    """The memo buckets and the store keyspace hinge on the same string."""
    cm = CalibratedCostModel()
    assert memoize(cm).fingerprint() == cost_model_fingerprint(cm)
    scaled = ScaledCostModel(cm, {"op2": 1.3})
    assert memoize(scaled).fingerprint() == cost_model_fingerprint(scaled)


# -- UQ spec round trip ------------------------------------------------------

@pytest.mark.parametrize(
    "spec",
    [
        UQSpec(),
        UQSpec(sigma=0.05, op_sigma=0.03, jitter_sigma=0.1),
        UQSpec(param_sigma={"G": 0.3}, straggler_prob=0.02, straggler_factor=4.0),
    ],
    ids=["identity", "noisy", "bandwidth-stragglers"],
)
def test_uq_spec_json_round_trip_preserves_keyspace(spec, tmp_path):
    doc = json.loads(json.dumps(spec.to_dict()))
    loaded = UQSpec.from_dict(doc)
    assert loaded == spec
    assert loaded.fingerprint() == spec.fingerprint()
    assert loaded.store_tag() == spec.store_tag()
    cm = CalibratedCostModel()
    original = ExperimentStore(tmp_path, MEIKO_CS2, cm, extra_tag=spec.store_tag())
    reloaded = ExperimentStore(tmp_path, MEIKO_CS2, cm, extra_tag=loaded.store_tag())
    assert original.key(240, 30, "diagonal") == reloaded.key(240, 30, "diagonal")


def test_identity_spec_shares_the_plain_sweep_keyspace(tmp_path):
    cm = CalibratedCostModel()
    plain = ExperimentStore(tmp_path, MEIKO_CS2, cm)
    identity = ExperimentStore(
        tmp_path, MEIKO_CS2, cm, extra_tag=UQSpec().store_tag()
    )
    perturbed = ExperimentStore(
        tmp_path, MEIKO_CS2, cm, extra_tag=UQSpec(sigma=0.1).store_tag()
    )
    assert identity.key(240, 30, "diagonal") == plain.key(240, 30, "diagonal")
    assert perturbed.key(240, 30, "diagonal") != plain.key(240, 30, "diagonal")

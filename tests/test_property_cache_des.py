"""Property-based tests for the cache models and the DES engine.

The caches are checked against brute-force reference models under random
access sequences; the DES engine is stressed with randomly-structured
process graphs whose outcome is compared to an analytically computed
schedule.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.machine import BlockCache, LineCache


# --------------------------------------------------------------------------
# BlockCache vs a reference LRU-by-bytes model
# --------------------------------------------------------------------------

class _ReferenceBlockCache:
    """Straight-line reimplementation of the BlockCache contract."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.resident: OrderedDict = OrderedDict()
        self.used = 0

    def touch(self, key, nbytes) -> bool:
        if key in self.resident:
            self.resident.move_to_end(key)
            return True
        if nbytes > self.capacity:
            self.resident.clear()
            self.used = 0
            return False
        while self.used + nbytes > self.capacity and self.resident:
            _, size = self.resident.popitem(last=False)
            self.used -= size
        self.resident[key] = nbytes
        self.used += nbytes
        return False


@settings(max_examples=150, deadline=None)
@given(
    capacity=st.integers(min_value=16, max_value=4096),
    accesses=st.lists(
        st.tuples(st.integers(0, 12), st.integers(1, 1024)), max_size=120
    ),
)
def test_block_cache_matches_reference(capacity, accesses):
    cache = BlockCache(capacity)
    ref = _ReferenceBlockCache(capacity)
    for key, nbytes in accesses:
        assert cache.touch(key, nbytes) == ref.touch(key, nbytes)
        assert cache.used_bytes == ref.used
        assert cache.used_bytes <= capacity


@settings(max_examples=100, deadline=None)
@given(
    accesses=st.lists(st.integers(0, 2**14), min_size=1, max_size=200),
    ways=st.sampled_from([1, 2, 4]),
)
def test_line_cache_fully_associative_slice_is_lru(accesses, ways):
    """With a single set, the line cache must behave as plain LRU over
    line tags — checked against an OrderedDict reference."""
    line = 32
    cache = LineCache(size_bytes=line * ways, line_bytes=line, ways=ways)
    ref: OrderedDict = OrderedDict()
    for addr in accesses:
        tag = addr // line
        hit_ref = tag in ref
        if hit_ref:
            ref.move_to_end(tag)
        else:
            if len(ref) >= ways:
                ref.popitem(last=False)
            ref[tag] = None
        assert cache.access(addr) == hit_ref


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 2**10), st.integers(1, 256)), min_size=1, max_size=60)
)
def test_line_cache_range_miss_count_bounded(ranges):
    cache = LineCache(size_bytes=1024, line_bytes=32, ways=4)
    for addr, nbytes in ranges:
        lines = (addr + nbytes - 1) // 32 - addr // 32 + 1
        misses = cache.access_range(addr, nbytes)
        assert 0 <= misses <= lines


# --------------------------------------------------------------------------
# DES engine: random fork/join graphs complete at the analytic makespan
# --------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=5),
        min_size=1,
        max_size=8,
    )
)
def test_des_sequential_chains_finish_at_sum(delays):
    """N independent chains of timeouts: the clock ends at the longest
    chain's total delay."""
    env = Environment()

    def chain(env, ds):
        for d in ds:
            yield env.timeout(d)

    for ds in delays:
        env.process(chain(env, ds))
    env.run()
    assert abs(env.now - max(sum(ds) for ds in delays)) < 1e-9


@settings(max_examples=60, deadline=None)
@given(
    stage_delays=st.lists(st.floats(0.1, 5.0, allow_nan=False), min_size=1, max_size=6),
    width=st.integers(1, 5),
)
def test_des_fork_join_stages(stage_delays, width):
    """Fork-join pipeline: each stage runs `width` parallel timeouts and
    joins; makespan is the sum of stage delays (parallel copies are
    identical)."""
    env = Environment()
    finished = []

    def worker(env, d):
        yield env.timeout(d)
        return d

    def driver(env):
        for d in stage_delays:
            workers = [env.process(worker(env, d)) for _ in range(width)]
            yield env.all_of(workers)
        finished.append(env.now)

    env.process(driver(env))
    env.run()
    assert abs(finished[0] - sum(stage_delays)) < 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0.0, 20.0, allow_nan=False), min_size=2, max_size=10))
def test_des_any_of_fires_at_minimum(delays):
    env = Environment()
    got = []

    def waiter(env):
        yield env.any_of([env.timeout(d) for d in delays])
        got.append(env.now)

    env.process(waiter(env))
    env.run()
    assert abs(got[0] - min(delays)) < 1e-9

"""Regenerate the calibration golden file (``calib_golden_fig7.json``).

Run from the repo root after an *intentional* change to the measurement
model, the likelihood, the chain, or the timing semantics downstream:

    PYTHONPATH=src python tests/data/regen_calib_golden.py

The golden pins a full calibrate-then-predict pipeline on the Figure 7
machine: the posterior summary (every statistic, exact float equality —
measurement noise and the chain are both seeded), the posterior
fingerprint, and the UQ summaries obtained by replaying the posterior
through the sweep engine.  ``tests/test_calib_golden.py`` must pass
afterwards; commit the regenerated JSON together with the change that
moved it.
"""

import json
from pathlib import Path

from repro.calib import calibrate_emulator
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.uq import run_uq

#: the pinned configuration — mirror any change in test_calib_golden.py
CONFIG = {
    "calib": {
        "noise_sigma": 0.05,
        "repeats": 5,
        "draws": 60,
        "burn": 100,
        "thin": 2,
        "seed": 11,
    },
    "spec_max_draws": 12,
    "uq": {
        "n": 240,
        "blocks": [24, 48],
        "layouts": ["diagonal"],
        "replicates": 6,
        "base_seed": 123,
        "ci": 0.95,
        "with_measured": True,
    },
}


def build() -> dict:
    cost_model = CalibratedCostModel()
    posterior = calibrate_emulator(MEIKO_CS2, cost_model, **CONFIG["calib"])
    spec = posterior.to_spec(max_draws=CONFIG["spec_max_draws"])
    uq_cfg = CONFIG["uq"]
    result = run_uq(
        uq_cfg["n"], uq_cfg["blocks"], uq_cfg["layouts"],
        MEIKO_CS2, cost_model,
        spec=spec,
        replicates=uq_cfg["replicates"],
        ci=uq_cfg["ci"],
        base_seed=uq_cfg["base_seed"],
        with_measured=uq_cfg["with_measured"],
    )
    return {
        "config": CONFIG,
        "posterior": {
            "fingerprint": posterior.fingerprint(),
            "spec_fingerprint": spec.fingerprint(),
            "accept_rate": posterior.accept_rate,
            "summary": posterior.summary(0.9),
            "point_fit": posterior.point_fit.to_dict(),
        },
        "uq_summaries": result.to_rows(),
        "uq_summary_sha256": result.summary_digest(),
        "uq_results_sha256": result.replicate_digest(),
    }


if __name__ == "__main__":
    out = Path(__file__).parent / "calib_golden_fig7.json"
    out.write_text(json.dumps(build(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

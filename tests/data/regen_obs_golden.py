"""Regenerate the observability golden exports (``obs_golden/``).

Run from the repo root only after an *intentional* change to what the
tracer records (new event fields, changed attrs, different ordering):

    PYTHONPATH=src python tests/data/regen_obs_golden.py

The goldens pin the exact Chrome-trace / JSONL / CSV bytes of an
unfiltered traced run — one ``ProgramSimulator`` (standard mode), one
DES cross-check run (causal mode), one ``MachineEmulator`` execution and
one tree-broadcast on the active-message machine, all into a single
tracer.  Everything in the run is seeded and simulated-time only (no
wall-clock spans), so the exports are bit-reproducible across hosts.

``tests/test_obs_sampling.py`` compares fresh exports against these
files byte for byte; the ring-buffer tracer's deferred encoding must be
indistinguishable from the original eager dataclass emission.
"""

from pathlib import Path

from repro.apps.gauss import GEConfig, build_ge_trace
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.collectives import binomial_broadcast_pattern, simulate_tree_broadcast
from repro.core.program_sim import ProgramSimulator
from repro.layouts import LAYOUTS
from repro.machine import MachineEmulator
from repro.obs import (
    Tracer,
    tracing,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "obs_golden"

#: the pinned workload — mirror any change in test_obs_sampling.py
N, B, LAYOUT, P = 120, 24, "block2d", 4


def record() -> Tracer:
    """The golden run: every engine family into one event stream."""
    trace = build_ge_trace(GEConfig(n=N, b=B, layout=LAYOUTS[LAYOUT](N // B, P)))
    tracer = Tracer()
    with tracing(tracer):
        ProgramSimulator(MEIKO_CS2, CalibratedCostModel(), mode="standard").run(trace)
        ProgramSimulator(MEIKO_CS2, CalibratedCostModel(), mode="causal").run(trace)
        MachineEmulator(MEIKO_CS2, CalibratedCostModel()).run(trace)
        simulate_tree_broadcast(MEIKO_CS2, binomial_broadcast_pattern(P, size=1160))
    return tracer


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    tracer = record()
    # metrics are deliberately not embedded: the goldens pin the *event*
    # stream; the metrics registry gained per-category telemetry counters
    # after these files were first recorded.
    write_chrome_trace(tracer.events, GOLDEN_DIR / "chrome.json")
    write_events_jsonl(tracer.events, GOLDEN_DIR / "events.jsonl")
    write_events_csv(tracer.events, GOLDEN_DIR / "events.csv")
    print(f"wrote {GOLDEN_DIR}: {len(tracer.events)} events")


if __name__ == "__main__":
    main()

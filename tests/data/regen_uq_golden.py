"""Regenerate the UQ golden file (``uq_golden_fig7.json``).

Run from the repo root after an *intentional* change to the timing
semantics, the perturbation model or the reduction:

    PYTHONPATH=src python tests/data/regen_uq_golden.py

The golden pins the complete UQ summaries (every statistic of every
metric, exact float equality — the RNG is seeded, so there is no
tolerance to fudge) for a small Figure 7 slice, plus the replicate-level
and summary digests.  ``tests/test_uq_golden.py`` must pass afterwards;
commit the regenerated JSON together with the change that moved it.
"""

import json
from pathlib import Path

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.uq import UQSpec, run_uq

#: the pinned configuration — mirror any change in test_uq_golden.py
CONFIG = {
    "n": 240,
    "blocks": [24, 48],
    "layouts": ["diagonal"],
    "replicates": 6,
    "base_seed": 123,
    "ci": 0.95,
    "spec": {"sigma": 0.1, "op_sigma": 0.05},
    "with_measured": True,
}


def build() -> dict:
    spec = UQSpec(**CONFIG["spec"])
    result = run_uq(
        CONFIG["n"], CONFIG["blocks"], CONFIG["layouts"],
        MEIKO_CS2, CalibratedCostModel(),
        spec=spec,
        replicates=CONFIG["replicates"],
        ci=CONFIG["ci"],
        base_seed=CONFIG["base_seed"],
        with_measured=CONFIG["with_measured"],
    )
    return {
        "config": CONFIG,
        "summaries": result.to_rows(),
        "summary_sha256": result.summary_digest(),
        "results_sha256": result.replicate_digest(),
    }


if __name__ == "__main__":
    out = Path(__file__).parent / "uq_golden_fig7.json"
    out.write_text(json.dumps(build(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

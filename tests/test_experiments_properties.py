"""Property-based tests for the concurrency-safe ExperimentStore.

Uses hypothesis when available (it is in the test extras); without it,
the same properties run over seeded random grids so the suite never goes
dark on a minimal environment.  Compute-free throughout: summaries are
synthesised, never simulated, so hundreds of examples stay cheap.
"""

import json
import os
import random
import threading

import pytest

import repro.experiments as experiments
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.experiments import ExperimentStore, PointSummary

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - test extras absent
    HAVE_HYPOTHESIS = False

PARAMS = MEIKO_CS2
CM = CalibratedCostModel()

LAYOUT_NAMES = ["block2d", "column", "diagonal", "stripped"]


def make_summary(n, b, layout, seed, value):
    """A synthetic summary whose payload is a function of ``value``."""
    return PointSummary(
        n=n, b=b, layout=layout, seed=seed,
        pred_standard_total=value,
        pred_standard_comp=value / 2,
        pred_standard_comm=value / 2,
        pred_worstcase_total=value * 2,
        pred_worstcase_comm=value,
    )


def seeded_examples(count=50, rng_seed=0):
    """Fallback example stream when hypothesis is unavailable."""
    rng = random.Random(rng_seed)
    for _ in range(count):
        b = rng.choice([10, 12, 15, 20, 24, 30, 40, 48, 60])
        yield (
            b * rng.randint(1, 40),
            b,
            rng.choice(LAYOUT_NAMES),
            rng.randint(0, 9),
            rng.uniform(1e-3, 1e9),
        )


if HAVE_HYPOTHESIS:
    point_config = st.tuples(
        st.integers(min_value=1, max_value=200).flatmap(
            lambda mult: st.integers(min_value=1, max_value=160).map(
                lambda b: (b * mult, b)
            )
        ),
        st.sampled_from(LAYOUT_NAMES),
        st.integers(min_value=0, max_value=99),
        st.floats(min_value=1e-6, max_value=1e12,
                  allow_nan=False, allow_infinity=False),
    ).map(lambda t: (t[0][0], t[0][1], t[1], t[2], t[3]))


class TestRoundTrip:
    """put/get is the identity on every representable summary."""

    def check(self, tmp_path, n, b, layout, seed, value):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        summary = make_summary(n, b, layout, seed, value)
        store.put(summary, with_measured=False)
        assert store.get(n, b, layout, seed=seed, with_measured=False) == summary

    if HAVE_HYPOTHESIS:
        @settings(max_examples=50, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(cfg=point_config)
        def test_round_trip(self, tmp_path, cfg):
            self.check(tmp_path, *cfg)
    else:  # pragma: no cover - hypothesis available in CI
        @pytest.mark.parametrize("cfg", list(seeded_examples()))
        def test_round_trip(self, tmp_path, cfg):
            self.check(tmp_path, *cfg)

    def test_measured_flag_distinguishes_entries(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        a = make_summary(120, 24, "diagonal", 0, 1.0)
        b = make_summary(120, 24, "diagonal", 0, 2.0)
        store.put(a, with_measured=False)
        store.put(b, with_measured=True)
        assert store.get(120, 24, "diagonal", with_measured=False) == a
        assert store.get(120, 24, "diagonal", with_measured=True) == b


class TestKeyStability:
    def test_key_independent_of_kwarg_order(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        assert (
            store.key(120, 24, "diagonal", seed=3, with_measured=False)
            == store.key(120, 24, "diagonal", with_measured=False, seed=3)
            == store.key(n=120, with_measured=False, layout="diagonal", seed=3, b=24)
        )

    def test_key_distinguishes_every_axis(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        base = store.key(120, 24, "diagonal", seed=0, with_measured=True)
        variants = [
            store.key(240, 24, "diagonal", seed=0, with_measured=True),
            store.key(120, 40, "diagonal", seed=0, with_measured=True),
            store.key(120, 24, "stripped", seed=0, with_measured=True),
            store.key(120, 24, "diagonal", seed=1, with_measured=True),
            store.key(120, 24, "diagonal", seed=0, with_measured=False),
        ]
        assert len({base, *variants}) == 6

    def test_key_stable_across_store_instances(self, tmp_path):
        a = ExperimentStore(tmp_path, PARAMS, CM)
        b = ExperimentStore(tmp_path, PARAMS, CM)
        assert a.key(120, 24, "diagonal") == b.key(120, 24, "diagonal")


class TestStoreVersion:
    def test_version_bump_invalidates_entries(self, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        store.put(make_summary(120, 24, "diagonal", 0, 1.0), with_measured=False)
        assert store.cached_count() == 1

        monkeypatch.setattr(experiments, "STORE_VERSION", experiments.STORE_VERSION + 1)
        bumped = ExperimentStore(tmp_path, PARAMS, CM)
        assert bumped.cached_count() == 0
        assert bumped.get(120, 24, "diagonal", with_measured=False) is None


class TestConcurrency:
    def test_concurrent_put_get_round_trips(self, tmp_path):
        """Hammer one store from many threads: every read is a complete
        value that some thread wrote — never a torn or truncated one."""
        store = ExperimentStore(tmp_path, PARAMS, CM)
        keys = [(120, b, "diagonal", s) for b in (24, 40, 60) for s in (0, 1)]
        valid = {k: {make_summary(*k, v) for v in (1.0, 2.0, 3.0)} for k in keys}
        errors = []

        def writer(tid):
            rng = random.Random(tid)
            for _ in range(30):
                k = rng.choice(keys)
                store.put(make_summary(*k, rng.choice([1.0, 2.0, 3.0])),
                          with_measured=False)

        def reader(tid):
            rng = random.Random(100 + tid)
            for _ in range(60):
                k = rng.choice(keys)
                got = store.get(*k[:3], seed=k[3], with_measured=False)
                if got is not None and got not in valid[k]:
                    errors.append(got)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        threads += [threading.Thread(target=reader, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.cached_count() == len(keys)
        for k in keys:
            assert store.get(*k[:3], seed=k[3], with_measured=False) in valid[k]


class TestAtomicity:
    """Regression for the pre-sweep plain-JSON write: a crash mid-write
    must never leave a truncated entry behind."""

    def test_crash_before_publish_leaves_old_value(self, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        original = make_summary(120, 24, "diagonal", 0, 1.0)
        store.put(original, with_measured=False)

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr(experiments.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            store.put(make_summary(120, 24, "diagonal", 0, 9.0),
                      with_measured=False)
        monkeypatch.undo()

        # the old entry is intact, and no temp debris counts as an entry
        assert store.get(120, 24, "diagonal", with_measured=False) == original
        assert store.cached_count() == 1
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]

    def test_crash_on_fresh_entry_leaves_nothing(self, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        monkeypatch.setattr(
            experiments.os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            store.put(make_summary(120, 24, "diagonal", 0, 1.0),
                      with_measured=False)
        monkeypatch.undo()
        assert store.get(120, 24, "diagonal", with_measured=False) is None
        assert store.cached_count() == 0
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]

    def test_truncated_entry_reads_as_miss_and_heals(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        summary = make_summary(120, 24, "diagonal", 0, 1.0)
        path = store.put(summary, with_measured=False)

        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # simulate torn legacy write
        assert store.get(120, 24, "diagonal", with_measured=False) is None

        store.put(summary, with_measured=False)
        assert store.get(120, 24, "diagonal", with_measured=False) == summary

    def test_wrong_schema_entry_reads_as_miss(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        path = store.put(make_summary(120, 24, "diagonal", 0, 1.0),
                         with_measured=False)
        path.write_text(json.dumps({"not": "a summary"}))
        assert store.get(120, 24, "diagonal", with_measured=False) is None

"""Direct unit tests for the shared seeded-sampler layer (`repro.uq.sampler`).

The jitter/straggler draw powering :class:`JitteredNetwork` lived inline
in the network for two PRs without its own tests; now that it is the
shared primitive under both the emulator and the UQ engine, it gets the
battery it always needed: seed determinism, distribution sanity,
straggler frequency bounds, and bit-compatibility with the original
inline implementation.
"""

import numpy as np
import pytest

from repro.core import MEIKO_CS2
from repro.core.message import Message
from repro.machine import JitteredNetwork
from repro.uq import (
    apply_jitter,
    child_rng,
    derive_seed,
    jitter_normalizer,
    lognormal_multiplier,
    replicate_seeds,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1, "b") == derive_seed("a", 1, "b")

    def test_key_sensitivity(self):
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert derive_seed("a", 1) != derive_seed("b", 1)

    def test_no_concatenation_collision(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_range_is_uint64(self):
        for keys in (("x",), (0,), ("uq", 123, "L")):
            s = derive_seed(*keys)
            assert 0 <= s < 2**64

    def test_rejects_bad_keys(self):
        with pytest.raises(ValueError):
            derive_seed()
        with pytest.raises(TypeError):
            derive_seed(1.5)

    def test_child_rng_streams_independent(self):
        a = child_rng("s", 0, "L").random(4)
        b = child_rng("s", 0, "G").random(4)
        assert not np.allclose(a, b)
        again = child_rng("s", 0, "L").random(4)
        assert np.array_equal(a, again)


class TestReplicateSeeds:
    def test_deterministic_spec_collapses_to_base(self):
        assert replicate_seeds(7, 5, deterministic=True) == (7,) * 5

    def test_stochastic_seeds_distinct_and_stable(self):
        seeds = replicate_seeds(7, 16)
        assert len(set(seeds)) == 16
        assert seeds == replicate_seeds(7, 16)

    def test_base_seed_changes_everything(self):
        assert not set(replicate_seeds(0, 8)) & set(replicate_seeds(1, 8))

    def test_rejects_zero_replicates(self):
        with pytest.raises(ValueError):
            replicate_seeds(0, 0)


class TestLognormalMultiplier:
    def test_sigma_zero_is_exactly_one_without_draw(self):
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        assert lognormal_multiplier(rng, 0.0) == 1.0
        assert rng.bit_generator.state == state

    def test_mean_is_one(self):
        rng = np.random.default_rng(42)
        draws = [lognormal_multiplier(rng, 0.3) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(1.0, rel=0.02)

    def test_spread_grows_with_sigma(self):
        lo = np.std([lognormal_multiplier(child_rng("m", i), 0.05) for i in range(4000)])
        hi = np.std([lognormal_multiplier(child_rng("m", i), 0.30) for i in range(4000)])
        assert hi > lo

    def test_positive(self):
        rng = np.random.default_rng(3)
        assert all(lognormal_multiplier(rng, 1.0) > 0 for _ in range(1000))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            lognormal_multiplier(np.random.default_rng(0), -0.1)


class TestApplyJitter:
    def test_zero_knobs_identity_and_no_draws(self):
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        assert apply_jitter(9.0, rng, 0.0) == 9.0
        assert rng.bit_generator.state == state

    def test_seed_determinism(self):
        a = [apply_jitter(1.0, np.random.default_rng(5), 0.2, 0.1, 2.0)]
        b = [apply_jitter(1.0, np.random.default_rng(5), 0.2, 0.1, 2.0)]
        assert a == b

    def test_straggler_frequency_matches_probability(self):
        rng = np.random.default_rng(11)
        prob, factor = 0.25, 3.0
        hits = sum(
            apply_jitter(1.0, rng, 0.0, prob, factor) == factor
            for _ in range(20000)
        )
        assert hits / 20000 == pytest.approx(prob, abs=0.02)

    def test_straggler_prob_bounds(self):
        rng = np.random.default_rng(0)
        assert all(apply_jitter(1.0, rng, 0.0, 0.0, 5.0) == 1.0 for _ in range(100))
        rng = np.random.default_rng(0)
        assert all(apply_jitter(1.0, rng, 0.0, 1.0, 5.0) == 5.0 for _ in range(100))

    def test_normalized_mean_preserved(self):
        sigma, prob, factor = 0.2, 0.1, 2.5
        norm = jitter_normalizer(sigma, prob, factor)
        rng = np.random.default_rng(123)
        draws = [
            apply_jitter(9.0 * norm, rng, sigma, prob, factor) for _ in range(40000)
        ]
        assert np.mean(draws) == pytest.approx(9.0, rel=0.02)


class TestNetworkUsesSharedSampler:
    """The extraction must be bit-invisible to the emulated network."""

    def _reference_latency(self, net, rng):
        """The pre-extraction inline implementation, verbatim."""
        lat = net.params.L * net._norm
        if net.jitter_sigma:
            lat *= float(np.exp(rng.normal(0.0, net.jitter_sigma)))
        if net.straggler_prob and rng.random() < net.straggler_prob:
            lat *= net.straggler_factor
        return lat

    def test_latency_bit_identical_to_inline_implementation(self):
        msg = Message(src=0, dst=1, size=1160, uid=0)
        net = JitteredNetwork(params=MEIKO_CS2, seed=42)
        ref_rng = np.random.default_rng(42)
        ref_net = JitteredNetwork(params=MEIKO_CS2, seed=42)
        for _ in range(500):
            assert net.latency_of(msg) == self._reference_latency(ref_net, ref_rng)

    def test_normalizer_matches_inline_formula(self):
        net = JitteredNetwork(
            params=MEIKO_CS2, jitter_sigma=0.2, straggler_prob=0.05,
            straggler_factor=3.0,
        )
        lognormal_mean = float(np.exp(0.2**2 / 2.0))
        straggler_mean = 1.0 + 0.05 * (3.0 - 1.0)
        assert net._norm == 1.0 / (lognormal_mean * straggler_mean)

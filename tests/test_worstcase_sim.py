"""Tests for the overestimation (worst-case) algorithm (paper section 4.2)."""

import pytest

from repro.apps import random_pattern, ring_pattern, sample_pattern
from repro.core import (
    MEIKO_CS2,
    CommPattern,
    LogGPParameters,
    OpKind,
    simulate_standard,
    simulate_worstcase,
)
from repro.core.worstcase_sim import WorstCaseSimulator

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=8)


class TestBasics:
    def test_single_message_equals_standard(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        wc = simulate_worstcase(PARAMS, pat)
        std = simulate_standard(PARAMS, pat)
        assert wc.completion_time == pytest.approx(std.completion_time)

    def test_invariants_on_sample_pattern(self):
        pat = sample_pattern()
        res = simulate_worstcase(MEIKO_CS2, pat)
        res.timeline.validate(pat.messages)

    def test_empty_pattern(self):
        res = simulate_worstcase(PARAMS, CommPattern(3))
        assert res.completion_time == 0.0
        assert res.timeline.events == []

    def test_local_messages_skipped(self):
        pat = CommPattern(2, edges=[(1, 1, 5)])
        res = simulate_worstcase(PARAMS, pat)
        assert res.completion_time == 0.0
        assert len(res.skipped_local) == 1


class TestWaitForAllReceives:
    def test_sends_happen_after_all_receives(self):
        """Core section 4.2 semantics: on a DAG, a processor transmits only
        after it has performed every receive it expects."""
        pat = sample_pattern()
        res = simulate_worstcase(MEIKO_CS2, pat)
        expected = {p: pat.in_degree(p) for p in range(pat.num_procs)}
        for p in res.timeline.participants():
            ops = res.timeline.events_of(p)
            first_send = next((e for e in ops if e.kind is OpKind.SEND), None)
            if first_send is None:
                continue
            recvs_before = sum(
                1 for e in ops if e.kind is OpKind.RECV and e.end <= first_send.start
            )
            assert recvs_before == expected[p], f"P{p} sent before receiving all"

    def test_chain_is_fully_serialised(self):
        # 0 -> 1 -> 2: under worst case, P1 sends only after its receive.
        pat = CommPattern(3, edges=[(0, 1, 1), (1, 2, 1)])
        res = simulate_worstcase(PARAMS, pat)
        p1_ops = res.timeline.events_of(1)
        assert [e.kind for e in p1_ops] == [OpKind.RECV, OpKind.SEND]
        # recv ends at 14; send at 14 + (max(o,g)-o) = 17; arrival 29; done 31
        assert res.completion_time == pytest.approx(31.0)

    def test_worstcase_exceeds_standard_on_sample(self):
        pat = sample_pattern()
        std = simulate_standard(MEIKO_CS2, pat)
        wc = simulate_worstcase(MEIKO_CS2, pat)
        assert wc.completion_time > std.completion_time

    def test_gap_between_concurrent_arrivals(self):
        """Paper: a processor receiving two concurrently arriving messages
        delays the second to fulfil the gap requirement."""
        pat = CommPattern(3, edges=[(0, 2, 1), (1, 2, 1)])
        res = simulate_worstcase(PARAMS, pat)
        r1, r2 = res.timeline.recvs()
        assert r2.start >= r1.end + PARAMS.g - 1e-9


class TestDeadlockBreaking:
    def test_ring_completes(self):
        """A cycle would deadlock the wait-for-all rule; forced random
        transmissions must break it (paper section 4.2)."""
        pat = ring_pattern(5, size=1)
        res = simulate_worstcase(PARAMS, pat, seed=3)
        res.timeline.validate(pat.messages)
        assert len(res.timeline.sends()) == 5
        assert len(res.timeline.recvs()) == 5

    def test_two_cycle_completes(self):
        pat = CommPattern(2, edges=[(0, 1, 1), (1, 0, 1)])
        res = simulate_worstcase(PARAMS, pat)
        res.timeline.validate(pat.messages)

    def test_mixed_cycle_and_dag_completes(self):
        pat = CommPattern(4, edges=[(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 3, 1)])
        res = simulate_worstcase(PARAMS, pat, seed=11)
        res.timeline.validate(pat.messages)

    def test_deterministic_under_seed(self):
        pat = ring_pattern(6, size=8)
        a = simulate_worstcase(PARAMS, pat, seed=5)
        b = simulate_worstcase(PARAMS, pat, seed=5)
        assert a.completion_time == b.completion_time


class TestUpperBoundProperty:
    @pytest.mark.parametrize("trial", range(25))
    def test_never_below_standard_on_random_patterns(self, trial):
        pat = random_pattern(6, 12, seed=trial)
        std = simulate_standard(PARAMS, pat, seed=trial)
        wc = simulate_worstcase(PARAMS, pat, seed=trial)
        assert wc.completion_time >= std.completion_time - 1e-9

    def test_class_interface(self):
        pat = sample_pattern()
        sim = WorstCaseSimulator(MEIKO_CS2)
        res = sim.run(pat)
        res.timeline.validate(pat.messages)

"""The prediction service: tiers, stats, hermetic HTTP, and the client.

No sockets anywhere in this file: the HTTP tests drive the real request
handler (``make_handler`` — the same class a ``ThreadingHTTPServer``
would instantiate) over in-memory byte streams, so what is asserted on
is byte-identical to what a socket client would read.
"""

import io
import json

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.predictor import summarize_ge_point
from repro.serve import (
    PredictionClient,
    PredictionError,
    PredictionService,
    ServeConfig,
    make_handler,
    point_digest,
)

CM = CalibratedCostModel()

DOC = {"n": 120, "b": 30, "layout": "diagonal"}


def make_service(tmp_path, **overrides) -> PredictionService:
    overrides.setdefault("store_dir", str(tmp_path / "store"))
    overrides.setdefault("batch_window_s", 0.002)
    return PredictionService(ServeConfig(**overrides))


# -- hermetic HTTP transport --------------------------------------------------
class _Channel:
    """An in-memory two-way byte stream standing in for a socket."""

    def __init__(self, raw: bytes):
        self._rf = io.BytesIO(raw)
        self.wf = io.BytesIO()

    def makefile(self, mode, *args, **kwargs):
        return self._rf if "r" in mode else self.wf

    def sendall(self, data):  # unbuffered wfile writes go through here
        self.wf.write(data)


def http(service, method: str, path: str, body=None):
    """One request through the live handler class; returns (status, doc)."""
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    if body is not None:
        payload = (
            body if isinstance(body, bytes) else json.dumps(body).encode()
        )
        head += (
            f"Content-Length: {len(payload)}\r\n"
            "Content-Type: application/json\r\n\r\n"
        )
        raw = head.encode() + payload
    else:
        raw = (head + "\r\n").encode()
    channel = _Channel(raw)
    make_handler(service)(channel, ("127.0.0.1", 0), None)
    response = channel.wf.getvalue()
    status_line, _, rest = response.partition(b"\r\n")
    _, _, response_body = response.partition(b"\r\n\r\n")
    return int(status_line.split()[1]), json.loads(response_body)


class TestTiers:
    def test_cold_warm_store_progression(self, tmp_path):
        with make_service(tmp_path) as service:
            cold = service.handle(DOC)
            warm = service.handle(DOC)
        assert cold["status"] == warm["status"] == "ok"
        assert cold["cache"] == {"tier": "computed", "hit": False}
        assert warm["cache"] == {"tier": "memory", "hit": True}
        assert cold["digest"] == warm["digest"]
        # a fresh service over the same store answers from tier 2
        with make_service(tmp_path) as reborn:
            stored = reborn.handle(DOC)
        assert stored["cache"] == {"tier": "store", "hit": True}
        assert stored["digest"] == cold["digest"]

    def test_served_answer_is_bit_identical_to_direct(self, tmp_path):
        with make_service(tmp_path) as service:
            served = service.handle(DOC)
        direct = summarize_ge_point(
            120, 30, "diagonal", MEIKO_CS2, CM, with_measured=False, seed=0
        )
        assert served["result"] == direct
        assert served["digest"] == point_digest(direct)

    def test_engine_projections_share_one_entry(self, tmp_path):
        with make_service(tmp_path) as service:
            both = service.handle({**DOC, "engine": "both"})
            std = service.handle({**DOC, "engine": "standard"})
            worst = service.handle({**DOC, "engine": "worstcase"})
        assert std["cache"]["tier"] == worst["cache"]["tier"] == "memory"
        assert std["fingerprint"] == worst["fingerprint"] == both["fingerprint"]
        assert set(std["prediction_us"]) == {"standard"}
        assert set(worst["prediction_us"]) == {"worstcase"}
        assert both["prediction_us"]["standard"] == std["prediction_us"]["standard"]
        assert both["prediction_us"]["worstcase"] == worst["prediction_us"]["worstcase"]

    def test_lru_eviction_falls_back_to_store(self, tmp_path):
        with make_service(tmp_path, cache_size=1) as service:
            service.handle(DOC)
            service.handle({**DOC, "b": 20})  # evicts the b=30 entry
            again = service.handle(DOC)
            assert again["cache"]["tier"] == "store"
            assert service.cache.evictions >= 1


class TestStatsAndErrors:
    def test_stats_document(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)
            service.handle(DOC)
            service.handle({"n": 120, "b": 33, "layout": "diagonal"})
            stats = service.stats()
        assert stats["requests"] == {"total": 3, "ok": 2, "error": 1}
        assert stats["tiers"]["computed"] == 1
        assert stats["tiers"]["memory"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["batches"]["count"] == 1
        assert stats["latency_us"]["count"] == 2
        assert stats["latency_us"]["p50"] > 0
        assert stats["cache"]["size"] == 1

    def test_malformed_request_is_a_400_document(self, tmp_path):
        with make_service(tmp_path) as service:
            bad = service.handle({"n": 120, "b": 30, "layout": "spiral"})
            assert (bad["status"], bad["code"]) == ("error", 400)
            assert "spiral" in bad["error"]
            # the service stays healthy afterwards
            assert service.handle(DOC)["status"] == "ok"

    def test_response_carries_manifest_and_batch_provenance(self, tmp_path):
        with make_service(
            tmp_path, manifest_dir=str(tmp_path / "runs")
        ) as service:
            cold = service.handle(DOC)
            warm = service.handle(DOC)
        for response in (cold, warm):
            manifest = json.loads(open(response["manifest"]).read())
            assert manifest["command"] == "serve.request"
            assert manifest["extra"]["digest"] == response["digest"]
            assert manifest["workload"] == response["request"]
        assert cold["manifest"] != warm["manifest"]
        # both answers reference the one batch that computed the entry
        assert warm["batch"] == cold["batch"]
        batch_manifest = json.loads(open(cold["batch"]["manifest"]).read())
        assert batch_manifest["command"] == "serve.batch"
        assert batch_manifest["extra"]["batch"]["computed"] == 1


class TestHermeticHTTP:
    def test_predict_roundtrip(self, tmp_path):
        with make_service(tmp_path) as service:
            status, doc = http(service, "POST", "/v1/predict", DOC)
            assert status == 200
            assert doc["status"] == "ok"
            assert doc["cache"]["tier"] == "computed"
            direct = summarize_ge_point(
                120, 30, "diagonal", MEIKO_CS2, CM, with_measured=False
            )
            assert doc["digest"] == point_digest(direct)

    def test_healthz_stats_and_404(self, tmp_path):
        with make_service(tmp_path) as service:
            service.handle(DOC)
            assert http(service, "GET", "/healthz") == (
                200, {"schema": "repro.serve/v1", "status": "ok"},
            )
            status, stats = http(service, "GET", "/v1/stats")
            assert status == 200 and stats["requests"]["ok"] == 1
            status, doc = http(service, "GET", "/v1/missing")
            assert status == 404 and doc["status"] == "error"
            status, doc = http(service, "POST", "/v1/missing", DOC)
            assert status == 404

    def test_http_error_codes_mirror_documents(self, tmp_path):
        with make_service(tmp_path) as service:
            status, doc = http(
                service, "POST", "/v1/predict",
                {"n": 120, "b": 33, "layout": "diagonal"},
            )
            assert status == 400 and doc["code"] == 400
            status, doc = http(service, "POST", "/v1/predict", b"{nope")
            assert status == 400 and "not JSON" in doc["error"]


class TestClient:
    def test_in_process_client(self, tmp_path):
        with make_service(tmp_path) as service:
            client = PredictionClient.in_process(service)
            answer = client.predict(n=120, b=30, layout="diagonal")
            assert answer.ok and answer.cache_tier == "computed"
            assert answer.prediction_us["standard"] == answer.row["pred_standard_total"]
            again = client.predict(n=120, b=30, layout="diagonal")
            assert again.cache_hit and again.digest == answer.digest
            assert client.stats()["requests"]["ok"] == 2

    def test_client_machine_and_loose_documents(self, tmp_path):
        with make_service(tmp_path) as service:
            client = PredictionClient.in_process(service)
            small = client.predict(n=120, b=30, layout="diagonal",
                                   machine={"P": 4})
            default = client.predict(n=120, b=30, layout="diagonal")
            assert small.fingerprint != default.fingerprint
            loose = client.predict_doc({"b": 30, "layout": "diagonal", "n": 120})
            assert loose.fingerprint == default.fingerprint

    def test_errors_raise_unless_unchecked(self, tmp_path):
        with make_service(tmp_path) as service:
            client = PredictionClient.in_process(service)
            with pytest.raises(PredictionError, match="does not divide"):
                client.predict(n=120, b=33, layout="diagonal")
            unchecked = client.predict(n=120, b=33, layout="diagonal", check=False)
            assert not unchecked.ok

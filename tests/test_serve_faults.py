"""Fault injection against a running prediction server.

Two failure families, both required to leave the service healthy:

* **Damaged store tier.**  An entry corrupted or truncated on disk under
  a live server must read as a miss (the store's self-healing contract)
  and be recomputed bit-identically — never crash a request, never serve
  garbage.
* **Crash mid-batch.**  A cost model that detonates on one block size
  fails its whole batch: every waiting future gets the error as a 500
  document, nothing poisons the cache or the single-flight table, and
  points persisted before the crash are resumed from the store by the
  next (healthy) service — the sweep engine's crash-resume pattern
  (`tests/test_sweep_executor.py`) surfacing through the serve layer.
"""

import json
import threading
import time

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.loggp import LogGPParameters
from repro.experiments import ExperimentStore
from repro.serve import PredictionService, ServeConfig
from repro.serve.protocol import _MACHINE_NAME

CM = CalibratedCostModel()

#: the machine as the serve layer resolves it (constant display label)
SERVE_MACHINE = LogGPParameters(
    L=MEIKO_CS2.L, o=MEIKO_CS2.o, g=MEIKO_CS2.g, G=MEIKO_CS2.G,
    P=MEIKO_CS2.P, name=_MACHINE_NAME,
)

BOOM_B = 30

DOC_OK = {"n": 120, "b": 20, "layout": "diagonal"}
DOC_BOOM = {"n": 120, "b": BOOM_B, "layout": "diagonal"}


class ExplodingCostModel(CalibratedCostModel):
    """Detonates on one block size; same fingerprint as the clean model.

    Inheriting the calibrated table keeps :meth:`fingerprint` identical,
    so entries persisted before the crash are store hits for the clean
    model that takes over — the crash-resume pattern of the sweep
    executor suite.
    """

    def cost(self, op: str, b: int) -> float:
        if b == BOOM_B:
            raise RuntimeError("boom: injected mid-batch crash")
        return super().cost(op, b)


def entry_path(store_dir, doc):
    """The on-disk store entry of one request document."""
    store = ExperimentStore(store_dir, SERVE_MACHINE, CM)
    return store_dir / store.key(
        doc["n"], doc["b"], doc["layout"], seed=0, with_measured=False
    )


class TestDamagedStore:
    @pytest.mark.parametrize("damage", ["corrupt", "truncate"])
    def test_self_healing_recompute_under_live_server(self, tmp_path, damage):
        store_dir = tmp_path / "store"
        config = ServeConfig(
            store_dir=str(store_dir), cache_size=1, batch_window_s=0.002
        )
        with PredictionService(config) as service:
            original = service.handle(DOC_OK)
            assert original["cache"]["tier"] == "computed"
            path = entry_path(store_dir, DOC_OK)
            assert path.exists()
            # push the entry out of the LRU so the next read goes to disk
            service.handle({**DOC_OK, "b": 40})
            # damage the entry under the running server
            if damage == "corrupt":
                path.write_text('{"n": 120, "pred_standard_total": "gar')
            else:
                path.write_text("")
            healed = service.handle(DOC_OK)
            # the damaged entry read as a miss and was recomputed,
            # bit-identically, with the file rewritten valid
            assert healed["status"] == "ok"
            assert healed["cache"]["tier"] == "computed"
            assert healed["digest"] == original["digest"]
            assert healed["result"] == original["result"]
            rewritten = json.loads(path.read_text())
            assert rewritten["pred_standard_total"] == (
                original["result"]["pred_standard_total"]
            )
            # and the service keeps answering normally afterwards
            assert service.handle(DOC_OK)["cache"]["tier"] == "memory"

    def test_deleted_entry_recomputes(self, tmp_path):
        store_dir = tmp_path / "store"
        config = ServeConfig(
            store_dir=str(store_dir), cache_size=1, batch_window_s=0.002
        )
        with PredictionService(config) as service:
            original = service.handle(DOC_OK)
            service.handle({**DOC_OK, "b": 40})  # evict from memory
            entry_path(store_dir, DOC_OK).unlink()
            again = service.handle(DOC_OK)
        assert again["cache"]["tier"] == "computed"
        assert again["digest"] == original["digest"]


class TestCrashMidBatch:
    def test_crash_fails_batch_cleanly_and_store_resumes(self, tmp_path):
        store_dir = tmp_path / "store"
        config = ServeConfig(store_dir=str(store_dir), batch_window_s=0.3)
        responses = {}
        with PredictionService(config, cost_model=ExplodingCostModel()) as service:
            # submission order inside the window is load-bearing: the
            # serial group evaluates b=20 first (persisting it) before
            # b=30 detonates — partial progress survives the crash
            def ask(name, doc, delay):
                time.sleep(delay)
                responses[name] = service.handle(doc)

            threads = [
                threading.Thread(target=ask, args=("ok", DOC_OK, 0.0)),
                threading.Thread(target=ask, args=("boom", DOC_BOOM, 0.1)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            # the whole batch failed: both waiters got the error document
            for response in responses.values():
                assert response["status"] == "error"
                assert response["code"] == 500
                assert "boom" in response["error"]

            # nothing was cached and nothing is stuck in flight —
            # a retry of the surviving point recomputes cleanly... from
            # the store, because the serial sweep persisted it pre-crash
            assert len(service.cache) == 0
            assert service.stats()["inflight"] == 0
            retry = service.handle(DOC_OK)
            assert retry["status"] == "ok"
            assert retry["cache"]["tier"] == "store"
            # while the detonating point still fails, cleanly, every time
            assert service.handle(DOC_BOOM)["code"] == 500
            assert service.stats()["inflight"] == 0

        # a healthy service over the same store finishes the batch:
        # the pre-crash point resumes from disk, the rest computes fresh
        with PredictionService(
            ServeConfig(store_dir=str(store_dir), batch_window_s=0.002)
        ) as clean:
            resumed = clean.handle(DOC_OK)
            completed = clean.handle(DOC_BOOM)
        assert resumed["cache"]["tier"] == "store"
        assert resumed["digest"] == retry["digest"]
        assert completed["status"] == "ok"
        assert completed["cache"]["tier"] == "computed"

    def test_error_does_not_poison_other_keys(self, tmp_path):
        config = ServeConfig(
            store_dir=str(tmp_path / "store"), batch_window_s=0.002
        )
        with PredictionService(config, cost_model=ExplodingCostModel()) as service:
            assert service.handle(DOC_BOOM)["status"] == "error"
            ok = service.handle(DOC_OK)
            assert ok["status"] == "ok"
            assert service.stats()["requests"]["error"] == 1

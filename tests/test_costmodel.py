"""Tests for the basic-operation cost models (repro.core.costmodel)."""

import pytest

from repro.blockops import OP_NAMES, calibrated_cost, flop_count
from repro.core import (
    CalibratedCostModel,
    CostModel,
    FlopCostModel,
    MeasuredCostModel,
    TableCostModel,
)

TABLE = {
    op: {10: 100.0 * (i + 1), 20: 800.0 * (i + 1), 40: 6400.0 * (i + 1)}
    for i, op in enumerate(OP_NAMES)
}


class TestTableCostModel:
    def test_exact_lookup(self):
        cm = TableCostModel(TABLE)
        assert cm.cost("op1", 10) == 100.0
        assert cm.cost("op4", 40) == 6400.0 * 4

    def test_cubic_interpolation_between_nodes(self):
        """op1 entries lie exactly on 0.1*b^3, so interpolation in the
        cubic domain must reproduce the cubic at every point."""
        cm = TableCostModel(TABLE)
        assert cm.cost("op1", 15) == pytest.approx(0.1 * 15**3)
        assert cm.cost("op1", 30) == pytest.approx(0.1 * 30**3)

    def test_extrapolation_above(self):
        cm = TableCostModel(TABLE)
        assert cm.cost("op1", 80) == pytest.approx(0.1 * 80**3)

    def test_extrapolation_below_clamped_nonnegative(self):
        cm = TableCostModel({"op1": {10: 5.0, 20: 1000.0}})
        assert cm.cost("op1", 2) >= 0.0

    def test_single_entry_scales_cubically(self):
        cm = TableCostModel({"op1": {10: 100.0}})
        assert cm.cost("op1", 20) == pytest.approx(800.0)

    def test_unknown_op_rejected(self):
        cm = TableCostModel(TABLE)
        with pytest.raises(ValueError, match="not in cost table"):
            cm.cost("nonsense", 10)

    def test_custom_op_sets_allowed(self):
        cm = TableCostModel({"jacobi": {8: 50.0}})
        assert cm.cost("jacobi", 8) == 50.0

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TableCostModel({})

    def test_empty_op_entries_rejected(self):
        with pytest.raises(ValueError):
            TableCostModel({"op1": {}})

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            TableCostModel({"op1": {10: -1.0}})

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            TableCostModel({"op1": {0: 1.0}})
        cm = TableCostModel(TABLE)
        with pytest.raises(ValueError):
            cm.cost("op1", 0)

    def test_block_sizes_property(self):
        cm = TableCostModel(TABLE)
        assert cm.block_sizes["op1"] == [10, 20, 40]

    def test_satisfies_protocol(self):
        assert isinstance(TableCostModel(TABLE), CostModel)


class TestCalibratedCostModel:
    """The Figure 6 shape claims (see DESIGN.md)."""

    cm = CalibratedCostModel()

    def test_matches_calibration_function(self):
        assert self.cm.cost("op2", 48) == calibrated_cost("op2", 48)

    def test_op1_most_expensive_for_small_blocks(self):
        costs = {op: self.cm.cost(op, 10) for op in OP_NAMES}
        assert max(costs, key=costs.get) == "op1"

    def test_op4_most_expensive_for_large_blocks(self):
        costs = {op: self.cm.cost(op, 160) for op in OP_NAMES}
        assert max(costs, key=costs.get) == "op4"

    def test_crossover_happens_mid_range(self):
        """The paper: the most expensive op *changes* with the block size,
        with the changeover near b ~ 60."""
        diffs = {b: self.cm.cost("op1", b) - self.cm.cost("op4", b) for b in range(10, 161)}
        crossings = [
            b for b in range(11, 161) if (diffs[b - 1] > 0) != (diffs[b] > 0)
        ]
        assert len(crossings) == 1
        assert 40 <= crossings[0] <= 80

    def test_large_block_ratio_about_two(self):
        ratio = self.cm.cost("op4", 160) / self.cm.cost("op1", 160)
        assert 1.5 <= ratio <= 2.2

    def test_monotone_in_block_size(self):
        for op in OP_NAMES:
            costs = [self.cm.cost(op, b) for b in (10, 20, 40, 80, 160)]
            assert costs == sorted(costs)

    def test_table_materialisation(self):
        table = self.cm.table([10, 20])
        assert table["op3"][20] == self.cm.cost("op3", 20)


class TestFlopCostModel:
    def test_linear_in_flops(self):
        cm = FlopCostModel(us_per_flop=0.5)
        assert cm.cost("op4", 10) == pytest.approx(0.5 * flop_count("op4", 10))

    def test_no_crossover_ever(self):
        """Ablation: a pure-flop model cannot reproduce the Figure 6
        crossover; Op4 dominates Op1 at every size."""
        cm = FlopCostModel()
        for b in (5, 10, 50, 100, 200):
            assert cm.cost("op4", b) > cm.cost("op1", b)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlopCostModel(us_per_flop=0.0)
        with pytest.raises(ValueError):
            FlopCostModel().cost("op1", 0)
        with pytest.raises(ValueError):
            FlopCostModel().cost("bogus", 10)


class TestMeasuredCostModel:
    def test_positive_and_memoised(self):
        cm = MeasuredCostModel(repeats=1)
        first = cm.cost("op4", 16)
        second = cm.cost("op4", 16)
        assert first > 0
        assert first == second  # memoised, not re-measured

    def test_to_table_freezes_measurements(self):
        cm = MeasuredCostModel(repeats=1)
        table = cm.to_table([8, 16])
        assert table.cost("op1", 8) == cm.cost("op1", 8)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            MeasuredCostModel(repeats=1).cost("bogus", 8)

"""Tests for program traces (repro.trace)."""

import pytest

from repro.core import CommPattern
from repro.trace import ProgramTrace, Step, TraceBuilder, Work


class TestWork:
    def test_fields(self):
        w = Work(op="op1", b=16, block=(2, 3), iteration=1)
        assert (w.op, w.b, w.block, w.iteration) == ("op1", 16, (2, 3), 1)

    def test_empty_op_rejected(self):
        with pytest.raises(ValueError):
            Work(op="", b=16)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            Work(op="op1", b=0)

    def test_custom_op_names_allowed(self):
        Work(op="jacobi", b=8)  # any finite op set is legal (paper §2)


class TestStep:
    def test_ops_of_missing_proc_is_empty(self):
        step = Step(work={0: [Work(op="op1", b=4)]})
        assert step.ops_of(0)
        assert step.ops_of(1) == ()

    def test_total_ops(self):
        step = Step(work={0: [Work(op="op1", b=4)], 1: [Work(op="op2", b=4)] * 3})
        assert step.total_ops() == 4

    def test_participants_include_communicators(self):
        pat = CommPattern(4, edges=[(2, 3, 1)])
        step = Step(work={0: [Work(op="op1", b=4)]}, pattern=pat)
        assert step.participants() == {0, 2, 3}


class TestProgramTrace:
    def test_add_step_validates_proc_range(self):
        trace = ProgramTrace(num_procs=2)
        with pytest.raises(ValueError):
            trace.add_step(Step(work={5: [Work(op="op1", b=4)]}))

    def test_add_step_validates_pattern_size(self):
        trace = ProgramTrace(num_procs=2)
        with pytest.raises(ValueError):
            trace.add_step(Step(pattern=CommPattern(3)))

    def test_aggregates(self):
        trace = ProgramTrace(num_procs=2)
        trace.add_step(
            Step(
                work={0: [Work(op="op1", b=4), Work(op="op4", b=4)]},
                pattern=CommPattern(2, edges=[(0, 1, 10), (1, 1, 20)]),
            )
        )
        trace.add_step(Step(work={1: [Work(op="op4", b=4)]}))
        assert trace.total_ops() == 3
        assert trace.total_messages() == 2
        assert trace.total_messages(include_local=False) == 1
        assert trace.total_bytes() == 30
        assert trace.op_histogram() == {"op1": 1, "op4": 2}

    def test_blocks_by_proc(self):
        trace = ProgramTrace(num_procs=2)
        trace.add_step(
            Step(work={0: [Work(op="op1", b=4, block=(0, 0)), Work(op="op4", b=4, block=(1, 1))]})
        )
        trace.add_step(Step(work={0: [Work(op="op4", b=4, block=(0, 0))]}))
        blocks = trace.blocks_by_proc()
        assert blocks[0] == {(0, 0): 4, (1, 1): 4}

    def test_anonymous_blocks_ignored_in_footprint(self):
        trace = ProgramTrace(num_procs=1)
        trace.add_step(Step(work={0: [Work(op="op1", b=4)]}))
        assert trace.blocks_by_proc().get(0, {}) == {}

    def test_validate_passes_on_well_formed(self):
        trace = ProgramTrace(num_procs=2)
        trace.add_step(Step(work={0: [Work(op="op1", b=4)]}, pattern=CommPattern(2)))
        trace.validate()

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            ProgramTrace(num_procs=0)

    def test_iteration_and_len(self):
        trace = ProgramTrace(num_procs=1)
        trace.add_step(Step())
        trace.add_step(Step())
        assert len(trace) == 2
        assert len(list(trace)) == 2


class TestTraceBuilder:
    def test_basic_flow(self):
        tb = TraceBuilder(num_procs=3)
        tb.work(0, "op1", 8, block=(0, 0), iteration=0)
        tb.message(0, 1, 512)
        tb.end_step(label="first")
        tb.work(1, "op2", 8)
        trace = tb.build(meta={"app": "test"})
        assert len(trace) == 2  # trailing step flushed
        assert trace.steps[0].label == "first"
        assert trace.meta["app"] == "test"
        assert trace.total_messages() == 1

    def test_send_resolves_owners(self):
        tb = TraceBuilder(num_procs=4)
        owner = lambda i, j: (i + j) % 4
        tb.send((0, 0), (0, 1), owner, size=64)
        trace = tb.build()
        (msg,) = trace.steps[0].pattern.messages
        assert (msg.src, msg.dst, msg.size) == (0, 1, 64)

    def test_double_build_rejected(self):
        tb = TraceBuilder(num_procs=1)
        tb.work(0, "op1", 4)
        tb.build()
        with pytest.raises(RuntimeError):
            tb.build()

    def test_empty_steps_preserved(self):
        tb = TraceBuilder(num_procs=1)
        tb.end_step()
        tb.end_step()
        assert len(tb.build()) == 2

"""The in-repo Prometheus text codec (repro.obs.promtext).

The round-trip contract is exact — ``parse(render(registry)) ==
registry.snapshot()`` bit for bit, including IEEE float recovery via
``repr`` and the recomputed histogram mean — and :func:`parse_samples`
is a strict linter that rejects anything off-grammar with a line number.
No prometheus_client anywhere: this is the whole dependency surface of
``GET /metrics``.
"""

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.promtext import FAMILIES, parse, parse_samples, render

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - test extras absent
    HAVE_HYPOTHESIS = False


def registry(counters=(), gauges=(), histograms=()):
    reg = MetricsRegistry()
    for name, value in counters:
        reg.counter(name).inc(value)
    for name, value in gauges:
        reg.gauge(name).set(value)
    for name, values in histograms:
        h = reg.histogram(name)
        for v in values:
            h.observe(v)
    return reg


class TestRender:
    def test_families_have_headers_and_sorted_samples(self):
        reg = registry(
            counters=[("sim.ops.standard", 1234), ("a.first", 1)],
            gauges=[("serve.inflight", 2.0)],
            histograms=[("sweep.wall_s", [0.25, 0.5])],
        )
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_counter_total " \
            "Monotonic counters of the repro metrics registry." in lines
        assert "# TYPE repro_counter_total counter" in lines
        # samples sorted by metric name within a family
        a = lines.index('repro_counter_total{metric="a.first"} 1.0')
        b = lines.index('repro_counter_total{metric="sim.ops.standard"} 1234.0')
        assert a < b
        assert 'repro_gauge{metric="serve.inflight"} 2.0' in lines
        assert 'repro_histogram_count{metric="sweep.wall_s"} 2' in lines
        assert 'repro_histogram_sum{metric="sweep.wall_s"} 0.75' in lines
        assert text.endswith("\n")

    def test_empty_histogram_renders_count_and_sum_only(self):
        reg = registry()
        reg.histogram("never.observed")
        text = render(reg)
        assert 'repro_histogram_count{metric="never.observed"} 0' in text
        assert 'repro_histogram_sum{metric="never.observed"} 0.0' in text
        assert "repro_histogram_min" not in text
        assert "repro_histogram_max" not in text

    def test_render_is_deterministic(self):
        a = registry(counters=[("x", 1), ("y", 2)], gauges=[("g", 3.5)])
        b = registry(counters=[("y", 2), ("x", 1)], gauges=[("g", 3.5)])
        assert render(a) == render(b)

    def test_extra_samples_get_type_header_once(self):
        extras = [
            ("repro_serve_latency_us", {"quantile": "0.5"}, 41.5),
            ("repro_serve_latency_us", {"quantile": "0.99"}, 99.0),
        ]
        text = render(MetricsRegistry(), extra_samples=extras)
        assert text.count("# TYPE repro_serve_latency_us gauge") == 1
        assert 'repro_serve_latency_us{quantile="0.5"} 41.5' in text
        # extras are exposition-only: parse ignores them
        assert parse(text) == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_label_escaping_round_trips(self):
        name = 'odd"name\\with\nnewline'
        reg = registry(counters=[(name, 7)])
        text = render(reg)
        assert "\n".join(text.splitlines()[2:]) == (
            'repro_counter_total{metric="odd\\"name\\\\with\\nnewline"} 7.0'
        )
        assert parse(text)["counters"] == {name: 7.0}

    def test_special_float_values(self):
        reg = registry(gauges=[("inf", float("inf")), ("ninf", float("-inf"))])
        text = render(reg)
        assert 'repro_gauge{metric="inf"} +Inf' in text
        assert 'repro_gauge{metric="ninf"} -Inf' in text
        back = parse(text)["gauges"]
        assert back["inf"] == float("inf") and back["ninf"] == float("-inf")
        nan = parse('repro_gauge{metric="n"} NaN\n')["gauges"]["n"]
        assert math.isnan(nan)


class TestRoundTrip:
    def test_exact_round_trip_including_mean(self):
        reg = registry(
            counters=[("sim.ops.standard", 3), ("sweep.points", 17)],
            gauges=[("serve.uptime_s", 12.25)],
            histograms=[("wall", [0.1, 0.2, 0.7]), ("empty", [])],
        )
        assert parse(render(reg)) == reg.snapshot()

    if HAVE_HYPOTHESIS:
        # the line-oriented grammar cannot carry "}" (terminates the label
        # block) or non-\n line breaks (only \n has an escape) in a label
        # value; registry names are dotted identifiers, far inside this
        _names = st.text(
            st.characters(
                blacklist_categories=("Cs",),
                blacklist_characters="}\r\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029",
            ),
            min_size=1, max_size=20,
        )
        _floats = st.floats(allow_nan=False, width=64)

        @given(
            counters=st.dictionaries(
                _names, st.floats(min_value=0, allow_nan=False), max_size=4
            ),
            gauges=st.dictionaries(_names, _floats, max_size=4),
            histograms=st.dictionaries(
                _names,
                st.lists(st.floats(-1e12, 1e12, allow_nan=False), max_size=5),
                max_size=3,
            ),
        )
        @settings(max_examples=100, deadline=None)
        def test_property_round_trip(self, counters, gauges, histograms):
            reg = registry(counters.items(), gauges.items(), histograms.items())
            snap = reg.snapshot()
            assert parse(render(snap)) == snap
    else:  # pragma: no cover - hypothesis available in CI
        def test_property_round_trip(self):
            import random
            rng = random.Random(0)
            for _ in range(50):
                reg = registry(
                    counters=[(f"c{i}", rng.uniform(0, 1e9)) for i in range(3)],
                    histograms=[("h", [rng.gauss(0, 1) for _ in range(4)])],
                )
                assert parse(render(reg)) == reg.snapshot()


class TestLinter:
    def test_accepts_comments_and_blanks(self):
        assert parse_samples("# HELP x y\n\n# TYPE x gauge\n") == []

    def test_bare_sample_without_labels(self):
        assert parse_samples("up 1\n") == [("up", {}, 1.0)]

    @pytest.mark.parametrize("line", [
        "no-dashes-in-names 1",
        "missing_value",
        "1leading_digit 2",
        "name 1 2 3trailing",
    ])
    def test_rejects_off_grammar_lines(self, line):
        with pytest.raises(ValueError, match="line 1"):
            parse_samples(line + "\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="not a valid sample value"):
            parse_samples("name{a=\"b\"} twelve\n")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_samples('name{not quoted} 1\n')

    def test_error_carries_line_number(self):
        with pytest.raises(ValueError, match="line 3"):
            parse_samples("ok 1\n# comment\n???\n")

    def test_parse_requires_metric_label_on_known_families(self):
        with pytest.raises(ValueError, match="without a metric label"):
            parse("repro_counter_total 5\n")

    def test_families_table_is_the_public_contract(self):
        assert set(FAMILIES) == {
            "repro_counter_total", "repro_gauge", "repro_histogram_count",
            "repro_histogram_sum", "repro_histogram_min", "repro_histogram_max",
        }

"""Tests for DES resources and stores (repro.des.resources)."""

import pytest

from repro.des import Environment, PriorityStore, Resource, SimulationError, Store


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_grant_within_capacity_is_immediate(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []

        def user(env, name):
            req = res.request()
            yield req
            log.append((env.now, name, "got"))
            yield env.timeout(5.0)
            res.release(req)

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert [(t, n) for t, n, _ in log] == [(0.0, "a"), (0.0, "b")]

    def test_queueing_beyond_capacity(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, name, hold):
            with res.request() as req:
                yield req
                log.append((env.now, name))
                yield env.timeout(hold)

        env.process(user(env, "first", 3.0))
        env.process(user(env, "second", 1.0))
        env.run()
        assert log == [(0.0, "first"), (3.0, "second")]

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)
        r1, r2 = res.request(), res.request()
        assert res.count == 1
        assert res.queue_length == 1
        res.release(r1)
        assert res.count == 1  # r2 promoted
        assert res.queue_length == 0
        res.release(r2)
        assert res.count == 0

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while still queued
        assert res.queue_length == 0
        assert res.count == 1
        res.release(r1)
        assert res.count == 0


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        def producer(env):
            for item in ("x", "y", "z"):
                yield store.put(item)
                yield env.timeout(1.0)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["x", "y", "z"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            got.append(((yield store.get()), env.now))

        def producer(env):
            yield env.timeout(7.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [("late", 7.0)]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put(1)
            times.append(env.now)
            yield store.put(2)  # blocked until consumer frees a slot
            times.append(env.now)

        def consumer(env):
            yield env.timeout(4.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0.0, 4.0]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)

    def test_len_tracks_items(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert len(store) == 2


class TestPriorityStore:
    def test_yields_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        for item in (3, 1, 2):
            store.put(item)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [1, 2, 3]

    def test_peek_returns_min_without_removal(self):
        env = Environment()
        store = PriorityStore(env)
        store.put((5.0, "late"))
        store.put((1.0, "early"))
        env.run()
        assert store.peek() == (1.0, "early")
        assert len(store) == 2

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            PriorityStore(Environment()).peek()

    def test_arrival_ordered_delivery(self):
        """The receive-queue shape of the Figure 2 algorithm: messages are
        consumed in arrival-time order regardless of insertion order."""
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer(env):
            yield store.put((12.0, 1, "second-arrival"))
            yield store.put((7.0, 0, "first-arrival"))

        def consumer(env):
            yield env.timeout(1.0)
            for _ in range(2):
                got.append((yield store.get())[2])

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["first-arrival", "second-arrival"]

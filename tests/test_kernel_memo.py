"""Cache-correctness tests for the kernel memo layer.

The memo's safety argument is *structural invalidation*: every machine
perturbation changes the cache key, so a stale hit is impossible by
construction.  These tests exercise each clause of that argument — the
sharing direction (equal machines hit one bucket), the invalidation
direction (perturbed machines miss), and the regression that motivated
the design: two UQ replicates evaluated back-to-back in one worker
process must not see each other's costs.
"""

from __future__ import annotations

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel, ProgramSimulator
from repro.core.costmodel import FlopCostModel, TableCostModel
from repro.kernel import clear_all_caches, fast_path, memoize, send_durations
from repro.kernel.memo import _COST_CACHES, _SEND_TABLES, MemoizedCostModel
from repro.machine.perturbed import PerturbedMachine, ScaledCostModel
from repro.trace import TraceBuilder
from repro.uq import UQSpec


class CountingModel:
    """A fingerprintable model that counts base evaluations."""

    def __init__(self, tag="counting:v1"):
        self.tag = tag
        self.calls = 0

    def cost(self, op, b):
        self.calls += 1
        return 1.5 * b

    def fingerprint(self):
        return self.tag


class UnfingerprintableModel:
    """No ``fingerprint`` method — the memo must refuse to cache it."""

    def cost(self, op, b):
        return 2.0 * b


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_all_caches()
    yield
    clear_all_caches()


# -- sharing -----------------------------------------------------------------

def test_equal_fingerprints_share_one_bucket():
    a, b = CountingModel(), CountingModel()
    ma, mb = memoize(a), memoize(b)
    assert isinstance(ma, MemoizedCostModel)
    assert ma._cache is mb._cache
    assert ma.cost("op1", 16) == 1.5 * 16
    assert mb.cost("op1", 16) == 1.5 * 16
    # the second instance hit the shared bucket: its base never ran
    assert a.calls == 1
    assert b.calls == 0


def test_memoize_is_idempotent():
    m = memoize(CountingModel())
    assert memoize(m) is m


def test_hit_returns_bitwise_identical_value():
    cm = CalibratedCostModel()
    m = memoize(cm)
    miss = m.cost("op3", 24)
    hit = m.cost("op3", 24)
    assert repr(miss) == repr(hit) == repr(cm.cost("op3", 24))


def test_invalid_inputs_raise_like_the_base():
    m = memoize(TableCostModel({"op1": {16: 3.0}}))
    with pytest.raises(ValueError):
        m.cost("nope", 16)


# -- bypass ------------------------------------------------------------------

def test_unfingerprintable_model_bypasses_the_memo():
    model = UnfingerprintableModel()
    assert memoize(model) is model
    assert not _COST_CACHES


def test_scaled_model_over_unfingerprintable_base_bypasses():
    scaled = ScaledCostModel(UnfingerprintableModel(), {"op1": 2.0})
    assert scaled.fingerprint() is None
    assert memoize(scaled) is scaled


# -- invalidation ------------------------------------------------------------

def test_scaled_cost_model_misses_per_factor_table():
    base = CalibratedCostModel()
    s1 = ScaledCostModel(base, {"op1": 1.1})
    s2 = ScaledCostModel(base, {"op1": 1.2})
    m0, m1, m2 = memoize(base), memoize(s1), memoize(s2)
    assert len({id(m._cache) for m in (m0, m1, m2)}) == 3
    assert m1.cost("op1", 16) != m2.cost("op1", 16)
    # same factors → same fingerprint → shared bucket again
    assert memoize(ScaledCostModel(base, {"op1": 1.1}))._cache is m1._cache


def test_perturbed_machine_replicates_get_distinct_buckets():
    spec = UQSpec(sigma=0.1, op_sigma=0.1)
    machine = PerturbedMachine(MEIKO_CS2, CalibratedCostModel(), spec)
    (p1, c1), (p2, c2) = machine.sample(1), machine.sample(2)
    assert (p1.L, p1.o, p1.g, p1.G) != (p2.L, p2.o, p2.g, p2.G)
    m1, m2 = memoize(c1), memoize(c2)
    assert m1._cache is not m2._cache
    assert send_durations(p1) is not send_durations(p2)


def test_deterministic_spec_returns_base_objects():
    machine = PerturbedMachine(MEIKO_CS2, CalibratedCostModel(), UQSpec())
    params, cm = machine.sample(7)
    assert params is MEIKO_CS2
    assert cm is machine.cost_model


def test_mutated_params_miss_the_send_table():
    t0 = send_durations(MEIKO_CS2)
    assert send_durations(MEIKO_CS2) is t0          # value-identity: hit
    assert send_durations(MEIKO_CS2.with_(G=MEIKO_CS2.G * 1.01)) is not t0
    assert send_durations(MEIKO_CS2.with_(L=11.0)) is not t0
    # P is structural, not part of the (L, o, g, G) timing identity
    assert send_durations(MEIKO_CS2.with_(P=16)) is t0


def test_clear_caches_empties_every_table():
    memoize(CountingModel()).cost("op1", 8)
    send_durations(MEIKO_CS2)
    assert _COST_CACHES and _SEND_TABLES
    clear_all_caches()
    assert not _COST_CACHES and not _SEND_TABLES


# -- the motivating regression ----------------------------------------------

def _tiny_trace():
    builder = TraceBuilder(4)
    for p in range(4):
        builder.work(p, "op1", 16)
        builder.work(p, "op4", 16)
    for p in range(1, 4):
        builder.message(p, 0, 1024)
    builder.end_step()
    return builder.build()


def test_two_uq_replicates_in_one_process_stay_bit_exact():
    """Replicates sharing a worker process must not cross-contaminate.

    Evaluate replicate A then replicate B with the fast path on (warm
    caches from each other), and compare each against its own fresh-
    process-equivalent run (cold caches, fast path off).  A stale hit —
    replicate B receiving replicate A's scaled costs — would show up as
    a numeric difference here.
    """
    trace = _tiny_trace()
    spec = UQSpec(sigma=0.1, op_sigma=0.1)
    machine = PerturbedMachine(MEIKO_CS2, CalibratedCostModel(), spec)

    def run(seed, fast):
        params, cm = machine.sample(seed)
        with fast_path(fast):
            report = ProgramSimulator(params, cm, mode="standard", seed=0).run(trace)
        return repr(report.total_us), repr(report.per_proc_comp_us)

    cold = {}
    for seed in (1, 2):
        clear_all_caches()
        cold[seed] = run(seed, fast=False)

    clear_all_caches()
    warm_1 = run(1, fast=True)
    warm_2 = run(2, fast=True)          # caches warm from replicate 1
    warm_1_again = run(1, fast=True)    # caches warm from both

    assert warm_1 == cold[1]
    assert warm_2 == cold[2]
    assert warm_1_again == cold[1]


def test_flop_model_fingerprint_reflects_rate():
    assert memoize(FlopCostModel(0.01))._cache is memoize(FlopCostModel(0.01))._cache
    assert (
        memoize(FlopCostModel(0.01))._cache
        is not memoize(FlopCostModel(0.02))._cache
    )

"""Property-based tests (hypothesis) for the simulation algorithms.

These are the heavy-duty invariant checks of the paper's two algorithms
plus the causal model: for arbitrary LogGP parameters and arbitrary
communication patterns, every produced timeline must satisfy the
single-port, gap, arrival, program-order and conservation invariants, and
the worst-case algorithm must upper-bound the standard one.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommPattern,
    LogGPParameters,
    simulate_causal,
    simulate_standard,
    simulate_worstcase,
)

# -- strategies ----------------------------------------------------------------

params_st = st.builds(
    LogGPParameters,
    L=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    o=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    g=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    G=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    P=st.integers(min_value=2, max_value=8),
)


@st.composite
def pattern_st(draw, max_procs=8, max_msgs=20, allow_local=True):
    num_procs = draw(st.integers(min_value=2, max_value=max_procs))
    n_msgs = draw(st.integers(min_value=0, max_value=max_msgs))
    pat = CommPattern(num_procs)
    for _ in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=num_procs - 1))
        if allow_local:
            dst = draw(st.integers(min_value=0, max_value=num_procs - 1))
        else:
            dst = (src + draw(st.integers(min_value=1, max_value=num_procs - 1))) % num_procs
        size = draw(st.integers(min_value=1, max_value=5000))
        pat.add(src, dst, size)
    return pat


@st.composite
def case_st(draw):
    pat = draw(pattern_st())
    params = draw(params_st).with_(P=pat.num_procs)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return params, pat, seed


# -- properties ------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(case_st())
def test_standard_invariants(case):
    params, pat, seed = case
    res = simulate_standard(params, pat, seed=seed)
    res.timeline.validate(pat.messages)


@settings(max_examples=120, deadline=None)
@given(case_st())
def test_worstcase_invariants(case):
    params, pat, seed = case
    res = simulate_worstcase(params, pat, seed=seed)
    res.timeline.validate(pat.messages)


@settings(max_examples=80, deadline=None)
@given(case_st())
def test_causal_invariants(case):
    params, pat, _seed = case
    res = simulate_causal(params, pat)
    res.timeline.validate(pat.messages)


@settings(max_examples=120, deadline=None)
@given(case_st())
def test_worstcase_upper_bounds_standard_on_dags(case):
    """The section 4.2 algorithm is an overestimation of the standard one.

    Restricted to acyclic patterns: the wait-for-all-receives discipline
    only defines a schedule on DAGs.  On cyclic patterns the paper's
    deadlock-breaking rule performs *random* forced transmissions, which
    can occasionally luck into a schedule faster than the standard one —
    see ``test_cyclic_pattern_can_undercut_standard`` for a concrete
    witness.
    """
    params, pat, seed = case
    if pat.has_cycle():
        return
    std = simulate_standard(params, pat, seed=seed)
    wc = simulate_worstcase(params, pat, seed=seed)
    assert wc.completion_time >= std.completion_time - 1e-9


def test_cyclic_pattern_can_undercut_standard():
    """Regression witness (found by hypothesis): on a *cyclic* pattern
    with extreme parameters (L=0, g=0) the forced-transmission deadlock
    break can complete faster than the standard schedule.  This documents
    the boundary of the paper's informal upper-bound claim."""
    params = LogGPParameters(L=0.0, o=1.0, g=0.0, G=1.0, P=4)
    pat = CommPattern(
        4, edges=[(2, 0, 1), (1, 3, 3), (0, 0, 1), (1, 3, 1), (0, 2, 1), (0, 0, 1), (0, 1, 1)]
    )
    assert pat.has_cycle()
    std = simulate_standard(params, pat, seed=1)
    wc = simulate_worstcase(params, pat, seed=1)
    assert wc.completion_time < std.completion_time
    # both schedules are nonetheless valid LogGP timelines
    std.timeline.validate(pat.messages)
    wc.timeline.validate(pat.messages)


@settings(max_examples=80, deadline=None)
@given(case_st())
def test_completion_at_least_best_case_message_time(case):
    """No schedule beats physics: completion >= max end-to-end time."""
    params, pat, seed = case
    remote = pat.remote_messages()
    res = simulate_standard(params, pat, seed=seed)
    if remote:
        floor = max(params.end_to_end(m.size) for m in remote)
        assert res.completion_time >= floor - 1e-9


@settings(max_examples=60, deadline=None)
@given(case_st(), st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
def test_time_shift_invariance(case, shift):
    """Shifting every start clock by c shifts the completion by exactly c."""
    params, pat, seed = case
    base = simulate_standard(params, pat, seed=seed)
    shifted = simulate_standard(
        params,
        pat,
        start_times={p: shift for p in range(pat.num_procs)},
        seed=seed,
    )
    if pat.remote_messages():
        assert shifted.completion_time == np.float64(base.completion_time + shift) or (
            abs(shifted.completion_time - base.completion_time - shift) < 1e-6
        )


@settings(max_examples=60, deadline=None)
@given(case_st())
def test_busy_conservation(case):
    """Total engaged time equals the sum of op durations implied by sizes."""
    params, pat, seed = case
    res = simulate_standard(params, pat, seed=seed)
    remote = pat.remote_messages()
    expected = sum(
        params.send_duration(m.size) + params.recv_duration(m.size) for m in remote
    )
    total_busy = sum(res.timeline.busy_time(p) for p in res.timeline.participants())
    assert abs(total_busy - expected) < 1e-6 * max(1.0, expected)


@settings(max_examples=60, deadline=None)
@given(case_st())
def test_determinism(case):
    params, pat, seed = case
    a = simulate_standard(params, pat, seed=seed)
    b = simulate_standard(params, pat, seed=seed)
    assert a.completion_time == b.completion_time
    assert a.ctimes == b.ctimes


@settings(max_examples=60, deadline=None)
@given(pattern_st(allow_local=False))
def test_causal_agrees_with_standard_from_cold_start(pat):
    """With all clocks at zero the two implementations of the
    receive-priority policy produce identical completions (fuzz-verified
    design property; see des_check module docstring)."""
    params = LogGPParameters(L=9.0, o=5.0, g=14.0, G=0.023, P=pat.num_procs)
    std = simulate_standard(params, pat, seed=0)
    ca = simulate_causal(params, pat)
    assert abs(std.completion_time - ca.completion_time) < 1e-6

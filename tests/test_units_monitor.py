"""Tests for unit helpers, plus the Monitor-to-Tracer migration.

The DES ``Monitor`` shim (deprecated in PR 1, removed in PR 6) recorded
tagged payloads stamped with simulation time.  Its use case — point
observations inside a DES process — is covered by the observability
tracer's ``instant`` events; ``TestMonitorMigration`` pins that the
replacement actually supports the old consumer patterns.
"""

import pytest

from repro.core.units import approx_ge, approx_le, ms_to_us, s_to_us, us_to_ms, us_to_s
from repro.des import Environment
from repro.obs import Tracer, get_tracer, tracing


class TestUnits:
    def test_roundtrips(self):
        assert us_to_s(s_to_us(1.5)) == pytest.approx(1.5)
        assert us_to_ms(ms_to_us(2.5)) == pytest.approx(2.5)

    def test_known_values(self):
        assert us_to_s(1_000_000.0) == 1.0
        assert ms_to_us(1.0) == 1000.0

    def test_approx_comparisons(self):
        assert approx_le(1.0, 1.0)
        assert approx_le(1.0 + 1e-12, 1.0)
        assert not approx_le(1.1, 1.0)
        assert approx_ge(1.0, 1.0 + 1e-12)
        assert not approx_ge(0.9, 1.0)


class TestMonitorMigration:
    """Tracer instants replace Monitor records (same DES-time stamping)."""

    def test_monitor_shim_is_gone(self):
        import repro.des

        assert not hasattr(repro.des, "Monitor")
        assert not hasattr(repro.des, "TraceRecord")

    def test_instants_stamped_with_sim_time(self):
        env = Environment()
        tracer = Tracer()

        def proc(env):
            yield env.timeout(3.0)
            get_tracer().instant("tick", ts=env.now, value=1)
            yield env.timeout(2.0)
            get_tracer().instant("tick", ts=env.now, value=2)

        with tracing(tracer):
            env.process(proc(env))
            env.run()
        ticks = [e for e in tracer.events if e.name == "tick"]
        assert [(e.ts, e.attrs["value"]) for e in ticks] == [(3.0, 1), (5.0, 2)]

    def test_filter_by_name(self):
        tracer = Tracer()
        tracer.instant("a", ts=0.0, value=1)
        tracer.instant("b", ts=0.0, value=2)
        assert len([e for e in tracer.events if e.name == "a"]) == 1

    def test_series_extraction(self):
        tracer = Tracer()
        tracer.instant("x", ts=0.0, v=10.0)
        series = [(e.ts, e.attrs["v"]) for e in tracer.events if e.name == "x"]
        assert series == [(0.0, 10.0)]

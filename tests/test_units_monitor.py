"""Tests for unit helpers and the DES monitor."""

import warnings

import pytest

from repro.core.units import approx_ge, approx_le, ms_to_us, s_to_us, us_to_ms, us_to_s
from repro.des import Environment, Monitor


def make_monitor(env):
    """Monitor is deprecated (superseded by repro.obs); hush the warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return Monitor(env)


class TestUnits:
    def test_roundtrips(self):
        assert us_to_s(s_to_us(1.5)) == pytest.approx(1.5)
        assert us_to_ms(ms_to_us(2.5)) == pytest.approx(2.5)

    def test_known_values(self):
        assert us_to_s(1_000_000.0) == 1.0
        assert ms_to_us(1.0) == 1000.0

    def test_approx_comparisons(self):
        assert approx_le(1.0, 1.0)
        assert approx_le(1.0 + 1e-12, 1.0)
        assert not approx_le(1.1, 1.0)
        assert approx_ge(1.0, 1.0 + 1e-12)
        assert not approx_ge(0.9, 1.0)


class TestMonitor:
    def test_records_stamped_with_sim_time(self):
        env = Environment()
        mon = make_monitor(env)

        def proc(env):
            yield env.timeout(3.0)
            mon.record("tick", 1)
            yield env.timeout(2.0)
            mon.record("tick", 2)

        env.process(proc(env))
        env.run()
        assert [(r.time, r.payload) for r in mon.filter("tick")] == [(3.0, 1), (5.0, 2)]

    def test_filter_by_tag(self):
        env = Environment()
        mon = make_monitor(env)
        mon.record("a", 1)
        mon.record("b", 2)
        assert len(mon.filter("a")) == 1

    def test_series_extraction(self):
        env = Environment()
        mon = make_monitor(env)
        mon.record("x", {"v": 10.0})
        assert mon.series("x", key=lambda p: p["v"]) == [(0.0, 10.0)]

    def test_clear(self):
        env = Environment()
        mon = make_monitor(env)
        mon.record("a")
        mon.clear()
        assert mon.records == []

    def test_construction_warns_deprecated(self):
        with pytest.warns(DeprecationWarning, match="repro.obs.Tracer"):
            Monitor(Environment())

    def test_series_rejects_none_payload(self):
        mon = make_monitor(Environment())
        mon.record("x")  # payload defaults to None
        with pytest.raises(TypeError, match=r"series\('x'\).*not numeric"):
            mon.series("x")

    def test_series_rejects_structured_payload_without_key(self):
        mon = make_monitor(Environment())
        mon.record("x", {"v": 10.0})
        with pytest.raises(TypeError, match="pass key="):
            mon.series("x")

    def test_series_names_offending_tag_and_chains_cause(self):
        mon = make_monitor(Environment())
        mon.record("bad", object())
        try:
            mon.series("bad")
        except TypeError as exc:
            assert "'bad'" in str(exc)
            assert exc.__cause__ is not None
        else:  # pragma: no cover
            pytest.fail("expected TypeError")

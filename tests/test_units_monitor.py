"""Tests for unit helpers and the DES monitor."""

import pytest

from repro.core.units import approx_ge, approx_le, ms_to_us, s_to_us, us_to_ms, us_to_s
from repro.des import Environment, Monitor


class TestUnits:
    def test_roundtrips(self):
        assert us_to_s(s_to_us(1.5)) == pytest.approx(1.5)
        assert us_to_ms(ms_to_us(2.5)) == pytest.approx(2.5)

    def test_known_values(self):
        assert us_to_s(1_000_000.0) == 1.0
        assert ms_to_us(1.0) == 1000.0

    def test_approx_comparisons(self):
        assert approx_le(1.0, 1.0)
        assert approx_le(1.0 + 1e-12, 1.0)
        assert not approx_le(1.1, 1.0)
        assert approx_ge(1.0, 1.0 + 1e-12)
        assert not approx_ge(0.9, 1.0)


class TestMonitor:
    def test_records_stamped_with_sim_time(self):
        env = Environment()
        mon = Monitor(env)

        def proc(env):
            yield env.timeout(3.0)
            mon.record("tick", 1)
            yield env.timeout(2.0)
            mon.record("tick", 2)

        env.process(proc(env))
        env.run()
        assert [(r.time, r.payload) for r in mon.filter("tick")] == [(3.0, 1), (5.0, 2)]

    def test_filter_by_tag(self):
        env = Environment()
        mon = Monitor(env)
        mon.record("a", 1)
        mon.record("b", 2)
        assert len(mon.filter("a")) == 1

    def test_series_extraction(self):
        env = Environment()
        mon = Monitor(env)
        mon.record("x", {"v": 10.0})
        assert mon.series("x", key=lambda p: p["v"]) == [(0.0, 10.0)]

    def test_clear(self):
        env = Environment()
        mon = Monitor(env)
        mon.record("a")
        mon.clear()
        assert mon.records == []

"""Tests for trace/pattern/report serialization (repro.trace.serialization)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import GEConfig, build_ge_trace, sample_pattern
from repro.core import MEIKO_CS2, CalibratedCostModel, ProgramSimulator
from repro.layouts import DiagonalLayout
from repro.trace import (
    ProgramTrace,
    Step,
    Work,
    cost_table_from_json,
    cost_table_to_json,
    load_trace,
    pattern_from_dict,
    pattern_to_dict,
    report_to_dict,
    save_report,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.core.message import CommPattern


class TestPatternRoundTrip:
    def test_sample_pattern(self):
        pat = sample_pattern()
        clone = pattern_from_dict(pattern_to_dict(pat))
        assert clone.num_procs == pat.num_procs
        assert [(m.src, m.dst, m.size) for m in clone] == [
            (m.src, m.dst, m.size) for m in pat
        ]

    def test_program_order_preserved(self):
        pat = CommPattern(4, edges=[(0, 3, 1), (0, 1, 2), (2, 0, 3)])
        clone = pattern_from_dict(pattern_to_dict(pat))
        assert [m.seq for m in clone.sends_of(0)] == [0, 1]

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="expected a"):
            pattern_from_dict({"kind": "trace", "version": 1})

    def test_wrong_version_rejected(self):
        doc = pattern_to_dict(CommPattern(2))
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            pattern_from_dict(doc)


class TestTraceRoundTrip:
    def test_ge_trace(self, tmp_path):
        trace = build_ge_trace(GEConfig(96, 24, DiagonalLayout(4, 4)))
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        clone = load_trace(path)
        assert clone.num_procs == trace.num_procs
        assert len(clone) == len(trace)
        assert clone.meta == trace.meta
        assert clone.total_ops() == trace.total_ops()
        assert clone.total_messages() == trace.total_messages()
        assert clone.op_histogram() == trace.op_histogram()

    def test_prediction_unaffected_by_round_trip(self, tmp_path):
        trace = build_ge_trace(GEConfig(96, 24, DiagonalLayout(4, 4)))
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        clone = load_trace(path)
        sim = ProgramSimulator(MEIKO_CS2, CalibratedCostModel())
        assert sim.run(clone).total_us == pytest.approx(sim.run(trace).total_us)

    def test_json_is_plain(self, tmp_path):
        trace = build_ge_trace(GEConfig(48, 24, DiagonalLayout(2, 2)))
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        doc = json.loads(path.read_text())
        assert doc["kind"] == "program_trace"

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_traces_round_trip(self, data):
        num_procs = data.draw(st.integers(2, 5))
        trace = ProgramTrace(num_procs=num_procs)
        for _ in range(data.draw(st.integers(0, 4))):
            work = {}
            for proc in range(num_procs):
                n_ops = data.draw(st.integers(0, 3))
                if n_ops:
                    work[proc] = [
                        Work(
                            op=data.draw(st.sampled_from(["op1", "op4", "jacobi"])),
                            b=data.draw(st.integers(1, 64)),
                            block=(data.draw(st.integers(0, 9)), data.draw(st.integers(0, 9))),
                            iteration=data.draw(st.integers(-1, 5)),
                        )
                        for _ in range(n_ops)
                    ]
            pattern = None
            if data.draw(st.booleans()):
                pattern = CommPattern(num_procs)
                for _ in range(data.draw(st.integers(0, 5))):
                    pattern.add(
                        data.draw(st.integers(0, num_procs - 1)),
                        data.draw(st.integers(0, num_procs - 1)),
                        data.draw(st.integers(1, 1000)),
                    )
            trace.add_step(Step(work=work, pattern=pattern))
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.total_ops() == trace.total_ops()
        assert clone.total_messages() == trace.total_messages()
        assert clone.total_bytes() == trace.total_bytes()
        for a, b in zip(trace.steps, clone.steps):
            assert {p: [(w.op, w.b, w.block, w.iteration) for w in ops] for p, ops in a.work.items()} == {
                p: [(w.op, w.b, w.block, w.iteration) for w in ops] for p, ops in b.work.items()
            }


class TestReportAndCostTable:
    def test_report_to_dict(self, tmp_path):
        trace = build_ge_trace(GEConfig(48, 24, DiagonalLayout(2, 2)))
        report = ProgramSimulator(MEIKO_CS2, CalibratedCostModel()).run(trace)
        doc = report_to_dict(report)
        assert doc["total_us"] == report.total_us
        assert doc["meta"]["app"] == "gauss"
        path = tmp_path / "report.json"
        save_report(report, path)
        assert json.loads(path.read_text())["comp_us"] == pytest.approx(report.comp_us)

    def test_cost_table_round_trip(self):
        table = {"op1": {10: 1.5, 20: 9.0}, "op4": {10: 0.5}}
        clone = cost_table_from_json(cost_table_to_json(table))
        assert clone == table
        assert isinstance(next(iter(clone["op1"])), int)

    def test_cost_table_wrong_kind(self):
        with pytest.raises(ValueError):
            cost_table_from_json(json.dumps({"kind": "nope", "version": 1}))

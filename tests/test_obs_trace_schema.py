"""Schema validation of exported Chrome trace-event JSON and run manifests.

The exported document must satisfy the trace-event format contract that
Perfetto / chrome://tracing rely on: required keys on every event,
timestamps that never run backwards within a thread, and strictly
matched B/E duration pairs.  Run manifests (one per CLI verb) must carry
the resource rollup (peak RSS, CPU seconds) and — for traced runs — the
trace id that correlates the manifest with its shards and logs.
"""

import json
from collections import defaultdict

import pytest

from repro.apps.gauss import GEConfig, build_ge_trace
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.layouts import LAYOUTS
from repro.machine import profile_program
from repro.obs import (
    Tracer,
    bucket_sums,
    events_from_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


@pytest.fixture(scope="module")
def traced_run():
    layout = LAYOUTS["block2d"](5, 4)
    trace = build_ge_trace(GEConfig(n=120, b=24, layout=layout))
    tracer = Tracer()
    profile = profile_program(
        trace, MEIKO_CS2, CalibratedCostModel(), tracer=tracer
    )
    return trace, tracer, profile


@pytest.fixture(scope="module")
def doc(traced_run):
    _, tracer, _ = traced_run
    return to_chrome_trace(tracer.events, metrics=tracer.metrics)


class TestTraceSchema:
    def test_top_level_shape(self, doc):
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

    def test_every_event_has_required_keys(self, doc):
        for ev in doc["traceEvents"]:
            for key in REQUIRED_KEYS:
                assert key in ev, f"{ev} missing {key!r}"
            assert ev["ph"] in ("B", "E", "M", "i")

    def test_timestamps_monotonic_per_thread(self, doc):
        last = defaultdict(lambda: float("-inf"))
        for ev in doc["traceEvents"]:
            if ev["ph"] not in ("B", "E"):
                continue  # metadata/instant ordering is unconstrained
            key = (ev["pid"], ev["tid"])
            assert ev["ts"] >= last[key], f"ts runs backwards at {ev}"
            last[key] = ev["ts"]

    def test_begin_end_pairs_match(self, doc):
        stacks = defaultdict(list)
        for ev in doc["traceEvents"]:
            key = (ev["pid"], ev["tid"])
            if ev["ph"] == "B":
                stacks[key].append(ev)
            elif ev["ph"] == "E":
                assert stacks[key], f"E without open B: {ev}"
                b = stacks[key].pop()
                assert b["name"] == ev["name"]
                assert ev["ts"] >= b["ts"]
        leftovers = [b for stack in stacks.values() for b in stack]
        assert leftovers == []

    def test_tracks_become_named_processes(self, doc):
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert "sim:standard" in names

    def test_threads_named_after_processors(self, doc):
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert {"P0", "P1", "P2", "P3"} <= names

    def test_wait_slices_synthesised(self, doc):
        assert any(
            ev["ph"] == "B" and ev["name"] == "wait" for ev in doc["traceEvents"]
        )

    def test_metrics_embedded(self, doc):
        counters = doc["otherData"]["metrics"]["counters"]
        assert counters["sim.program_runs"] == 1


class TestRoundTrip:
    def test_file_round_trip_preserves_bucket_sums_exactly(
        self, traced_run, tmp_path
    ):
        trace, tracer, profile = traced_run
        path = tmp_path / "t.json"
        write_chrome_trace(tracer.events, path, metrics=tracer.metrics)
        back = events_from_chrome_trace(json.loads(path.read_text()))
        sums, _ = bucket_sums(
            back, trace.num_procs, makespan=profile.makespan_us
        )
        for p, buckets in sums.items():
            for name, value in buckets.items():
                assert value == getattr(profile.processors[p], name), (
                    f"proc {p} bucket {name} drifted across export/import"
                )

    def test_round_trip_event_count_accounts_for_waits(self, traced_run):
        _, tracer, _ = traced_run
        back = events_from_chrome_trace(to_chrome_trace(tracer.events))
        original = sum(1 for e in tracer.events if e.kind == "slice")
        waits = sum(1 for e in back if e.name == "wait")
        assert len(back) == original + waits + sum(
            1 for e in tracer.events if e.kind == "instant"
        )


class TestManifestResourceRollup:
    """Every CLI verb's RunRecord carries resource and trace correlation."""

    RESOURCE_KEYS = {"ru_maxrss_kb", "cpu_user_s", "cpu_system_s"}

    def run_manifest(self, tmp_path, argv):
        from repro.cli import main

        out = tmp_path / "manifest.json"
        assert main([*argv, "--manifest-out", str(out)]) == 0
        return json.loads(out.read_text())

    @pytest.mark.parametrize("argv", [
        ["predict", "-n", "120", "-b", "30", "--layout", "diagonal",
         "--no-measured"],
        ["sweep", "-n", "120", "--blocks", "30", "--layout", "diagonal",
         "--no-measured"],
        ["timeline", "--pattern", "sample"],
    ], ids=["predict", "sweep", "timeline"])
    def test_verbs_record_resource_usage(self, tmp_path, argv, capsys):
        doc = self.run_manifest(tmp_path, argv)
        capsys.readouterr()
        resource = doc["resource"]
        assert self.RESOURCE_KEYS <= set(resource)
        assert resource["ru_maxrss_kb"] > 0
        assert resource["cpu_user_s"] >= 0.0
        assert resource["cpu_system_s"] >= 0.0
        assert doc["wall_s"] >= 0.0

    def test_untraced_run_has_empty_trace_id(self, tmp_path, capsys):
        doc = self.run_manifest(
            tmp_path,
            ["predict", "-n", "120", "-b", "30", "--layout", "diagonal",
             "--no-measured"],
        )
        capsys.readouterr()
        assert doc["trace_id"] == ""

    def test_traced_sweep_stamps_trace_id(self, tmp_path, capsys):
        shards = tmp_path / "shards"
        doc = self.run_manifest(
            tmp_path,
            ["sweep", "-n", "120", "--blocks", "30", "--layout", "diagonal",
             "--no-measured", "--trace-shards", str(shards)],
        )
        capsys.readouterr()
        assert len(doc["trace_id"]) == 32
        # the manifest's trace id matches the shard header's: the join key
        # between run provenance and the stitched timeline
        from repro.obs.telemetry import read_shard, shard_paths

        (shard,) = [read_shard(p) for p in shard_paths(shards)]
        assert shard.context["trace_id"] == doc["trace_id"]

"""Tests for lost-cycles profiling (repro.machine.profiler)."""

import pytest

from repro.apps import GEConfig, build_ge_trace
from repro.core import MEIKO_CS2, CalibratedCostModel, LogGPParameters, ProgramSimulator, TableCostModel
from repro.core.message import CommPattern
from repro.layouts import DiagonalLayout
from repro.machine import profile_program
from repro.machine.profiler import BUCKETS
from repro.trace import ProgramTrace, Step, Work

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=4)
COSTS = TableCostModel({"op1": {4: 100.0}, "op4": {4: 30.0}})


def simple_trace():
    trace = ProgramTrace(num_procs=2)
    trace.add_step(
        Step(
            work={0: [Work(op="op1", b=4)]},
            pattern=CommPattern(2, edges=[(0, 1, 1)]),
        )
    )
    return trace


class TestAccounting:
    def test_buckets_sum_to_makespan(self):
        profile = profile_program(simple_trace(), PARAMS, COSTS)
        for p in profile.processors.values():
            assert p.total == pytest.approx(profile.makespan_us)

    def test_exact_buckets_on_hand_trace(self):
        profile = profile_program(simple_trace(), PARAMS, COSTS)
        p0, p1 = profile.processors[0], profile.processors[1]
        # P0: 100 compute + 2 send, idle until 114
        assert p0.compute == pytest.approx(100.0)
        assert p0.send == pytest.approx(2.0)
        assert p0.recv == 0.0
        assert p0.idle == pytest.approx(12.0)
        # P1: waits for the arrival at 112, receives until 114
        assert p1.recv == pytest.approx(2.0)
        assert p1.wait == pytest.approx(112.0)
        assert p1.idle == pytest.approx(0.0)

    def test_matches_program_simulator_totals(self):
        trace = build_ge_trace(GEConfig(120, 24, DiagonalLayout(5, 4)))
        cm = CalibratedCostModel()
        profile = profile_program(trace, MEIKO_CS2, cm, mode="standard")
        report = ProgramSimulator(MEIKO_CS2, cm, mode="standard").run(trace)
        assert profile.makespan_us == pytest.approx(report.total_us)
        for proc, comp in report.per_proc_comp_us.items():
            assert profile.processors[proc].compute == pytest.approx(comp)

    def test_empty_trace(self):
        profile = profile_program(ProgramTrace(num_procs=3), PARAMS, COSTS)
        assert profile.makespan_us == 0.0
        assert profile.utilization == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            profile_program(simple_trace(), PARAMS, COSTS, mode="bogus")


class TestAggregates:
    @pytest.fixture(scope="class")
    def ge_profile(self):
        trace = build_ge_trace(GEConfig(120, 24, DiagonalLayout(5, 4)))
        return profile_program(trace, MEIKO_CS2, CalibratedCostModel())

    def test_bucket_totals_cover_everything(self, ge_profile):
        totals = ge_profile.bucket_totals()
        assert set(totals) == set(BUCKETS)
        grand = sum(totals.values())
        assert grand == pytest.approx(
            ge_profile.makespan_us * len(ge_profile.processors)
        )

    def test_utilization_in_unit_interval(self, ge_profile):
        assert 0.0 < ge_profile.utilization < 1.0

    def test_lost_cycles_complement(self, ge_profile):
        totals = ge_profile.bucket_totals()
        assert ge_profile.lost_cycles_us == pytest.approx(
            sum(totals.values()) - totals["compute"]
        )

    def test_describe_renders(self, ge_profile):
        text = ge_profile.describe()
        assert "utilization" in text
        for bucket in BUCKETS:
            assert bucket in text

    def test_fractions(self, ge_profile):
        for prof in ge_profile.processors.values():
            fr = prof.fractions()
            assert sum(fr.values()) == pytest.approx(1.0)

    def test_worstcase_wastes_more(self):
        trace = build_ge_trace(GEConfig(120, 24, DiagonalLayout(5, 4)))
        cm = CalibratedCostModel()
        std = profile_program(trace, MEIKO_CS2, cm, mode="standard")
        wc = profile_program(trace, MEIKO_CS2, cm, mode="worstcase")
        assert wc.lost_cycles_us > std.lost_cycles_us
        assert wc.utilization < std.utilization


class TestRegimes:
    def test_small_blocks_lose_more_cycles_than_optimal(self):
        """The lost-cycles lens on Figure 7: the optimum block size is the
        one that minimises wasted time, and extremes waste more."""
        cm = CalibratedCostModel()

        def lost(b: int) -> float:
            trace = build_ge_trace(GEConfig(240, b, DiagonalLayout(240 // b, 8)))
            return profile_program(trace, MEIKO_CS2, cm).lost_cycles_us

        assert lost(10) > lost(40)

    def test_utilization_peaks_near_optimum(self):
        cm = CalibratedCostModel()

        def util(b: int) -> float:
            trace = build_ge_trace(GEConfig(240, b, DiagonalLayout(240 // b, 8)))
            return profile_program(trace, MEIKO_CS2, cm).utilization

        # at this scale the utilization peak sits in the 24-40 region;
        # the wide-pipeline-bubble regime at b=120 is clearly worse
        assert util(24) > util(120)
        assert util(24) > util(60)

"""End-to-end trace stitching: ``repro sweep --trace-shards`` → ``repro
trace-merge`` — plus rendering coverage for :mod:`repro.analysis.timeline`.

The CI trace-stitch gate in executable form: a worker sweep leaves one
shard per process, the merge verb stitches them into a single timeline
with zero orphaned spans, and the retained-event digest is identical
across worker counts (content-keyed retention + content-pure sort keys).
"""

import json

import pytest

from repro.analysis import describe_sequence, render_timeline
from repro.apps import sample_pattern
from repro.cli import main
from repro.core import MEIKO_CS2, simulate_standard
from repro.core.loggp import OpKind
from repro.obs import Tracer
from repro.obs.telemetry import (
    TraceContext,
    merge_shards,
    shard_paths,
    trace_digest,
    write_merged_events,
    write_shard,
)

BASE = ["sweep", "-n", "120", "--blocks", "30", "60", "--layout", "diagonal",
        "--no-measured", "--seed", "0"]


def traced_sweep(tmp_path, capsys, name, *extra):
    shards = tmp_path / name
    argv = [*BASE, *extra, "--trace-shards", str(shards), "--no-manifest"]
    assert main(argv) == 0
    capsys.readouterr()
    return shards


def merge_json(shards, capsys, *extra):
    assert main(["trace-merge", str(shards), "--json", "--no-manifest",
                 *extra]) == 0
    return json.loads(capsys.readouterr().out)


class TestSweepStitching:
    def test_single_worker_tree_is_complete(self, tmp_path, capsys):
        shards = traced_sweep(tmp_path, capsys, "w1", "--workers", "1")
        assert [p.name for p in shard_paths(shards)] == ["shard-main.jsonl"]
        report = merge_json(shards, capsys)
        assert report["ok"] is True
        assert report["orphans"] == 0
        assert report["events"] > 0
        assert len(report["trace_ids"]) == 1

    def test_worker_shards_stitch_with_zero_orphans(self, tmp_path, capsys):
        shards = traced_sweep(tmp_path, capsys, "w2", "--workers", "2")
        names = [p.name for p in shard_paths(shards)]
        assert "shard-main.jsonl" in names
        assert sum(n.startswith("shard-chunk-") for n in names) == 2
        report = merge_json(shards, capsys, "--strict")
        assert report["ok"] is True and report["orphans"] == 0
        # the two sweep.chunk spans are stitched into the parent trace
        assert report["spans"] >= 2
        assert report["labels"] == ["chunk-0000", "chunk-0001", "main"]

    def test_digest_identical_across_worker_counts(self, tmp_path, capsys):
        w1 = traced_sweep(tmp_path, capsys, "w1", "--workers", "1")
        w2 = traced_sweep(tmp_path, capsys, "w2", "--workers", "2")
        r1, r2 = merge_json(w1, capsys), merge_json(w2, capsys)
        assert r1["digest"] == r2["digest"]
        # worker count is execution, not workload: one root trace id
        assert r1["trace_ids"] == r2["trace_ids"]

    def test_shard_permutation_is_byte_identical(self, tmp_path, capsys):
        shards = traced_sweep(tmp_path, capsys, "w2", "--workers", "2")
        paths = shard_paths(shards)
        a = write_merged_events(merge_shards(paths), tmp_path / "a.jsonl")
        b = write_merged_events(
            merge_shards(list(reversed(paths))), tmp_path / "b.jsonl"
        )
        assert a.read_bytes() == b.read_bytes()

    def test_merged_exports_written(self, tmp_path, capsys):
        shards = traced_sweep(tmp_path, capsys, "w1", "--workers", "1")
        out = tmp_path / "merged.json"
        events_out = tmp_path / "merged-events.jsonl"
        report = merge_json(shards, capsys, "-o", str(out),
                            "--events-out", str(events_out))
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert len(events_out.read_text().splitlines()) == report["events"]

    def test_digest_matches_api(self, tmp_path, capsys):
        shards = traced_sweep(tmp_path, capsys, "w1", "--workers", "1")
        report = merge_json(shards, capsys)
        assert report["digest"] == trace_digest(
            merge_shards(shard_paths(shards)).events
        )


class TestTraceMergeCli:
    def test_no_shards_is_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert main(["trace-merge", str(empty), "--no-manifest"]) == 2
        assert "no shard files" in capsys.readouterr().err

    def test_strict_fails_on_orphans(self, tmp_path, capsys):
        tracer = Tracer()
        stray = TraceContext.root("fake").child("x", 0).child("y", 0)
        with tracer.span("stray", ctx=stray,
                         parent_span_id="deadbeefdeadbeef"):
            pass
        write_shard(tmp_path / "shard-main.jsonl", tracer)
        assert main(["trace-merge", str(tmp_path), "--json", "--strict",
                     "--no-manifest"]) == 1
        out, err = capsys.readouterr()
        assert json.loads(out)["orphans"] == 1
        assert "orphan" in err

    def test_extra_root_resolves_upstream_parent(self, tmp_path, capsys):
        tracer = Tracer()
        upstream = "feedfacefeedface"
        ctx = TraceContext.root("client").child("serve.request", 0)
        with tracer.span("serve.request", ctx=ctx, parent_span_id=upstream):
            pass
        write_shard(tmp_path / "shard-main.jsonl", tracer)
        assert main(["trace-merge", str(tmp_path), "--json", "--strict",
                     "--extra-root", upstream, "--no-manifest"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_human_summary_reports_counts(self, tmp_path, capsys):
        tracer = Tracer()
        tracer.slice("compute", proc=0, ts=1.0, dur=2.0)
        write_shard(tmp_path / "shard-main.jsonl", tracer)
        assert main(["trace-merge", str(tmp_path), "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "digest" in out


class TestTimelineRendering:
    """Geometry of the ASCII gantt (beyond test_analysis's smoke checks)."""

    @pytest.fixture(scope="class")
    def timeline(self):
        return simulate_standard(MEIKO_CS2, sample_pattern()).timeline

    def test_lane_geometry_is_exact(self, timeline):
        width = 72
        text = render_timeline(timeline, width=width)
        lanes = [ln for ln in text.splitlines() if ln.endswith("|")]
        assert len(lanes) == len(timeline.participants())
        label_w = max(len(f"P{p}") for p in timeline.participants()) + 1
        for lane in lanes:
            assert len(lane) == label_w + 1 + width + 1

    def test_ops_painted_at_their_columns(self, timeline):
        width = 100
        text = render_timeline(timeline, width=width)
        lanes = {int(ln.split("|")[0][1:]): ln.split("|")[1]
                 for ln in text.splitlines() if ln.endswith("|")}
        t0 = min(timeline.start_times.values(), default=0.0)
        t0 = min([t0] + [e.start for e in timeline.events])
        span = max(timeline.completion_time - t0, 1e-9)
        scale = (width - 1) / span
        for p in timeline.participants():
            for e in timeline.events_of(p):
                col = min(width - 1, max(0, int((e.start - t0) * scale + 0.5)))
                marker = "S" if e.kind is OpKind.SEND else "R"
                assert lanes[p][col] == marker

    def test_fill_characters_distinguish_send_and_recv(self, timeline):
        text = render_timeline(timeline, width=120)
        kinds = {e.kind for e in timeline.events}
        if OpKind.SEND in kinds:
            assert "#" in text or "S" in text
        if OpKind.RECV in kinds:
            assert "=" in text or "R" in text

    def test_axis_labels_span_the_window(self, timeline):
        axis = render_timeline(timeline, width=80).splitlines()[-1]
        assert axis.endswith(" us")
        t1 = timeline.completion_time
        assert f"{t1:.0f}" in axis

    def test_narrow_and_wide_render_same_lane_count(self, timeline):
        narrow = render_timeline(timeline, width=20).splitlines()
        wide = render_timeline(timeline, width=200).splitlines()
        assert len(narrow) == len(wide)

    def test_describe_lists_every_op(self, timeline):
        text = describe_sequence(timeline)
        for p in timeline.participants():
            assert f"P{p}:" in text
            assert f"finishes at {timeline.finish_time(p):.2f} us" in text
        ops = sum(len(timeline.events_of(p)) for p in timeline.participants())
        assert len(text.splitlines()) == ops + 2 * len(timeline.participants()) + 1

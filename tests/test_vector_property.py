"""Property-based differential testing of the vectorized batch kernel.

The scalar kernel's property suite (``test_kernel_property.py``) pins
the fast *step* simulators to the seed implementation on random
programs; this suite pins the *batch* layer on top: for random
programs, random machines, random seeds and random batch widths, every
lane of :func:`repro.kernel.vector.simulate_programs_batch` must be
bit-identical to a standalone scalar simulation of that lane — totals,
per-processor breakdowns, *and* the tie-break RNG stream each lane
consumed.  The GE-grid twin (:func:`evaluate_ge_points_batch`) is
pinned against the scalar sweep entrypoints, including the UQ
replicate path.

The properties target exactly the places a vectorized rewrite can
drift:

* summation regrouping (``np.sum`` pairwise vs the scalar left-fold),
* the width-1 specialisation vs the general SoA path,
* lane RNG privacy (step-major lockstep must not interleave draws),
* float64 round-trips at the numpy/python boundary.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockops import OP_NAMES
from repro.core import CalibratedCostModel, MEIKO_CS2, ProgramSimulator
from repro.core.loggp import LogGPParameters
from repro.core.predictor import summarize_ge_point, summarize_uq_point
from repro.kernel import clear_all_caches, fast_path
from repro.kernel.vector import (
    compile_plan,
    evaluate_ge_points_batch,
    simulate_programs_batch,
)
from repro.sweep import SweepPoint
from repro.trace import TraceBuilder
from repro.uq import UQSpec

CM = CalibratedCostModel()
MODES = ("standard", "worstcase")

# -- generators (program shape shared with the scalar kernel suite) ----------

_ops = st.tuples(
    st.sampled_from(OP_NAMES),
    st.sampled_from([4, 8, 16]),
)
_msg = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=1, max_value=2048),
)
_step = st.tuples(
    st.lists(st.tuples(st.integers(0, 4), _ops), max_size=6),
    st.lists(_msg, max_size=8),
)
_program = st.tuples(
    st.integers(min_value=2, max_value=5),
    st.lists(_step, min_size=1, max_size=3),
)

#: random-but-sane LogGP machines (non-negative, finite — the costs and
#: clocks discipline the batch kernel's unconditional adds rely on)
_machine = st.builds(
    lambda L, o, g, G: (L, o, g, G),
    st.floats(min_value=0.5, max_value=40.0, allow_nan=False),
    st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
    st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
)


def _build(spec):
    num_procs, steps = spec
    builder = TraceBuilder(num_procs)
    for work, messages in steps:
        for proc, (op, b) in work:
            builder.work(proc % num_procs, op, b)
        for src, dst, size in messages:
            builder.message(src % num_procs, dst % num_procs, size)
        builder.end_step()
    return builder.build()


def _params(machine, P):
    L, o, g, G = machine
    return LogGPParameters(L=L, o=o, g=g, G=G, P=P, name="hypothesis")


def _report_key(report):
    return (
        repr(report.total_us),
        repr(report.per_proc_total_us),
        repr(report.per_proc_comp_us),
        repr(report.per_proc_comm_busy_us),
    )


def _scalar(trace, params, mode, seed, fast, rng=None):
    clear_all_caches()
    with fast_path(fast):
        sim = ProgramSimulator(params, CM, mode=mode, seed=seed, rng=rng)
        return sim.run(trace)


# -- batch vs scalar kernel vs seed simulator --------------------------------


@settings(max_examples=40, deadline=None)
@given(
    spec=_program,
    machines=st.lists(_machine, min_size=1, max_size=4),
    seeds=st.lists(st.integers(min_value=0, max_value=7), min_size=4, max_size=4),
)
def test_batch_lanes_bit_identical_to_scalar_and_seed(spec, machines, seeds):
    """Every lane of any batch == the scalar kernel == the seed simulator."""
    trace = _build(spec)
    plan = compile_plan(trace)
    lanes = [(_params(m, trace.num_procs), CM) for m in machines]
    lane_seeds = seeds[: len(lanes)]

    clear_all_caches()
    batch = simulate_programs_batch(plan, lanes, lane_seeds, modes=MODES)

    for (params, _), seed, reports in zip(lanes, lane_seeds, batch):
        for mode in MODES:
            got = _report_key(reports[mode])
            assert got == _report_key(
                _scalar(trace, params, mode, seed, fast=True)
            ), f"batch != scalar kernel ({mode})"
            assert got == _report_key(
                _scalar(trace, params, mode, seed, fast=False)
            ), f"batch != seed simulator ({mode})"


@settings(max_examples=25, deadline=None)
@given(
    spec=_program,
    machine=_machine,
    seeds=st.lists(st.integers(min_value=0, max_value=7), min_size=2, max_size=4),
)
def test_width_one_specialisation_matches_wide_batch(spec, machine, seeds):
    """Lane results must not depend on how many lanes ride along."""
    trace = _build(spec)
    plan = compile_plan(trace)
    params = _params(machine, trace.num_procs)
    lanes = [(params, CM)] * len(seeds)

    clear_all_caches()
    wide = simulate_programs_batch(plan, lanes, seeds, modes=MODES)
    for seed, reports in zip(seeds, wide):
        clear_all_caches()
        narrow = simulate_programs_batch(plan, [(params, CM)], [seed], modes=MODES)[0]
        for mode in MODES:
            assert _report_key(reports[mode]) == _report_key(narrow[mode])


# -- RNG tie-break streams ---------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    num_procs=st.integers(min_value=2, max_value=4),
    sizes=st.lists(
        st.integers(min_value=1, max_value=4096), min_size=3, max_size=10
    ),
    seeds=st.lists(st.integers(min_value=0, max_value=7), min_size=2, max_size=3),
)
def test_lane_rng_streams_match_scalar_runs(num_procs, sizes, seeds):
    """Each (lane, mode) consumes exactly the scalar run's RNG stream.

    All-to-one fan-in maximises clock ties, so the tie-break generator
    is drawn from heavily; after the batch, every injected generator's
    state must equal the state after the corresponding standalone
    scalar simulation — proof the lockstep step-major order neither
    reorders nor shares draws across lanes.
    """
    builder = TraceBuilder(num_procs)
    for i, size in enumerate(sizes):
        builder.message(i % (num_procs - 1) + 1, 0, size)
    builder.end_step()
    trace = builder.build()
    plan = compile_plan(trace)
    lanes = [(MEIKO_CS2, CM)] * len(seeds)

    batch_rngs = [
        {mode: np.random.default_rng(seed) for mode in MODES} for seed in seeds
    ]
    clear_all_caches()
    batch = simulate_programs_batch(
        plan, lanes, seeds, modes=MODES, rngs=batch_rngs
    )

    for seed, reports, rngs in zip(seeds, batch, batch_rngs):
        for mode in MODES:
            scalar_rng = np.random.default_rng(seed)
            report = _scalar(trace, MEIKO_CS2, mode, seed, fast=True, rng=scalar_rng)
            assert _report_key(reports[mode]) == _report_key(report)
            assert rngs[mode].bit_generator.state == scalar_rng.bit_generator.state, (
                f"lane RNG stream diverged from scalar run ({mode})"
            )


# -- GE grid twin ------------------------------------------------------------

_ge_config = st.sampled_from(
    [(40, 8), (40, 10), (40, 20), (60, 10), (60, 20), (60, 30)]
)
_layout = st.sampled_from(["diagonal", "stripped"])


@settings(max_examples=15, deadline=None)
@given(
    configs=st.lists(
        st.tuples(_ge_config, _layout, st.integers(min_value=0, max_value=5)),
        min_size=1,
        max_size=6,
    ),
)
def test_ge_batch_matches_scalar_sweep_entrypoint(configs):
    """Random GE grids: the batch evaluator == summarize_ge_point per point."""
    points = [
        SweepPoint(n=n, b=b, layout=layout, seed=seed, with_measured=False)
        for (n, b), layout, seed in configs
    ]
    clear_all_caches()
    with fast_path(True):
        batch = evaluate_ge_points_batch(points, MEIKO_CS2, CM)
    for point, got in zip(points, batch):
        clear_all_caches()
        with fast_path(True):
            expect = summarize_ge_point(
                point.n, point.b, point.layout, MEIKO_CS2, CM,
                with_measured=False, seed=point.seed,
            )
        assert {k: repr(v) for k, v in got.items()} == {
            k: repr(v) for k, v in expect.items()
        }


@settings(max_examples=8, deadline=None)
@given(
    config=_ge_config,
    layout=_layout,
    seeds=st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=4,
                   unique=True),
    sigma=st.sampled_from([0.0, 0.05, 0.2]),
)
def test_ge_batch_matches_uq_replicates(config, layout, seeds, sigma):
    """UQ replicate lanes (same config, different seeds) == scalar UQ path."""
    n, b = config
    spec = UQSpec(sigma=sigma, op_sigma=sigma / 2)
    points = [
        SweepPoint(n=n, b=b, layout=layout, seed=seed, with_measured=False)
        for seed in seeds
    ]
    clear_all_caches()
    with fast_path(True):
        batch = evaluate_ge_points_batch(points, MEIKO_CS2, CM, uq=spec)
    for point, got in zip(points, batch):
        clear_all_caches()
        with fast_path(True):
            expect = summarize_uq_point(
                point.n, point.b, point.layout, MEIKO_CS2, CM, spec,
                with_measured=False, seed=point.seed,
            )
        assert {k: repr(v) for k, v in got.items()} == {
            k: repr(v) for k, v in expect.items()
        }


def test_ge_batch_with_measured_matches_scalar():
    """The emulator leg (with_measured=True) rides the batch unchanged."""
    points = [
        SweepPoint(n=40, b=10, layout="diagonal", seed=s, with_measured=True)
        for s in (0, 1)
    ]
    clear_all_caches()
    with fast_path(True):
        batch = evaluate_ge_points_batch(points, MEIKO_CS2, CM)
    for point, got in zip(points, batch):
        clear_all_caches()
        with fast_path(True):
            expect = summarize_ge_point(
                point.n, point.b, point.layout, MEIKO_CS2, CM,
                with_measured=True, seed=point.seed,
            )
        assert {k: repr(v) for k, v in got.items()} == {
            k: repr(v) for k, v in expect.items()
        }

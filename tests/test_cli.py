"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_machine_overrides(self):
        args = build_parser().parse_args(
            ["timeline", "--L", "20", "--o", "3", "--g", "7", "--G", "0.1", "--procs", "4"]
        )
        assert args.L == 20.0 and args.procs == 4


class TestTimeline:
    def test_sample_standard(self, capsys):
        assert main(["timeline", "--pattern", "sample"]) == 0
        out = capsys.readouterr().out
        assert "completion:" in out
        assert "P0" in out

    def test_worstcase_slower_than_standard(self, capsys):
        main(["timeline", "--algorithm", "standard"])
        std = capsys.readouterr().out
        main(["timeline", "--algorithm", "worstcase"])
        wc = capsys.readouterr().out
        get = lambda s: float(s.rsplit("completion:", 1)[1].split("us")[0])
        assert get(wc) > get(std)

    def test_ring_pattern(self, capsys):
        assert main(["timeline", "--pattern", "ring", "--procs", "4", "--size", "100"]) == 0
        assert "completion:" in capsys.readouterr().out


class TestPredict:
    def test_predict_without_measured(self, capsys):
        assert main(["predict", "-n", "120", "-b", "24", "--no-measured"]) == 0
        out = capsys.readouterr().out
        assert "simulated_standard" in out
        assert "measured_with_caching" not in out

    def test_predict_with_measured(self, capsys):
        assert main(["predict", "-n", "120", "-b", "24"]) == 0
        assert "measured_with_caching" in capsys.readouterr().out

    def test_indivisible_block_is_reported_cleanly(self, capsys):
        assert main(["predict", "-n", "100", "-b", "7", "--no-measured"]) == 2
        assert "error" in capsys.readouterr().err


class TestSweep:
    def test_sweep_prints_figure(self, capsys):
        code = main(
            ["sweep", "-n", "120", "--blocks", "12", "24", "40",
             "--layout", "diagonal", "--no-measured"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted optimal block size" in out
        assert "diagonal mapping" in out

    def test_sweep_bad_blocks(self, capsys):
        assert main(["sweep", "-n", "100", "--blocks", "7"]) == 2
        assert "do not divide" in capsys.readouterr().err


class TestOps:
    def test_calibrated_table(self, capsys):
        assert main(["ops", "-b", "10", "40", "--source", "calibrated"]) == 0
        out = capsys.readouterr().out
        assert "op1" in out and "op4" in out

    def test_measured_table(self, capsys):
        assert main(["ops", "-b", "8", "--source", "measured", "--repeats", "1"]) == 0
        assert "host-measured" in capsys.readouterr().out


class TestTrace:
    def test_trace_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["trace", "-n", "96", "-b", "24", "-o", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["kind"] == "program_trace"
        assert "wrote" in capsys.readouterr().out

    def test_trace_round_trips_through_loader(self, tmp_path):
        from repro.trace import load_trace

        out_file = tmp_path / "t.json"
        main(["trace", "-n", "96", "-b", "24", "-o", str(out_file)])
        trace = load_trace(out_file)
        assert trace.meta["app"] == "gauss"
        assert trace.total_ops() > 0

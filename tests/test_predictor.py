"""Tests for the high-level prediction API (repro.core.predictor)."""

import pytest

from repro.apps import GEConfig, build_ge_trace
from repro.core import (
    MEIKO_CS2,
    CachePredictionModel,
    CalibratedCostModel,
    RunningTimePredictor,
    predicted_optimum,
    run_ge_point,
    run_ge_sweep,
)
from repro.layouts import DiagonalLayout

COSTS = CalibratedCostModel()


class TestRunningTimePredictor:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_ge_trace(GEConfig(n=120, b=24, layout=DiagonalLayout(5, 4)))

    def test_predict_standard(self, trace):
        pred = RunningTimePredictor(MEIKO_CS2, COSTS)
        report = pred.predict(trace)
        assert report.total_us > 0
        assert report.comp_us > 0
        assert report.comm_us > 0

    def test_predict_both_ordering(self, trace):
        pred = RunningTimePredictor(MEIKO_CS2, COSTS)
        std, wc = pred.predict_both(trace)
        assert wc.total_us >= std.total_us

    def test_extensions_accepted(self, trace):
        pred = RunningTimePredictor(MEIKO_CS2, COSTS)
        overlap = pred.predict(trace, overlap=True)
        assert overlap.total_us <= pred.predict(trace).total_us + 1e-6
        cached = pred.predict(trace, cache_model=CachePredictionModel(cache_bytes=16 * 1024))
        assert cached.total_us >= pred.predict(trace).total_us


class TestRunGEPoint:
    def test_returns_complete_row(self):
        row = run_ge_point(120, 24, "diagonal", MEIKO_CS2, COSTS)
        assert row.b == 24
        assert row.layout == "diagonal"
        assert row.measured is not None
        series = row.series()
        assert set(series) == {
            "simulated_standard",
            "simulated_worstcase",
            "measured_with_caching",
            "measured_without_caching",
        }

    def test_without_measured(self):
        row = run_ge_point(120, 24, "diagonal", MEIKO_CS2, COSTS, with_measured=False)
        assert row.measured is None
        assert set(row.series()) == {"simulated_standard", "simulated_worstcase"}

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="unknown layout"):
            run_ge_point(120, 24, "bogus", MEIKO_CS2, COSTS)

    def test_deterministic(self):
        a = run_ge_point(120, 24, "stripped", MEIKO_CS2, COSTS, seed=1)
        b = run_ge_point(120, 24, "stripped", MEIKO_CS2, COSTS, seed=1)
        assert a.measured.total_us == b.measured.total_us
        assert a.pred_standard.total_us == b.pred_standard.total_us


class TestSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ge_sweep(
            120,
            [12, 20, 24, 40],
            ["diagonal", "stripped"],
            MEIKO_CS2,
            COSTS,
            with_measured=False,
        )

    def test_all_points_present(self, rows):
        assert len(rows) == 8
        assert {(r.layout, r.b) for r in rows} == {
            (lay, b) for lay in ("diagonal", "stripped") for b in (12, 20, 24, 40)
        }

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            run_ge_sweep(120, [7], ["diagonal"], MEIKO_CS2, COSTS)

    def test_progress_callback_invoked(self):
        seen = []
        run_ge_sweep(
            120,
            [24],
            ["diagonal"],
            MEIKO_CS2,
            COSTS,
            with_measured=False,
            progress=lambda lay, b: seen.append((lay, b)),
        )
        assert seen == [("diagonal", 24)]

    def test_predicted_optimum(self, rows):
        best = predicted_optimum(rows, "diagonal")
        assert best in (12, 20, 24, 40)
        diag = {r.b: r.pred_standard.total_us for r in rows if r.layout == "diagonal"}
        assert diag[best] == min(diag.values())

    def test_predicted_optimum_unknown_layout(self, rows):
        with pytest.raises(ValueError):
            predicted_optimum(rows, "column")

"""Tests for analytic bounds and the ASCII chart renderer."""

import pytest

from repro.analysis import ascii_chart
from repro.apps import (
    CannonConfig,
    GEConfig,
    StencilConfig,
    build_cannon_trace,
    build_ge_trace,
    build_stencil_trace,
    stencil_cost_table,
)
from repro.core import (
    MEIKO_CS2,
    CalibratedCostModel,
    ProgramSimulator,
    compute_bounds,
)
from repro.core.bounds import RunningTimeBounds
from repro.layouts import DiagonalLayout, RowStrippedCyclicLayout
from repro.trace import ProgramTrace

CM = CalibratedCostModel()


class TestBoundsBracketSimulation:
    @pytest.mark.parametrize("layout_cls", [DiagonalLayout, RowStrippedCyclicLayout])
    @pytest.mark.parametrize("b", [12, 24, 48])
    def test_ge_inside_bracket(self, layout_cls, b):
        trace = build_ge_trace(GEConfig(96 if b == 12 else 240, b, layout_cls((96 if b == 12 else 240) // b, 4)))
        bounds = compute_bounds(trace, MEIKO_CS2, CM)
        for mode in ("standard", "worstcase"):
            sim = ProgramSimulator(MEIKO_CS2, CM, mode=mode).run(trace)
            assert bounds.contains(sim.total_us, slack=1e-9), (mode, sim.total_us, bounds)

    def test_cannon_inside_bracket(self):
        trace = build_cannon_trace(CannonConfig(n=48, num_procs=16))
        bounds = compute_bounds(trace, MEIKO_CS2.with_(P=16), CM)
        sim = ProgramSimulator(MEIKO_CS2.with_(P=16), CM).run(trace)
        assert bounds.contains(sim.total_us)

    def test_stencil_inside_bracket(self):
        cfg = StencilConfig(n=64, num_procs=4, iterations=5)
        cm = stencil_cost_table(64, [cfg.rows_per_proc])
        trace = build_stencil_trace(cfg)
        bounds = compute_bounds(trace, MEIKO_CS2.with_(P=4), cm)
        sim = ProgramSimulator(MEIKO_CS2.with_(P=4), cm).run(trace)
        assert bounds.contains(sim.total_us)

    def test_simulation_adds_value_over_bracket(self):
        """The bracket is loose (that's the point of simulating)."""
        trace = build_ge_trace(GEConfig(240, 24, DiagonalLayout(10, 8)))
        bounds = compute_bounds(trace, MEIKO_CS2, CM)
        assert bounds.spread > 2.0

    def test_empty_trace(self):
        bounds = compute_bounds(ProgramTrace(num_procs=4), MEIKO_CS2, CM)
        assert bounds.lower_us == 0.0
        assert bounds.upper_us == 0.0

    def test_components_consistent(self):
        trace = build_ge_trace(GEConfig(96, 24, DiagonalLayout(4, 4)))
        bounds = compute_bounds(trace, MEIKO_CS2, CM)
        assert bounds.lower_us == max(bounds.work_bound_us, bounds.average_bound_us)
        assert bounds.work_bound_us >= bounds.average_bound_us - 1e-9  # max >= mean

    def test_bsp_reference_between_reasonable_limits(self):
        """Barrier execution costs at least the per-step maxima and the
        LogGP simulation (no barriers) should not exceed it by much —
        here it is strictly cheaper."""
        trace = build_ge_trace(GEConfig(240, 24, DiagonalLayout(10, 8)))
        bounds = compute_bounds(trace, MEIKO_CS2, CM)
        sim = ProgramSimulator(MEIKO_CS2, CM).run(trace)
        assert bounds.bsp_reference_us > 0
        # barrier-free execution exploits step overlap the BSP figure cannot
        assert sim.total_us < bounds.bsp_reference_us * 2.0

    def test_invalid_bracket_rejected(self):
        with pytest.raises(ValueError):
            RunningTimeBounds(
                lower_us=2.0,
                upper_us=1.0,
                work_bound_us=2.0,
                average_bound_us=1.0,
                bsp_reference_us=0.0,
            )


class TestAsciiChart:
    SERIES = {
        "pred": {10: 5.0, 20: 2.0, 40: 3.0},
        "meas": {10: 6.0, 20: 2.5, 40: 3.5},
    }

    def test_contains_markers_and_legend(self):
        chart = ascii_chart(self.SERIES)
        assert "o pred" in chart and "* meas" in chart
        assert chart.count("o") >= 3

    def test_y_range_labels(self):
        chart = ascii_chart(self.SERIES)
        assert "6" in chart and "2" in chart

    def test_x_ticks_present(self):
        chart = ascii_chart(self.SERIES)
        assert "10" in chart and "40" in chart

    def test_y_scale(self):
        chart = ascii_chart({"s": {1: 2_000_000.0}}, y_scale=1e6)
        assert "2" in chart

    def test_single_point(self):
        chart = ascii_chart({"s": {10: 1.0}})
        assert "s" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart(self.SERIES, width=5)
        with pytest.raises(ValueError):
            ascii_chart({f"s{i}": {1: 1.0} for i in range(20)})
        with pytest.raises(ValueError):
            ascii_chart({"s": {}})

    def test_dimensions(self):
        chart = ascii_chart(self.SERIES, width=40, height=8)
        lines = chart.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + ticks + legend

"""Structured JSONL logging (repro.obs.log) and its trace correlation.

The logger's one job: every record is a single JSON line under the
``repro.log/v1`` schema, stamped with the ambient tracer's trace/span
ids whenever one is installed — the join key between logs, run
manifests, and merged timelines.
"""

import json

import pytest

from repro.cli import main
from repro.obs import Tracer, tracing
from repro.obs.log import (
    LOG_SCHEMA,
    NULL_LOGGER,
    JsonlLogger,
    get_logger,
    log_event,
    set_logger,
)
from repro.obs.telemetry import TraceContext


def read_log(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestJsonlLogger:
    def test_records_are_schema_stamped_json_lines(self, tmp_path):
        path = tmp_path / "run.log.jsonl"
        with JsonlLogger(str(path)) as logger:
            logger.log("sweep.start", points=4)
            logger.log("sweep.done", points=4, wall_s=0.5)
        records = read_log(path)
        assert [r["event"] for r in records] == ["sweep.start", "sweep.done"]
        assert all(r["schema"] == LOG_SCHEMA for r in records)
        assert all("ts" in r for r in records)

    def test_ambient_trace_ids_stamped(self, tmp_path):
        path = tmp_path / "run.log.jsonl"
        tracer = Tracer()
        tracer.context = TraceContext.root("log-test")
        with JsonlLogger(str(path)) as logger:
            with tracing(tracer):
                logger.log("inside")
            logger.log("outside")
        inside, outside = read_log(path)
        assert inside["trace_id"] == tracer.context.trace_id
        assert inside["span_id"] == tracer.context.span_id
        assert "trace_id" not in outside

    def test_explicit_fields_win_over_ambient(self, tmp_path):
        path = tmp_path / "run.log.jsonl"
        tracer = Tracer()
        tracer.context = TraceContext.root("log-test")
        with JsonlLogger(str(path)) as logger, tracing(tracer):
            logger.log("custom", trace_id="override")
        (record,) = read_log(path)
        assert record["trace_id"] == "override"

    def test_ambient_logger_and_null_default(self, tmp_path):
        assert get_logger() is NULL_LOGGER
        log_event("dropped.on.the.floor")  # never raises
        path = tmp_path / "run.log.jsonl"
        logger = JsonlLogger(str(path))
        set_logger(logger)
        try:
            log_event("routed", answer=42)
        finally:
            set_logger(None)
            logger.close()
        assert get_logger() is NULL_LOGGER
        (record,) = read_log(path)
        assert record["event"] == "routed" and record["answer"] == 42


class TestCliLogging:
    BASE = ["sweep", "-n", "120", "--blocks", "30", "--layout", "diagonal",
            "--no-measured", "--no-manifest"]

    def test_cli_run_record_appended(self, tmp_path, capsys):
        path = tmp_path / "cli.log.jsonl"
        assert main([*self.BASE, "--log-jsonl", str(path)]) == 0
        capsys.readouterr()
        records = read_log(path)
        run = records[-1]
        assert run["event"] == "cli.run"
        assert run["command"] == "sweep"
        assert run["status"] == "ok"
        assert run["wall_s"] >= 0
        assert run["trace_id"] is None  # untraced run

    def test_traced_cli_run_carries_trace_id(self, tmp_path, capsys):
        path = tmp_path / "cli.log.jsonl"
        shards = tmp_path / "shards"
        assert main([*self.BASE, "--log-jsonl", str(path),
                     "--trace-shards", str(shards)]) == 0
        capsys.readouterr()
        run = read_log(path)[-1]
        assert len(run["trace_id"]) == 32

"""The lost-cycles bucket identity, across every simulator and layout.

For every processor the profile must satisfy

    compute + send + recv + wait + idle == makespan   (within 1e-9 us)

— the observability layer's core invariant: buckets are derived from the
event stream, and the identity is what makes Perfetto tracks, profiler
tables and run manifests mutually consistent.
"""

import pytest

from repro.apps.gauss import GEConfig, build_ge_trace
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.layouts import LAYOUTS
from repro.machine import profile_program
from repro.obs import Tracer, bucket_sums

TOL_US = 1e-9
MODES = ("standard", "worstcase", "causal")
BLOCKS = (12, 24, 40)
N = 120
P = 4


def _trace(layout_name, b):
    layout = LAYOUTS[layout_name](N // b, P)
    return build_ge_trace(GEConfig(n=N, b=b, layout=layout))


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("layout", sorted(LAYOUTS))
@pytest.mark.parametrize("b", BLOCKS)
def test_bucket_identity(mode, layout, b):
    trace = _trace(layout, b)
    profile = profile_program(trace, MEIKO_CS2, CalibratedCostModel(), mode=mode)
    assert profile.makespan_us > 0
    assert set(profile.processors) == set(range(P))
    for p, prof in profile.processors.items():
        assert prof.total == pytest.approx(profile.makespan_us, abs=TOL_US), (
            f"proc {p}: {prof.total} != {profile.makespan_us}"
        )
        for bucket in ("compute", "send", "recv", "wait", "idle"):
            assert getattr(prof, bucket) >= 0.0


@pytest.mark.parametrize("mode", MODES)
def test_profile_equals_direct_event_aggregation(mode):
    """profile_program and a caller-held tracer see identical numbers."""
    trace = _trace("block2d", 24)
    tracer = Tracer()
    profile = profile_program(
        trace, MEIKO_CS2, CalibratedCostModel(), mode=mode, tracer=tracer
    )
    sums, makespan = bucket_sums(
        tracer.events, trace.num_procs, makespan=profile.makespan_us
    )
    assert makespan == profile.makespan_us
    for p, buckets in sums.items():
        for name, value in buckets.items():
            assert value == getattr(profile.processors[p], name)


def test_unknown_mode_rejected():
    trace = _trace("diagonal", 24)
    with pytest.raises(ValueError, match="unknown mode"):
        profile_program(trace, MEIKO_CS2, CalibratedCostModel(), mode="psychic")

"""Tests for messages and communication patterns (repro.core.message)."""

import networkx as nx
import pytest

from repro.core import CommPattern, Message


class TestMessage:
    def test_fields(self):
        m = Message(src=1, dst=2, size=64, uid=0, seq=3)
        assert (m.src, m.dst, m.size, m.seq) == (1, 2, 64, 3)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Message(src=0, dst=1, size=0, uid=0)

    def test_negative_proc_rejected(self):
        with pytest.raises(ValueError):
            Message(src=-1, dst=1, size=1, uid=0)

    def test_is_local(self):
        assert Message(src=2, dst=2, size=1, uid=0).is_local
        assert not Message(src=2, dst=3, size=1, uid=0).is_local

    def test_str_mentions_endpoints(self):
        text = str(Message(src=1, dst=2, size=64, uid=7))
        assert "P1" in text and "P2" in text and "64" in text


class TestCommPatternConstruction:
    def test_empty(self):
        pat = CommPattern(4)
        assert len(pat) == 0
        assert not pat

    def test_add_returns_message(self):
        pat = CommPattern(4)
        m = pat.add(0, 1, 128)
        assert isinstance(m, Message)
        assert m.size == 128

    def test_out_of_range_src_rejected(self):
        with pytest.raises(ValueError):
            CommPattern(4).add(4, 0)

    def test_out_of_range_dst_rejected(self):
        with pytest.raises(ValueError):
            CommPattern(4).add(0, 4)

    def test_edges_constructor_two_and_three_tuples(self):
        pat = CommPattern(3, edges=[(0, 1), (1, 2, 99)], default_size=7)
        sizes = [m.size for m in pat]
        assert sizes == [7, 99]

    def test_bad_edge_tuple_rejected(self):
        with pytest.raises(ValueError):
            CommPattern(3, edges=[(0, 1, 2, 3)])

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            CommPattern(0)

    def test_program_order_per_sender(self):
        pat = CommPattern(4)
        pat.add(0, 1)
        pat.add(2, 3)
        pat.add(0, 2)
        seqs = [m.seq for m in pat.sends_of(0)]
        assert seqs == [0, 1]
        assert pat.sends_of(2)[0].seq == 0

    def test_uids_unique(self):
        pat = CommPattern(3, edges=[(0, 1)] * 5)
        assert len({m.uid for m in pat}) == 5


class TestCommPatternQueries:
    @pytest.fixture
    def pat(self):
        return CommPattern(4, edges=[(0, 1, 10), (0, 2, 20), (1, 1, 30), (2, 0, 40)])

    def test_degrees(self, pat):
        assert pat.out_degree(0) == 2
        assert pat.in_degree(1) == 2  # one remote + one local
        assert pat.in_degree(3) == 0

    def test_remote_and_local_split(self, pat):
        assert len(pat.remote_messages()) == 3
        assert len(pat.local_messages()) == 1
        assert pat.local_messages()[0].src == 1

    def test_participants(self, pat):
        assert pat.participants() == (0, 1, 2)

    def test_total_bytes(self, pat):
        assert pat.total_bytes() == 100

    def test_recvs_of(self, pat):
        assert [m.size for m in pat.recvs_of(0)] == [40]

    def test_scaled(self, pat):
        doubled = pat.scaled(2.0)
        assert doubled.total_bytes() == 200
        tiny = pat.scaled(0.0001)
        assert all(m.size == 1 for m in tiny)

    def test_scaled_zero_rejected(self, pat):
        with pytest.raises(ValueError):
            pat.scaled(0)

    def test_validate_accepts_well_formed(self, pat):
        pat.validate()

    def test_from_adjacency(self):
        pat = CommPattern.from_adjacency({0: [(1, 5), (2, 6)], 2: [(0, 7)]}, num_procs=3)
        assert len(pat) == 3
        assert [m.size for m in pat.sends_of(0)] == [5, 6]


class TestGraphAnalysis:
    def test_acyclic_pattern(self):
        pat = CommPattern(3, edges=[(0, 1), (1, 2)])
        assert not pat.has_cycle()

    def test_cycle_detected(self):
        pat = CommPattern(3, edges=[(0, 1), (1, 2), (2, 0)])
        assert pat.has_cycle()

    def test_self_loop_not_counted_by_default(self):
        pat = CommPattern(3, edges=[(0, 0), (0, 1)])
        assert not pat.has_cycle()

    def test_to_networkx_structure(self):
        pat = CommPattern(3, edges=[(0, 1, 10), (0, 1, 20), (2, 2, 5)])
        g = pat.to_networkx()
        assert isinstance(g, nx.MultiDiGraph)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges(0, 1) == 2  # multigraph keeps both
        assert g.number_of_edges(2, 2) == 0  # local excluded by default
        g_local = pat.to_networkx(include_local=True)
        assert g_local.number_of_edges(2, 2) == 1

    def test_edge_sizes_preserved(self):
        pat = CommPattern(2, edges=[(0, 1, 123)])
        g = pat.to_networkx()
        (_, _, data), = g.edges(data=True)
        assert data["size"] == 123

"""Tests for critical-path analysis (repro.analysis.critical_path)."""

import pytest

from repro.analysis import critical_path, operation_slack
from repro.apps import sample_pattern
from repro.core import (
    MEIKO_CS2,
    CommPattern,
    LogGPParameters,
    OpKind,
    simulate_standard,
    simulate_worstcase,
)

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=8)


class TestCriticalPath:
    def test_single_message_path(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_standard(PARAMS, pat)
        path = critical_path(res.timeline)
        assert len(path) == 2  # the send and its receive
        assert path.operations[0].kind is OpKind.SEND
        assert path.operations[-1].kind is OpKind.RECV
        assert path.wire_hops == 1
        assert path.completion_time == res.completion_time

    def test_chain_path_spans_all_hops(self):
        pat = CommPattern(4, edges=[(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        res = simulate_worstcase(PARAMS, pat)  # fully serialised
        path = critical_path(res.timeline)
        assert path.wire_hops == 3
        assert path.processors == (0, 1, 2, 3)

    def test_path_ends_at_last_operation(self):
        pat = sample_pattern()
        res = simulate_standard(MEIKO_CS2, pat)
        path = critical_path(res.timeline)
        assert path.operations[-1].end == pytest.approx(res.completion_time)

    def test_path_edges_are_tight(self):
        """Consecutive path ops must be separated by exactly a binding
        constraint (port gap or message arrival)."""
        pat = sample_pattern()
        res = simulate_standard(MEIKO_CS2, pat)
        path = critical_path(res.timeline)
        params = res.timeline.params
        for a, b in zip(path.operations, path.operations[1:]):
            if a.proc == b.proc:
                allowed = params.earliest_start(a.kind, a.end, b.kind)
                assert b.start == pytest.approx(allowed)
            else:
                assert a.kind is OpKind.SEND and b.kind is OpKind.RECV
                assert a.message.uid == b.message.uid
                assert b.start == pytest.approx(b.arrival)

    def test_empty_timeline(self):
        res = simulate_standard(PARAMS, CommPattern(2))
        path = critical_path(res.timeline)
        assert len(path) == 0
        assert path.processors == ()

    def test_describe(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_standard(PARAMS, pat)
        text = critical_path(res.timeline).describe()
        assert "critical path" in text
        assert "P0" in text and "P1" in text


class TestSlack:
    def test_critical_ops_have_zero_slack(self):
        pat = sample_pattern()
        res = simulate_standard(MEIKO_CS2, pat)
        path = critical_path(res.timeline)
        slack = operation_slack(res.timeline)
        for e in path.operations:
            key = e.message.uid * 2 + (1 if e.kind is OpKind.RECV else 0)
            assert slack[key] == pytest.approx(0.0, abs=1e-6)

    def test_slack_nonnegative(self):
        pat = sample_pattern()
        res = simulate_standard(MEIKO_CS2, pat)
        assert all(s >= 0 for s in operation_slack(res.timeline).values())

    def test_parallel_branch_has_slack(self):
        # 0 -> 1 (short) and 0 -> 2 -> ... : the early independent receive
        # can slip
        pat = CommPattern(3, edges=[(0, 1, 1), (0, 2, 500)])
        res = simulate_standard(PARAMS, pat)
        slack = operation_slack(res.timeline)
        recv_fast = slack[0 * 2 + 1]  # uid 0's receive at P1
        assert recv_fast > 0

    def test_empty(self):
        res = simulate_standard(PARAMS, CommPattern(2))
        assert operation_slack(res.timeline) == {}

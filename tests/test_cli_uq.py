"""CLI tests for the ``repro uq`` verb.

The two acceptance gates live here in CLI form: a zero-sigma UQ run's
``results_sha256`` equals the plain ``repro sweep`` digest bit for bit,
and the seeded sigma>0 summary digest is identical under ``--workers 1``
and ``--workers 2``.
"""

import json

import pytest

from repro.cli import main

BASE = ["uq", "-n", "120", "--blocks", "24", "40", "--layout", "diagonal",
        "--no-measured", "--seed", "0", "--replicates", "4", "--sigma", "0.1"]
SWEEP = ["sweep", "-n", "120", "--blocks", "24", "40", "--layout", "diagonal",
         "--no-measured", "--seed", "0"]


def run_json(argv, capsys):
    assert main([*argv, "--json", "--no-manifest"]) == 0
    return json.loads(capsys.readouterr().out)


def manifest(path):
    return json.loads(path.read_text())


class TestBasicRun:
    def test_table_output(self, capsys):
        assert main([*BASE, "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "95% CI over 4 replicates" in out
        assert "mean" in out and "ci_lo" in out and "ci_hi" in out

    def test_json_shape(self, capsys):
        doc = run_json(BASE, capsys)
        assert doc["replicates"] == 4 and doc["ci"] == 0.95
        assert doc["spec"]["sigma"] == 0.1
        assert len(doc["rows"]) == 2
        for row in doc["rows"]:
            assert row["replicates"] == 4
            stats = row["metrics"]["pred_standard_total"]
            assert stats["ci_lo"] <= stats["mean"] <= stats["ci_hi"]
            assert row["metrics"]["measured_total"] is None  # --no-measured
        assert len(doc["summary_sha256"]) == 64
        assert len(doc["results_sha256"]) == 64

    def test_sensitivity_report(self, capsys):
        doc = run_json([*BASE, "--sensitivity"], capsys)
        report = doc["sensitivity"]["diagonal"]
        assert [row["b"] for row in report] == [24, 40]
        assert all(row["dominant"] in row["elasticity"] for row in report)

    def test_bad_blocks_rejected(self, capsys):
        assert main(["uq", "-n", "120", "--blocks", "23", "--layout", "diagonal",
                     "--no-manifest"]) == 2


class TestZeroSigmaAnchor:
    def test_sigma_zero_results_digest_equals_sweep(self, tmp_path, capsys):
        """`repro uq --replicates 32 --sigma 0` IS the deterministic sweep."""
        uq = run_json(["uq", "-n", "120", "--blocks", "24", "40",
                       "--layout", "diagonal", "--no-measured", "--seed", "0",
                       "--replicates", "32", "--sigma", "0"], capsys)
        m = tmp_path / "sweep.json"
        assert main([*SWEEP, "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        assert uq["results_sha256"] == manifest(m)["extra"]["results_sha256"]

    def test_sigma_zero_manifest_marks_deterministic(self, tmp_path, capsys):
        m = tmp_path / "uq.json"
        assert main(["uq", "-n", "120", "--blocks", "24", "--layout", "diagonal",
                     "--no-measured", "--sigma", "0", "--replicates", "8",
                     "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        doc = manifest(m)
        assert doc["uq"]["deterministic"] is True
        assert doc["uq"]["spec"]["sigma"] == 0.0
        assert doc["extra"]["sweep"]["total"] == 1  # collapsed ensemble


class TestWorkerInvariance:
    def test_summary_digest_equal_across_worker_counts(self, capsys):
        serial = run_json([*BASE, "--workers", "1"], capsys)
        parallel = run_json([*BASE, "--workers", "2"], capsys)
        assert parallel["summary_sha256"] == serial["summary_sha256"]
        assert parallel["results_sha256"] == serial["results_sha256"]
        assert parallel["rows"] == serial["rows"]


class TestManifest:
    def test_uq_block_recorded(self, tmp_path, capsys):
        m = tmp_path / "uq.json"
        assert main([*BASE, "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        doc = manifest(m)
        assert doc["command"] == "uq" and doc["engine"] == "uq"
        block = doc["uq"]
        assert block["replicates"] == 4 and block["ci"] == 0.95
        assert block["deterministic"] is False
        assert len(block["summary_sha256"]) == 64
        assert block["spec"]["sigma"] == 0.1
        assert doc["extra"]["sweep"]["total"] == 8  # 2 blocks x 4 replicates

    def test_store_resume_through_cli(self, tmp_path, capsys):
        store = tmp_path / "store"
        m = tmp_path / "m.json"
        assert main([*BASE, "--store", str(store), "--no-manifest"]) == 0
        assert main([*BASE, "--store", str(store), "--resume",
                     "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        stats = manifest(m)["extra"]["sweep"]
        assert stats["cached"] == stats["total"] == 8


class TestSvgOutput:
    def test_svg_written(self, tmp_path, capsys):
        out = tmp_path / "band.svg"
        assert main([*BASE, "--svg-out", str(out), "--no-manifest"]) == 0
        capsys.readouterr()
        text = out.read_text()
        assert text.startswith("<svg") and "polyline" in text

    def test_multi_layout_suffixes(self, tmp_path, capsys):
        out = tmp_path / "band.svg"
        argv = ["uq", "-n", "120", "--blocks", "24", "40",
                "--layout", "diagonal", "column", "--no-measured",
                "--replicates", "3", "--sigma", "0.1",
                "--svg-out", str(out), "--no-manifest"]
        assert main(argv) == 0
        capsys.readouterr()
        assert (tmp_path / "band-diagonal.svg").exists()
        assert (tmp_path / "band-column.svg").exists()

"""Tests for LogGP parameter estimation (repro.core.fitting)."""

import pytest

from repro.core import (
    ETHERNET_CLUSTER,
    LOW_OVERHEAD_NIC,
    MEIKO_CS2,
    LogGPParameters,
    assess_fit,
    emulator_runner,
    fit_loggp,
)
from repro.core.fitting import run_microbenchmarks
from repro.machine import JitteredNetwork


class TestExactRecovery:
    @pytest.mark.parametrize(
        "truth", [MEIKO_CS2, ETHERNET_CLUSTER, LOW_OVERHEAD_NIC]
    )
    def test_recovers_presets_exactly(self, truth):
        fitted = fit_loggp(emulator_runner(truth), num_procs=truth.P)
        errors = assess_fit(fitted, truth)
        for name, err in errors.items():
            assert err < 1e-9, f"{name} off by {err:.2e}"

    def test_recovers_arbitrary_parameters(self):
        truth = LogGPParameters(L=33.0, o=1.25, g=6.5, G=0.0875, P=4)
        fitted = fit_loggp(emulator_runner(truth), num_procs=4)
        assert max(assess_fit(fitted, truth).values()) < 1e-9

    def test_zero_G_machine(self):
        truth = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.0, P=4)
        fitted = fit_loggp(emulator_runner(truth))
        assert fitted.G == pytest.approx(0.0)

    def test_o_greater_than_g(self):
        truth = LogGPParameters(L=10.0, o=8.0, g=2.0, G=0.1, P=4)
        fitted = fit_loggp(emulator_runner(truth))
        assert max(assess_fit(fitted, truth).values()) < 1e-9


class TestNoisyRecovery:
    def test_jittered_latency_recovered_within_tolerance(self):
        """The only jittered quantity is L; o/g/G come from sender-side
        timings and stay exact."""
        net = JitteredNetwork(params=MEIKO_CS2, seed=3)
        runner = emulator_runner(MEIKO_CS2, latency_of=net.latency_of)
        fitted = fit_loggp(runner, repeats=15)
        errors = assess_fit(fitted, MEIKO_CS2)
        assert errors["o"] < 1e-9
        assert errors["g"] < 1e-9
        assert errors["G"] < 1e-9
        assert errors["L"] < 0.15  # median over 15 jittered round trips


class TestMicrobenchmarks:
    def test_raw_observations(self):
        bench = run_microbenchmarks(emulator_runner(MEIKO_CS2))
        assert bench.send_small == pytest.approx(MEIKO_CS2.o)
        assert bench.send_large == pytest.approx(
            MEIKO_CS2.send_duration(bench.large_bytes)
        )
        m = bench.burst_count
        assert bench.burst == pytest.approx(m * MEIKO_CS2.o + (m - 1) * MEIKO_CS2.g)
        assert bench.one_way == pytest.approx(MEIKO_CS2.end_to_end(1))

    def test_validation(self):
        runner = emulator_runner(MEIKO_CS2)
        with pytest.raises(ValueError):
            run_microbenchmarks(runner, large_bytes=1)
        with pytest.raises(ValueError):
            run_microbenchmarks(runner, burst_count=1)


class TestAssessFit:
    def test_relative_errors(self):
        a = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=2)
        b = a.with_(L=11.0)
        errors = assess_fit(b, a)
        assert errors["L"] == pytest.approx(0.1)
        assert errors["o"] == 0.0

    def test_fitted_parameters_predict_like_truth(self):
        """End-to-end: parameters fitted from micro-benchmarks reproduce
        the truth machine's predictions on an unrelated pattern."""
        from repro.apps import sample_pattern
        from repro.core import simulate_standard

        fitted = fit_loggp(emulator_runner(MEIKO_CS2), num_procs=MEIKO_CS2.P)
        pat = sample_pattern()
        t_true = simulate_standard(MEIKO_CS2, pat).completion_time
        t_fit = simulate_standard(fitted, pat).completion_time
        assert t_fit == pytest.approx(t_true)

"""Tests for timelines and their invariant checks (repro.core.events)."""

import pytest

from repro.core import CommPattern, LogGPParameters, Message, OpKind, StepTimeline
from repro.core.events import CommEvent

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=4)


def msg(src=0, dst=1, size=1, uid=0, seq=0):
    return Message(src=src, dst=dst, size=size, uid=uid, seq=seq)


def send(proc, start, message, params=PARAMS):
    return CommEvent(proc, OpKind.SEND, start, params.send_duration(message.size), message)


def recv(proc, start, message, arrival, params=PARAMS):
    return CommEvent(
        proc, OpKind.RECV, start, params.recv_duration(message.size), message, arrival=arrival
    )


def valid_single_message_timeline():
    """P0 sends one 1-byte message to P1 under PARAMS."""
    m = msg()
    tl = StepTimeline(params=PARAMS)
    tl.add(send(0, 0.0, m))
    tl.add(recv(1, 12.0, m, arrival=12.0))
    return tl, m


class TestCommEvent:
    def test_end(self):
        m = msg(size=10)
        e = send(0, 3.0, m)
        assert e.end == pytest.approx(3.0 + 6.5)

    def test_str_contains_direction(self):
        m = msg()
        assert "->" in str(send(0, 0.0, m))
        assert "<-" in str(recv(1, 12.0, m, 12.0))


class TestTimelineQueries:
    def test_completion_time(self):
        tl, _ = valid_single_message_timeline()
        assert tl.completion_time == pytest.approx(14.0)

    def test_completion_of_empty_timeline_is_start_clock(self):
        tl = StepTimeline(params=PARAMS, start_times={0: 5.0, 1: 9.0})
        assert tl.completion_time == 9.0

    def test_finish_time_per_proc(self):
        tl, _ = valid_single_message_timeline()
        assert tl.finish_time(0) == pytest.approx(2.0)
        assert tl.finish_time(1) == pytest.approx(14.0)

    def test_finish_time_of_idle_proc_is_clock(self):
        tl = StepTimeline(params=PARAMS, start_times={3: 7.0})
        assert tl.finish_time(3) == 7.0

    def test_busy_time(self):
        tl, _ = valid_single_message_timeline()
        assert tl.busy_time(0) == pytest.approx(2.0)
        assert tl.busy_time(1) == pytest.approx(2.0)

    def test_sends_recvs_participants(self):
        tl, _ = valid_single_message_timeline()
        assert len(tl.sends()) == 1
        assert len(tl.recvs()) == 1
        assert tl.participants() == [0, 1]

    def test_per_proc_finish_includes_clock_only_procs(self):
        tl, _ = valid_single_message_timeline()
        tl.start_times = {0: 0.0, 1: 0.0, 2: 3.0}
        finishes = tl.per_proc_finish()
        assert finishes[2] == 3.0


class TestValidation:
    def test_valid_timeline_passes(self):
        tl, m = valid_single_message_timeline()
        tl.validate([m])

    def test_overlapping_ops_rejected(self):
        m1, m2 = msg(uid=0, seq=0), msg(uid=1, seq=1)
        tl = StepTimeline(params=PARAMS)
        tl.add(send(0, 0.0, m1))
        tl.add(send(0, 1.0, m2))  # overlaps [0, 2)
        with pytest.raises(AssertionError):
            tl.validate()

    def test_gap_violation_rejected(self):
        m1, m2 = msg(uid=0, seq=0), msg(uid=1, seq=1)
        tl = StepTimeline(params=PARAMS)
        tl.add(send(0, 0.0, m1))
        tl.add(send(0, 4.0, m2))  # needs end(2.0) + g(5) = 7.0
        with pytest.raises(AssertionError, match="gap violation"):
            tl.validate()

    def test_receive_before_arrival_rejected(self):
        m = msg()
        tl = StepTimeline(params=PARAMS)
        tl.add(send(0, 0.0, m))
        tl.add(recv(1, 11.0, m, arrival=11.0))  # true arrival is 12.0
        with pytest.raises(AssertionError):
            tl.validate()

    def test_duplicate_receive_rejected(self):
        m = msg()
        tl = StepTimeline(params=PARAMS)
        tl.add(send(0, 0.0, m))
        tl.add(recv(1, 12.0, m, arrival=12.0))
        tl.add(recv(1, 19.0, m, arrival=12.0))
        with pytest.raises(AssertionError, match="duplicate"):
            tl.validate()

    def test_receive_without_send_rejected(self):
        m = msg()
        tl = StepTimeline(params=PARAMS)
        tl.add(recv(1, 12.0, m, arrival=12.0))
        with pytest.raises(AssertionError, match="without send"):
            tl.validate()

    def test_message_set_mismatch_rejected(self):
        tl, m = valid_single_message_timeline()
        extra = msg(uid=99)
        with pytest.raises(AssertionError, match="set mismatch"):
            tl.validate([m, extra])

    def test_local_messages_excluded_from_expected_set(self):
        tl, m = valid_single_message_timeline()
        local = Message(src=2, dst=2, size=4, uid=50)
        tl.validate([m, local])  # local messages are not simulated

    def test_program_order_violation_rejected(self):
        m1, m2 = msg(uid=0, seq=1), msg(uid=1, seq=0)
        tl = StepTimeline(params=PARAMS)
        tl.add(send(0, 0.0, m1))
        tl.add(send(0, 7.0, m2))  # seq 0 sent after seq 1
        with pytest.raises(AssertionError, match="program order"):
            tl.validate()

    def test_op_before_start_clock_rejected(self):
        m = msg()
        tl = StepTimeline(params=PARAMS, start_times={0: 5.0})
        tl.add(send(0, 0.0, m))
        with pytest.raises(AssertionError, match="predates"):
            tl.validate()

    def test_strict_latency_flags_jitter(self):
        m = msg()
        tl = StepTimeline(params=PARAMS)
        tl.add(send(0, 0.0, m))
        tl.add(recv(1, 13.0, m, arrival=13.0))  # jittered: arrival != 12.0
        with pytest.raises(AssertionError, match="arrival mismatch"):
            tl.validate()
        tl.validate(strict_latency=False)  # jitter allowed

    def test_non_strict_still_rejects_arrival_before_send_end(self):
        m = msg()
        tl = StepTimeline(params=PARAMS)
        tl.add(send(0, 0.0, m))
        tl.add(recv(1, 1.0, m, arrival=1.0))  # "arrives" mid-send
        with pytest.raises(AssertionError):
            tl.validate(strict_latency=False)

"""Golden-value regression pins for the reproduction's key quantities.

These values are *our* reproduction's outputs, not the paper's numbers
(see EXPERIMENTS.md for the paper-vs-reproduction accounting).  They are
pinned so that any future change to the timing semantics — gap rules,
cost calibration, emulator effects — is caught deliberately rather than
silently shifting every figure.  If a change is intentional, update the
constants here and re-derive EXPERIMENTS.md.
"""

import pytest

from repro import (
    MEIKO_CS2,
    CalibratedCostModel,
    GEConfig,
    MachineEmulator,
    ProgramSimulator,
    build_ge_trace,
    sample_pattern,
    simulate_standard,
    simulate_worstcase,
)
from repro.layouts import DiagonalLayout

CM = CalibratedCostModel()


class TestSamplePatternGoldenValues:
    """Figures 4/5 on the reconstructed Meiko parameters."""

    def test_standard_completion(self):
        res = simulate_standard(MEIKO_CS2, sample_pattern(), seed=0)
        assert res.completion_time == pytest.approx(110.314, abs=1e-3)

    def test_worstcase_completion(self):
        res = simulate_worstcase(MEIKO_CS2, sample_pattern(), seed=0)
        assert res.completion_time == pytest.approx(284.285, abs=1e-3)

    def test_overestimation_factor(self):
        std = simulate_standard(MEIKO_CS2, sample_pattern(), seed=0)
        wc = simulate_worstcase(MEIKO_CS2, sample_pattern(), seed=0)
        assert wc.completion_time / std.completion_time == pytest.approx(2.577, abs=0.01)


class TestCostModelGoldenValues:
    """Figure 6 calibration anchors."""

    def test_op1_at_48(self):
        assert CM.cost("op1", 48) == pytest.approx(2745.92, rel=1e-9)

    def test_op4_at_160(self):
        assert CM.cost("op4", 160) == pytest.approx(82441.0, rel=1e-9)

    def test_crossover_ordering(self):
        assert CM.cost("op1", 10) > CM.cost("op4", 10)
        assert CM.cost("op1", 160) < CM.cost("op4", 160)


class TestGEGoldenValues:
    """One GE configuration (n=240, b=24, diagonal, P=8), all engines."""

    @pytest.fixture(scope="class")
    def trace(self):
        return build_ge_trace(GEConfig(240, 24, DiagonalLayout(10, 8)))

    def test_standard_prediction(self, trace):
        report = ProgramSimulator(MEIKO_CS2, CM).run(trace)
        assert report.total_us == pytest.approx(45386.914, abs=0.01)
        assert report.comp_us == pytest.approx(21845.880, abs=0.01)
        assert report.comm_us == pytest.approx(28085.029, abs=0.01)

    def test_worstcase_prediction(self, trace):
        report = ProgramSimulator(MEIKO_CS2, CM, mode="worstcase").run(trace)
        assert report.total_us == pytest.approx(59394.802, abs=0.01)

    def test_emulated_measurement(self, trace):
        measured = MachineEmulator(MEIKO_CS2, CM, seed=0).run(trace)
        assert measured.total_us == pytest.approx(50025.063, abs=0.01)
        assert measured.total_without_cache_us == pytest.approx(46092.855, abs=0.01)

    def test_engine_ordering_preserved(self, trace):
        std = ProgramSimulator(MEIKO_CS2, CM).run(trace)
        wc = ProgramSimulator(MEIKO_CS2, CM, mode="worstcase").run(trace)
        measured = MachineEmulator(MEIKO_CS2, CM, seed=0).run(trace)
        assert std.total_us < measured.total_us < wc.total_us

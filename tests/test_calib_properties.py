"""Property-based tests for the Bayesian calibrator (`repro.calib`).

The three properties the issue pins:

* **Point-fit convergence.**  As the injected measurement noise goes to
  zero, the posterior mean converges to the classical point fit — and at
  exactly zero it *is* the point fit, bit for bit.
* **Width monotonicity.**  The credible intervals never narrow when the
  injected jitter sigma grows.  The measurement layer keys its noise
  draws independently of sigma, so scaling sigma scales every
  log-residual exactly linearly — the property is a construction, not a
  hope.
* **Digest invariance.**  Replaying a posterior through the UQ engine
  gives identical digests whatever the worker count and whether the
  ``REPRO_FAST`` kernel twin is on or off.

Calibrations here use deliberately short chains — the properties are
about structure (convergence, ordering, invariance), not about posterior
quality, which ``test_calib_recovery.py`` gates separately.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calib import calibrate_emulator, measure_emulator
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.kernel import fast_path
from repro.uq import run_uq
from repro.uq.spec import LOGGP_PARAMS

PARAMS = MEIKO_CS2
CM = CalibratedCostModel()

#: short-chain settings shared by the structural properties
FAST_CHAIN = dict(repeats=5, draws=40, burn=60, thin=1)


def quick_posterior(noise_sigma, seed, **overrides):
    return calibrate_emulator(
        PARAMS, CM, noise_sigma=noise_sigma, seed=seed,
        **{**FAST_CHAIN, **overrides},
    )


class TestPointFitConvergence:
    @given(seed=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=5, deadline=None)
    def test_zero_noise_is_the_point_fit_bit_for_bit(self, seed):
        posterior = quick_posterior(0.0, seed)
        assert posterior.degenerate
        assert posterior.draws == (posterior.point_fit,)

    @given(
        sigma=st.sampled_from([0.01, 0.02, 0.04]),
        seed=st.integers(min_value=0, max_value=2**10 - 1),
    )
    @settings(max_examples=5, deadline=None)
    def test_posterior_mean_within_a_few_sigma_of_the_fit(self, sigma, seed):
        """Mean-to-fit distance is O(sigma) in log space, every parameter."""
        posterior = quick_posterior(sigma, seed)
        summary = posterior.summary()
        point = posterior.point_fit
        for name in LOGGP_PARAMS:
            gap = abs(np.log(summary[name]["mean"]) - np.log(getattr(point, name)))
            assert gap < 5 * sigma, (name, gap, sigma)

    def test_means_converge_as_noise_shrinks(self):
        """Halving sigma (same underlying draws) tightens the worst gap."""
        gaps = []
        for sigma in (0.08, 0.02, 0.005):
            posterior = quick_posterior(sigma, seed=9)
            point = posterior.point_fit
            gaps.append(max(
                abs(np.log(posterior.summary()[n]["mean"])
                    - np.log(getattr(point, n)))
                for n in LOGGP_PARAMS
            ))
        assert gaps[0] > gaps[1] > gaps[2]
        assert gaps[2] < 0.01


class TestWidthMonotonicity:
    @given(
        sigma=st.sampled_from([0.01, 0.02, 0.05]),
        seed=st.integers(min_value=0, max_value=2**10 - 1),
    )
    @settings(max_examples=5, deadline=None)
    def test_tripling_sigma_never_narrows_any_interval(self, sigma, seed):
        narrow = quick_posterior(sigma, seed)
        wide = quick_posterior(3 * sigma, seed)
        for name in LOGGP_PARAMS:
            lo_n, hi_n = narrow.credible_interval(name, 0.9)
            lo_w, hi_w = wide.credible_interval(name, 0.9)
            assert hi_w - lo_w >= hi_n - lo_n, name

    @given(seed=st.integers(min_value=0, max_value=2**10 - 1))
    @settings(max_examples=5, deadline=None)
    def test_residuals_scale_exactly_with_sigma(self, seed):
        """The construction behind monotonicity: shared z-draws."""
        m0 = measure_emulator(PARAMS, noise_sigma=0.0, repeats=3, seed=seed)
        m1 = measure_emulator(PARAMS, noise_sigma=0.03, repeats=3, seed=seed)
        m2 = measure_emulator(PARAMS, noise_sigma=0.09, repeats=3, seed=seed)
        for a, b, c in zip(m0.measurements, m1.measurements, m2.measurements):
            r1 = np.log(b.value) - np.log(a.value)
            r2 = np.log(c.value) - np.log(a.value)
            assert r2 == pytest.approx(3.0 * r1, rel=1e-9, abs=1e-12)


class TestDigestInvariance:
    @pytest.fixture(scope="class")
    def spec(self):
        return quick_posterior(0.05, seed=13).to_spec(max_draws=8)

    def run(self, spec, workers):
        return run_uq(
            [128], [16], ["column"], PARAMS, CM,
            spec=spec, replicates=6, base_seed=0, workers=workers,
        )

    @given(base_seed=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=3, deadline=None)
    def test_digest_identical_across_worker_counts(self, spec, base_seed):
        serial = run_uq(
            [128], [16], ["column"], PARAMS, CM,
            spec=spec, replicates=6, base_seed=base_seed, workers=1,
        )
        pooled = run_uq(
            [128], [16], ["column"], PARAMS, CM,
            spec=spec, replicates=6, base_seed=base_seed, workers=2,
        )
        assert serial.replicate_digest() == pooled.replicate_digest()
        assert serial.summary_digest() == pooled.summary_digest()

    def test_digest_identical_across_repro_fast(self, spec):
        slow = self.run(spec, workers=1)
        with fast_path(True):
            fast = self.run(spec, workers=1)
        assert slow.replicate_digest() == fast.replicate_digest()
        assert slow.summary_digest() == fast.summary_digest()

"""Tests for LogGP collectives (repro.core.collectives)."""

import pytest

from repro.core import (
    LogGPParameters,
    binomial_broadcast_pattern,
    binomial_broadcast_time,
    gather_pattern,
    gather_time,
    linear_broadcast_pattern,
    linear_broadcast_time,
    optimal_broadcast_schedule,
    reduction_pattern,
    ring_allgather_round,
    scatter_pattern,
    simulate_standard,
    simulate_tree_broadcast,
)

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=16)


class TestPatternShapes:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_linear_broadcast_edges(self, n):
        pat = linear_broadcast_pattern(n, size=4)
        assert len(pat) == n - 1
        assert pat.out_degree(0) == n - 1
        assert all(pat.in_degree(p) == 1 for p in range(1, n))

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 13])
    def test_binomial_broadcast_is_spanning_tree(self, n):
        pat = binomial_broadcast_pattern(n, size=4)
        assert len(pat) == n - 1
        receivers = [m.dst for m in pat]
        assert sorted(receivers + [0]) == list(range(n))
        assert not pat.has_cycle()

    def test_binomial_rounds_double(self):
        pat = binomial_broadcast_pattern(8)
        # the root's sends go to distances 1, 2, 4
        assert [m.dst for m in pat.sends_of(0)] == [1, 2, 4]

    def test_gather_edges(self):
        pat = gather_pattern(5, size=4, root=2)
        assert pat.in_degree(2) == 4
        assert all(pat.out_degree(p) == 1 for p in range(5) if p != 2)

    def test_scatter_matches_linear(self):
        assert len(scatter_pattern(6)) == 5

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_reduction_everyone_contributes(self, n):
        pat = reduction_pattern(n)
        assert len(pat) == n - 1
        senders = {m.src for m in pat}
        assert senders == set(range(1, n))  # everyone but the root sends once

    def test_reduction_rooted_elsewhere(self):
        pat = reduction_pattern(4, root=3)
        # the final message lands at the root
        assert pat.messages[-1].dst in {3}

    def test_ring_round(self):
        pat = ring_allgather_round(4, size=9)
        assert len(pat) == 4
        assert pat.has_cycle()

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_broadcast_pattern(3, root=3)
        with pytest.raises(ValueError):
            ring_allgather_round(1)


class TestClosedFormsAgainstSimulation:
    """Where formulas exist, the simulators must match them exactly."""

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 11])
    @pytest.mark.parametrize("size", [1, 100])
    def test_linear_broadcast(self, n, size):
        pat = linear_broadcast_pattern(n, size=size)
        sim = simulate_standard(PARAMS.with_(P=n), pat).completion_time
        assert sim == pytest.approx(linear_broadcast_time(PARAMS, n, size))

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 13])
    def test_gather(self, n):
        pat = gather_pattern(n, size=50)
        sim = simulate_standard(PARAMS.with_(P=n), pat).completion_time
        assert sim == pytest.approx(gather_time(PARAMS, n, 50))

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 13, 16])
    def test_binomial_broadcast_data_dependent(self, n):
        """The binomial formula describes the data-dependent execution,
        provided by the active-message runtime."""
        pat = binomial_broadcast_pattern(n, size=20)
        timeline = simulate_tree_broadcast(PARAMS.with_(P=n), pat)
        assert timeline.completion_time == pytest.approx(
            binomial_broadcast_time(PARAMS, n, 20)
        )

    def test_single_step_simulation_underestimates_trees(self):
        """A single-step pattern has every message ready at step start, so
        simulating a tree broadcast that way ignores data dependencies and
        under-estimates — the documented semantic boundary."""
        pat = binomial_broadcast_pattern(8, size=20)
        one_step = simulate_standard(PARAMS.with_(P=8), pat).completion_time
        dependent = simulate_tree_broadcast(PARAMS.with_(P=8), pat).completion_time
        assert one_step < dependent

    def test_trivial_sizes(self):
        assert linear_broadcast_time(PARAMS, 1) == 0.0
        assert binomial_broadcast_time(PARAMS, 1) == 0.0
        assert gather_time(PARAMS, 1) == 0.0


class TestOptimalBroadcast:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 23])
    def test_schedule_matches_execution(self, n):
        sched = optimal_broadcast_schedule(PARAMS, n, size=20)
        pat = sched.to_pattern(size=20, num_procs=n)
        timeline = simulate_tree_broadcast(PARAMS.with_(P=n), pat)
        assert timeline.completion_time == pytest.approx(sched.completion_time)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 23, 32])
    def test_never_worse_than_binomial_or_linear(self, n):
        sched = optimal_broadcast_schedule(PARAMS, n, size=20)
        assert sched.completion_time <= binomial_broadcast_time(PARAMS, n, 20) + 1e-9
        assert sched.completion_time <= linear_broadcast_time(PARAMS, n, 20) + 1e-9

    def test_everyone_informed_exactly_once(self):
        sched = optimal_broadcast_schedule(PARAMS, 12)
        assert set(sched.informed_at) == set(range(12))
        assert len(sched.sends) == 11

    def test_greedy_prefers_earliest_informer(self):
        # with a huge gap, the root alone is slow; recruits must help
        slow_gap = LogGPParameters(L=1.0, o=1.0, g=50.0, G=0.0, P=8)
        sched = optimal_broadcast_schedule(slow_gap, 4)
        senders = {src for src, _, _ in sched.sends}
        assert len(senders) > 1, "recruits must transmit when the root is gap-bound"

    def test_single_processor(self):
        sched = optimal_broadcast_schedule(PARAMS, 1)
        assert sched.completion_time == 0.0
        assert sched.sends == ()


class TestTreeBroadcastValidation:
    def test_rejects_non_tree(self):
        from repro.core import CommPattern

        pat = CommPattern(3, edges=[(0, 1), (2, 1)])  # P1 receives twice
        with pytest.raises(ValueError, match="receives twice"):
            simulate_tree_broadcast(PARAMS, pat)

    def test_rejects_root_receiving(self):
        from repro.core import CommPattern

        pat = CommPattern(3, edges=[(1, 0)])
        with pytest.raises(ValueError, match="root receives"):
            simulate_tree_broadcast(PARAMS, pat, root=0)

    def test_timeline_is_valid(self):
        pat = binomial_broadcast_pattern(8, size=64)
        timeline = simulate_tree_broadcast(PARAMS.with_(P=8), pat)
        timeline.validate()

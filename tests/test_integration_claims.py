"""Integration tests: the paper's qualitative claims at reduced scale.

DESIGN.md section 4 lists the reproduced claims; the benchmarks check them
at the paper's full scale (960x960).  These tests re-check them at 480x480
(same block-size granularity, ~8x fewer operations) so the suite stays
fast while still exercising the full prediction + emulation pipeline.
"""

import pytest

from repro.analysis import (
    argmin_key,
    bracketed_fraction,
    has_interior_minimum,
    is_within_neighbors,
    relative_gap,
)
from repro.core import MEIKO_CS2, CalibratedCostModel, run_ge_sweep

N = 480
BLOCK_SIZES = [12, 20, 30, 40, 60, 96, 160]
LAYOUTS = ["diagonal", "stripped"]


@pytest.fixture(scope="module")
def rows():
    return run_ge_sweep(
        N, BLOCK_SIZES, LAYOUTS, MEIKO_CS2, CalibratedCostModel(), with_measured=True
    )


def series(rows, layout, getter):
    return {r.b: getter(r) for r in rows if r.layout == layout}


class TestOrderingClaims:
    def test_worstcase_bounds_standard_everywhere(self, rows):
        for r in rows:
            assert r.pred_worstcase.total_us >= r.pred_standard.total_us - 1e-6

    def test_measured_above_standard_prediction(self, rows):
        """The simple prediction omits cache, iteration and local-copy
        effects, so the emulated measurement exceeds it (paper §6.3)."""
        for r in rows:
            assert r.measured.total_us >= r.pred_standard.total_us * 0.97

    def test_without_caching_closer_to_prediction(self, rows):
        for r in rows:
            if r.measured.cache_us < 0.01 * r.measured.total_us:
                continue  # cache effects immaterial at this block size
            gap_with = abs(r.measured.total_us - r.pred_standard.total_us)
            gap_without = abs(
                r.measured.total_without_cache_us - r.pred_standard.total_us
            )
            assert gap_without <= gap_with + 1e-6


class TestFigure7Shapes:
    def test_total_time_has_interior_minimum(self, rows):
        """The running time is nonlinear in the block size with an optimum
        strictly inside the candidate range."""
        for layout in LAYOUTS:
            measured = series(rows, layout, lambda r: r.measured.total_us)
            predicted = series(rows, layout, lambda r: r.pred_standard.total_us)
            assert has_interior_minimum(measured), layout
            assert has_interior_minimum(predicted), layout

    def test_diagonal_beats_stripped_at_large_blocks(self, rows):
        """Paper §6.3: the diagonal mapping works better, especially for
        large block sizes — in both prediction and measurement."""
        diag_m = series(rows, "diagonal", lambda r: r.measured.total_us)
        str_m = series(rows, "stripped", lambda r: r.measured.total_us)
        diag_p = series(rows, "diagonal", lambda r: r.pred_standard.total_us)
        str_p = series(rows, "stripped", lambda r: r.pred_standard.total_us)
        for b in (96, 160):
            assert diag_m[b] < str_m[b]
            assert diag_p[b] < str_p[b]

    def test_prediction_identifies_better_layout_at_large_blocks(self, rows):
        """The simulation's layout comparison agrees with measurement
        (the paper's second stated purpose)."""
        for b in (96, 160):
            pred_winner = min(
                LAYOUTS,
                key=lambda l: series(rows, l, lambda r: r.pred_standard.total_us)[b],
            )
            meas_winner = min(
                LAYOUTS,
                key=lambda l: series(rows, l, lambda r: r.measured.total_us)[b],
            )
            assert pred_winner == meas_winner

    def test_predicted_optimum_near_measured_optimum(self, rows):
        """Paper: the predicted best block size differs from the measured
        one by at most neighbouring grid entries, and its real running
        time is not far from the real minimum."""
        for layout in LAYOUTS:
            pred = series(rows, layout, lambda r: r.pred_standard.total_us)
            meas = series(rows, layout, lambda r: r.measured.total_us)
            b_pred, b_meas = argmin_key(pred), argmin_key(meas)
            assert is_within_neighbors(b_pred, b_meas, BLOCK_SIZES, hops=2)
            # running the predicted-best block size costs at most 15% more
            # than the true measured minimum
            assert meas[b_pred] <= 1.15 * meas[b_meas]


class TestFigure8CommunicationBracket:
    def test_measured_comm_mostly_bracketed(self, rows):
        for layout in LAYOUTS:
            measured = series(rows, layout, lambda r: r.measured.comm_us)
            lower = series(rows, layout, lambda r: r.pred_standard.comm_us)
            upper = series(rows, layout, lambda r: r.pred_worstcase.comm_us)
            assert bracketed_fraction(measured, lower, upper, slack=0.03) >= 0.8, layout

    def test_standard_under_predicts_comm(self, rows):
        """Expected under-prediction: local transfers are not modelled."""
        ok = sum(
            1 for r in rows if r.measured.comm_us >= r.pred_standard.comm_us * 0.99
        )
        assert ok / len(rows) >= 0.9


class TestFigure9Computation:
    def test_computation_predicted_closely(self, rows):
        for r in rows:
            gap = abs(relative_gap(r.pred_standard.comp_us, r.measured.comp_us))
            assert gap < 0.25, (r.layout, r.b, gap)

    def test_under_prediction_worst_at_small_blocks(self, rows):
        """Iteration overhead grows with the number of blocks per
        processor, so the computation gap shrinks as blocks grow."""
        for layout in LAYOUTS:
            gaps = {
                r.b: relative_gap(r.pred_standard.comp_us, r.measured.comp_us)
                for r in rows
                if r.layout == layout
            }
            assert gaps[min(BLOCK_SIZES)] > gaps[max(BLOCK_SIZES)] - 0.02

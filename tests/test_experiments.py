"""Tests for the experiment store (repro.experiments)."""

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel, FlopCostModel
from repro.experiments import ExperimentStore, PointSummary


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path, MEIKO_CS2, CalibratedCostModel())


class TestStore:
    def test_miss_computes_then_hit_reads(self, store, tmp_path):
        first = store.point(120, 24, "diagonal", with_measured=False)
        assert store.cached_count() == 1
        # mutate nothing; second call must come from disk with equal values
        second = store.point(120, 24, "diagonal", with_measured=False)
        assert first == second

    def test_hit_is_fast(self, store):
        import time

        store.point(120, 24, "diagonal", with_measured=False)
        t0 = time.perf_counter()
        store.point(120, 24, "diagonal", with_measured=False)
        assert time.perf_counter() - t0 < 0.05  # pure JSON read

    def test_summary_values_match_live_run(self, store):
        from repro.core import run_ge_point

        summary = store.point(120, 24, "diagonal", seed=3)
        row = run_ge_point(
            120, 24, "diagonal", MEIKO_CS2, CalibratedCostModel(), seed=3
        )
        assert summary.pred_standard_total == pytest.approx(row.pred_standard.total_us)
        assert summary.measured_total == pytest.approx(row.measured.total_us)

    def test_series_shape(self, store):
        with_m = store.point(120, 24, "diagonal")
        without = store.point(120, 24, "diagonal", with_measured=False)
        assert "measured_with_caching" in with_m.series()
        assert "measured_with_caching" not in without.series()

    def test_sweep_resumable(self, store):
        store.point(120, 24, "diagonal", with_measured=False)
        rows = store.sweep(120, [24, 40], ["diagonal"], with_measured=False)
        assert len(rows) == 2
        assert store.cached_count() == 2

    def test_distinct_configs_distinct_entries(self, store):
        store.point(120, 24, "diagonal", with_measured=False)
        store.point(120, 24, "stripped", with_measured=False)
        store.point(120, 24, "diagonal", seed=1, with_measured=False)
        assert store.cached_count() == 3

    def test_clear(self, store):
        store.point(120, 24, "diagonal", with_measured=False)
        assert store.clear() == 1
        assert store.cached_count() == 0

    def test_cost_model_change_invalidates(self, tmp_path):
        a = ExperimentStore(tmp_path, MEIKO_CS2, CalibratedCostModel())
        a.point(120, 24, "diagonal", with_measured=False)
        b = ExperimentStore(tmp_path, MEIKO_CS2, FlopCostModel())
        assert b.cached_count() == 0  # different fingerprint, cache miss

    def test_machine_change_invalidates(self, tmp_path):
        a = ExperimentStore(tmp_path, MEIKO_CS2, CalibratedCostModel())
        a.point(120, 24, "diagonal", with_measured=False)
        b = ExperimentStore(tmp_path, MEIKO_CS2.with_(L=99.0), CalibratedCostModel())
        assert b.cached_count() == 0

    def test_empty_store_counts_zero(self, tmp_path):
        store = ExperimentStore(tmp_path / "nowhere", MEIKO_CS2, CalibratedCostModel())
        assert store.cached_count() == 0
        assert store.clear() == 0


class TestPointSummary:
    def test_frozen(self):
        s = PointSummary(
            n=1, b=1, layout="diagonal", seed=0,
            pred_standard_total=1.0, pred_standard_comp=0.5,
            pred_standard_comm=0.5, pred_worstcase_total=2.0,
            pred_worstcase_comm=1.0,
        )
        with pytest.raises(AttributeError):
            s.n = 2

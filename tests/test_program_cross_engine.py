"""Whole-program cross-engine consistency checks.

The step-level tests show the standard queue-based algorithm and the
causal DES implementation agree per communication step; these tests close
the loop at *program* level across the three applications, and pin the
monotonicity relations every engine must respect end to end.
"""

import pytest

from repro.apps import (
    CannonConfig,
    GEConfig,
    StencilConfig,
    build_cannon_trace,
    build_ge_trace,
    build_stencil_trace,
    stencil_cost_table,
)
from repro.core import MEIKO_CS2, CalibratedCostModel, ProgramSimulator
from repro.layouts import DiagonalLayout, RowStrippedCyclicLayout

CM = CalibratedCostModel()


def ge_trace(n=240, b=24, P=8, layout_cls=DiagonalLayout):
    return build_ge_trace(GEConfig(n, b, layout_cls(n // b, P)))


class TestCausalMatchesStandardAtProgramLevel:
    @pytest.mark.parametrize("layout_cls", [DiagonalLayout, RowStrippedCyclicLayout])
    def test_ge(self, layout_cls):
        trace = ge_trace(layout_cls=layout_cls)
        std = ProgramSimulator(MEIKO_CS2, CM, mode="standard").run(trace)
        causal = ProgramSimulator(MEIKO_CS2, CM, mode="causal").run(trace)
        assert causal.total_us == pytest.approx(std.total_us, rel=1e-9)
        assert causal.per_proc_total_us == pytest.approx(std.per_proc_total_us)

    def test_cannon(self):
        trace = build_cannon_trace(CannonConfig(n=96, num_procs=16))
        params = MEIKO_CS2.with_(P=16)
        std = ProgramSimulator(params, CM, mode="standard").run(trace)
        causal = ProgramSimulator(params, CM, mode="causal").run(trace)
        assert causal.total_us == pytest.approx(std.total_us, rel=1e-9)

    def test_stencil(self):
        cfg = StencilConfig(n=128, num_procs=8, iterations=6)
        cm = stencil_cost_table(128, [cfg.rows_per_proc])
        trace = build_stencil_trace(cfg)
        std = ProgramSimulator(MEIKO_CS2, cm, mode="standard").run(trace)
        causal = ProgramSimulator(MEIKO_CS2, cm, mode="causal").run(trace)
        assert causal.total_us == pytest.approx(std.total_us, rel=1e-9)


class TestProgramLevelMonotonicity:
    def test_worstcase_dominates_standard_for_every_processor(self):
        trace = ge_trace()
        std = ProgramSimulator(MEIKO_CS2, CM, mode="standard").run(trace)
        wc = ProgramSimulator(MEIKO_CS2, CM, mode="worstcase").run(trace)
        for p in std.per_proc_total_us:
            assert wc.per_proc_total_us[p] >= std.per_proc_total_us[p] - 1e-6

    def test_slower_network_never_helps(self):
        trace = ge_trace()
        fast = ProgramSimulator(MEIKO_CS2, CM).run(trace)
        slow = ProgramSimulator(MEIKO_CS2.with_(L=MEIKO_CS2.L * 4), CM).run(trace)
        assert slow.total_us >= fast.total_us

    def test_higher_bandwidth_cost_never_helps(self):
        trace = ge_trace()
        fast = ProgramSimulator(MEIKO_CS2, CM).run(trace)
        slow = ProgramSimulator(MEIKO_CS2.with_(G=MEIKO_CS2.G * 3), CM).run(trace)
        assert slow.total_us > fast.total_us

    def test_comp_time_independent_of_network(self):
        trace = ge_trace()
        a = ProgramSimulator(MEIKO_CS2, CM).run(trace)
        b = ProgramSimulator(MEIKO_CS2.with_(L=99.0, g=40.0), CM).run(trace)
        assert a.comp_us == pytest.approx(b.comp_us)

    def test_repeatability_across_instances(self):
        trace = ge_trace()
        runs = [
            ProgramSimulator(MEIKO_CS2, CM, mode="worstcase", seed=5).run(trace).total_us
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

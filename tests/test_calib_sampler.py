"""Unit tests of the calibration layers: spec, measure, likelihood, MCMC.

The recovery harness (``test_calib_recovery.py``) gates the end-to-end
claims; this file pins the contracts of each layer — value-object
validation and JSON round-trips, the ``EmpiricalSpec`` protocol surface
the UQ engine relies on, the perturbation dispatch, degenerate
detection, and chain determinism.
"""

import numpy as np
import pytest

from repro.calib import (
    CalibModel,
    MCMCConfig,
    Measurement,
    MeasurementSet,
    Posterior,
    calibrate,
    group_stats,
    measure_emulator,
    run_mcmc,
)
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.fingerprint import posterior_fingerprint
from repro.core.fitting import emulator_runner, fit_loggp
from repro.machine.perturbed import PerturbedMachine, ScaledCostModel
from repro.uq import EmpiricalSpec, MachineDraw, UQSpec, spec_from_dict


@pytest.fixture(scope="module")
def cost_model():
    return CalibratedCostModel()


@pytest.fixture(scope="module")
def noisy_mset(cost_model):
    return measure_emulator(
        MEIKO_CS2, cost_model, noise_sigma=0.05, repeats=5, seed=2
    )


class TestMachineDraw:
    def test_ops_mapping_normalised_to_sorted_pairs(self):
        d = MachineDraw(L=9.0, o=5.0, g=14.0, G=0.023, ops={"op2": 1.1, "op1": 0.9})
        assert d.ops == (("op1", 0.9), ("op2", 1.1))
        assert d.op_factors() == {"op1": 0.9, "op2": 1.1}

    def test_draws_are_hashable(self):
        a = MachineDraw(L=1.0, o=2.0, g=3.0, G=0.1, ops={"op1": 1.0})
        b = MachineDraw(L=1.0, o=2.0, g=3.0, G=0.1, ops=(("op1", 1.0),))
        assert len({a, b}) == 1

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError, match="must be a float >= 0"):
            MachineDraw(L=-1.0, o=5.0, g=14.0, G=0.023)

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ValueError, match="must be > 0"):
            MachineDraw(L=9.0, o=5.0, g=14.0, G=0.023, ops={"op1": 0.0})

    def test_json_round_trip_exact(self):
        d = MachineDraw(L=9.125, o=5.0625, g=14.5, G=0.0229999999999999,
                        ops={"op3": 1.0000000001})
        assert MachineDraw.from_dict(d.to_dict()) == d

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown MachineDraw keys"):
            MachineDraw.from_dict({"L": 1, "o": 1, "g": 1, "G": 1, "bogus": 2})


class TestEmpiricalSpec:
    def _draws(self, n=4):
        return tuple(
            MachineDraw(L=9.0 + i, o=5.0, g=14.0, G=0.023) for i in range(n)
        )

    def test_needs_a_draw(self):
        with pytest.raises(ValueError, match="at least one draw"):
            EmpiricalSpec(draws=())

    def test_protocol_predicates(self):
        spec = EmpiricalSpec(draws=self._draws())
        assert not spec.is_deterministic()
        assert not spec.is_identity()
        assert spec.network_overrides() == {}
        degenerate = EmpiricalSpec(draws=(self._draws(1) * 3))
        assert degenerate.is_deterministic()
        assert not degenerate.is_identity()

    def test_draw_for_is_a_pure_function_of_the_seed(self):
        spec = EmpiricalSpec(draws=self._draws())
        picks = [spec.draw_for(s) for s in (0, 1, 2, 3, 0, 1)]
        assert picks[:2] == picks[4:]
        assert all(p in spec.draws for p in picks)

    def test_json_round_trip_and_kind_dispatch(self):
        spec = EmpiricalSpec(draws=self._draws(), source="calib-abc")
        doc = spec.to_dict()
        assert doc["kind"] == "empirical"
        assert EmpiricalSpec.from_dict(doc) == spec
        assert spec_from_dict(doc) == spec
        plain = spec_from_dict({"sigma": 0.1})
        assert isinstance(plain, UQSpec)

    def test_fingerprint_ignores_source_but_not_draws(self):
        a = EmpiricalSpec(draws=self._draws(), source="x")
        b = EmpiricalSpec(draws=self._draws(), source="y")
        c = EmpiricalSpec(draws=self._draws(3), source="x")
        assert a.fingerprint() == b.fingerprint() == posterior_fingerprint(a.draws)
        assert a.fingerprint() != c.fingerprint()

    def test_store_tag_always_tagged(self):
        spec = EmpiricalSpec(draws=self._draws())
        assert spec.store_tag() == f"uq-{spec.fingerprint()}"

    def test_from_dict_rejects_unknown_keys_and_wrong_kind(self):
        with pytest.raises(ValueError, match="unknown EmpiricalSpec keys"):
            EmpiricalSpec.from_dict({"kind": "empirical", "draws": [], "x": 1})
        with pytest.raises(ValueError, match="not an empirical spec"):
            EmpiricalSpec.from_dict({"kind": "gaussian", "draws": []})


class TestPerturbedDispatch:
    def test_draw_replaces_network_params(self, cost_model):
        draw = MachineDraw(L=11.0, o=6.0, g=15.0, G=0.03)
        spec = EmpiricalSpec(draws=(draw,))
        params, cm = PerturbedMachine(MEIKO_CS2, cost_model, spec).sample(0)
        assert (params.L, params.o, params.g, params.G) == (11.0, 6.0, 15.0, 0.03)
        assert params.P == MEIKO_CS2.P
        assert cm is cost_model  # no factors -> base model untouched

    def test_non_unit_factors_wrap_the_cost_model(self, cost_model):
        draw = MachineDraw(L=9.0, o=5.0, g=14.0, G=0.023,
                           ops={"op1": 1.25, "op2": 1.0})
        spec = EmpiricalSpec(draws=(draw,))
        _, cm = PerturbedMachine(MEIKO_CS2, cost_model, spec).sample(0)
        assert isinstance(cm, ScaledCostModel)
        assert cm.factors == {"op1": 1.25}  # exact-1.0 factors dropped
        assert cm.cost("op1", 16) == cost_model.cost("op1", 16) * 1.25
        assert cm.cost("op2", 16) == cost_model.cost("op2", 16)

    def test_sample_is_deterministic_per_seed(self, cost_model):
        draws = tuple(
            MachineDraw(L=9.0 + i, o=5.0, g=14.0, G=0.023) for i in range(5)
        )
        spec = EmpiricalSpec(draws=draws)
        pm = PerturbedMachine(MEIKO_CS2, cost_model, spec)
        assert pm.sample(42)[0] == pm.sample(42)[0]


class TestMeasurements:
    def test_rejects_bad_kind_and_nonpositive_values(self):
        with pytest.raises(ValueError, match="unknown measurement kind"):
            Measurement(kind="ping", value=1.0)
        with pytest.raises(ValueError, match="must be > 0"):
            Measurement(kind="send_small", value=0.0)
        with pytest.raises(ValueError, match="need both"):
            Measurement(kind="op", value=1.0)

    def test_set_round_trip_exact(self, noisy_mset):
        assert MeasurementSet.from_dict(noisy_mset.to_dict()) == noisy_mset

    def test_point_fit_matches_fit_loggp_on_zero_noise(self):
        mset = measure_emulator(MEIKO_CS2, noise_sigma=0.0, repeats=3, seed=0)
        fit = fit_loggp(emulator_runner(MEIKO_CS2), num_procs=MEIKO_CS2.P)
        point = mset.point_fit()
        assert (point.L, point.o, point.g, point.G) == (fit.L, fit.o, fit.g, fit.G)

    def test_ops_present_sorted(self, noisy_mset):
        assert noisy_mset.ops_present() == ("op1", "op2", "op3", "op4")


class TestLikelihood:
    def test_zero_spread_groups_are_exactly_zero(self):
        mset = measure_emulator(MEIKO_CS2, noise_sigma=0.0, repeats=4, seed=0)
        for s in group_stats(mset):
            assert s.ss_log == 0.0
            assert s.sd_log == 0.0

    def test_degenerate_detection(self, noisy_mset):
        clean = measure_emulator(MEIKO_CS2, noise_sigma=0.0, repeats=3, seed=0)
        assert CalibModel(clean).is_degenerate()
        assert not CalibModel(noisy_mset, CalibratedCostModel()).is_degenerate()

    def test_op_measurements_require_a_cost_model(self, noisy_mset):
        with pytest.raises(ValueError, match="base cost model"):
            CalibModel(noisy_mset, base_cost_model=None)

    def test_posterior_peaks_near_the_truth(self, noisy_mset, cost_model):
        model = CalibModel(noisy_mset, cost_model)
        at_truth = model.log_posterior(model.initial())
        off = model.initial()
        off[0] += 1.0  # L off by a factor e
        assert at_truth > model.log_posterior(off)

    def test_pinned_dimensions_get_zero_proposal_scale(self, cost_model):
        mset = measure_emulator(MEIKO_CS2, cost_model, noise_sigma=0.0,
                                repeats=3, seed=0)
        model = CalibModel(mset, cost_model)
        assert np.all(model.proposal_scales() == 0.0)


class TestMCMC:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MCMCConfig(draws=0)
        with pytest.raises(ValueError):
            MCMCConfig(burn=-1)
        with pytest.raises(ValueError):
            MCMCConfig(thin=0)

    def test_same_seed_same_chain(self, noisy_mset, cost_model):
        model = CalibModel(noisy_mset, cost_model)
        cfg = MCMCConfig(draws=20, burn=20, thin=1, seed=5)
        a = run_mcmc(model, cfg)
        b = run_mcmc(model, cfg)
        assert np.array_equal(a.samples, b.samples)
        assert a.accept_rate == b.accept_rate

    def test_different_seed_different_chain(self, noisy_mset, cost_model):
        model = CalibModel(noisy_mset, cost_model)
        a = run_mcmc(model, MCMCConfig(draws=20, burn=20, thin=1, seed=5))
        b = run_mcmc(model, MCMCConfig(draws=20, burn=20, thin=1, seed=6))
        assert not np.array_equal(a.samples, b.samples)

    def test_sample_shape_and_acceptance_bounds(self, noisy_mset, cost_model):
        model = CalibModel(noisy_mset, cost_model)
        res = run_mcmc(model, MCMCConfig(draws=30, burn=10, thin=2, seed=0))
        assert res.samples.shape == (30, len(model.names))
        assert 0.0 < res.accept_rate <= 1.0
        assert len(res.accept_by_dim) == len(model.names)


class TestPosterior:
    @pytest.fixture(scope="class")
    def posterior(self, noisy_mset, cost_model):
        return calibrate(noisy_mset, base_cost_model=cost_model,
                         draws=40, burn=60, thin=1, seed=4)

    def test_json_round_trip_exact(self, posterior):
        assert Posterior.from_dict(posterior.to_dict()) == posterior

    def test_summary_brackets_interval(self, posterior):
        for stats in posterior.summary(0.9).values():
            assert stats["lo"] <= stats["median"] <= stats["hi"]

    def test_to_spec_subsampling(self, posterior):
        spec = posterior.to_spec(max_draws=10)
        assert len(spec.draws) == 10
        assert set(spec.draws) <= set(posterior.draws)
        assert spec.draws[0] == posterior.draws[0]
        assert spec.draws[-1] == posterior.draws[-1]
        full = posterior.to_spec()
        assert full.draws == tuple(posterior.draws)
        assert full.source == f"calib-{posterior.fingerprint()}"

    def test_fingerprint_tracks_draws(self, posterior):
        moved = Posterior(
            draws=posterior.draws[:-1] + (posterior.point_fit,),
            point_fit=posterior.point_fit,
        )
        assert moved.fingerprint() != posterior.fingerprint()

    def test_unknown_dimension_rejected(self, posterior):
        with pytest.raises(ValueError, match="unknown posterior dimension"):
            posterior.samples("bogus")

"""Tests for the cache-aware prediction extension (repro.core.cache_extension)."""

import pytest

from repro.core import CachePredictionModel


class TestMissFraction:
    model = CachePredictionModel(cache_bytes=1000, line_bytes=32, miss_penalty_us=1.0)

    def test_zero_when_fits(self):
        assert self.model.miss_fraction(500) == 0.0
        assert self.model.miss_fraction(1000) == 0.0

    def test_grows_with_overflow(self):
        small = self.model.miss_fraction(1100)
        large = self.model.miss_fraction(5000)
        assert 0 < small < large <= 1.0

    def test_saturates_at_one(self):
        assert self.model.miss_fraction(10**9) == 1.0


class TestExtraCost:
    model = CachePredictionModel(cache_bytes=10_000, line_bytes=32, miss_penalty_us=1.0)

    def test_zero_without_overflow(self):
        assert self.model.extra_cost("op4", 8, resident_bytes=100) == 0.0

    def test_positive_with_overflow(self):
        assert self.model.extra_cost("op4", 8, resident_bytes=10**6) > 0.0

    def test_zero_for_uncacheable_footprint(self):
        """Ops whose operands exceed the cache stream regardless — their
        cost is in the warm table already (matches the emulator CPU)."""
        tiny = CachePredictionModel(cache_bytes=512, line_bytes=32, miss_penalty_us=1.0)
        assert tiny.extra_cost("op4", 64, resident_bytes=10**6) == 0.0

    def test_monotone_in_resident_set(self):
        costs = [
            self.model.extra_cost("op4", 8, resident_bytes=r)
            for r in (10_000, 12_000, 20_000, 10**6)
        ]
        assert costs == sorted(costs)

    def test_validation(self):
        with pytest.raises(ValueError):
            CachePredictionModel(cache_bytes=0)
        with pytest.raises(ValueError):
            CachePredictionModel(miss_penalty_us=-1.0)

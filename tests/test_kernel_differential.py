"""The fast-kernel differential oracle: fast path == reference, bit for bit.

``repro.kernel`` re-implements the three step simulators and memoises the
pure cost functions; the *only* acceptable difference is wall-clock.
These tests run every application trace (GE, Cannon, stencil, triangular
solve) through every engine (standard, worst-case, causal) with the fast
path off and on, and require:

* identical :class:`PredictionReport` numbers — ``repr``-equal floats,
  not approx-equal;
* identical observability *event streams* (the tracer sees the same
  slices in the same order with the same timestamps — which also pins
  the DES event count and RNG consumption);
* identical emulator measurements (the jittered network draws from a
  shared RNG in send-completion order, so this catches any event
  reordering);
* identical sweep and UQ result digests, under one worker and across
  worker processes.
"""

from __future__ import annotations

import pytest

from repro.apps import (
    CannonConfig,
    GEConfig,
    StencilConfig,
    TriangularConfig,
    build_cannon_trace,
    build_ge_trace,
    build_stencil_trace,
    build_trsv_trace,
    stencil_cost_table,
    trsv_cost_table,
)
from repro.core import MEIKO_CS2, CalibratedCostModel, ProgramSimulator
from repro.core.predictor import summarize_ge_point
from repro.kernel import clear_all_caches, fast_path
from repro.layouts import DiagonalLayout, RowStrippedCyclicLayout
from repro.machine.emulator import MachineEmulator
from repro.obs import Tracer, tracing
from repro.sweep import expand_grid, run_sweep
from repro.uq import UQSpec, run_uq

CM = CalibratedCostModel()
MODES = ("standard", "worstcase", "causal")


def _trace_cases():
    """Every application trace with its machine parameters and cost model."""
    cases = []
    for layout_cls in (DiagonalLayout, RowStrippedCyclicLayout):
        trace = build_ge_trace(GEConfig(120, 20, layout_cls(6, 8)))
        cases.append((f"ge-{layout_cls.__name__}", trace, MEIKO_CS2, CM))
    cases.append(
        (
            "cannon",
            build_cannon_trace(CannonConfig(n=96, num_procs=16)),
            MEIKO_CS2.with_(P=16),
            CM,
        )
    )
    stencil_cfg = StencilConfig(n=128, num_procs=8, iterations=6)
    cases.append(
        (
            "stencil",
            build_stencil_trace(stencil_cfg),
            MEIKO_CS2,
            stencil_cost_table(128, [stencil_cfg.rows_per_proc]),
        )
    )
    cases.append(
        (
            "triangular",
            build_trsv_trace(TriangularConfig(n=120, b=20, layout=DiagonalLayout(6, 8))),
            MEIKO_CS2,
            trsv_cost_table([20]),
        )
    )
    return cases


TRACE_CASES = _trace_cases()
TRACE_IDS = [c[0] for c in TRACE_CASES]


def _predict(trace, params, cost_model, mode, fast):
    """One traced prediction run: (report, tracer event stream reprs)."""
    clear_all_caches()
    tracer = Tracer()
    with fast_path(fast), tracing(tracer):
        report = ProgramSimulator(params, cost_model, mode=mode, seed=0).run(trace)
    return report, [repr(e) for e in tracer.events]


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize(
    "trace,params,cost_model",
    [c[1:] for c in TRACE_CASES],
    ids=TRACE_IDS,
)
def test_prediction_bit_identical(trace, params, cost_model, mode):
    """Every app x engine: fast and reference predictions are bit-equal."""
    ref, ref_events = _predict(trace, params, cost_model, mode, fast=False)
    fast, fast_events = _predict(trace, params, cost_model, mode, fast=True)

    assert repr(fast.total_us) == repr(ref.total_us)
    assert repr(fast.per_proc_total_us) == repr(ref.per_proc_total_us)
    assert repr(fast.per_proc_comp_us) == repr(ref.per_proc_comp_us)
    assert repr(fast.per_proc_comm_busy_us) == repr(ref.per_proc_comm_busy_us)
    assert fast_events == ref_events


@pytest.mark.parametrize(
    "trace,params,cost_model",
    [c[1:] for c in TRACE_CASES],
    ids=TRACE_IDS,
)
def test_emulator_bit_identical(trace, params, cost_model):
    """The emulated machine (jittered network, shared RNG) is untouched."""

    def run(fast):
        clear_all_caches()
        tracer = Tracer()
        with fast_path(fast), tracing(tracer):
            report = MachineEmulator(
                params=params, cost_model=cost_model, seed=3
            ).run(trace)
        return report, [repr(e) for e in tracer.events]

    ref, ref_events = run(False)
    fast, fast_events = run(True)
    assert repr(fast.total_us) == repr(ref.total_us)
    assert repr(fast.per_proc_total_us) == repr(ref.per_proc_total_us)
    assert repr(fast.per_proc_comp_us) == repr(ref.per_proc_comp_us)
    assert repr(fast.per_proc_cache_us) == repr(ref.per_proc_cache_us)
    assert repr(fast.per_proc_local_us) == repr(ref.per_proc_local_us)
    assert fast_events == ref_events


def test_ge_point_summary_bit_identical():
    """The full point pipeline (predictions + emulator) round-trips."""
    with fast_path(False):
        ref = summarize_ge_point(120, 30, "diagonal", MEIKO_CS2, CM, seed=0)
    with fast_path(True):
        fast = summarize_ge_point(120, 30, "diagonal", MEIKO_CS2, CM, seed=0)
    assert set(ref) == set(fast)
    for key in ref:
        assert repr(fast[key]) == repr(ref[key]), key


class TestSweepDigests:
    GRID = expand_grid([120], [20, 30], ["diagonal", "stripped"], seeds=(0,))

    def _digest(self, fast, workers):
        with fast_path(fast):
            return run_sweep(
                self.GRID, MEIKO_CS2, CM, workers=workers, store=None
            ).digest()

    def test_single_worker(self):
        assert self._digest(True, 1) == self._digest(False, 1)

    def test_two_workers(self):
        """The flag travels into spawned workers; results stay bit-equal."""
        ref = self._digest(False, 1)
        assert self._digest(True, 2) == ref
        assert self._digest(False, 2) == ref


class TestUQDigests:
    SPEC = UQSpec(sigma=0.05, op_sigma=0.03, jitter_sigma=0.1)

    def _run(self, fast):
        with fast_path(fast):
            result = run_uq(
                [120], [30], ["diagonal"], MEIKO_CS2, CM,
                spec=self.SPEC, replicates=3,
            )
        return result.replicate_digest(), result.summary_digest()

    def test_perturbed_ensemble_digests(self):
        """Perturbed replicates (scaled costs, jittered nets) stay bit-equal."""
        assert self._run(True) == self._run(False)

class TestBatchLanes:
    """The vectorized batch kernel joins the oracle: every app trace,
    every lane of a multi-machine batch, bit-equal to the reference."""

    MACHINES = [
        MEIKO_CS2,
        MEIKO_CS2.with_(L=4.0, o=2.0),
        MEIKO_CS2.with_(g=25.0, G=0.1),
    ]
    SEEDS = (0, 3, 7)

    @pytest.mark.parametrize(
        "trace,params,cost_model",
        [c[1:] for c in TRACE_CASES],
        ids=TRACE_IDS,
    )
    def test_batch_lanes_bit_identical_to_reference(self, trace, params, cost_model):
        from repro.kernel.vector import GE_MODES, compile_plan, simulate_programs_batch

        plan = compile_plan(trace)
        lanes = [(params.with_(L=m.L, o=m.o, g=m.g, G=m.G), cost_model)
                 for m in self.MACHINES]
        clear_all_caches()
        batch = simulate_programs_batch(plan, lanes, list(self.SEEDS), modes=GE_MODES)

        for (lane_params, _), seed, reports in zip(lanes, self.SEEDS, batch):
            for mode in GE_MODES:
                clear_all_caches()
                with fast_path(False):
                    ref = ProgramSimulator(
                        lane_params, cost_model, mode=mode, seed=seed
                    ).run(trace)
                got = reports[mode]
                assert repr(got.total_us) == repr(ref.total_us), (mode, seed)
                assert repr(got.per_proc_total_us) == repr(ref.per_proc_total_us)
                assert repr(got.per_proc_comp_us) == repr(ref.per_proc_comp_us)
                assert repr(got.per_proc_comm_busy_us) == repr(
                    ref.per_proc_comm_busy_us
                )


class TestExecutorDigests:
    """Every executor strategy agrees with the fast-off serial reference."""

    GRID = expand_grid([120], [20, 30], ["diagonal", "stripped"], seeds=(0,))

    def test_all_executors_match_reference(self):
        with fast_path(False):
            ref = run_sweep(self.GRID, MEIKO_CS2, CM, workers=1).digest()
        for executor in ("serial", "thread", "process", "auto"):
            clear_all_caches()
            with fast_path(True):
                result = run_sweep(
                    self.GRID, MEIKO_CS2, CM, executor=executor, workers=2
                )
            assert result.digest() == ref, executor

    def test_uq_executor_matches_reference(self):
        spec = UQSpec(sigma=0.05, op_sigma=0.03, jitter_sigma=0.1)

        def run(fast, executor):
            clear_all_caches()
            with fast_path(fast):
                r = run_uq(
                    [120], [30], ["diagonal"], MEIKO_CS2, CM,
                    spec=spec, replicates=3, executor=executor,
                )
            return r.replicate_digest(), r.summary_digest()

        ref = run(False, None)
        for executor in ("serial", "auto"):
            assert run(True, executor) == ref, executor

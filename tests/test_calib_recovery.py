"""Posterior-vs-truth validation of the Bayesian calibrator.

The self-validating harness the tentpole ships with: calibrate against
emulator runs generated from a **known** ground-truth machine and gate

* **recovery** — with injected timer jitter, the 90% credible intervals
  cover the true (L, o, g, G) on at least 3 of the 4 parameters (the
  acceptance criterion of the issue), and the posterior means land close
  to the truth;
* **collapse** — with zero measurement noise the posterior degenerates
  to the classical point fit *bit for bit*, its ``EmpiricalSpec`` is
  deterministic, and replaying it through the UQ engine reproduces the
  plain deterministic sweep digest exactly.

Everything here is seeded, so these are exact assertions on a fixed
pipeline, not statistical hopes: a seed is part of the contract, and a
change that breaks coverage under the pinned seed is a real regression
in either the measurement model or the sampler.
"""

import numpy as np
import pytest

from repro.calib import calibrate_emulator, measure_emulator
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.fitting import emulator_runner, fit_loggp
from repro.core.loggp import LOW_OVERHEAD_NIC
from repro.sweep.points import expand_grid
from repro.sweep.runner import run_sweep
from repro.uq.engine import run_uq

#: the pinned recovery configuration — deterministic end to end
RECOVERY = dict(noise_sigma=0.05, repeats=7, draws=200, burn=200, thin=2, seed=3)


@pytest.fixture(scope="module")
def cost_model():
    return CalibratedCostModel()


@pytest.fixture(scope="module")
def noisy_posterior(cost_model):
    return calibrate_emulator(MEIKO_CS2, cost_model, **RECOVERY)


@pytest.fixture(scope="module")
def collapsed_posterior(cost_model):
    return calibrate_emulator(
        MEIKO_CS2, cost_model, noise_sigma=0.0, repeats=3, seed=7
    )


class TestRecoveryGate:
    def test_90pct_intervals_cover_at_least_3_of_4(self, noisy_posterior):
        assert noisy_posterior.coverage_count(MEIKO_CS2, level=0.9) >= 3

    def test_posterior_means_near_truth(self, noisy_posterior):
        """Means within ~3 noise-sigmas of the truth on every parameter."""
        summary = noisy_posterior.summary()
        for name in ("L", "o", "g", "G"):
            truth = getattr(MEIKO_CS2, name)
            rel = abs(summary[name]["mean"] - truth) / truth
            assert rel < 3 * RECOVERY["noise_sigma"], (name, rel)

    def test_op_factor_posteriors_bracket_one(self, noisy_posterior):
        """The emulator uses the base cost model, so true factors are 1."""
        covered = sum(
            noisy_posterior.credible_interval(f"op:op{i}", 0.9)[0]
            <= 1.0
            <= noisy_posterior.credible_interval(f"op:op{i}", 0.9)[1]
            for i in range(1, 5)
        )
        assert covered >= 3

    def test_chain_actually_moved(self, noisy_posterior):
        assert not noisy_posterior.degenerate
        assert 0.1 < noisy_posterior.accept_rate < 0.9
        for name in ("L", "o", "g", "G"):
            assert noisy_posterior.summary()[name]["sd"] > 0

    def test_recovery_on_a_second_machine(self, cost_model):
        """The gate is about the method, not one lucky parameter set."""
        posterior = calibrate_emulator(LOW_OVERHEAD_NIC, cost_model, **RECOVERY)
        assert posterior.coverage_count(LOW_OVERHEAD_NIC, level=0.9) >= 3


class TestCoverageWidensWithNoise:
    def test_interval_width_grows_with_sigma(self, cost_model, noisy_posterior):
        wider = calibrate_emulator(
            MEIKO_CS2, cost_model,
            **{**RECOVERY, "noise_sigma": 3 * RECOVERY["noise_sigma"]},
        )
        for name in ("L", "o", "g", "G"):
            lo_n, hi_n = noisy_posterior.credible_interval(name, 0.9)
            lo_w, hi_w = wider.credible_interval(name, 0.9)
            assert hi_w - lo_w > hi_n - lo_n, name


class TestZeroNoiseCollapse:
    def test_degenerate_flag_and_single_draw(self, collapsed_posterior):
        assert collapsed_posterior.degenerate
        assert len(collapsed_posterior.draws) == 1

    def test_posterior_equals_point_fit_bit_for_bit(self, collapsed_posterior):
        draw = collapsed_posterior.draws[0]
        assert draw == collapsed_posterior.point_fit
        fit = fit_loggp(emulator_runner(MEIKO_CS2), num_procs=MEIKO_CS2.P)
        assert (draw.L, draw.o, draw.g, draw.G) == (fit.L, fit.o, fit.g, fit.G)

    def test_exact_emulator_recovers_exact_truth(self, collapsed_posterior):
        """The emulator is exact LogGP, so the fit IS the truth here."""
        draw = collapsed_posterior.draws[0]
        assert (draw.L, draw.o, draw.g, draw.G) == (
            MEIKO_CS2.L, MEIKO_CS2.o, MEIKO_CS2.g, MEIKO_CS2.G,
        )

    def test_op_factors_exactly_one(self, collapsed_posterior):
        assert all(f == 1.0 for _, f in collapsed_posterior.draws[0].ops)

    def test_spec_is_deterministic(self, collapsed_posterior):
        spec = collapsed_posterior.to_spec()
        assert spec.is_deterministic()
        assert not spec.is_identity()

    def test_uq_reproduces_plain_sweep_digest_bit_for_bit(
        self, collapsed_posterior, cost_model
    ):
        """The issue's collapse gate: calibrate → uq == the plain sweep."""
        spec = collapsed_posterior.to_spec()
        draw = collapsed_posterior.draws[0]
        machine = MEIKO_CS2.with_(L=draw.L, o=draw.o, g=draw.g, G=draw.G)
        uq = run_uq(
            [256], [8, 16], ["column"], MEIKO_CS2, cost_model,
            spec=spec, replicates=8, base_seed=0, workers=1,
        )
        grid = expand_grid([256], [8, 16], ["column"], seeds=(0,))
        sweep = run_sweep(grid, machine, cost_model, workers=1)
        assert uq.replicate_digest() == sweep.digest()

    def test_zero_noise_measurements_are_noise_free(self):
        """sigma=0 must return the raw observables, not scaled copies."""
        mset = measure_emulator(MEIKO_CS2, noise_sigma=0.0, repeats=4, seed=0)
        for values in mset.groups().values():
            assert len(set(values)) == 1


class TestNoiseConstruction:
    def test_log_residuals_scale_exactly_with_sigma(self):
        """The z-draws are keyed without sigma: residuals scale linearly."""
        base = measure_emulator(MEIKO_CS2, noise_sigma=0.0, repeats=5, seed=11)
        s1 = measure_emulator(MEIKO_CS2, noise_sigma=0.02, repeats=5, seed=11)
        s2 = measure_emulator(MEIKO_CS2, noise_sigma=0.04, repeats=5, seed=11)
        for m0, m1, m2 in zip(base.measurements, s1.measurements, s2.measurements):
            r1 = np.log(m1.value) - np.log(m0.value)
            r2 = np.log(m2.value) - np.log(m0.value)
            assert r2 == pytest.approx(2.0 * r1, rel=1e-9)

    def test_measurement_noise_is_seeded(self):
        a = measure_emulator(MEIKO_CS2, noise_sigma=0.05, repeats=3, seed=1)
        b = measure_emulator(MEIKO_CS2, noise_sigma=0.05, repeats=3, seed=1)
        c = measure_emulator(MEIKO_CS2, noise_sigma=0.05, repeats=3, seed=2)
        assert a == b
        assert a != c

"""Tests for the Jacobi stencil application (repro.apps.stencil)."""

import numpy as np
import pytest

from repro.apps import StencilConfig, build_stencil_trace, execute_jacobi, stencil_cost_table


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StencilConfig(n=8, num_procs=16, iterations=1)
        with pytest.raises(ValueError):
            StencilConfig(n=10, num_procs=4, iterations=1)
        with pytest.raises(ValueError):
            StencilConfig(n=8, num_procs=4, iterations=0)

    def test_rows_per_proc(self):
        assert StencilConfig(n=16, num_procs=4, iterations=2).rows_per_proc == 4


class TestTrace:
    def test_step_count(self):
        trace = build_stencil_trace(StencilConfig(n=16, num_procs=4, iterations=5))
        assert len(trace) == 5

    def test_every_sweep_all_procs_work(self):
        trace = build_stencil_trace(StencilConfig(n=16, num_procs=4, iterations=3))
        for step in trace.steps:
            assert set(step.work) == {0, 1, 2, 3}
            for ops in step.work.values():
                assert ops[0].op == "jacobi"
                assert ops[0].b == 4

    def test_halo_exchange_with_neighbors_only(self):
        trace = build_stencil_trace(StencilConfig(n=16, num_procs=4, iterations=2))
        step = trace.steps[0]
        for m in step.pattern.messages:
            assert abs(m.src - m.dst) == 1
            assert m.size == 16 * 8

    def test_edge_strips_send_one_halo(self):
        trace = build_stencil_trace(StencilConfig(n=16, num_procs=4, iterations=2))
        pat = trace.steps[0].pattern
        assert pat.out_degree(0) == 1
        assert pat.out_degree(1) == 2
        assert pat.out_degree(3) == 1

    def test_last_sweep_no_exchange(self):
        trace = build_stencil_trace(StencilConfig(n=16, num_procs=4, iterations=2))
        assert len(trace.steps[-1].pattern) == 0


class TestCostTable:
    def test_prices_jacobi_op(self):
        cm = stencil_cost_table(n=64, strip_heights=[8, 16])
        assert cm.cost("jacobi", 16) > cm.cost("jacobi", 8) > 0

    def test_rejects_ge_ops(self):
        cm = stencil_cost_table(n=64, strip_heights=[8])
        with pytest.raises(ValueError):
            cm.cost("op1", 8)


class TestNumericalExecution:
    def test_matches_reference_loop(self):
        rng = np.random.default_rng(0)
        grid = rng.standard_normal((8, 8))
        out = execute_jacobi(grid, iterations=3)
        ref = grid.copy()
        for _ in range(3):
            nxt = ref.copy()
            for i in range(1, 7):
                for j in range(1, 7):
                    nxt[i, j] = 0.25 * (
                        ref[i - 1, j] + ref[i + 1, j] + ref[i, j - 1] + ref[i, j + 1]
                    )
            ref = nxt
        assert np.allclose(out, ref)

    def test_boundary_held_fixed(self):
        grid = np.random.default_rng(1).standard_normal((6, 6))
        out = execute_jacobi(grid, iterations=4)
        assert np.array_equal(out[0, :], grid[0, :])
        assert np.array_equal(out[:, -1], grid[:, -1])

    def test_zero_iterations_is_identity(self):
        grid = np.random.default_rng(2).standard_normal((5, 5))
        assert np.array_equal(execute_jacobi(grid, 0), grid)

    def test_converges_toward_harmonic(self):
        """Long relaxation of a hot-edge plate smooths the interior."""
        grid = np.zeros((10, 10))
        grid[0, :] = 1.0
        out = execute_jacobi(grid, iterations=500)
        assert np.all(out[1:-1, 1:-1] > 0)
        assert np.all(np.diff(out[1:-1, 5]) < 0)  # monotone away from hot edge

    def test_validation(self):
        with pytest.raises(ValueError):
            execute_jacobi(np.zeros(5), 1)
        with pytest.raises(ValueError):
            execute_jacobi(np.zeros((5, 5)), -1)

"""CLI tests for the parallel ``repro sweep`` verb.

Covers the sweep-engine flags (``--workers``, ``--store``, ``--resume``,
``--chunk-size``, ``--progress``) and the two satellite guarantees:
``--resume`` re-dispatches only the missing points of a partial run, and
``--workers 1`` vs ``--workers N`` produce identical results and
manifests modulo timing fields.
"""

import json

import pytest

from repro.cli import main

BASE = ["sweep", "-n", "120", "--blocks", "24", "40",
        "--layout", "diagonal", "--no-measured", "--seed", "0"]

#: manifest keys that legitimately differ between runs of the same sweep
VOLATILE_KEYS = {"argv", "started_unix", "wall_s", "events_per_sec", "host",
                 "resource"}
#: extra keys that describe execution, not results
VOLATILE_EXTRA = {"sweep"}


def manifest_core(path):
    """A manifest reduced to its semantic payload (drops timing/exec)."""
    doc = json.loads(path.read_text())
    core = {k: v for k, v in doc.items() if k not in VOLATILE_KEYS}
    core["extra"] = {
        k: v for k, v in core.get("extra", {}).items() if k not in VOLATILE_EXTRA
    }
    return core


def run_json(argv, capsys):
    assert main([*argv, "--json", "--no-manifest"]) == 0
    return json.loads(capsys.readouterr().out)


class TestWorkersFlag:
    def test_workers_parallel_output_equals_serial(self, capsys):
        serial = run_json([*BASE, "--workers", "1"], capsys)
        parallel = run_json([*BASE, "--workers", "2"], capsys)
        assert parallel == serial

    def test_manifests_identical_modulo_timing(self, tmp_path, capsys):
        m1, m2 = tmp_path / "w1.json", tmp_path / "w2.json"
        assert main([*BASE, "--workers", "1", "--manifest-out", str(m1)]) == 0
        assert main([*BASE, "--workers", "2", "--manifest-out", str(m2)]) == 0
        capsys.readouterr()
        core1, core2 = manifest_core(m1), manifest_core(m2)
        assert core1 == core2
        assert core1["extra"]["results_sha256"] == core2["extra"]["results_sha256"]

    def test_manifest_records_sweep_stats(self, tmp_path, capsys):
        m = tmp_path / "m.json"
        assert main([*BASE, "--workers", "2", "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        doc = json.loads(m.read_text())
        stats = doc["extra"]["sweep"]
        assert stats["total"] == 2
        assert stats["computed"] == 2
        assert stats["cached"] == 0
        assert stats["workers"] == 2


class TestStoreAndResume:
    def test_resume_requires_store(self, capsys):
        assert main([*BASE, "--resume", "--no-manifest"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_resume_redispatches_only_missing_points(self, tmp_path, capsys):
        store = tmp_path / "store"
        # partial run: one block only
        partial = ["sweep", "-n", "120", "--blocks", "24", "--layout", "diagonal",
                   "--no-measured", "--store", str(store), "--no-manifest"]
        assert main(partial) == 0
        capsys.readouterr()
        # full run with --resume: only the missing b=40 point is computed
        m = tmp_path / "resume.json"
        assert main([*BASE, "--store", str(store), "--resume",
                     "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        stats = json.loads(m.read_text())["extra"]["sweep"]
        assert stats == {**stats, "total": 2, "cached": 1, "computed": 1}

    def test_resumed_results_equal_cold_results(self, tmp_path, capsys):
        store = tmp_path / "store"
        cold = run_json([*BASE, "--workers", "1"], capsys)
        assert main(["sweep", "-n", "120", "--blocks", "40", "--layout", "diagonal",
                     "--no-measured", "--store", str(store), "--no-manifest"]) == 0
        capsys.readouterr()
        resumed = run_json(
            [*BASE, "--workers", "2", "--store", str(store), "--resume"], capsys
        )
        assert resumed == cold

    def test_store_without_resume_recomputes(self, tmp_path, capsys):
        store = tmp_path / "store"
        m = tmp_path / "m.json"
        assert main([*BASE, "--store", str(store), "--no-manifest"]) == 0
        assert main([*BASE, "--store", str(store), "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        stats = json.loads(m.read_text())["extra"]["sweep"]
        assert stats["cached"] == 0  # no --resume: everything recomputed


class TestProgressAndChunking:
    def test_progress_lines_on_stderr(self, capsys):
        assert main([*BASE, "--workers", "2", "--chunk-size", "1",
                     "--progress", "--no-manifest"]) == 0
        err = capsys.readouterr().err
        lines = [ln for ln in err.splitlines() if ln.startswith("sweep [")]
        assert len(lines) == 2
        assert "sweep [2/2]" in lines[-1]

    def test_no_progress_by_default(self, capsys):
        assert main([*BASE, "--no-manifest"]) == 0
        assert "sweep [" not in capsys.readouterr().err

    def test_figure_output_unchanged_by_engine_flags(self, capsys):
        assert main([*BASE, "--no-manifest"]) == 0
        plain = capsys.readouterr().out
        assert main([*BASE, "--workers", "2", "--chunk-size", "1",
                     "--no-manifest"]) == 0
        assert capsys.readouterr().out == plain


class TestExecutorFlag:
    def test_executor_outputs_equal_legacy_serial(self, capsys):
        legacy = run_json([*BASE, "--workers", "1"], capsys)
        for executor in ("serial", "thread", "process", "auto"):
            got = run_json([*BASE, "--executor", executor, "--workers", "2"],
                           capsys)
            assert got == legacy, executor

    def test_workers_default_is_auto(self, tmp_path, capsys):
        # no --workers: the self-tuning executor decides, and the manifest
        # records both the strategy and the full decision rationale
        m = tmp_path / "auto.json"
        assert main([*BASE, "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        stats = json.loads(m.read_text())["extra"]["sweep"]
        assert stats["executor"] in ("serial", "thread", "process")
        decision = stats["decision"]
        assert decision["requested"] == "auto"
        assert decision["executor"] == stats["executor"]
        assert decision["reason"]
        assert decision["cpu_count"] >= 1

    def test_workers_auto_equals_default(self, capsys):
        assert run_json([*BASE, "--workers", "auto"], capsys) == run_json(
            BASE, capsys
        )

    def test_forced_executor_recorded_in_manifest(self, tmp_path, capsys):
        m = tmp_path / "forced.json"
        assert main([*BASE, "--executor", "process", "--workers", "2",
                     "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        stats = json.loads(m.read_text())["extra"]["sweep"]
        assert stats["executor"] == "process"
        assert stats["workers"] == 2
        assert stats["decision"]["reason"] == "forced by caller"

    def test_bad_workers_value_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([*BASE, "--workers", "many", "--no-manifest"])
        assert exc.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_executor_value_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([*BASE, "--executor", "gpu", "--no-manifest"])
        assert exc.value.code == 2

    def test_legacy_workers_keeps_legacy_strategy(self, tmp_path, capsys):
        # explicit --workers N without --executor must not consult the
        # cost model: N alone picks serial vs process, as it always did
        m = tmp_path / "legacy.json"
        assert main([*BASE, "--workers", "2", "--manifest-out", str(m)]) == 0
        capsys.readouterr()
        stats = json.loads(m.read_text())["extra"]["sweep"]
        assert stats["decision"]["requested"] == "legacy"
        assert stats["executor"] == "process"

"""Fuzz / round-trip tests: UQ documents must survive JSON bit-exactly.

The spec and summary documents travel through golden files, run
manifests and the experiment store's fingerprint; Python's ``repr``-based
float serialisation makes ``loads(dumps(x))`` exact, so equality here is
``==`` on floats, never approx.  Hypothesis drives the document shapes.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.manifest import RunRecord
from repro.uq import LOGGP_PARAMS, UQPointSummary, UQSpec
from repro.uq.reduce import METRIC_FIELDS, _metric_stats

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
sigmas = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)

spec_strategy = st.builds(
    UQSpec,
    sigma=sigmas,
    param_sigma=st.dictionaries(st.sampled_from(LOGGP_PARAMS), sigmas, max_size=4),
    op_sigma=sigmas,
    jitter_sigma=st.none() | sigmas,
    straggler_prob=st.none() | st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    straggler_factor=st.none() | st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
)


def _stats_strategy():
    return st.lists(finite_floats, min_size=1, max_size=8).map(
        lambda vals: _metric_stats(vals, 0.95)
    )


summary_strategy = st.builds(
    UQPointSummary,
    n=st.integers(min_value=1, max_value=4096),
    b=st.integers(min_value=1, max_value=256),
    layout=st.sampled_from(["diagonal", "stripped", "block2d", "column"]),
    replicates=st.integers(min_value=1, max_value=128),
    ci=st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    metrics=st.fixed_dictionaries(
        {name: st.none() | _stats_strategy() for name in METRIC_FIELDS}
    ),
)


class TestSpecRoundTrip:
    @given(spec=spec_strategy)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_bit_exact(self, spec):
        doc = json.loads(json.dumps(spec.to_dict()))
        assert UQSpec.from_dict(doc) == spec
        assert UQSpec.from_dict(doc).to_dict() == spec.to_dict()

    @given(spec=spec_strategy)
    @settings(max_examples=50, deadline=None)
    def test_fingerprint_stable_through_round_trip(self, spec):
        revived = UQSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert revived.fingerprint() == spec.fingerprint()
        assert revived.store_tag() == spec.store_tag()

    def test_unknown_keys_rejected(self):
        doc = UQSpec().to_dict()
        doc["sigmaa"] = 0.1
        with pytest.raises(ValueError, match="sigmaa"):
            UQSpec.from_dict(doc)

    def test_validation_survives_deserialisation(self):
        with pytest.raises(ValueError):
            UQSpec.from_dict({"sigma": -0.1})
        with pytest.raises(ValueError):
            UQSpec.from_dict({"param_sigma": {"P": 0.1}})
        with pytest.raises(ValueError):
            UQSpec.from_dict({"straggler_prob": 1.5})


class TestSummaryRoundTrip:
    @given(summary=summary_strategy)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_bit_exact(self, summary):
        doc = json.loads(json.dumps(summary.to_dict()))
        revived = UQPointSummary.from_dict(doc)
        assert revived.to_dict() == summary.to_dict()
        assert revived.metrics == dict(summary.metrics)

    def test_unknown_keys_rejected(self):
        doc = UQPointSummary(n=120, b=24, layout="diagonal",
                             replicates=2, ci=0.95).to_dict()
        doc["extra"] = 1
        with pytest.raises(ValueError, match="extra"):
            UQPointSummary.from_dict(doc)


class TestManifestEmbedding:
    @given(spec=spec_strategy)
    @settings(max_examples=25, deadline=None)
    def test_uq_block_survives_manifest_write_load(self, spec, tmp_path_factory):
        uq_block = {
            "spec": spec.to_dict(),
            "replicates": 16,
            "ci": 0.95,
            "deterministic": spec.is_deterministic(),
            "summary_sha256": "0" * 64,
        }
        rec = RunRecord(command="uq")
        rec.note(uq=uq_block)
        path = tmp_path_factory.mktemp("manifest") / "run.json"
        rec.write(path)
        loaded = RunRecord.load(path)
        assert loaded.uq == uq_block
        assert UQSpec.from_dict(loaded.uq["spec"]) == spec

    def test_non_uq_manifest_has_empty_block(self):
        assert RunRecord(command="sweep").uq == {}

"""Posterior golden regression — exact equality on the Fig. 7 machine.

Measurement noise and the MCMC chain are both seeded, so a calibration's
posterior summary and the UQ run replaying it are *exact* quantities:
``calib_golden_fig7.json`` pins them with ``==`` (no tolerances).  Any
change to the measurement model, the likelihood, the chain's stream
addressing, or the timing semantics downstream moves these values and
must regenerate the golden deliberately
(``PYTHONPATH=src python tests/data/regen_calib_golden.py``).

The UQ replay is asserted under 1 and 2 workers: posterior-driven
ensembles cannot depend on how the replicate grid was scheduled.
"""

import json
from pathlib import Path

import pytest

from repro.calib import calibrate_emulator
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.uq import run_uq

GOLDEN_PATH = Path(__file__).parent / "data" / "calib_golden_fig7.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def cost_model():
    return CalibratedCostModel()


@pytest.fixture(scope="module")
def posterior(golden, cost_model):
    return calibrate_emulator(MEIKO_CS2, cost_model, **golden["config"]["calib"])


def run_uq_from_config(golden, posterior, cost_model, workers=1):
    spec = posterior.to_spec(max_draws=golden["config"]["spec_max_draws"])
    cfg = golden["config"]["uq"]
    return run_uq(
        cfg["n"], cfg["blocks"], cfg["layouts"],
        MEIKO_CS2, cost_model,
        spec=spec,
        replicates=cfg["replicates"],
        ci=cfg["ci"],
        base_seed=cfg["base_seed"],
        with_measured=cfg["with_measured"],
        workers=workers,
    )


class TestGoldenPosterior:
    def test_fingerprints_exactly_equal(self, golden, posterior):
        assert posterior.fingerprint() == golden["posterior"]["fingerprint"]
        spec = posterior.to_spec(max_draws=golden["config"]["spec_max_draws"])
        assert spec.fingerprint() == golden["posterior"]["spec_fingerprint"]

    def test_summary_exactly_equal(self, golden, posterior):
        assert posterior.summary(0.9) == golden["posterior"]["summary"]

    def test_point_fit_exactly_equal(self, golden, posterior):
        assert posterior.point_fit.to_dict() == golden["posterior"]["point_fit"]

    def test_accept_rate_exactly_equal(self, golden, posterior):
        assert posterior.accept_rate == golden["posterior"]["accept_rate"]


class TestGoldenUQReplay:
    def test_uq_summaries_exactly_equal(self, golden, posterior, cost_model):
        result = run_uq_from_config(golden, posterior, cost_model, workers=1)
        assert result.to_rows() == golden["uq_summaries"]
        assert result.summary_digest() == golden["uq_summary_sha256"]
        assert result.replicate_digest() == golden["uq_results_sha256"]

    def test_two_workers_reproduce_the_golden_exactly(
        self, golden, posterior, cost_model
    ):
        result = run_uq_from_config(golden, posterior, cost_model, workers=2)
        assert result.to_rows() == golden["uq_summaries"]
        assert result.summary_digest() == golden["uq_summary_sha256"]
        assert result.replicate_digest() == golden["uq_results_sha256"]

"""Trace contexts, shard files and deterministic stitching (repro.obs.telemetry).

Pins the three contracts DESIGN.md §14 specifies:

* **Derived ids** — span ids are pure functions of
  ``(trace_id, parent, name, seq)``; re-deriving the same tree needs no
  coordination and always yields the same ids.
* **Golden safety** — a tracer without an installed context emits spans
  bit-identical to the pre-context tracer (no id attrs ever appear).
* **Merge determinism** — stitching any permutation of a shard set
  produces a byte-identical export (hypothesis-verified), and the
  digest ignores wall-track spans only.
"""

import json

import pytest

from repro.obs import Tracer, tracing
from repro.obs.events import WALL_TRACK, TraceEvent
from repro.obs.telemetry import (
    SHARD_SCHEMA,
    TraceContext,
    TraceShard,
    child_span_id,
    merge_shards,
    read_shard,
    root_span_id,
    shard_paths,
    trace_digest,
    validate_span_tree,
    write_merged_events,
    write_merged_trace,
    write_shard,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - test extras absent
    HAVE_HYPOTHESIS = False


class TestDerivedIds:
    def test_root_is_pure_function_of_material(self):
        a = TraceContext.root("sweep", '{"n": 120}')
        b = TraceContext.root("sweep", '{"n": 120}')
        c = TraceContext.root("sweep", '{"n": 240}')
        assert a == b
        assert a.trace_id != c.trace_id
        assert len(a.trace_id) == 32 and len(a.span_id) == 16

    def test_root_span_id_is_implicit(self):
        ctx = TraceContext.root("observe")
        assert ctx.span_id == root_span_id(ctx.trace_id)

    def test_child_derivation_matches_free_function(self):
        root = TraceContext.root("sweep")
        child = root.child("sweep.chunk", 3)
        assert child.trace_id == root.trace_id
        assert child.span_id == child_span_id(
            root.trace_id, root.span_id, "sweep.chunk", 3
        )

    def test_children_unique_across_seq_name_and_parent(self):
        root = TraceContext.root("sweep")
        ids = {
            root.child(name, seq).span_id
            for name in ("sweep.chunk", "serve.batch")
            for seq in range(5)
        }
        ids.add(root.child("sweep.chunk", 0).child("sweep.chunk", 0).span_id)
        assert len(ids) == 11

    def test_wire_roundtrip(self):
        ctx = TraceContext.root("serve", 123).child("serve.request", 7)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert TraceContext.from_dict(json.loads(json.dumps(ctx.to_dict()))) == ctx


class TestSpanStamping:
    def test_ambient_context_stamps_wall_slices(self):
        tracer = Tracer()
        root = TraceContext.root("test")
        tracer.context = root
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = {e.name: e for e in tracer.events}
        outer, inner = events["outer"], events["inner"]
        assert outer.attrs["trace_id"] == root.trace_id
        assert outer.attrs["parent_span_id"] == root.span_id
        assert outer.attrs["span_id"] == root.child("outer", 0).span_id
        # nesting re-parents: inner's parent is outer's span id
        assert inner.attrs["parent_span_id"] == outer.attrs["span_id"]

    def test_sibling_spans_get_distinct_seq(self):
        tracer = Tracer()
        tracer.context = TraceContext.root("test")
        for _ in range(3):
            with tracer.span("step"):
                pass
        ids = [e.attrs["span_id"] for e in tracer.events]
        assert len(set(ids)) == 3

    def test_explicit_ctx_overrides_derivation(self):
        tracer = Tracer()
        root = TraceContext.root("test")
        chunk = root.child("sweep.chunk", 9)
        with tracer.span("sweep.chunk", ctx=chunk, parent_span_id=root.span_id):
            pass
        (event,) = tracer.events
        assert event.attrs["span_id"] == chunk.span_id
        assert event.attrs["parent_span_id"] == root.span_id

    def test_no_context_means_no_id_attrs(self):
        # golden-trace safety: the pre-context tracer's spans are
        # bit-identical — no trace/span/parent attrs may appear
        tracer = Tracer()
        with tracer.span("phase", points=3):
            pass
        (event,) = tracer.events
        assert event.track == WALL_TRACK
        assert set(event.attrs) == {"points"}

    def test_context_restored_after_span(self):
        tracer = Tracer()
        root = TraceContext.root("test")
        tracer.context = root
        with tracer.span("outer"):
            assert tracer.context != root
        assert tracer.context == root


def _sim_event(name, ts, proc=0, attrs=None):
    return TraceEvent(name=name, kind="slice", ts=ts, dur=1.0, proc=proc,
                      track="sim:standard", attrs=attrs)


def _traced_tracer():
    tracer = Tracer()
    tracer.context = TraceContext.root("shard-test")
    with tracer.span("phase", points=2):
        tracer.slice("compute", proc=0, ts=10.0, dur=5.0)
        tracer.instant("mark", ts=12.0, proc=1, note="x")
    tracer.count("points", 2)
    tracer.observe("wall_s", 0.25)
    return tracer


class TestShardFiles:
    def test_roundtrip_header_and_rows(self, tmp_path):
        tracer = _traced_tracer()
        path = write_shard(tmp_path / "shard-main.jsonl", tracer, label="main")
        shard = read_shard(path)
        assert shard.label == "main"
        assert shard.config == tracer.config.to_dict()
        # context defaults from the tracer's installed context
        assert shard.trace_context == tracer.context
        assert shard.metrics == tracer.metrics.snapshot()
        assert [tuple(r[:6]) for r in shard.rows] == [
            (e.name, e.kind, e.ts, e.dur, e.proc, e.track)
            for e in tracer.events
        ]

    def test_explicit_context_wins(self, tmp_path):
        tracer = _traced_tracer()
        other = TraceContext.root("other")
        shard = read_shard(
            write_shard(tmp_path / "s.jsonl", tracer, context=other)
        )
        assert shard.trace_context == other

    def test_rejects_foreign_schema(self, tmp_path):
        bad = tmp_path / "shard-x.jsonl"
        bad.write_text(json.dumps({"schema": "something/else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro.trace-shard/v1"):
            read_shard(bad)

    def test_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "shard-x.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_shard(empty)

    def test_no_temp_file_left_behind(self, tmp_path):
        write_shard(tmp_path / "shard-main.jsonl", _traced_tracer())
        assert [p.name for p in tmp_path.iterdir()] == ["shard-main.jsonl"]

    def test_shard_paths_sorted_and_filtered(self, tmp_path):
        for name in ("shard-chunk-0001.jsonl", "shard-main.jsonl",
                     "shard-chunk-0000.jsonl", "unrelated.jsonl"):
            (tmp_path / name).write_text("{}\n")
        assert [p.name for p in shard_paths(tmp_path)] == [
            "shard-chunk-0000.jsonl", "shard-chunk-0001.jsonl",
            "shard-main.jsonl",
        ]


def _synthetic_shards(row_groups):
    """One TraceShard per row group, with label-distinct metrics."""
    shards = []
    for i, rows in enumerate(row_groups):
        shards.append(TraceShard(
            label=f"chunk-{i:04d}",
            config={},
            context=None,
            metrics={"counters": {"points": float(len(rows))},
                     "gauges": {}, "histograms": {}},
            rows=rows,
        ))
    return shards


class TestMerging:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_shards([])

    def test_metrics_fold_additively(self):
        shards = _synthetic_shards([
            [("a", "slice", 0.0, 1.0, 0, "sim", None)],
            [("b", "slice", 1.0, 1.0, 0, "sim", None),
             ("c", "instant", 2.0, 0.0, 1, "sim", None)],
        ])
        merged = merge_shards(shards)
        assert merged.metrics.snapshot()["counters"]["points"] == 3.0
        assert merged.shards == ["chunk-0000", "chunk-0001"]

    def test_merge_accepts_paths_and_objects(self, tmp_path):
        tracer = _traced_tracer()
        path = write_shard(tmp_path / "shard-main.jsonl", tracer)
        from_path = merge_shards([path])
        from_obj = merge_shards([read_shard(path)])
        assert trace_digest(from_path.events) == trace_digest(from_obj.events)
        assert len(from_path.events) == len(tracer.events)

    def test_digest_ignores_wall_track_only(self):
        sim = [_sim_event("compute", t) for t in (1.0, 2.0)]
        wall_a = TraceEvent(name="sweep", kind="slice", ts=100.0, dur=9.0,
                            proc=-1, track=WALL_TRACK)
        wall_b = TraceEvent(name="sweep", kind="slice", ts=777.0, dur=1.0,
                            proc=-1, track=WALL_TRACK)
        assert trace_digest([*sim, wall_a]) == trace_digest([wall_b, *sim])
        assert trace_digest(sim) != trace_digest(sim[:1])

    def test_digest_is_order_independent(self):
        events = [_sim_event(f"op{i}", float(i), proc=i % 3) for i in range(6)]
        assert trace_digest(events) == trace_digest(list(reversed(events)))

    def test_merged_trace_export_writes_chrome_doc(self, tmp_path):
        merged = merge_shards(_synthetic_shards(
            [[("a", "slice", 0.0, 1.0, 0, "sim:standard", None)]]
        ))
        doc = json.loads(write_merged_trace(merged, tmp_path / "t.json").read_text())
        assert any(ev.get("name") == "a" for ev in doc["traceEvents"])

    if HAVE_HYPOTHESIS:
        _rows = st.lists(
            st.tuples(
                st.sampled_from(["compute", "send", "recv", "factor"]),
                st.sampled_from(["slice", "instant"]),
                st.floats(0, 1e6, allow_nan=False, width=32),
                st.floats(0, 1e3, allow_nan=False, width=32),
                st.integers(-1, 7),
                st.sampled_from(["sim:standard", "sim:worstcase", WALL_TRACK]),
                st.none(),
            ).map(list),
            max_size=8,
        )

        @given(
            groups=st.lists(_rows, min_size=1, max_size=4),
            seed=st.randoms(),
        )
        @settings(max_examples=50, deadline=None)
        def test_merge_is_order_invariant_bytewise(self, groups, seed, tmp_path_factory):
            """Any permutation of the shard set → byte-identical export."""
            tmp = tmp_path_factory.mktemp("perm")
            shards = _synthetic_shards(groups)
            shuffled = list(shards)
            seed.shuffle(shuffled)
            a = write_merged_events(merge_shards(shards), tmp / "a.jsonl")
            b = write_merged_events(merge_shards(shuffled), tmp / "b.jsonl")
            assert a.read_bytes() == b.read_bytes()
            assert (trace_digest(merge_shards(shards).events)
                    == trace_digest(merge_shards(shuffled).events))
    else:  # pragma: no cover - hypothesis available in CI
        def test_merge_is_order_invariant_bytewise(self, tmp_path):
            import random
            rng = random.Random(0)
            groups = [
                [("op", "slice", rng.uniform(0, 100), 1.0, rng.randint(0, 3),
                  "sim:standard", None) for _ in range(rng.randint(0, 6))]
                for _ in range(4)
            ]
            shards = _synthetic_shards(groups)
            for _ in range(20):
                shuffled = list(shards)
                rng.shuffle(shuffled)
                a = write_merged_events(merge_shards(shards), tmp_path / "a.jsonl")
                b = write_merged_events(merge_shards(shuffled), tmp_path / "b.jsonl")
                assert a.read_bytes() == b.read_bytes()


def _span_event(name, ctx, parent_id):
    return TraceEvent(
        name=name, kind="slice", ts=0.0, dur=1.0, proc=-1, track=WALL_TRACK,
        attrs={"trace_id": ctx.trace_id, "span_id": ctx.span_id,
               "parent_span_id": parent_id},
    )


class TestSpanTreeValidation:
    def test_parents_resolve_through_implicit_root(self):
        root = TraceContext.root("sweep")
        chunk = root.child("sweep.chunk", 0)
        events = [
            _span_event("sweep.chunk", chunk, root.span_id),
            _span_event("sweep.point", chunk.child("sweep.point", 0),
                        chunk.span_id),
        ]
        report = validate_span_tree(events)
        assert report.ok
        assert report.spans == 2
        assert report.traces == [root.trace_id]
        assert report.roots == [root.span_id]

    def test_missing_shard_surfaces_as_orphan(self):
        root = TraceContext.root("sweep")
        chunk = root.child("sweep.chunk", 0)
        # the chunk span itself was lost; its interior span is orphaned
        orphan = _span_event("sweep.point", chunk.child("sweep.point", 0),
                             chunk.span_id)
        report = validate_span_tree([orphan])
        assert not report.ok
        assert report.to_dict()["orphans"] == [
            {"name": "sweep.point", "parent_span_id": chunk.span_id}
        ]

    def test_extra_roots_resolve_upstream_parents(self):
        # a client-supplied context lives in another system's trace
        upstream = TraceContext.root("client").child("client.op", 0)
        req = upstream.child("serve.request", 0)
        events = [_span_event("serve.request", req, upstream.span_id)]
        assert not validate_span_tree(events).ok
        assert validate_span_tree(events, extra_roots=[upstream.span_id]).ok

    def test_unstamped_events_are_not_spans(self):
        report = validate_span_tree([_sim_event("compute", 1.0)])
        assert report.ok and report.spans == 0 and report.traces == []


class TestEndToEndShardTree:
    def test_tracer_to_merged_tree_zero_orphans(self, tmp_path):
        """Parent process + two synthetic 'workers', stitched and validated."""
        root = TraceContext.root("e2e")
        main = Tracer()
        main.context = root
        with main.span("sweep", points=4):
            pass
        paths = [write_shard(tmp_path / "shard-main.jsonl", main, label="main")]
        for chunk_no in range(2):
            worker = Tracer()
            ctx = root.child("sweep.chunk", chunk_no)
            with tracing(worker):
                with worker.span("sweep.chunk", ctx=ctx,
                                 parent_span_id=root.span_id, chunk=chunk_no):
                    worker.slice("compute", proc=chunk_no, ts=1.0, dur=2.0)
            paths.append(write_shard(
                tmp_path / f"shard-chunk-{chunk_no:04d}.jsonl", worker,
                label=f"chunk-{chunk_no:04d}", context=ctx,
            ))
        merged = merge_shards(shard_paths(tmp_path))
        report = validate_span_tree(merged.events)
        assert report.ok
        assert report.spans == 3  # sweep + 2 chunks
        assert merged.trace_ids == [root.trace_id]
        assert SHARD_SCHEMA  # shard files round-tripped under the v1 schema

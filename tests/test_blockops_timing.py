"""Tests for timing harness and calibration (repro.blockops)."""

import pytest

from repro.blockops import (
    OP_NAMES,
    OpTimer,
    calibrated_cost,
    calibrated_table,
    cold_extra_cost,
    measure_op_costs,
    operand_bytes,
)


class TestOpTimer:
    def test_positive_times(self):
        timer = OpTimer(repeats=1)
        for op in OP_NAMES:
            assert timer.time_op(op, 8) > 0.0

    def test_sweep_structure(self):
        table = measure_op_costs([4, 8], repeats=1)
        assert set(table) == set(OP_NAMES)
        assert set(table["op1"]) == {4, 8}

    def test_validation(self):
        with pytest.raises(ValueError):
            OpTimer(repeats=0)
        timer = OpTimer(repeats=1)
        with pytest.raises(ValueError):
            timer.time_op("bogus", 8)
        with pytest.raises(ValueError):
            timer.time_op("op1", 0)

    def test_larger_blocks_cost_more(self):
        timer = OpTimer(repeats=3)
        assert timer.time_op("op4", 128) > timer.time_op("op4", 8)


class TestCalibration:
    def test_positive_and_validated(self):
        assert calibrated_cost("op1", 10) > 0
        with pytest.raises(ValueError):
            calibrated_cost("bogus", 10)
        with pytest.raises(ValueError):
            calibrated_cost("op1", 0)

    def test_table_covers_requested_sizes(self):
        table = calibrated_table([10, 60, 160])
        assert set(table) == set(OP_NAMES)
        assert table["op2"][60] == calibrated_cost("op2", 60)

    def test_empty_size_list(self):
        table = calibrated_table([])
        assert all(table[op] == {} for op in OP_NAMES)

    def test_near_equal_costs_at_crossover_region(self):
        """Paper: around the crossover all four ops cost about the same."""
        costs = [calibrated_cost(op, 56) for op in OP_NAMES]
        assert max(costs) / min(costs) < 1.6


class TestOperandBytesAndColdCost:
    def test_operand_bytes(self):
        assert operand_bytes("op1", 10) == 3 * 800
        assert operand_bytes("op4", 10) == 4 * 800

    def test_cold_cost_positive_and_capped(self):
        small = cold_extra_cost("op4", 10)
        assert small > 0
        capped = cold_extra_cost("op4", 1000, cache_bytes=1024, line_bytes=32)
        assert capped == pytest.approx((1024 / 32) * 0.35)

    def test_cold_cost_grows_with_block_size_until_cap(self):
        assert cold_extra_cost("op4", 20) > cold_extra_cost("op4", 10)

"""The self-tuning sweep executor: decisions, determinism, crash recovery.

Three properties pin the executor:

1. **Bit-identity.**  Every strategy — serial, thread, process, auto —
   must produce the same ``results_sha256`` digest as the legacy serial
   reference; strategies differ in wall time only.
2. **The 0.87x regression stays fixed.**  On a single-CPU host the auto
   executor must resolve to serial — the exact configuration in which
   the process pool once recorded 0.87x of serial — taking the same
   code path as a forced serial run (no pool is ever constructed), so
   it cannot be meaningfully slower.
3. **Crash-mid-chunk resume.**  A cost model that explodes partway
   through a store-backed sweep must leave the store consistent: a
   resumed run under every executor completes and matches the cold
   digest bit for bit.
"""

from __future__ import annotations

import time

import pytest

from repro.core import CalibratedCostModel, MEIKO_CS2
from repro.experiments import ExperimentStore
from repro.kernel import clear_all_caches, fast_path
from repro.kernel.memo import (
    clear_cost_observations,
    estimate_point_cost,
    observe_point_cost,
)
from repro.sweep import ExecutorDecision, decide_executor, expand_grid, run_sweep
from repro.sweep import executor as executor_mod
from repro.sweep import runner as runner_mod

PARAMS = MEIKO_CS2
CM = CalibratedCostModel()
GRID = expand_grid(120, [20, 30], ["diagonal", "stripped"], with_measured=False)
EXECUTORS = ("serial", "thread", "process", "auto")

#: b value the exploding model detonates on — last in each layout's blocks,
#: so earlier chunks complete (and persist) before the crash
BOOM_B = 30


class ExplodingCostModel(CalibratedCostModel):
    """Picklable cost model that detonates on one block size.

    Inherits the calibrated table — and therefore its *fingerprint* —
    so store entries written before the crash are hits for the clean
    model that resumes the sweep.
    """

    def cost(self, op: str, b: int) -> float:
        if b == BOOM_B:
            raise RuntimeError("boom: injected mid-sweep crash")
        return super().cost(op, b)


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    # Pin the spawn measurement (no real pool spin-up in decisions) and
    # start every test with a cold executor cost model.
    monkeypatch.setenv("REPRO_SPAWN_OVERHEAD_S", "0.05")
    clear_all_caches()
    executor_mod.clear_spawn_cache()
    yield
    clear_all_caches()
    executor_mod.clear_spawn_cache()


def _digest(**kwargs):
    with fast_path(True):
        return run_sweep(GRID, PARAMS, CM, **kwargs)


class TestDigestsAcrossExecutors:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_results_sha256_matches_legacy_serial(self, executor):
        reference = _digest(workers=1)
        clear_all_caches()
        result = _digest(executor=executor, workers=2)
        assert result.digest() == reference.digest()
        assert result.summaries == reference.summaries
        assert result.stats.decision is not None
        assert result.stats.executor == result.stats.decision["executor"]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_store_backed_digest_and_resume(self, executor, tmp_path):
        reference = _digest(workers=1)
        clear_all_caches()
        first = _digest(executor=executor, workers=2, store=tmp_path)
        assert first.digest() == reference.digest()
        clear_all_caches()
        resumed = _digest(executor=executor, workers=2, store=tmp_path)
        assert resumed.digest() == reference.digest()
        assert resumed.stats.cached == len(GRID)

    def test_executor_recorded_in_stats(self):
        result = _digest(executor="serial")
        assert result.stats.executor == "serial"
        decision = result.stats.decision
        assert decision["requested"] == "serial"
        assert decision["reason"] == "forced by caller"

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_sweep(GRID, PARAMS, CM, executor="gpu")

    def test_thread_executor_rejected_under_tracer(self):
        from repro.obs import Tracer, tracing

        with tracing(Tracer()):
            with pytest.raises(ValueError, match="thread"):
                run_sweep(GRID, PARAMS, CM, executor="thread", workers=2)


class TestCrashMidChunkResume:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_resume_completes_and_matches_cold(self, executor, tmp_path):
        reference = _digest(workers=1)
        boom = ExplodingCostModel()
        clear_all_caches()
        with fast_path(True):
            with pytest.raises(RuntimeError, match="boom"):
                run_sweep(
                    GRID, PARAMS, boom,
                    executor=executor, workers=2, chunk_size=1,
                    store=tmp_path,
                )
        # the store holds only entries from chunks that completed; a
        # clean resumed run must finish the grid and match cold exactly
        clear_all_caches()
        resumed = _digest(executor=executor, workers=2, store=tmp_path)
        assert resumed.digest() == reference.digest()
        assert resumed.stats.cached + resumed.stats.computed == len(GRID)

    def test_partial_progress_persists_across_crash(self, tmp_path):
        # chunk_size=1 with the detonating b last per layout: surviving
        # chunks persist their points before the crash surfaces.  The
        # thread executor makes this deterministic — ThreadPoolExecutor
        # shutdown waits for in-flight chunks, so both b=20 chunks land
        # in the store (a process pool would terminate workers instead).
        boom = ExplodingCostModel()
        with fast_path(True):
            with pytest.raises(RuntimeError, match="boom"):
                run_sweep(
                    GRID, PARAMS, boom,
                    executor="thread", workers=2, chunk_size=1,
                    store=tmp_path,
                )
        store = ExperimentStore(tmp_path, PARAMS, CM)
        assert store.cached_count() == sum(1 for p in GRID if p.b != BOOM_B)


class TestSingleCpuRegression:
    """The BENCH_sweep 0.87x configuration: 1 CPU must stay serial."""

    def _force_single_cpu(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "available_cpus", lambda: 1)
        monkeypatch.setattr(runner_mod, "available_cpus", lambda: 1)

    def test_auto_resolves_to_serial_on_one_cpu(self, monkeypatch):
        self._force_single_cpu(monkeypatch)
        result = _digest(executor="auto")
        assert result.stats.executor == "serial"
        assert result.stats.workers == 1
        assert "single CPU" in result.stats.decision["reason"]

    def test_auto_never_builds_a_pool_on_one_cpu(self, monkeypatch):
        # Stronger than a timing assertion: on 1 CPU the auto executor
        # must take the serial code path outright, so it cannot be
        # slower than serial by more than the O(grid) decision itself.
        self._force_single_cpu(monkeypatch)

        def _no_pool(*args, **kwargs):
            raise AssertionError("auto built a pool on a 1-CPU host")

        monkeypatch.setattr(runner_mod.multiprocessing, "get_context", _no_pool)
        monkeypatch.setattr(runner_mod, "ThreadPoolExecutor", _no_pool)
        monkeypatch.setattr(
            executor_mod, "measure_spawn_overhead", _no_pool
        )
        result = _digest(executor="auto")
        assert result.stats.executor == "serial"

    def test_auto_not_slower_than_serial_on_one_cpu(self, monkeypatch):
        # The ISSUE's ≤5% bound, measured with best-of-3 to shed noise;
        # auto runs the vectorized batch path, so in practice it is
        # *faster* than the legacy per-point serial loop.
        self._force_single_cpu(monkeypatch)
        serial_wall = min(
            self._timed(workers=1) for _ in range(3)
        )
        auto_wall = min(
            self._timed(executor="auto") for _ in range(3)
        )
        assert auto_wall <= serial_wall * 1.05 + 0.02, (
            f"auto {auto_wall:.3f}s vs serial {serial_wall:.3f}s on 1 CPU"
        )

    @staticmethod
    def _timed(**kwargs):
        clear_all_caches()
        t0 = time.perf_counter()
        _digest(**kwargs)
        return time.perf_counter() - t0


class TestDecisionModel:
    def test_forced_strategies_honoured(self):
        for requested in ("serial", "thread", "process"):
            decision = decide_executor(GRID, requested, 2, cpu_count=4)
            assert decision.executor == requested
            assert decision.requested == requested

    def test_auto_probes_when_cold(self):
        clear_cost_observations()
        decision = decide_executor(GRID, "auto", None, cpu_count=4)
        assert decision.executor == "serial"
        assert "probe" in decision.reason or "uncalibrated" in decision.reason

    def test_auto_serial_for_cheap_grids(self):
        clear_cost_observations()
        observe_point_cost(120, 20, False, 0.001)
        decision = decide_executor(GRID, "auto", None, cpu_count=4)
        assert decision.executor == "serial"
        assert "cheap" in decision.reason

    def test_auto_process_for_expensive_grids(self):
        clear_cost_observations()
        observe_point_cost(120, 20, False, 5.0)
        decision = decide_executor(GRID, "auto", None, cpu_count=4)
        assert decision.executor == "process"
        assert decision.workers == 4
        assert decision.est_total_s > 1.0

    def test_auto_thread_midband_with_store(self, monkeypatch):
        # The thread band: grid worth running (est ~1s > 0.5s floor) but
        # a pool that costs 2s to spawn cannot win at 2 workers — with a
        # store attached, threads overlap its I/O at zero spawn cost.
        monkeypatch.setenv("REPRO_SPAWN_OVERHEAD_S", "2.0")
        clear_cost_observations()
        observe_point_cost(120, 20, False, 0.36)
        decision = decide_executor(
            GRID, "auto", None, cpu_count=2, store_attached=True,
        )
        assert decision.executor == "thread"
        assert "threads overlap" in decision.reason
        assert decision.workers == 2
        # same mid-band without a store: nothing to overlap, stay serial
        decision = decide_executor(
            GRID, "auto", None, cpu_count=2, store_attached=False,
        )
        assert decision.executor == "serial"
        assert "spawn overhead eats the gain" in decision.reason

    def test_point_cost_calibration_converges(self):
        clear_cost_observations()
        assert estimate_point_cost(120, 20, False) is None
        for _ in range(20):
            observe_point_cost(120, 20, False, 0.01)
        est = estimate_point_cost(120, 20, False)
        assert est == pytest.approx(0.01, rel=0.05)
        # weight scaling: more blocks (smaller b) => costlier point
        assert estimate_point_cost(120, 10, False) > est
        # the measured leg roughly doubles a point
        assert estimate_point_cost(120, 20, True) == pytest.approx(
            2 * est, rel=1e-9
        )

    def test_decision_serialises(self):
        decision = ExecutorDecision(
            executor="serial", requested="auto", workers=1,
            reason="test", cpu_count=2,
        )
        doc = decision.to_dict()
        assert doc["executor"] == "serial"
        assert doc["requested"] == "auto"


class TestDecisionRationale:
    """The reason strings are part of the contract: manifests and the
    ``sweep.decide`` span quote them verbatim, so audits grep for them."""

    def test_single_point_grids_never_fan_out(self):
        one = GRID[:1]
        decision = decide_executor(one, "auto", None, cpu_count=8)
        assert decision.executor == "serial"
        assert decision.workers == 1
        assert "nothing to fan out" in decision.reason

    def test_single_cpu_reason_names_the_overhead(self):
        clear_cost_observations()
        observe_point_cost(120, 20, False, 5.0)  # expensive, yet stays serial
        decision = decide_executor(GRID, "auto", None, cpu_count=1)
        assert decision.executor == "serial"
        assert "single CPU" in decision.reason
        assert "dispatch overhead" in decision.reason

    def test_cheap_grid_reason_quotes_the_floor(self):
        clear_cost_observations()
        observe_point_cost(120, 20, False, 0.001)
        decision = decide_executor(GRID, "auto", None, cpu_count=4)
        assert f"< {executor_mod.MIN_PARALLEL_S}s" in decision.reason
        assert decision.est_total_s is not None
        assert decision.spawn_overhead_s is None  # never measured

    def test_process_reason_quotes_both_predictions(self):
        clear_cost_observations()
        observe_point_cost(120, 20, False, 5.0)
        decision = decide_executor(GRID, "auto", None, cpu_count=4)
        assert decision.executor == "process"
        assert "pool predicted" in decision.reason
        assert f"{decision.workers} workers" in decision.reason
        assert decision.spawn_overhead_s == pytest.approx(0.05)  # env pin
        predicted = decision.spawn_overhead_s + (
            decision.est_total_s / decision.workers
        )
        assert f"{predicted:.3f}s" in decision.reason

    def test_spawn_loss_reason_on_storeless_midband(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPAWN_OVERHEAD_S", "2.0")
        clear_cost_observations()
        observe_point_cost(120, 20, False, 0.36)
        decision = decide_executor(
            GRID, "auto", None, cpu_count=2, store_attached=False,
        )
        assert decision.executor == "serial"
        assert "spawn overhead eats the gain" in decision.reason

    def test_decide_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor 'gpu'"):
            decide_executor(GRID, "gpu", None, cpu_count=4)

    def test_decide_rejects_thread_under_tracer(self):
        with pytest.raises(ValueError, match="process-global"):
            decide_executor(GRID, "thread", 2, traced=True, cpu_count=4)

    def test_forced_worker_caps(self):
        # a forced pool never exceeds the CPU count or the grid size
        decision = decide_executor(GRID, "process", 64, cpu_count=2)
        assert decision.workers == 2
        decision = decide_executor(GRID[:2], "process", 64, cpu_count=8)
        assert decision.workers == 2
        decision = decide_executor(GRID, "thread", None, cpu_count=3)
        assert decision.workers == 3


class TestSpawnMeasurement:
    def test_env_override_wins_and_is_not_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPAWN_OVERHEAD_S", "1.25")
        assert executor_mod.measure_spawn_overhead() == 1.25
        monkeypatch.setenv("REPRO_SPAWN_OVERHEAD_S", "0.75")
        assert executor_mod.measure_spawn_overhead() == 0.75

    def test_real_measurement_is_cached_per_context(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPAWN_OVERHEAD_S", raising=False)
        executor_mod.clear_spawn_cache()
        first = executor_mod.measure_spawn_overhead()
        assert first > 0.0
        # second call must come from the cache, not a fresh pool
        monkeypatch.setattr(
            executor_mod.multiprocessing, "get_context",
            lambda *_: pytest.fail("re-measured a cached spawn overhead"),
        )
        assert executor_mod.measure_spawn_overhead() == first

    def test_grid_weight_scales_with_measured_leg(self):
        bare = executor_mod.grid_weight(GRID)
        assert bare > 0.0
        measured = expand_grid(
            120, [20, 30], ["diagonal", "stripped"], with_measured=True
        )
        assert executor_mod.grid_weight(measured) > bare

"""Tests for the causal DES cross-check model (repro.core.des_check)."""

import pytest

from repro.apps import random_pattern, ring_pattern, sample_pattern
from repro.core import (
    MEIKO_CS2,
    CommPattern,
    LogGPParameters,
    simulate_causal,
    simulate_standard,
)

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=8)


class TestAgainstStandard:
    def test_single_message_identical(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        ca = simulate_causal(PARAMS, pat)
        std = simulate_standard(PARAMS, pat)
        assert ca.completion_time == pytest.approx(std.completion_time)
        assert ca.ctimes == pytest.approx(std.ctimes)

    def test_chain_identical(self):
        pat = CommPattern(4, edges=[(0, 1, 7), (1, 2, 7), (2, 3, 7)])
        ca = simulate_causal(PARAMS, pat)
        std = simulate_standard(PARAMS, pat)
        assert ca.completion_time == pytest.approx(std.completion_time)

    def test_sample_pattern_identical(self):
        pat = sample_pattern()
        ca = simulate_causal(MEIKO_CS2, pat)
        std = simulate_standard(MEIKO_CS2, pat)
        assert ca.completion_time == pytest.approx(std.completion_time)

    @pytest.mark.parametrize("trial", range(20))
    def test_random_patterns_agree(self, trial):
        """Independent implementations of the same policy agree on the
        fuzz corpus (zero-start-time patterns)."""
        pat = random_pattern(6, 14, seed=100 + trial)
        ca = simulate_causal(PARAMS, pat)
        std = simulate_standard(PARAMS, pat, seed=trial)
        assert ca.completion_time == pytest.approx(std.completion_time)

    def test_ring_agrees(self):
        pat = ring_pattern(5, size=3)
        ca = simulate_causal(PARAMS, pat)
        std = simulate_standard(PARAMS, pat)
        assert ca.completion_time == pytest.approx(std.completion_time)


class TestInvariants:
    def test_sample_pattern_valid(self):
        pat = sample_pattern()
        res = simulate_causal(MEIKO_CS2, pat)
        res.timeline.validate(pat.messages)

    def test_start_times_respected(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_causal(PARAMS, pat, start_times={0: 30.0})
        (send,) = res.timeline.sends()
        assert send.start == pytest.approx(30.0)
        res.timeline.validate(pat.messages)

    def test_local_messages_skipped(self):
        pat = CommPattern(2, edges=[(0, 0, 9)])
        res = simulate_causal(PARAMS, pat)
        assert res.timeline.events == []
        assert len(res.skipped_local) == 1

    def test_empty_pattern(self):
        res = simulate_causal(PARAMS, CommPattern(2))
        assert res.completion_time == 0.0


class TestJitteredLatency:
    def test_latency_override_applied(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_causal(PARAMS, pat, latency_of=lambda m: 50.0)
        (recv,) = res.timeline.recvs()
        assert recv.arrival == pytest.approx(2.0 + 50.0)
        res.timeline.validate(pat.messages, strict_latency=False)

    def test_strict_validation_catches_override(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_causal(PARAMS, pat, latency_of=lambda m: 50.0)
        with pytest.raises(AssertionError):
            res.timeline.validate(pat.messages, strict_latency=True)

    def test_per_message_latency(self):
        pat = CommPattern(3, edges=[(0, 1, 1), (0, 2, 1)])
        lat = {0: 10.0, 1: 100.0}
        res = simulate_causal(PARAMS, pat, latency_of=lambda m: lat[m.uid])
        recvs = {e.message.uid: e for e in res.timeline.recvs()}
        assert recvs[1].arrival - recvs[0].arrival == pytest.approx(
            (7.0 + 2.0 + 100.0) - (0.0 + 2.0 + 10.0)
        )

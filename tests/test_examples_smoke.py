"""Smoke tests: the fast example scripts must run to completion.

Each example is executed in-process (``runpy``) with its module-level
``main()`` guarded by ``__main__``, so this is equivalent to
``python examples/<name>.py`` — a regression net for the documented
entry points.  Only the quick examples run here; the sweep-heavy ones
are covered by the benchmark suite.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "variable_blocks.py",
    "broadcast_study.py",
    "stencil_prediction.py",
    "cannon_matmul.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{name} produced almost no output"


def test_examples_directory_complete():
    """Every example promised by the README exists and is executable text."""
    expected = {
        "quickstart.py",
        "gauss_blocksize_sweep.py",
        "layout_comparison.py",
        "cannon_matmul.py",
        "stencil_prediction.py",
        "irregular_pattern.py",
        "variable_blocks.py",
        "broadcast_study.py",
        "machine_calibration.py",
        "lost_cycles.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    missing = expected - present
    assert not missing, f"examples missing: {sorted(missing)}"
    for name in expected:
        text = (EXAMPLES / name).read_text()
        assert '__main__' in text, f"{name} lacks a __main__ guard"
        assert text.startswith("#!/usr/bin/env python"), f"{name} lacks a shebang"

"""Unit tests for the UQ engine core (`repro.uq.engine`, `repro.uq.reduce`).

Covers the pieces the property/golden suites exercise only end-to-end:
the zero-noise collapse onto the plain sweep (grid *and* digest), store
resume under the spec-tagged keyspace, the reduction arithmetic on
hand-built rows, and the OAT sensitivity report.
"""

import math

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.experiments import ExperimentStore, PointSummary
from repro.sweep import expand_grid, run_sweep
from repro.uq import (
    UQPointSummary,
    UQSpec,
    oat_sensitivity,
    reduce_replicates,
    run_uq,
    summary_digest,
)

PARAMS = MEIKO_CS2
CM = CalibratedCostModel()


class TestZeroNoiseCollapse:
    def test_deterministic_spec_collapses_grid_to_plain_sweep(self):
        """32 replicates of a sigma=0 study run exactly one evaluation
        per point and reproduce the plain sweep digest bit for bit."""
        result = run_uq(
            120, [24, 40], ["diagonal", "column"], PARAMS, CM,
            spec=UQSpec(), replicates=32, with_measured=False, base_seed=5,
        )
        grid = expand_grid(120, [24, 40], ["diagonal", "column"],
                           seeds=(5,), with_measured=False)
        plain = run_sweep(grid, PARAMS, CM)
        assert result.sweep.points == grid
        assert result.sweep.stats.total == len(grid)
        assert result.replicate_digest() == plain.digest()

    def test_collapsed_summaries_report_single_replicate(self):
        result = run_uq(
            120, [24], ["diagonal"], PARAMS, CM,
            spec=UQSpec(), replicates=16, with_measured=False,
        )
        (summary,) = result.summaries
        assert summary.replicates == 1
        assert summary.stat("pred_standard_total", "std") == 0.0
        assert summary.ci_width() == 0.0

    def test_stochastic_spec_expands_full_ensemble(self):
        result = run_uq(
            120, [24], ["diagonal"], PARAMS, CM,
            spec=UQSpec(sigma=0.1), replicates=8, with_measured=False,
        )
        assert result.sweep.stats.total == 8
        assert result.summaries[0].replicates == 8


class TestStoreResume:
    def test_second_run_is_fully_cached(self, tmp_path):
        kwargs = dict(
            spec=UQSpec(sigma=0.1), replicates=5, with_measured=False,
            base_seed=3, store=tmp_path / "store",
        )
        first = run_uq(120, [24, 40], ["diagonal"], PARAMS, CM, **kwargs)
        second = run_uq(120, [24, 40], ["diagonal"], PARAMS, CM, **kwargs)
        assert first.sweep.stats.cached == 0
        assert second.sweep.stats.cached == second.sweep.stats.total
        assert second.summary_digest() == first.summary_digest()
        assert second.replicate_digest() == first.replicate_digest()

    def test_perturbed_entries_do_not_collide_with_deterministic(self, tmp_path):
        """A perturbed ensemble and a plain sweep share (n, b, layout,
        seed) keys only textually: the spec tag separates the keyspaces,
        so neither run can poison the other's cache."""
        store = tmp_path / "store"
        det = run_uq(
            120, [24], ["diagonal"], PARAMS, CM,
            spec=UQSpec(), replicates=1, with_measured=False, store=store,
        )
        noisy = run_uq(
            120, [24], ["diagonal"], PARAMS, CM,
            spec=UQSpec(sigma=0.2), replicates=1, with_measured=False,
            store=store,
        )
        assert noisy.sweep.stats.cached == 0  # no cross-tag reuse
        assert det.replicate_digest() != noisy.replicate_digest()

    def test_different_specs_use_distinct_tags(self):
        assert UQSpec().store_tag() is None
        a = UQSpec(sigma=0.1).store_tag()
        b = UQSpec(sigma=0.2).store_tag()
        assert a and b and a != b
        assert a.startswith("uq-")

    def test_extra_tag_changes_store_fingerprint(self, tmp_path):
        base = ExperimentStore(tmp_path, PARAMS, CM)
        tagged = ExperimentStore(tmp_path, PARAMS, CM, extra_tag="uq-x")
        assert base._fingerprint() != tagged._fingerprint()
        assert base._fingerprint() == ExperimentStore(tmp_path, PARAMS, CM)._fingerprint()


def _row(**metrics) -> PointSummary:
    base = {name: None for name in (
        "measured_total", "measured_total_wo_cache", "measured_comp",
        "measured_comm",
    )}
    defaults = dict(
        n=120, b=24, layout="diagonal", seed=0,
        pred_standard_total=1.0, pred_standard_comp=0.5, pred_standard_comm=0.5,
        pred_worstcase_total=2.0, pred_worstcase_comm=1.0,
    )
    defaults.update(base)
    defaults.update(metrics)
    return PointSummary(**defaults)


class TestReduction:
    def test_statistics_on_hand_built_replicates(self):
        values = [10.0, 12.0, 14.0, 20.0]
        rows = [_row(seed=i, pred_standard_total=v) for i, v in enumerate(values)]
        points = expand_grid(120, [24], ["diagonal"], seeds=(0, 1, 2, 3),
                             with_measured=False)
        (summary,) = reduce_replicates(points, rows, ci=0.5)
        stats = summary.metrics["pred_standard_total"]
        mean = sum(values) / 4
        assert stats["mean"] == mean
        assert stats["std"] == math.sqrt(
            sum((v - mean) ** 2 for v in values) / 3
        )
        assert stats["min"] == 10.0 and stats["max"] == 20.0
        # 50% CI of sorted [10, 12, 14, 20]: quantiles 0.25 and 0.75
        assert stats["ci_lo"] == 10.0 + 0.75 * 2.0
        assert stats["ci_hi"] == 14.0 + 0.25 * 6.0

    def test_absent_measured_metrics_reduce_to_none(self):
        points = expand_grid(120, [24], ["diagonal"], seeds=(0, 1),
                             with_measured=False)
        (summary,) = reduce_replicates(points, [_row(seed=0), _row(seed=1)])
        assert summary.metrics["measured_total"] is None
        with pytest.raises(KeyError):
            summary.stat("measured_total", "mean")

    def test_groups_keep_first_occurrence_order(self):
        points = expand_grid(120, [40, 24], ["diagonal"], seeds=(0, 1),
                             with_measured=False)
        rows = [_row(b=p.b, seed=p.seed) for p in points]
        summaries = reduce_replicates(points, rows)
        assert [(s.b, s.replicates) for s in summaries] == [(40, 2), (24, 2)]

    def test_length_mismatch_rejected(self):
        points = expand_grid(120, [24], ["diagonal"], with_measured=False)
        with pytest.raises(ValueError):
            reduce_replicates(points, [])

    def test_invalid_ci_rejected(self):
        points = expand_grid(120, [24], ["diagonal"], with_measured=False)
        for ci in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                reduce_replicates(points, [_row()], ci=ci)
        with pytest.raises(ValueError):
            run_uq(120, [24], ["diagonal"], PARAMS, CM, ci=1.5)

    def test_summary_digest_sensitive_to_values(self):
        points = expand_grid(120, [24], ["diagonal"], with_measured=False)
        a = reduce_replicates(points, [_row()])
        b = reduce_replicates(points, [_row(pred_standard_total=9.0)])
        assert summary_digest(a) != summary_digest(b)
        assert summary_digest(a) == summary_digest(
            [UQPointSummary.from_dict(s.to_dict()) for s in a]
        )


class TestOATSensitivity:
    def test_report_shape_and_elasticities(self):
        report = oat_sensitivity(120, [24, 40], "diagonal", PARAMS, CM)
        assert [row["b"] for row in report] == [24, 40]
        for row in report:
            assert row["layout"] == "diagonal"
            assert row["base_us"] > 0
            assert set(row["elasticity"]) == {"L", "o", "g", "G"}
            assert row["dominant"] in row["elasticity"]

    def test_deterministic(self):
        a = oat_sensitivity(120, [24], "diagonal", PARAMS, CM)
        b = oat_sensitivity(120, [24], "diagonal", PARAMS, CM)
        assert a == b

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            oat_sensitivity(120, [24], "nope", PARAMS, CM)
        with pytest.raises(ValueError):
            oat_sensitivity(120, [23], "diagonal", PARAMS, CM)

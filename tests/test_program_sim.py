"""Tests for the whole-program simulator (repro.core.program_sim)."""

import pytest

from repro.core import (
    CachePredictionModel,
    CommPattern,
    LogGPParameters,
    ProgramSimulator,
    TableCostModel,
)
from repro.trace import ProgramTrace, Step, Work

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=4)
COSTS = TableCostModel({"op1": {4: 100.0}, "op2": {4: 50.0}, "op4": {4: 30.0}})


def one_step_trace():
    """P0 computes 100us then sends one byte to P1."""
    trace = ProgramTrace(num_procs=2)
    trace.add_step(
        Step(
            work={0: [Work(op="op1", b=4)]},
            pattern=CommPattern(2, edges=[(0, 1, 1)]),
        )
    )
    return trace


class TestSingleStep:
    def test_exact_total(self):
        sim = ProgramSimulator(PARAMS, COSTS)
        report = sim.run(one_step_trace())
        # comp 100, send 100..102, arrival 112, recv ends 114
        assert report.total_us == pytest.approx(114.0)

    def test_comp_comm_split(self):
        report = ProgramSimulator(PARAMS, COSTS).run(one_step_trace())
        assert report.comp_us == pytest.approx(100.0)
        # P1 did no compute; its whole 114 is communication time
        assert report.comm_us == pytest.approx(114.0)

    def test_per_proc_values(self):
        report = ProgramSimulator(PARAMS, COSTS).run(one_step_trace())
        assert report.per_proc_comp_us == {0: 100.0, 1: 0.0}
        assert report.per_proc_total_us[0] == pytest.approx(102.0)
        assert report.per_proc_total_us[1] == pytest.approx(114.0)
        assert report.per_proc_comm_busy_us[0] == pytest.approx(2.0)
        assert report.per_proc_comm_busy_us[1] == pytest.approx(2.0)

    def test_breakdown_dict(self):
        report = ProgramSimulator(PARAMS, COSTS).run(one_step_trace())
        assert set(report.breakdown()) == {"total", "comp", "comm"}


class TestMultiStepClockCarrying:
    def test_clocks_carry_across_steps(self):
        trace = ProgramTrace(num_procs=2)
        trace.add_step(Step(work={0: [Work(op="op1", b=4)]}))
        trace.add_step(Step(work={0: [Work(op="op2", b=4)]},
                            pattern=CommPattern(2, edges=[(0, 1, 1)])))
        report = ProgramSimulator(PARAMS, COSTS).run(trace)
        # P0: 100 + 50 compute, send ends 152; arrival 162; recv ends 164
        assert report.total_us == pytest.approx(164.0)
        assert report.comp_us == pytest.approx(150.0)

    def test_unbalanced_compute_shifts_comm_start(self):
        """A processor that computes longer sends later — the paper's
        motivation for carrying per-processor clocks."""
        trace = ProgramTrace(num_procs=2)
        trace.add_step(
            Step(
                work={0: [Work(op="op1", b=4)], 1: [Work(op="op4", b=4)]},
                pattern=CommPattern(2, edges=[(1, 0, 1)]),
            )
        )
        report = ProgramSimulator(PARAMS, COSTS).run(trace)
        # P1 sends at its own 30, not at P0's 100: arrival 42 but P0 is
        # busy computing until 100, so the receive starts at 100.
        assert report.per_proc_total_us[0] == pytest.approx(102.0)


class TestModes:
    def test_worstcase_never_faster(self):
        trace = ProgramTrace(num_procs=3)
        trace.add_step(
            Step(
                work={0: [Work(op="op1", b=4)]},
                pattern=CommPattern(3, edges=[(0, 1, 1), (1, 2, 1), (0, 2, 1)]),
            )
        )
        std = ProgramSimulator(PARAMS, COSTS, mode="standard").run(trace)
        wc = ProgramSimulator(PARAMS, COSTS, mode="worstcase").run(trace)
        assert wc.total_us >= std.total_us - 1e-9

    def test_causal_matches_standard_here(self):
        trace = one_step_trace()
        std = ProgramSimulator(PARAMS, COSTS, mode="standard").run(trace)
        ca = ProgramSimulator(PARAMS, COSTS, mode="causal").run(trace)
        assert ca.total_us == pytest.approx(std.total_us)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ProgramSimulator(PARAMS, COSTS, mode="bogus")


class TestOverlapExtension:
    def test_overlap_never_slower(self):
        trace = ProgramTrace(num_procs=2)
        for _ in range(3):
            trace.add_step(
                Step(
                    work={0: [Work(op="op1", b=4)], 1: [Work(op="op2", b=4)]},
                    pattern=CommPattern(2, edges=[(0, 1, 100), (1, 0, 100)]),
                )
            )
        plain = ProgramSimulator(PARAMS, COSTS).run(trace)
        overlap = ProgramSimulator(PARAMS, COSTS, overlap=True).run(trace)
        assert overlap.total_us <= plain.total_us + 1e-9

    def test_overlap_sender_pays_only_busy_time(self):
        trace = ProgramTrace(num_procs=2)
        trace.add_step(
            Step(work={0: [Work(op="op1", b=4)]}, pattern=CommPattern(2, edges=[(0, 1, 1)]))
        )
        report = ProgramSimulator(PARAMS, COSTS, overlap=True).run(trace)
        # sender: comp 100 + send busy 2 (no waiting)
        assert report.per_proc_total_us[0] == pytest.approx(102.0)
        # receiver still pinned to its receive end
        assert report.per_proc_total_us[1] == pytest.approx(114.0)


class TestCacheExtension:
    def test_cache_model_adds_cost_only_when_set_overflows(self):
        cache = CachePredictionModel(cache_bytes=1024, line_bytes=32, miss_penalty_us=1.0)
        trace = ProgramTrace(num_procs=1)
        # 40 distinct 4x4 blocks = 40*128B = 5120B resident >> 1KiB cache
        step_work = [Work(op="op4", b=4, block=(i, 0)) for i in range(40)]
        trace.add_step(Step(work={0: step_work}))
        base = ProgramSimulator(PARAMS, COSTS).run(trace)
        cached = ProgramSimulator(PARAMS, COSTS, cache_model=cache).run(trace)
        assert cached.total_us > base.total_us

    def test_cache_model_noop_when_fits(self):
        cache = CachePredictionModel(cache_bytes=10**9)
        trace = one_step_trace()
        base = ProgramSimulator(PARAMS, COSTS).run(trace)
        cached = ProgramSimulator(PARAMS, COSTS, cache_model=cache).run(trace)
        assert cached.total_us == pytest.approx(base.total_us)


class TestIterOverheadExtension:
    def test_adds_per_op_cost(self):
        trace = one_step_trace()
        base = ProgramSimulator(PARAMS, COSTS).run(trace)
        loaded = ProgramSimulator(PARAMS, COSTS, iter_overhead_us=7.0).run(trace)
        assert loaded.comp_us == pytest.approx(base.comp_us + 7.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ProgramSimulator(PARAMS, COSTS, iter_overhead_us=-1.0)


class TestStepRecords:
    def test_records_kept_when_asked(self):
        sim = ProgramSimulator(PARAMS, COSTS, keep_steps=True)
        report = sim.run(one_step_trace())
        assert len(report.steps) == 1
        rec = report.steps[0]
        assert rec.comp_us == {0: 100.0}
        assert rec.messages == 1
        assert rec.comm_completion_us == pytest.approx(114.0)

    def test_records_absent_by_default(self):
        report = ProgramSimulator(PARAMS, COSTS).run(one_step_trace())
        assert report.steps == []

    def test_empty_trace(self):
        report = ProgramSimulator(PARAMS, COSTS).run(ProgramTrace(num_procs=2))
        assert report.total_us == 0.0
        assert report.comp_us == 0.0

"""Tests for the Split-C-style active-message runtime (repro.machine.activemsg)."""

import pytest

from repro.core import LogGPParameters, OpKind
from repro.machine import SplitCMachine

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=8)


class TestBasics:
    def test_single_store_timing(self):
        received = []

        def program(m):
            m.on_receive(1, lambda src, payload: received.append((src, payload)))
            m.port(0).store(1, size=1, payload="hello")
            m.port(0).finish()

        machine = SplitCMachine(PARAMS)
        timeline = machine.run(program)
        assert received == [(0, "hello")]
        assert timeline.completion_time == pytest.approx(14.0)
        timeline.validate()

    def test_run_twice_rejected(self):
        machine = SplitCMachine(PARAMS)
        machine.run(lambda m: None)
        with pytest.raises(RuntimeError):
            machine.run(lambda m: None)

    def test_out_of_range_port_rejected(self):
        machine = SplitCMachine(PARAMS)
        with pytest.raises(ValueError):
            machine.port(8)

    def test_store_after_finish_rejected(self):
        def program(m):
            port = m.port(0)
            port.finish()
            with pytest.raises(RuntimeError):
                port.store(1, size=1)

        SplitCMachine(PARAMS).run(program)


class TestGapDiscipline:
    def test_back_to_back_stores_respect_gap(self):
        def program(m):
            m.port(0).store(1, size=1)
            m.port(0).store(2, size=1)
            m.port(0).finish()

        timeline = SplitCMachine(PARAMS).run(program)
        s1, s2 = timeline.sends()
        assert s2.start == pytest.approx(s1.end + PARAMS.g)
        timeline.validate()

    def test_concurrent_arrivals_gap_separated(self):
        def program(m):
            m.port(0).store(2, size=1)
            m.port(0).finish()
            m.port(1).store(2, size=1)
            m.port(1).finish()
            m.port(2).finish()

        timeline = SplitCMachine(PARAMS).run(program)
        r1, r2 = timeline.recvs()
        assert r2.start >= r1.end + PARAMS.g - 1e-9
        timeline.validate()


class TestHandlers:
    def test_handler_chaining_forwards_message(self):
        """A handler that issues a store models the wavefront forwarding of
        the GE implementation (receiver-driven propagation)."""
        hops = []

        def program(m):
            def forward(pid, nxt):
                def handler(src, payload):
                    hops.append(pid)
                    if nxt is not None:
                        m.port(pid).store(nxt, size=1, payload=payload)
                    m.port(pid).finish()

                return handler

            m.on_receive(1, forward(1, 2))
            m.on_receive(2, forward(2, 3))
            m.on_receive(3, forward(3, None))
            m.port(0).store(1, size=1, payload="wave")
            m.port(0).finish()

        machine = SplitCMachine(PARAMS)
        timeline = machine.run(program)
        assert hops == [1, 2, 3]
        assert len(timeline.sends()) == 3
        assert len(timeline.recvs()) == 3
        timeline.validate()

    def test_receive_priority_over_pending_send(self):
        """A port with both a queued store and an arrived message performs
        the receive first when the receive can start no later."""

        def program(m):
            m.port(0).store(1, size=1)  # arrives at P1 at t=12
            m.port(0).finish()
            m.port(1).finish()

            def handler(src, payload):
                pass

            m.on_receive(1, handler)

        timeline = SplitCMachine(PARAMS).run(program)
        (recv,) = timeline.recvs()
        assert recv.start == pytest.approx(12.0)

    def test_no_handler_still_receives(self):
        def program(m):
            m.port(0).store(1, size=4)
            m.port(0).finish()

        timeline = SplitCMachine(PARAMS).run(program)
        assert len(timeline.recvs()) == 1

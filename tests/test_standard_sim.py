"""Tests for the Figure 2 standard simulation algorithm."""

import numpy as np
import pytest

from repro.apps import sample_pattern
from repro.core import (
    MEIKO_CS2,
    CommPattern,
    LogGPParameters,
    OpKind,
    StandardSimulator,
    simulate_standard,
)

PARAMS = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=8)


class TestSingleMessage:
    def test_exact_timing(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_standard(PARAMS, pat)
        (send,) = res.timeline.sends()
        (recv,) = res.timeline.recvs()
        assert send.start == 0.0
        assert send.end == pytest.approx(2.0)
        assert recv.arrival == pytest.approx(12.0)
        assert recv.start == pytest.approx(12.0)  # received as soon as it lands
        assert recv.end == pytest.approx(14.0)
        assert res.completion_time == pytest.approx(14.0)

    def test_long_message_timing(self):
        pat = CommPattern(2, edges=[(0, 1, 101)])
        res = simulate_standard(PARAMS, pat)
        # send busy o + 100*G = 52; arrival 52+10 = 62; recv end 64
        assert res.completion_time == pytest.approx(64.0)

    def test_ctimes(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_standard(PARAMS, pat)
        assert res.ctimes[0] == pytest.approx(2.0)
        assert res.ctimes[1] == pytest.approx(14.0)


class TestGapEnforcement:
    def test_consecutive_sends_spaced_by_gap(self):
        pat = CommPattern(3, edges=[(0, 1, 1), (0, 2, 1)])
        res = simulate_standard(PARAMS, pat)
        s1, s2 = res.timeline.sends()
        assert s1.start == 0.0
        assert s2.start == pytest.approx(s1.end + 5.0)

    def test_consecutive_receives_spaced_by_gap(self):
        # two senders hit the same receiver at the same moment
        pat = CommPattern(3, edges=[(0, 2, 1), (1, 2, 1)])
        res = simulate_standard(PARAMS, pat)
        r1, r2 = res.timeline.recvs()
        assert r1.start == pytest.approx(12.0)
        # second receive delayed to honour the gap: end(14) + g(5)
        assert r2.start == pytest.approx(19.0)

    def test_receive_then_send_gap(self):
        # P1 receives from P0 then sends to P2; start clocks make the
        # message arrive before P1 considers sending.
        pat = CommPattern(3)
        pat.add(0, 1, 1)
        pat.add(1, 2, 1)
        res = simulate_standard(PARAMS, pat, start_times={1: 20.0})
        recv_p1 = [e for e in res.timeline.events_of(1) if e.kind is OpKind.RECV][0]
        send_p1 = [e for e in res.timeline.events_of(1) if e.kind is OpKind.SEND][0]
        # recv at 20..22; send after max(o,g)-o = 3 more units
        assert recv_p1.start == pytest.approx(20.0)
        assert send_p1.start == pytest.approx(25.0)


class TestReceivePriority:
    def test_receive_performed_before_send_when_message_waiting(self):
        pat = CommPattern(3)
        pat.add(0, 1, 1)  # arrives at P1 at t=12
        pat.add(1, 2, 1)  # P1 wants to send this
        res = simulate_standard(PARAMS, pat, start_times={1: 15.0})
        ops = res.timeline.events_of(1)
        assert [e.kind for e in ops] == [OpKind.RECV, OpKind.SEND]

    def test_tie_prefers_receive(self):
        # Arrange exact equality of candidate start times.
        params = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=3)
        pat = CommPattern(3)
        pat.add(0, 1, 1)  # arrives at 12
        pat.add(1, 2, 1)
        res = simulate_standard(params, pat, start_times={1: 12.0})
        ops = res.timeline.events_of(1)
        # start_recv == start_send == 12: strict '<' favours the receive
        assert ops[0].kind is OpKind.RECV

    def test_send_goes_first_when_no_message_arrived(self):
        pat = CommPattern(3)
        pat.add(0, 1, 1)  # arrives at 12
        pat.add(1, 2, 1)  # P1 is free at t=0, sends long before arrival
        res = simulate_standard(PARAMS, pat)
        ops = res.timeline.events_of(1)
        assert ops[0].kind is OpKind.SEND
        assert ops[0].start == 0.0


class TestSelfMessages:
    def test_local_messages_skipped_and_reported(self):
        pat = CommPattern(2, edges=[(0, 0, 10), (0, 1, 1)])
        res = simulate_standard(PARAMS, pat)
        assert len(res.skipped_local) == 1
        assert len(res.timeline.events) == 2  # one send + one recv

    def test_pure_local_pattern_is_free(self):
        pat = CommPattern(2, edges=[(1, 1, 10)])
        res = simulate_standard(PARAMS, pat)
        assert res.completion_time == 0.0
        assert res.timeline.events == []


class TestStartTimes:
    def test_start_times_shift_everything(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        base = simulate_standard(PARAMS, pat)
        shifted = simulate_standard(PARAMS, pat, start_times={0: 100.0, 1: 100.0})
        assert shifted.completion_time == pytest.approx(base.completion_time + 100.0)

    def test_heterogeneous_start_times(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_standard(PARAMS, pat, start_times={0: 50.0, 1: 0.0})
        (recv,) = res.timeline.recvs()
        assert recv.start == pytest.approx(62.0)

    def test_idle_proc_keeps_its_clock(self):
        pat = CommPattern(3, edges=[(0, 1, 1)])
        res = simulate_standard(PARAMS, pat, start_times={2: 33.0})
        assert res.ctimes[2] == 33.0


class TestDeterminismAndInvariants:
    def test_same_seed_same_result(self):
        pat = sample_pattern()
        a = simulate_standard(MEIKO_CS2, pat, seed=42)
        b = simulate_standard(MEIKO_CS2, pat, seed=42)
        assert a.completion_time == b.completion_time
        assert [str(e) for e in a.timeline.events] == [str(e) for e in b.timeline.events]

    def test_explicit_rng_used(self):
        pat = sample_pattern()
        rng = np.random.default_rng(7)
        res = simulate_standard(MEIKO_CS2, pat, rng=rng)
        res.timeline.validate(pat.messages)

    def test_sample_pattern_invariants(self):
        pat = sample_pattern()
        res = simulate_standard(MEIKO_CS2, pat)
        res.timeline.validate(pat.messages)

    def test_empty_pattern(self):
        res = simulate_standard(PARAMS, CommPattern(4))
        assert res.completion_time == 0.0

    def test_simulator_class_matches_function(self):
        pat = sample_pattern()
        sim = StandardSimulator(MEIKO_CS2, rng=np.random.default_rng(0))
        res_cls = sim.run(pat)
        res_fn = simulate_standard(MEIKO_CS2, pat, seed=0)
        assert res_cls.completion_time == pytest.approx(res_fn.completion_time)

    def test_elapsed_relative_to_start(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = simulate_standard(PARAMS, pat, start_times={0: 10.0, 1: 10.0})
        assert res.elapsed() == pytest.approx(14.0)

"""Tests for the machine emulator (repro.machine.emulator)."""

import pytest

from repro.apps import GEConfig, build_ge_trace
from repro.core import MEIKO_CS2, CalibratedCostModel, ProgramSimulator
from repro.layouts import DiagonalLayout
from repro.machine import JitteredNetwork, MachineEmulator

COSTS = CalibratedCostModel()


def small_trace(n=120, b=24, P=4):
    layout = DiagonalLayout(n // b, P)
    return build_ge_trace(GEConfig(n=n, b=b, layout=layout))


def make_emulator(**kw):
    defaults = dict(params=MEIKO_CS2, cost_model=COSTS, seed=0)
    defaults.update(kw)
    return MachineEmulator(**defaults)


class TestDeterminism:
    def test_same_seed_same_measurement(self):
        trace = small_trace()
        a = make_emulator().run(trace)
        b = make_emulator().run(trace)
        assert a.total_us == b.total_us
        assert a.per_proc_total_us == b.per_proc_total_us

    def test_different_seeds_differ(self):
        trace = small_trace()
        a = make_emulator(seed=0).run(trace)
        b = make_emulator(seed=99).run(trace)
        assert a.total_us != b.total_us


class TestRelationsToPrediction:
    """The qualitative relationships of Figures 7-9 at small scale."""

    @pytest.fixture(scope="class")
    def data(self):
        trace = small_trace()
        measured = make_emulator().run(trace)
        std = ProgramSimulator(MEIKO_CS2, COSTS, mode="standard").run(trace)
        wc = ProgramSimulator(MEIKO_CS2, COSTS, mode="worstcase").run(trace)
        return measured, std, wc

    def test_measured_total_exceeds_standard_prediction(self, data):
        measured, std, _ = data
        assert measured.total_us > std.total_us

    def test_without_cache_closer_to_prediction(self, data):
        measured, std, _ = data
        with_gap = measured.total_us - std.total_us
        without_gap = measured.total_without_cache_us - std.total_us
        assert without_gap < with_gap

    def test_measured_comm_between_standard_and_worstcase(self, data):
        measured, std, wc = data
        assert std.comm_us * 0.98 <= measured.comm_us <= wc.comm_us * 1.02

    def test_measured_comp_at_least_predicted(self, data):
        measured, std, _ = data
        assert measured.comp_us >= std.comp_us * 0.97

    def test_breakdown_keys(self, data):
        measured, _, _ = data
        assert set(measured.breakdown()) == {
            "total",
            "total_wo_cache",
            "comp",
            "comm",
            "cache",
        }


class TestEffectToggles:
    def test_no_cache_means_no_cache_bucket(self):
        trace = small_trace()
        report = make_emulator(cache_bytes=None).run(trace)
        assert report.cache_us == 0.0
        assert report.total_without_cache_us == pytest.approx(report.total_us)

    def test_cache_bucket_positive_with_small_cache(self):
        trace = small_trace()
        report = make_emulator(cache_bytes=32 * 1024).run(trace)
        assert report.cache_us > 0.0

    def test_scan_overhead_raises_comp(self):
        trace = small_trace()
        without = make_emulator(scan_us_per_block=0.0).run(trace)
        with_scan = make_emulator(scan_us_per_block=5.0).run(trace)
        assert with_scan.comp_us > without.comp_us

    def test_local_copies_accounted(self):
        trace = small_trace()
        report = make_emulator().run(trace)
        total_local = sum(report.per_proc_local_us.values())
        local_msgs = sum(
            len(s.pattern.local_messages()) for s in trace.steps if s.pattern
        )
        assert (total_local > 0) == (local_msgs > 0)

    def test_custom_network_injected(self):
        trace = small_trace()
        net = JitteredNetwork(params=MEIKO_CS2, jitter_sigma=0.0, straggler_prob=0.0, seed=0)
        report = make_emulator(network=net, noise_sigma=0.0, cache_bytes=None,
                               scan_us_per_block=0.0).run(trace)
        std = ProgramSimulator(MEIKO_CS2, COSTS, mode="causal").run(trace)
        # all effects off: the emulator collapses onto the causal
        # prediction plus local copies
        local = sum(report.per_proc_local_us.values())
        assert report.total_us <= std.total_us + local + 1e-6

    def test_meta_propagated(self):
        trace = small_trace()
        report = make_emulator().run(trace)
        assert report.meta["app"] == "gauss"

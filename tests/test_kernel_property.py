"""Property-based differential testing of the fast kernel.

The differential oracle pins the fast path on the four *real*
application traces; this suite closes the gap between "the apps we
ship" and "programs the simulators accept".  Hypothesis generates small
random oblivious programs through :class:`repro.trace.TraceBuilder` —
arbitrary work assignments, arbitrary message patterns (fan-in, fan-out,
self-messages, idle processors, empty steps) — and every one must
simulate bit-identically with the fast path on and off, under all three
engines.

Random programs are much better than the apps at exercising the
tie-breaking RNG (apps are too regular to tie often) and the worst-case
algorithm's deadlock-breaking branch.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockops import OP_NAMES
from repro.core import MEIKO_CS2, CalibratedCostModel, ProgramSimulator
from repro.kernel import clear_all_caches, fast_path
from repro.trace import TraceBuilder

CM = CalibratedCostModel()
MODES = ("standard", "worstcase", "causal")

# -- program generator -------------------------------------------------------

_ops = st.tuples(
    st.sampled_from(OP_NAMES),          # op
    st.sampled_from([4, 8, 16]),        # block size
)
_msg = st.tuples(
    st.integers(min_value=0, max_value=4),   # src (mod P)
    st.integers(min_value=0, max_value=4),   # dst (mod P) — src==dst is a
    st.integers(min_value=1, max_value=2048),  # size; local message, allowed
)
_step = st.tuples(
    st.lists(st.tuples(st.integers(0, 4), _ops), max_size=6),  # work items
    st.lists(_msg, max_size=8),                                # messages
)
_program = st.tuples(
    st.integers(min_value=2, max_value=5),    # num_procs
    st.lists(_step, min_size=1, max_size=3),  # steps
)


def _build(spec):
    """Materialise a generated spec into a ProgramTrace."""
    num_procs, steps = spec
    builder = TraceBuilder(num_procs)
    for work, messages in steps:
        for proc, (op, b) in work:
            builder.work(proc % num_procs, op, b)
        for src, dst, size in messages:
            builder.message(src % num_procs, dst % num_procs, size)
        builder.end_step()
    return builder.build()


def _run(trace, mode, fast, seed):
    clear_all_caches()
    with fast_path(fast):
        report = ProgramSimulator(MEIKO_CS2, CM, mode=mode, seed=seed).run(trace)
    return (
        repr(report.total_us),
        repr(report.per_proc_total_us),
        repr(report.per_proc_comp_us),
        repr(report.per_proc_comm_busy_us),
    )


@settings(max_examples=60, deadline=None)
@given(spec=_program, seed=st.integers(min_value=0, max_value=7))
def test_random_programs_bit_identical(spec, seed):
    """Any small program, any engine, any tie-break seed: fast == reference."""
    trace = _build(spec)
    for mode in MODES:
        ref = _run(trace, mode, fast=False, seed=seed)
        fast = _run(trace, mode, fast=True, seed=seed)
        assert fast == ref, f"fast/reference divergence in mode {mode!r}"


@settings(max_examples=20, deadline=None)
@given(
    num_procs=st.integers(min_value=2, max_value=4),
    sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=2, max_size=10),
    seed=st.integers(min_value=0, max_value=3),
)
def test_all_to_one_fanin_bit_identical(num_procs, sizes, seed):
    """Heavy fan-in onto one receiver — the standard algorithm's tie-rich
    worst case (every sender starts at the same clock)."""
    builder = TraceBuilder(num_procs)
    for i, size in enumerate(sizes):
        builder.message(i % (num_procs - 1) + 1, 0, size)
    builder.end_step()
    trace = builder.build()
    for mode in MODES:
        assert _run(trace, mode, True, seed) == _run(trace, mode, False, seed)

"""Tests for the blocked wavefront Gaussian Elimination (repro.apps.gauss)."""

import numpy as np
import pytest

from repro.apps import (
    PAPER_BLOCK_SIZES,
    PAPER_MATRIX_N,
    GEConfig,
    build_ge_trace,
    execute_blocked_ge,
    random_spd_like_matrix,
    verify_lu,
)
from repro.layouts import DiagonalLayout, RowStrippedCyclicLayout


def config(n=96, b=12, P=4, layout_cls=DiagonalLayout):
    return GEConfig(n=n, b=b, layout=layout_cls(n // b, P))


class TestConfig:
    def test_indivisible_block_rejected(self):
        with pytest.raises(ValueError):
            GEConfig(n=100, b=7, layout=DiagonalLayout(14, 4))

    def test_layout_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GEConfig(n=96, b=12, layout=DiagonalLayout(4, 4))

    def test_paper_constants_consistent(self):
        assert PAPER_MATRIX_N == 960
        assert len(PAPER_BLOCK_SIZES) == 14
        for b in PAPER_BLOCK_SIZES:
            assert PAPER_MATRIX_N % b == 0


class TestTraceStructure:
    def test_step_count(self):
        cfg = config(n=96, b=12)  # nb = 8
        trace = build_ge_trace(cfg)
        assert len(trace) == 3 * (8 - 1) + 1

    def test_total_op_count(self):
        cfg = config(n=60, b=12, P=4)  # nb = 5
        trace = build_ge_trace(cfg)
        nb = 5
        assert trace.total_ops() == sum((nb - k) ** 2 for k in range(nb))

    def test_op_histogram(self):
        cfg = config(n=60, b=12, P=4)  # nb = 5
        trace = build_ge_trace(cfg)
        hist = trace.op_histogram()
        nb = 5
        assert hist["op1"] == nb
        assert hist["op2"] == sum(nb - 1 - k for k in range(nb))
        assert hist["op3"] == hist["op2"]
        assert hist["op4"] == sum((nb - 1 - k) ** 2 for k in range(nb))

    def test_wavefront_schedule_position(self):
        """Block (i, j) of iteration k computes at step 3k + (i-k)+(j-k)."""
        cfg = config(n=48, b=12, P=4)  # nb = 4
        trace = build_ge_trace(cfg)
        placed = {}
        for t, step in enumerate(trace.steps):
            for proc, ops in step.work.items():
                for w in ops:
                    placed[(w.block, w.iteration)] = t
        nb = 4
        for k in range(nb):
            for i in range(k, nb):
                for j in range(k, nb):
                    assert placed[((i, j), k)] == 3 * k + (i - k) + (j - k)

    def test_work_assigned_to_owner(self):
        cfg = config(n=48, b=12, P=4)
        trace = build_ge_trace(cfg)
        for step in trace.steps:
            for proc, ops in step.work.items():
                for w in ops:
                    assert cfg.layout.owner(*w.block) == proc

    def test_systolic_messages_target_neighbors(self):
        cfg = config(n=48, b=12, P=4)
        trace = build_ge_trace(cfg)
        # every message size is either a block or a triangular factor
        block_bytes = 12 * 12 * 8
        factor_bytes = 12 * 13 // 2 * 8
        for step in trace.steps:
            for m in step.pattern.messages:
                assert m.size in (block_bytes, factor_bytes)

    def test_dependencies_satisfied(self):
        """Data for a step-t+1 op is emitted in step t: every active block
        (other than wave starts) has an incoming transfer the step before."""
        cfg = config(n=48, b=12, P=4)
        trace = build_ge_trace(cfg)
        nb = 4
        # Count messages per step and check the final step has no sends
        # (the last Op1 emits nothing).
        last = trace.steps[-1]
        assert len(last.pattern) == 0
        assert last.total_ops() == 1  # the final Op1 on (nb-1, nb-1)

    def test_meta_recorded(self):
        cfg = config()
        trace = build_ge_trace(cfg)
        assert trace.meta["app"] == "gauss"
        assert trace.meta["n"] == 96
        assert trace.meta["layout"] == "diagonal"

    def test_validates(self):
        trace = build_ge_trace(config())
        trace.validate()

    def test_stripped_layout_has_more_local_messages(self):
        """Row transfers are free under row-stripped cyclic (paper §6.2)."""
        n, b, P = 96, 12, 8
        t_str = build_ge_trace(GEConfig(n, b, RowStrippedCyclicLayout(n // b, P)))
        t_diag = build_ge_trace(GEConfig(n, b, DiagonalLayout(n // b, P)))
        local_str = sum(len(s.pattern.local_messages()) for s in t_str.steps)
        local_diag = sum(len(s.pattern.local_messages()) for s in t_diag.steps)
        assert local_str > local_diag


class TestNumericalExecution:
    def test_lu_reconstructs_matrix(self):
        a = random_spd_like_matrix(48, seed=1)
        lower, upper = execute_blocked_ge(a, b=12)
        assert verify_lu(a, lower, upper)

    def test_block_size_one(self):
        a = random_spd_like_matrix(8, seed=2)
        lower, upper = execute_blocked_ge(a, b=1)
        assert verify_lu(a, lower, upper)

    def test_single_block(self):
        a = random_spd_like_matrix(16, seed=3)
        lower, upper = execute_blocked_ge(a, b=16)
        assert verify_lu(a, lower, upper)

    def test_matches_unblocked(self):
        """The factorisation is unique (no pivoting): every block size
        yields the same L and U."""
        a = random_spd_like_matrix(24, seed=4)
        l1, u1 = execute_blocked_ge(a, b=4)
        l2, u2 = execute_blocked_ge(a, b=8)
        assert np.allclose(l1, l2)
        assert np.allclose(u1, u2)

    def test_solves_linear_system(self):
        a = random_spd_like_matrix(32, seed=5)
        lower, upper = execute_blocked_ge(a, b=8)
        rng = np.random.default_rng(6)
        x_true = rng.standard_normal(32)
        rhs = a @ x_true
        y = np.linalg.solve(lower, rhs)
        x = np.linalg.solve(upper, y)
        assert np.allclose(x, x_true)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            execute_blocked_ge(np.eye(10), b=3)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            execute_blocked_ge(np.zeros((4, 6)), b=2)

    def test_verify_lu_rejects_bad_factors(self):
        a = random_spd_like_matrix(8, seed=7)
        lower, upper = execute_blocked_ge(a, b=4)
        assert not verify_lu(a, lower + 0.1, upper)
        assert not verify_lu(a, np.ones_like(lower), upper)

    def test_random_matrix_is_dominant(self):
        a = random_spd_like_matrix(16, seed=8)
        for i in range(16):
            assert abs(a[i, i]) > sum(abs(a[i, j]) for j in range(16) if j != i) / 4

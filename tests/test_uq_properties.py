"""Property-based tests for the Monte Carlo UQ engine (`repro.uq`).

The three properties the issue pins:

* **Zero-noise anchor.**  With all sigmas zero, every replicate is
  bit-identical to the deterministic predictor — the UQ path must be an
  exact superset of the plain sweep, not an approximation of it.
* **CI monotonicity.**  More parameter noise never *narrows* the
  confidence band (checked at the sampled-multiplier level, where it is
  a theorem given shared underlying draws, and at the engine level on a
  fixed seeded configuration).
* **Worker invariance.**  The same seed gives the same summary digest
  whatever the worker count.

Hypothesis drives the cheap properties; simulation-backed checks use
small fixed grids so the suite stays fast and fully deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.predictor import summarize_ge_point, summarize_uq_point
from repro.machine.perturbed import PerturbedMachine
from repro.uq import UQSpec, child_rng, run_uq

PARAMS = MEIKO_CS2
CM = CalibratedCostModel()

small_sigmas = st.floats(
    min_value=0.0, max_value=0.5, allow_nan=False, allow_infinity=False
)


class TestZeroNoiseAnchor:
    @given(
        b=st.sampled_from([24, 40, 60]),
        layout=st.sampled_from(["diagonal", "stripped", "block2d", "column"]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_sigma_zero_replicates_bit_identical_to_predictor(self, b, layout, seed):
        spec = UQSpec(sigma=0.0, op_sigma=0.0)
        uq = summarize_uq_point(
            120, b, layout, PARAMS, CM, spec, with_measured=False, seed=seed
        )
        det = summarize_ge_point(
            120, b, layout, PARAMS, CM, with_measured=False, seed=seed
        )
        assert uq == det  # exact float equality, field for field

    def test_sigma_zero_with_measured_bit_identical(self):
        spec = UQSpec()
        uq = summarize_uq_point(120, 24, "diagonal", PARAMS, CM, spec, seed=3)
        det = summarize_ge_point(120, 24, "diagonal", PARAMS, CM, seed=3)
        assert uq == det

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_spec_returns_base_objects(self, seed):
        machine = PerturbedMachine(PARAMS, CM, UQSpec())
        p, cm = machine.sample(seed)
        assert p is PARAMS and cm is CM


class TestCIMonotoneInSigma:
    @given(
        sig_lo=small_sigmas,
        sig_hi=small_sigmas,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_multiplier_spread_monotone(self, sig_lo, sig_hi, seed):
        """Given shared standard-normal draws, the sampled-parameter CI
        width is non-decreasing in sigma (the engine-level property's
        provable core)."""
        if sig_lo > sig_hi:
            sig_lo, sig_hi = sig_hi, sig_lo
        z = child_rng("ci-mono", seed).normal(0.0, 1.0, size=64)

        def width(sigma):
            vals = np.sort(np.exp(sigma * z - sigma * sigma / 2.0))
            return np.quantile(vals, 0.975) - np.quantile(vals, 0.025)

        assert width(sig_hi) >= width(sig_lo) - 1e-15

    def test_engine_ci_width_monotone_fixed_seed(self):
        """Seeded end-to-end check: wider sigma, wider predicted-time CI."""
        widths = []
        for sigma in (0.0, 0.05, 0.15):
            result = run_uq(
                120, [24, 40], ["diagonal"], PARAMS, CM,
                spec=UQSpec(sigma=sigma), replicates=12,
                with_measured=False, base_seed=9,
            )
            widths.append(
                [s.ci_width("pred_standard_total") for s in result.summaries]
            )
        for narrow, wide in zip(widths, widths[1:]):
            for w_lo, w_hi in zip(narrow, wide):
                assert w_hi >= w_lo

    def test_sigma_zero_ci_width_is_zero(self):
        result = run_uq(
            120, [24], ["diagonal"], PARAMS, CM,
            spec=UQSpec(), replicates=8, with_measured=False,
        )
        assert result.summaries[0].ci_width() == 0.0


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_same_seed_same_summary_across_worker_counts(self, workers):
        kwargs = dict(
            spec=UQSpec(sigma=0.1, op_sigma=0.05), replicates=6,
            with_measured=False, base_seed=17,
        )
        serial = run_uq(120, [24, 40], ["diagonal"], PARAMS, CM, **kwargs)
        parallel = run_uq(
            120, [24, 40], ["diagonal"], PARAMS, CM, workers=workers, **kwargs
        )
        assert serial.summary_digest() == parallel.summary_digest()
        assert serial.replicate_digest() == parallel.replicate_digest()

    @given(base_seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_replicate_evaluation_is_pure_in_seed(self, base_seed):
        spec = UQSpec(sigma=0.2, op_sigma=0.1)
        a = summarize_uq_point(
            120, 24, "diagonal", PARAMS, CM, spec,
            with_measured=False, seed=base_seed,
        )
        b = summarize_uq_point(
            120, 24, "diagonal", PARAMS, CM, spec,
            with_measured=False, seed=base_seed,
        )
        assert a == b


class TestPerturbationShape:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        sigma=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_perturbation_only_touches_noised_knobs(self, seed, sigma):
        machine = PerturbedMachine(PARAMS, CM, UQSpec(sigma=0.0, param_sigma={"G": sigma}))
        p, cm = machine.sample(seed)
        assert (p.L, p.o, p.g, p.P) == (PARAMS.L, PARAMS.o, PARAMS.g, PARAMS.P)
        assert p.G > 0 and cm is CM

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_op_factors_positive_and_seed_stable(self, seed):
        machine = PerturbedMachine(PARAMS, CM, UQSpec(op_sigma=0.3))
        _, cm1 = machine.sample(seed)
        _, cm2 = machine.sample(seed)
        assert cm1.factors == cm2.factors
        assert all(f > 0 for f in cm1.factors.values())
        assert cm1.cost("op1", 24) == CM.cost("op1", 24) * cm1.factors["op1"]

"""Tests for analysis helpers (repro.analysis)."""

import pytest

from repro.analysis import (
    argmin_key,
    bracketed_fraction,
    crossover_points,
    describe_sequence,
    format_figure,
    format_table,
    has_interior_minimum,
    is_within_neighbors,
    relative_gap,
    render_timeline,
    sawtooth_score,
)
from repro.apps import sample_pattern
from repro.core import MEIKO_CS2, simulate_standard


class TestTimelineRendering:
    @pytest.fixture(scope="class")
    def timeline(self):
        return simulate_standard(MEIKO_CS2, sample_pattern()).timeline

    def test_render_has_lane_per_participant(self, timeline):
        text = render_timeline(timeline, width=80)
        for p in timeline.participants():
            assert f"P{p}" in text

    def test_render_contains_ops_and_axis(self, timeline):
        text = render_timeline(timeline, width=80)
        assert "S" in text and "R" in text
        assert "us" in text

    def test_render_width_validated(self, timeline):
        with pytest.raises(ValueError):
            render_timeline(timeline, width=5)

    def test_render_empty_timeline(self):
        from repro.core import CommPattern

        res = simulate_standard(MEIKO_CS2, CommPattern(2))
        assert "empty" in render_timeline(res.timeline)

    def test_describe_lists_finish_times(self, timeline):
        text = describe_sequence(timeline)
        assert "step completion" in text
        assert "finishes at" in text


class TestStats:
    def test_argmin_key(self):
        assert argmin_key({10: 5.0, 20: 1.0, 30: 9.0}) == 20
        with pytest.raises(ValueError):
            argmin_key({})

    def test_interior_minimum(self):
        assert has_interior_minimum({10: 5.0, 20: 1.0, 30: 9.0})
        assert not has_interior_minimum({10: 1.0, 20: 2.0, 30: 9.0})
        assert not has_interior_minimum({10: 5.0, 20: 1.0})

    def test_sawtooth_score(self):
        assert sawtooth_score({1: 1.0, 2: 2.0, 3: 3.0}) == 0
        assert sawtooth_score({1: 1.0, 2: 3.0, 3: 2.0, 4: 4.0}) == 2
        assert sawtooth_score({1: 1.0}) == 0

    def test_crossover_points(self):
        a = {10: 5.0, 20: 3.0, 30: 1.0}
        b = {10: 1.0, 20: 2.0, 30: 4.0}
        assert crossover_points(a, b) == [20] or crossover_points(a, b) == [30]
        assert crossover_points(a, a) == []

    def test_bracketed_fraction(self):
        measured = {1: 5.0, 2: 9.0}
        lower = {1: 4.0, 2: 10.0}
        upper = {1: 6.0, 2: 12.0}
        assert bracketed_fraction(measured, lower, upper) == 0.5
        assert bracketed_fraction(measured, lower, upper, slack=0.2) == 1.0
        with pytest.raises(ValueError):
            bracketed_fraction({1: 1.0}, {2: 1.0}, {2: 1.0})

    def test_relative_gap(self):
        assert relative_gap(predicted=90.0, measured=100.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_gap(1.0, 0.0)

    def test_is_within_neighbors(self):
        cands = [10, 20, 40, 80]
        assert is_within_neighbors(20, 40, cands, hops=1)
        assert not is_within_neighbors(10, 80, cands, hops=2)
        with pytest.raises(ValueError):
            is_within_neighbors(15, 40, cands)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            [{"b": 10, "t": 1.5}, {"b": 160, "t": 2.25}],
            columns=["b", "t"],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.5000" in text and "2.2500" in text

    def test_format_table_requires_columns(self):
        with pytest.raises(ValueError):
            format_table([], columns=[])

    def test_format_figure_converts_to_seconds(self):
        series = {"pred": {10: 2_000_000.0}}
        text = format_figure("Fig X", series)
        assert "[seconds]" in text
        assert "2.0000" in text

    def test_format_figure_microseconds_mode(self):
        series = {"pred": {10: 123.0}}
        text = format_figure("Fig X", series, in_seconds=False)
        assert "[microseconds]" in text
        assert "123" in text

    def test_format_figure_missing_points_tolerated(self):
        series = {"a": {10: 1e6}, "b": {20: 2e6}}
        text = format_figure("Fig", series)
        assert "10" in text and "20" in text

"""Tests for the emulated node CPU and jittered network."""

import numpy as np
import pytest

from repro.core import MEIKO_CS2, Message, TableCostModel
from repro.machine import BlockCache, JitteredNetwork, NodeCPU, touched_blocks
from repro.trace import Work

COSTS = TableCostModel({"op1": {8: 100.0}, "op4": {8: 40.0}, "op2": {8: 60.0}, "op3": {8: 60.0}})


class TestTouchedBlocks:
    def test_op1_touches_own_block(self):
        keys = [k for k, _ in touched_blocks(Work(op="op1", b=8, block=(2, 2), iteration=2))]
        assert keys == [("blk", 2, 2)]

    def test_op2_touches_factor(self):
        keys = [k for k, _ in touched_blocks(Work(op="op2", b=8, block=(2, 5), iteration=2))]
        assert ("factL", 2) in keys

    def test_op3_touches_factor(self):
        keys = [k for k, _ in touched_blocks(Work(op="op3", b=8, block=(5, 2), iteration=2))]
        assert ("factU", 2) in keys

    def test_op4_touches_three_blocks(self):
        touched = touched_blocks(Work(op="op4", b=8, block=(5, 6), iteration=2))
        keys = [k for k, _ in touched]
        assert keys == [("blk", 5, 6), ("col", 5, 2), ("row", 2, 6)]
        assert all(nbytes == 8 * 8 * 8 for _, nbytes in touched)

    def test_custom_op_touches_own_block(self):
        keys = [k for k, _ in touched_blocks(Work(op="jacobi", b=8, block=(1, 0)))]
        assert keys == [("blk", 1, 0)]


class TestNodeCPU:
    def test_warm_cost_without_cache(self):
        cpu = NodeCPU(COSTS, cache=None, noise_sigma=0.0)
        result = cpu.run_phase([Work(op="op1", b=8), Work(op="op4", b=8)])
        assert result.total_us == pytest.approx(140.0)
        assert result.cache_us == 0.0
        assert result.scan_us == 0.0

    def test_cold_cache_charges_misses(self):
        cache = BlockCache(10**6)
        cpu = NodeCPU(COSTS, cache=cache, noise_sigma=0.0, miss_penalty_us=1.0, line_bytes=32)
        w = Work(op="op1", b=8, block=(0, 0))
        first = cpu.run_phase([w])
        second = cpu.run_phase([w])
        assert first.cache_us > 0
        assert second.cache_us == 0.0  # warm now

    def test_uncacheable_footprint_costs_nothing_extra(self):
        """Ops whose operands exceed the cache stream through: the miss
        penalty is scaled away (see cpu.run_phase docstring)."""
        cache = BlockCache(100)  # tiny: op1 footprint 512B > 100B
        cpu = NodeCPU(COSTS, cache=cache, noise_sigma=0.0)
        result = cpu.run_phase([Work(op="op1", b=8, block=(0, 0))])
        assert result.cache_us == 0.0

    def test_scan_overhead_proportional_to_assigned_blocks(self):
        cpu = NodeCPU(COSTS, assigned_blocks=50, scan_us_per_block=2.0, noise_sigma=0.0)
        result = cpu.run_phase([Work(op="op4", b=8)])
        assert result.scan_us == pytest.approx(100.0)
        idle = cpu.run_phase([])
        assert idle.scan_us == 0.0  # no work, no scan

    def test_noise_deterministic_per_seed(self):
        mk = lambda: NodeCPU(
            COSTS, noise_sigma=0.1, rng=np.random.default_rng(5)
        ).run_phase([Work(op="op1", b=8)])
        assert mk().total_us == mk().total_us

    def test_noise_perturbs_but_stays_positive(self):
        cpu = NodeCPU(COSTS, noise_sigma=0.1, rng=np.random.default_rng(1))
        result = cpu.run_phase([Work(op="op1", b=8)])
        assert result.warm_us > 0
        assert result.warm_us != 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeCPU(COSTS, assigned_blocks=-1)
        with pytest.raises(ValueError):
            NodeCPU(COSTS, noise_sigma=-0.1)


class TestJitteredNetwork:
    def msg(self, src=0, dst=1, size=100):
        return Message(src=src, dst=dst, size=size, uid=0)

    def test_deterministic_per_seed(self):
        a = JitteredNetwork(params=MEIKO_CS2, seed=3)
        b = JitteredNetwork(params=MEIKO_CS2, seed=3)
        assert [a.latency_of(self.msg()) for _ in range(5)] == [
            b.latency_of(self.msg()) for _ in range(5)
        ]

    def test_zero_jitter_is_exact(self):
        net = JitteredNetwork(params=MEIKO_CS2, jitter_sigma=0.0, straggler_prob=0.0)
        assert net.latency_of(self.msg()) == MEIKO_CS2.L

    def test_mean_close_to_L(self):
        """Mean-preserving jitter: LogGP's L is the average latency."""
        net = JitteredNetwork(params=MEIKO_CS2, seed=0)
        samples = [net.latency_of(self.msg()) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(MEIKO_CS2.L, rel=0.02)

    def test_latencies_positive(self):
        net = JitteredNetwork(params=MEIKO_CS2, seed=1)
        assert all(net.latency_of(self.msg()) > 0 for _ in range(100))

    def test_local_copy_cost(self):
        net = JitteredNetwork(params=MEIKO_CS2, local_copy_us_per_byte=0.01)
        local = Message(src=2, dst=2, size=1000, uid=0)
        assert net.local_copy_us(local) == pytest.approx(10.0)

    def test_local_copy_rejects_remote(self):
        net = JitteredNetwork(params=MEIKO_CS2)
        with pytest.raises(ValueError):
            net.local_copy_us(self.msg())

    def test_validation(self):
        with pytest.raises(ValueError):
            JitteredNetwork(params=MEIKO_CS2, jitter_sigma=-1.0)
        with pytest.raises(ValueError):
            JitteredNetwork(params=MEIKO_CS2, straggler_prob=1.5)
        with pytest.raises(ValueError):
            JitteredNetwork(params=MEIKO_CS2, straggler_factor=0.5)

"""Tests for Cannon's algorithm (repro.apps.cannon)."""

import numpy as np
import pytest

from repro.apps import CannonConfig, build_cannon_trace, cannon_grid_side, execute_cannon


class TestConfig:
    def test_grid_side(self):
        assert cannon_grid_side(9) == 3
        assert cannon_grid_side(16) == 4

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            cannon_grid_side(8)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CannonConfig(n=10, num_procs=9)

    def test_derived_sizes(self):
        cfg = CannonConfig(n=12, num_procs=9)
        assert cfg.q == 3
        assert cfg.b == 4


class TestTrace:
    def test_step_count_is_skew_plus_q_rounds(self):
        trace = build_cannon_trace(CannonConfig(n=12, num_procs=9))
        assert len(trace) == 1 + 3

    def test_every_round_all_processors_multiply(self):
        trace = build_cannon_trace(CannonConfig(n=12, num_procs=9))
        for step in trace.steps[1:]:
            assert set(step.work) == set(range(9))
            for ops in step.work.values():
                assert len(ops) == 1
                assert ops[0].op == "op4"

    def test_skew_step_has_no_work(self):
        trace = build_cannon_trace(CannonConfig(n=12, num_procs=9))
        assert trace.steps[0].total_ops() == 0
        assert len(trace.steps[0].pattern) == 2 * 9

    def test_last_round_no_rotation(self):
        trace = build_cannon_trace(CannonConfig(n=12, num_procs=9))
        assert len(trace.steps[-1].pattern) == 0
        for step in trace.steps[1:-1]:
            assert len(step.pattern) == 2 * 9

    def test_rotations_are_unit_shifts(self):
        q = 3
        trace = build_cannon_trace(CannonConfig(n=12, num_procs=9))
        step = trace.steps[1]
        for m in step.pattern.remote_messages():
            sr, sc = divmod(m.src, q)
            dr, dc = divmod(m.dst, q)
            left = (dr == sr and dc == (sc - 1) % q)
            up = (dc == sc and dr == (sr - 1) % q)
            assert left or up

    def test_block_bytes(self):
        cfg = CannonConfig(n=12, num_procs=9)
        trace = build_cannon_trace(cfg)
        assert all(
            m.size == cfg.b * cfg.b * 8 for s in trace.steps for m in (s.pattern or ())
        )

    def test_meta(self):
        trace = build_cannon_trace(CannonConfig(n=12, num_procs=4))
        assert trace.meta["app"] == "cannon"
        assert trace.meta["q"] == 2


class TestNumericalExecution:
    @pytest.mark.parametrize("num_procs", [1, 4, 9, 16])
    def test_matches_numpy_matmul(self, num_procs):
        n = 12
        rng = np.random.default_rng(num_procs)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        assert np.allclose(execute_cannon(a, b, num_procs), a @ b)

    def test_identity(self):
        a = np.random.default_rng(0).standard_normal((8, 8))
        assert np.allclose(execute_cannon(a, np.eye(8), 4), a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            execute_cannon(np.zeros((4, 4)), np.zeros((6, 6)), 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            execute_cannon(np.zeros((5, 5)), np.zeros((5, 5)), 4)

"""Differential cross-engine test harness.

Two independent execution engines now produce the paper's evaluation
numbers: the serial single-point path
(:func:`repro.core.predictor.run_ge_point` /
:func:`~repro.core.predictor.summarize_ge_point`) and the parallel sweep
engine (:func:`repro.sweep.run_sweep`), whose results cross process
boundaries (pickle) and optionally a JSON store round-trip.  This suite
pins them to each other **bit for bit** on a grid of small GE
configurations — totals and every breakdown — and re-asserts the
documented engine ordering (``standard <= worstcase``, causal DES ==
standard) on every one of those points.

Any drift between engines (a worker using different parameters, a lossy
serialization, a scheduling-order dependence) fails here before it can
corrupt a paper-scale study.
"""

import pytest

from repro.apps.gauss import GEConfig, build_ge_trace
from repro.core import MEIKO_CS2, CalibratedCostModel, ProgramSimulator, run_ge_point
from repro.experiments import ExperimentStore
from repro.layouts import LAYOUTS
from repro.sweep import SweepPoint, expand_grid, run_sweep

PARAMS = MEIKO_CS2
CM = CalibratedCostModel()

#: the differential grid: every layout, two matrix orders, two seeds
CONFIGS = [
    (120, 24, "diagonal", 0),
    (120, 40, "diagonal", 1),
    (120, 24, "stripped", 0),
    (120, 40, "stripped", 1),
    (96, 24, "column", 0),
    (96, 16, "block2d", 0),
]

GRID = tuple(
    SweepPoint(n=n, b=b, layout=layout, seed=seed, with_measured=False)
    for n, b, layout, seed in CONFIGS
)

SUMMARY_FIELDS = (
    "pred_standard_total",
    "pred_standard_comp",
    "pred_standard_comm",
    "pred_worstcase_total",
    "pred_worstcase_comm",
)


@pytest.fixture(scope="module")
def parallel_result():
    """One parallel (2-worker, chunk-per-point) sweep over the grid."""
    return run_sweep(GRID, PARAMS, CM, workers=2, chunk_size=1)


@pytest.fixture(scope="module")
def serial_rows():
    """The reference: each point straight through run_ge_point."""
    return {
        (n, b, layout, seed): run_ge_point(
            n, b, layout, PARAMS, CM, with_measured=False, seed=seed
        )
        for n, b, layout, seed in CONFIGS
    }


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("idx", range(len(CONFIGS)),
                             ids=[f"n{n}_b{b}_{lay}_s{s}" for n, b, lay, s in CONFIGS])
    def test_totals_and_breakdowns_bit_identical(self, idx, parallel_result, serial_rows):
        n, b, layout, seed = CONFIGS[idx]
        summary = parallel_result.summaries[idx]
        row = serial_rows[(n, b, layout, seed)]
        # exact float equality, not approx: same code must run in both engines
        assert summary.pred_standard_total == row.pred_standard.total_us
        assert summary.pred_standard_comp == row.pred_standard.comp_us
        assert summary.pred_standard_comm == row.pred_standard.comm_us
        assert summary.pred_worstcase_total == row.pred_worstcase.total_us
        assert summary.pred_worstcase_comm == row.pred_worstcase.comm_us

    def test_store_round_trip_stays_bit_identical(self, tmp_path, parallel_result):
        # through the JSON store and back: still exactly the serial values
        store = ExperimentStore(tmp_path, PARAMS, CM)
        stored = run_sweep(GRID, PARAMS, CM, workers=2, store=store)
        reread = run_sweep(GRID, PARAMS, CM, workers=1, store=store)
        assert stored.summaries == parallel_result.summaries
        assert reread.summaries == parallel_result.summaries
        assert reread.stats.cached == len(GRID)

    def test_measured_series_bit_identical(self):
        # one emulator-backed point: the measured breakdown crosses the
        # process boundary too
        grid = (SweepPoint(n=120, b=24, layout="diagonal", with_measured=True),)
        parallel = run_sweep(grid, PARAMS, CM, workers=2)
        row = run_ge_point(120, 24, "diagonal", PARAMS, CM,
                           with_measured=True, seed=0)
        summary = parallel.summaries[0]
        assert summary.measured_total == row.measured.total_us
        assert summary.measured_total_wo_cache == row.measured.total_without_cache_us
        assert summary.measured_comp == row.measured.comp_us
        assert summary.measured_comm == row.measured.comm_us


class TestEngineOrderingOnEveryPoint:
    """standard <= worstcase, and causal DES == standard, per grid point."""

    @pytest.mark.parametrize("idx", range(len(CONFIGS)),
                             ids=[f"n{n}_b{b}_{lay}_s{s}" for n, b, lay, s in CONFIGS])
    def test_standard_bounded_by_worstcase(self, idx, parallel_result):
        summary = parallel_result.summaries[idx]
        assert summary.pred_standard_total <= summary.pred_worstcase_total + 1e-6
        assert summary.pred_standard_comm <= summary.pred_worstcase_comm + 1e-6

    @pytest.mark.parametrize("n,b,layout,seed", CONFIGS,
                             ids=[f"n{n}_b{b}_{lay}_s{s}" for n, b, lay, s in CONFIGS])
    def test_causal_des_agrees_with_standard(self, n, b, layout, seed, parallel_result):
        trace = build_ge_trace(GEConfig(n=n, b=b, layout=LAYOUTS[layout](n // b, PARAMS.P)))
        std = ProgramSimulator(PARAMS, CM, mode="standard", seed=seed).run(trace)
        causal = ProgramSimulator(PARAMS, CM, mode="causal", seed=seed).run(trace)
        assert causal.total_us == pytest.approx(std.total_us, rel=1e-9)
        idx = CONFIGS.index((n, b, layout, seed))
        assert parallel_result.summaries[idx].pred_standard_total == std.total_us

    def test_summary_fields_all_finite_positive(self, parallel_result):
        for summary in parallel_result.summaries:
            for name in SUMMARY_FIELDS:
                value = getattr(summary, name)
                assert value > 0, f"{name} not positive on {summary}"

"""Tests for the optimum search heuristics (repro.core.optimizer)."""

import pytest

from repro.core import (
    exhaustive_search,
    local_descent,
    search_block_size_and_layout,
    ternary_search,
)

CANDIDATES = [10, 12, 15, 20, 24, 30, 40, 48, 60, 64, 80, 96, 120, 160]


def unimodal(b):
    """Smooth bowl with minimum at 48."""
    return (b - 48) ** 2 + 5.0


def sawtooth(b):
    """Bowl plus parity wiggle: local minima away from the global one."""
    return (b - 48) ** 2 + 400.0 * (CANDIDATES.index(b) % 2)


class TestExhaustive:
    def test_finds_global_minimum(self):
        result = exhaustive_search(unimodal, CANDIDATES)
        assert result.best == 48
        assert result.value == 5.0
        assert result.evaluations == len(CANDIDATES)

    def test_history_records_all(self):
        result = exhaustive_search(unimodal, CANDIDATES)
        assert len(result.history) == len(CANDIDATES)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_search(unimodal, [])

    def test_duplicates_collapsed(self):
        result = exhaustive_search(unimodal, [10, 10, 48, 48])
        assert result.evaluations == 2


class TestLocalDescent:
    def test_unimodal_finds_global(self):
        result = local_descent(unimodal, CANDIDATES)
        assert result.best == 48

    def test_start_point_respected(self):
        result = local_descent(unimodal, CANDIDATES, start=160)
        assert result.best == 48

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            local_descent(unimodal, CANDIDATES, start=47)

    def test_cheaper_than_exhaustive(self):
        result = local_descent(unimodal, CANDIDATES, start=60)
        assert result.evaluations < len(CANDIDATES)

    def test_sawtooth_lands_on_local_minimum(self):
        """On a sawtoothed curve descent may stop at a local optimum — the
        paper's 'locally optimal value' notion — but it must be one."""
        result = local_descent(sawtooth, CANDIDATES, start=120)
        idx = CANDIDATES.index(result.best)
        here = sawtooth(result.best)
        if idx > 0:
            assert sawtooth(CANDIDATES[idx - 1]) >= here
        if idx < len(CANDIDATES) - 1:
            assert sawtooth(CANDIDATES[idx + 1]) >= here

    def test_memoisation_no_repeat_evaluations(self):
        calls = []

        def counted(b):
            calls.append(b)
            return unimodal(b)

        local_descent(counted, CANDIDATES)
        assert len(calls) == len(set(calls))


class TestTernary:
    def test_unimodal_finds_global(self):
        result = ternary_search(unimodal, CANDIDATES)
        assert result.best == 48

    def test_logarithmic_evaluations(self):
        result = ternary_search(unimodal, list(range(1, 1025)))
        assert result.best == 48
        assert result.evaluations < 60

    def test_small_candidate_sets(self):
        assert ternary_search(unimodal, [20]).best == 20
        assert ternary_search(unimodal, [20, 48]).best == 48
        assert ternary_search(unimodal, [20, 48, 60]).best == 48


class TestJointSearch:
    def test_layout_and_block_size(self):
        def evaluate(layout, b):
            penalty = 0.0 if layout == "diagonal" else 1000.0
            return unimodal(b) + penalty

        best_layout, best, per_layout = search_block_size_and_layout(
            evaluate, ["stripped", "diagonal"], CANDIDATES
        )
        assert best_layout == "diagonal"
        assert best.best == 48
        assert set(per_layout) == {"stripped", "diagonal"}

    def test_methods_selectable(self):
        def evaluate(layout, b):
            return unimodal(b)

        for method in ("exhaustive", "descent", "ternary"):
            _, best, _ = search_block_size_and_layout(
                evaluate, ["diagonal"], CANDIDATES, method=method
            )
            assert best.best == 48

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            search_block_size_and_layout(lambda l, b: 0.0, ["x"], [1], method="magic")

    def test_no_layouts_rejected(self):
        with pytest.raises(ValueError):
            search_block_size_and_layout(lambda l, b: 0.0, [], [1])

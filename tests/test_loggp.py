"""Tests for the LogGP machine model (repro.core.loggp)."""

import pytest

from repro.core import ETHERNET_CLUSTER, LOW_OVERHEAD_NIC, MEIKO_CS2, LogGPParameters, OpKind

SIMPLE = LogGPParameters(L=10.0, o=2.0, g=5.0, G=0.5, P=4, name="simple")


class TestValidation:
    @pytest.mark.parametrize("field", ["L", "o", "g", "G"])
    def test_negative_parameter_rejected(self, field):
        kwargs = dict(L=1.0, o=1.0, g=1.0, G=0.1, P=2)
        kwargs[field] = -0.5
        with pytest.raises(ValueError):
            LogGPParameters(**kwargs)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            LogGPParameters(L=1, o=1, g=1, G=0.1, P=0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            LogGPParameters(L=float("inf"), o=1, g=1, G=0.1, P=2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SIMPLE.L = 99.0


class TestDurations:
    def test_send_duration_one_byte_is_overhead(self):
        assert SIMPLE.send_duration(1) == 2.0

    def test_send_duration_long_message(self):
        # o + (k-1) G = 2 + 9*0.5
        assert SIMPLE.send_duration(10) == pytest.approx(6.5)

    def test_recv_duration_is_overhead_regardless_of_length(self):
        assert SIMPLE.recv_duration(1) == 2.0
        assert SIMPLE.recv_duration(10_000) == 2.0

    def test_wire_time(self):
        assert SIMPLE.wire_time(1) == pytest.approx(12.0)

    def test_end_to_end(self):
        # o + (k-1)G + L + o
        assert SIMPLE.end_to_end(10) == pytest.approx(6.5 + 10.0 + 2.0)

    @pytest.mark.parametrize("method", ["send_duration", "recv_duration", "wire_time"])
    def test_zero_size_rejected(self, method):
        with pytest.raises(ValueError):
            getattr(SIMPLE, method)(0)


class TestGapRules:
    """The Figure 1 gap rules."""

    def test_send_then_send(self):
        assert SIMPLE.gap_after(OpKind.SEND, OpKind.SEND) == 5.0

    def test_send_then_recv(self):
        assert SIMPLE.gap_after(OpKind.SEND, OpKind.RECV) == 5.0

    def test_recv_then_recv(self):
        assert SIMPLE.gap_after(OpKind.RECV, OpKind.RECV) == 5.0

    def test_recv_then_send_is_max_og_minus_o(self):
        assert SIMPLE.gap_after(OpKind.RECV, OpKind.SEND) == pytest.approx(3.0)

    def test_recv_then_send_with_large_overhead(self):
        params = LogGPParameters(L=10, o=8.0, g=5.0, G=0.5, P=2)
        # max(o, g) - o = 0 when o >= g: the gap elapsed during the receive
        assert params.gap_after(OpKind.RECV, OpKind.SEND) == 0.0

    def test_earliest_start_no_history(self):
        assert SIMPLE.earliest_start(None, 7.0, OpKind.SEND) == 7.0

    def test_earliest_start_applies_gap(self):
        assert SIMPLE.earliest_start(OpKind.SEND, 7.0, OpKind.SEND) == 12.0
        assert SIMPLE.earliest_start(OpKind.RECV, 7.0, OpKind.SEND) == 10.0


class TestPresets:
    def test_meiko_reconstruction(self):
        assert MEIKO_CS2.L == 9.0
        assert MEIKO_CS2.P == 8
        assert MEIKO_CS2.name == "meiko-cs2"

    @pytest.mark.parametrize("preset", [MEIKO_CS2, ETHERNET_CLUSTER, LOW_OVERHEAD_NIC])
    def test_presets_are_valid(self, preset):
        assert preset.send_duration(1) > 0
        assert preset.P >= 1

    def test_with_replaces_fields(self):
        p16 = MEIKO_CS2.with_(P=16)
        assert p16.P == 16
        assert p16.L == MEIKO_CS2.L
        assert MEIKO_CS2.P == 8  # original untouched

    def test_describe_mentions_all_parameters(self):
        text = SIMPLE.describe()
        for token in ("L=10", "o=2", "g=5", "G=0.5", "P=4"):
            assert token in text

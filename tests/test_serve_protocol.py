"""Property tests for the serve wire schema (`repro.serve.protocol`).

The canonicalisation contract the serve cache stands on:

* **Spelling never matters.**  Key order, JSON whitespace, and
  omitted-vs-explicitly-spelled defaults all parse to the same
  :class:`PredictRequest` — hence the same fingerprint, hence the same
  cache entry.
* **Round trip.**  ``from_doc(to_doc(r)) == r`` under any machine
  defaults (``to_doc`` is fully explicit).
* **Presentation stays out of the key.**  ``engine`` changes the
  response projection, never the fingerprint; identity UQ specs collapse
  to ``None`` and share entries with spec-free requests.
* **Drift fails loudly.**  Unknown keys, booleans where integers belong,
  and invalid geometry raise :class:`ProtocolError`.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.loggp import LogGPParameters
from repro.core.predictor import summarize_ge_point
from repro.serve.protocol import (
    ENGINES,
    PredictRequest,
    ProtocolError,
    point_digest,
)

CM = CalibratedCostModel()

#: (n, b) pairs with b | n, spanning several grid shapes
_GEOMETRIES = [(120, 20), (120, 30), (120, 40), (240, 24), (240, 60)]

_LAYOUTS = ["diagonal", "stripped", "block2d", "column"]

positive_floats = st.floats(
    min_value=0.01, max_value=1000.0, allow_nan=False, allow_infinity=False
)


@st.composite
def requests(draw):
    """A fully-explicit, valid v1 request document."""
    n, b = draw(st.sampled_from(_GEOMETRIES))
    return {
        "app": "ge",
        "n": n,
        "b": b,
        "layout": draw(st.sampled_from(_LAYOUTS)),
        "seed": draw(st.integers(min_value=0, max_value=2**31 - 1)),
        "with_measured": draw(st.booleans()),
        "engine": draw(st.sampled_from(ENGINES)),
        "machine": {
            "L": draw(positive_floats),
            "o": draw(positive_floats),
            "g": draw(positive_floats),
            "G": draw(positive_floats),
            "P": draw(st.integers(min_value=2, max_value=32)),
        },
        "uq": None,
    }


#: fields whose schema default equals this value — dropping any subset
#: from a doc that spells them this way must not change the parse
_DEFAULTS = {
    "app": "ge",
    "seed": 0,
    "with_measured": False,
    "engine": "both",
    "uq": None,
}


class TestCanonicalisation:
    @given(doc=requests(), order_seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=50, deadline=None)
    def test_key_order_insensitive(self, doc, order_seed):
        rng = random.Random(order_seed)
        keys = list(doc)
        rng.shuffle(keys)
        shuffled = {k: doc[k] for k in keys}
        machine_keys = list(doc["machine"])
        rng.shuffle(machine_keys)
        shuffled["machine"] = {k: doc["machine"][k] for k in machine_keys}
        a = PredictRequest.from_doc(doc)
        b = PredictRequest.from_doc(shuffled)
        assert a == b
        assert a.fingerprint(CM) == b.fingerprint(CM)

    @given(doc=requests(), indent=st.integers(min_value=0, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_whitespace_insensitive(self, doc, indent):
        compact = json.dumps(doc, separators=(",", ":"))
        airy = json.dumps(doc, indent=indent, separators=(", ", " : "))
        a = PredictRequest.from_doc(json.loads(compact))
        b = PredictRequest.from_doc(json.loads(airy))
        assert a == b
        assert a.canonical_json() == b.canonical_json()

    @given(
        doc=requests(),
        drop=st.sets(st.sampled_from(sorted(_DEFAULTS))),
    )
    @settings(max_examples=50, deadline=None)
    def test_explicit_defaults_equal_omitted(self, doc, drop):
        spelled = dict(doc)
        spelled.update(_DEFAULTS)
        omitted = {k: v for k, v in spelled.items() if k not in drop}
        a = PredictRequest.from_doc(spelled)
        b = PredictRequest.from_doc(omitted)
        assert a == b
        assert a.fingerprint(CM) == b.fingerprint(CM)

    @given(doc=requests())
    @settings(max_examples=50, deadline=None)
    def test_round_trips_through_wire_schema(self, doc):
        req = PredictRequest.from_doc(doc)
        assert PredictRequest.from_doc(req.to_doc()) == req
        # to_doc is fully explicit, so foreign defaults cannot bend it
        other_defaults = LogGPParameters(
            L=99.0, o=9.9, g=9.0, G=0.9, P=3, name="other"
        )
        assert PredictRequest.from_doc(req.to_doc(), other_defaults) == req
        # and the canonical encoding is a fixed point
        assert (
            PredictRequest.from_doc(json.loads(req.canonical_json())) == req
        )

    @given(doc=requests())
    @settings(max_examples=30, deadline=None)
    def test_engine_is_presentation_only(self, doc):
        prints = set()
        for engine in ENGINES:
            doc["engine"] = engine
            prints.add(PredictRequest.from_doc(doc).fingerprint(CM))
        assert len(prints) == 1

    @given(doc=requests(), sigma=st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_identity_uq_collapses_real_uq_forks(self, doc, sigma):
        bare = PredictRequest.from_doc(doc)
        doc["uq"] = {"sigma": 0.0, "op_sigma": 0.0}
        identity = PredictRequest.from_doc(doc)
        assert identity.uq is None
        assert identity == bare
        doc["uq"] = {"sigma": sigma}
        noisy = PredictRequest.from_doc(doc)
        assert noisy.uq is not None
        assert noisy.fingerprint(CM) != bare.fingerprint(CM)


class TestMachineIdentity:
    def test_machine_defaults_fill_omitted_fields(self):
        doc = {"n": 120, "b": 30, "layout": "diagonal", "machine": {"P": 4}}
        req = PredictRequest.from_doc(doc)
        assert req.params.P == 4
        assert req.params.L == MEIKO_CS2.L
        # the resolved label is constant: display names cannot fork keys
        assert req.params.name == "serve"

    def test_name_is_not_a_wire_field(self):
        doc = {
            "n": 120, "b": 30, "layout": "diagonal",
            "machine": {"name": "my-cluster"},
        }
        with pytest.raises(ProtocolError, match="unknown machine keys"):
            PredictRequest.from_doc(doc)

    def test_same_numbers_same_fingerprint_under_any_defaults(self):
        explicit = PredictRequest.from_doc({
            "n": 120, "b": 30, "layout": "diagonal",
            "machine": {
                "L": MEIKO_CS2.L, "o": MEIKO_CS2.o, "g": MEIKO_CS2.g,
                "G": MEIKO_CS2.G, "P": MEIKO_CS2.P,
            },
        })
        implicit = PredictRequest.from_doc(
            {"n": 120, "b": 30, "layout": "diagonal"}
        )
        assert explicit.fingerprint(CM) == implicit.fingerprint(CM)


class TestRejection:
    @pytest.mark.parametrize(
        "doc, match",
        [
            ({"n": 120, "b": 30}, "layout"),
            ({"n": 120, "b": 30, "layout": "spiral"}, "unknown layout"),
            ({"n": 120, "b": 33, "layout": "diagonal"}, "does not divide"),
            ({"n": 120, "b": 30, "layout": "diagonal", "engine": "psychic"},
             "unknown engine"),
            ({"n": 120, "b": 30, "layout": "diagonal", "turbo": 1},
             "unknown request keys"),
            ({"n": True, "b": 30, "layout": "diagonal"}, "must be an integer"),
            ({"n": 120, "b": 30, "layout": "diagonal", "with_measured": 1},
             "must be a boolean"),
            ({"n": 120, "b": 30, "layout": "diagonal",
              "machine": {"L": "fast"}}, "must be a number"),
            ({"n": 120, "b": 30, "layout": "diagonal", "uq": "noisy"},
             "must be an object"),
            ({"n": 120, "b": 30, "layout": "diagonal", "app": "lu"},
             "unknown app"),
        ],
    )
    def test_malformed_documents_raise(self, doc, match):
        with pytest.raises(ProtocolError, match=match):
            PredictRequest.from_doc(doc)

    def test_non_object_request_raises(self):
        with pytest.raises(ProtocolError):
            PredictRequest.from_doc(None)


class TestPointDigest:
    def test_digest_is_key_order_insensitive_and_value_sensitive(self):
        row = summarize_ge_point(
            120, 30, "diagonal", MEIKO_CS2, CM, with_measured=False
        )
        reordered = dict(reversed(list(row.items())))
        assert point_digest(row) == point_digest(reordered)
        bent = dict(row)
        bent["pred_standard_total"] += 1e-9
        assert point_digest(bent) != point_digest(row)

"""CLI-level tests for the observability features.

Covers the ``observe`` verb, the ``--json``/``--trace-out`` flags on the
existing commands, and the run manifest every invocation writes.
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.obs import RunRecord, bucket_sums, events_from_chrome_trace


def _runs_dir():
    return Path(os.environ["REPRO_RUNS_DIR"])


def _manifests():
    d = _runs_dir()
    return sorted(d.glob("*.json")) if d.exists() else []


class TestObserve:
    def test_prints_profile_and_summary(self, capsys):
        assert main(["observe", "-n", "120", "-b", "24", "-P", "4"]) == 0
        out = capsys.readouterr().out
        assert "lost-cycles profile" in out
        assert "events:" in out

    def test_short_P_flag_sets_procs(self):
        args = build_parser().parse_args(["observe", "-P", "4"])
        assert args.procs == 4
        assert args.n == 960 and args.b == 60 and args.layout == "block2d"

    def test_trace_out_matches_profile_exactly(self, tmp_path, capsys):
        from repro.apps.gauss import GEConfig, build_ge_trace
        from repro.core import MEIKO_CS2, CalibratedCostModel
        from repro.layouts import LAYOUTS
        from repro.machine import profile_program

        trace_path = tmp_path / "t.json"
        assert main([
            "observe", "-n", "120", "-b", "24", "-P", "4",
            "--layout", "block2d", "--trace-out", str(trace_path),
        ]) == 0
        events = events_from_chrome_trace(json.loads(trace_path.read_text()))

        layout = LAYOUTS["block2d"](5, 4)
        ge = build_ge_trace(GEConfig(n=120, b=24, layout=layout))
        profile = profile_program(ge, MEIKO_CS2, CalibratedCostModel())
        sums, _ = bucket_sums(events, 4, makespan=profile.makespan_us)
        for p, buckets in sums.items():
            for name, value in buckets.items():
                assert value == getattr(profile.processors[p], name)

    def test_json_output(self, capsys):
        assert main([
            "observe", "-n", "120", "-b", "24", "-P", "4", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["makespan_us"] > 0
        assert set(doc["processors"]) == {"0", "1", "2", "3"}
        assert doc["event_count"] > 0
        assert doc["metrics"]["counters"]["sim.program_runs"] == 1

    def test_event_dumps(self, tmp_path, capsys):
        jsonl = tmp_path / "e.jsonl"
        csv_path = tmp_path / "e.csv"
        assert main([
            "observe", "-n", "120", "-b", "24", "-P", "4",
            "--events-out", str(jsonl), "--csv-out", str(csv_path),
        ]) == 0
        assert len(jsonl.read_text().splitlines()) > 0
        assert csv_path.read_text().startswith("name,kind,ts,dur,proc,track")

    def test_indivisible_block_is_an_error(self, capsys):
        assert main(["observe", "-n", "100", "-b", "7", "-P", "4"]) == 2
        assert "error" in capsys.readouterr().err


class TestJsonFlags:
    def test_predict_json(self, capsys):
        assert main([
            "predict", "-n", "120", "-b", "24", "--no-measured", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["series_us"]["simulated_standard"] > 0
        assert doc["params"]["P"] == 8

    def test_sweep_json(self, capsys):
        assert main([
            "sweep", "-n", "120", "--blocks", "12", "24",
            "--layout", "diagonal", "--no-measured", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {r["b"] for r in doc["rows"]} == {12, 24}
        assert doc["best_block"]["diagonal"] in (12, 24)

    def test_profile_json(self, capsys):
        assert main([
            "profile", "-n", "120", "-b", "24", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        totals = [sum(b.values()) for b in doc["processors"].values()]
        for t in totals:
            assert t == pytest.approx(doc["makespan_us"], abs=1e-9)

    def test_predict_trace_out(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main([
            "predict", "-n", "120", "-b", "24", "--no-measured",
            "--trace-out", str(path),
        ]) == 0
        doc = json.loads(path.read_text())
        assert events_from_chrome_trace(doc)

    def test_profile_trace_out(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main([
            "profile", "-n", "120", "-b", "24", "--trace-out", str(path),
        ]) == 0
        assert events_from_chrome_trace(json.loads(path.read_text()))


class TestManifests:
    def test_every_command_writes_a_manifest(self, capsys, tmp_path):
        commands = [
            ["timeline", "--pattern", "sample"],
            ["predict", "-n", "120", "-b", "24", "--no-measured"],
            ["ops", "-b", "10", "20"],
            ["trace", "-n", "120", "-b", "24", "-o", str(tmp_path / "ge.json")],
            ["profile", "-n", "120", "-b", "24"],
            ["observe", "-n", "120", "-b", "24", "-P", "4"],
        ]
        for argv in commands:
            before = set(_manifests())
            assert main(argv) == 0, argv
            new = set(_manifests()) - before
            assert len(new) == 1, f"no manifest for {argv}"
            rec = RunRecord.load(new.pop())
            assert rec.command == argv[0]
            assert rec.status == "ok"
            assert rec.argv == argv
            assert rec.wall_s > 0

    def test_manifest_records_workload_and_makespan(self, capsys):
        assert main(["observe", "-n", "120", "-b", "24", "-P", "4"]) == 0
        rec = RunRecord.load(_manifests()[-1])
        assert rec.workload == {"n": 120, "b": 24, "layout": "block2d"}
        assert rec.makespan_us > 0
        assert rec.event_count > 0
        assert rec.events_per_sec > 0
        assert rec.params["P"] == 4

    def test_manifest_out_overrides_path(self, capsys, tmp_path):
        path = tmp_path / "here.json"
        assert main([
            "predict", "-n", "120", "-b", "24", "--no-measured",
            "--manifest-out", str(path),
        ]) == 0
        assert RunRecord.load(path).command == "predict"
        assert not _manifests()

    def test_no_manifest_skips_writing(self, capsys):
        assert main([
            "predict", "-n", "120", "-b", "24", "--no-measured", "--no-manifest",
        ]) == 0
        assert not _manifests()

    def test_failed_run_still_writes_manifest_with_error_status(self, capsys):
        assert main(["predict", "-n", "100", "-b", "7", "--no-measured"]) == 2
        rec = RunRecord.load(_manifests()[-1])
        assert rec.status == "error"
        assert "does not divide" in rec.extra["error"]

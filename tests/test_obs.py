"""Tests for the observability layer: tracer, metrics, exporters, manifests."""

import csv
import json

import pytest

from repro.core import MEIKO_CS2, simulate_standard
from repro.apps import sample_pattern
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    RunRecord,
    TraceEvent,
    Tracer,
    bucket_sums,
    default_manifest_path,
    events_from_chrome_trace,
    get_tracer,
    is_enabled,
    loggp_dict,
    set_tracer,
    to_chrome_trace,
    tracing,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
)


class TestTracerApi:
    def test_slice_records_interval(self):
        tr = Tracer()
        tr.slice("compute", proc=2, ts=10.0, dur=5.0, step=3)
        (e,) = tr.events
        assert (e.name, e.kind, e.proc, e.ts, e.dur) == ("compute", "slice", 2, 10.0, 5.0)
        assert e.attrs == {"step": 3}
        assert e.end == 15.0

    def test_instant_records_point(self):
        tr = Tracer()
        tr.instant("tick", ts=4.0, proc=1)
        (e,) = tr.events
        assert e.kind == "instant" and e.dur == 0.0

    def test_in_track_routes_and_restores(self):
        tr = Tracer()
        with tr.in_track("emulator"):
            tr.slice("compute", proc=0, ts=0.0, dur=1.0)
        tr.slice("compute", proc=0, ts=1.0, dur=1.0)
        assert [e.track for e in tr.events] == ["emulator", "sim"]

    def test_span_lands_on_wall_track(self):
        tr = Tracer()
        with tr.span("setup"):
            pass
        (e,) = tr.events
        assert e.track == "wall" and e.dur >= 0.0

    def test_metrics_shortcuts(self):
        tr = Tracer()
        tr.count("runs")
        tr.count("runs", 2)
        tr.observe("latency", 5.0)
        tr.gauge("procs", 8)
        snap = tr.metrics.snapshot()
        assert snap["counters"]["runs"] == 3
        assert snap["histograms"]["latency"]["count"] == 1
        assert snap["gauges"]["procs"] == 8

    def test_emit_comm_step_from_simulator(self):
        result = simulate_standard(MEIKO_CS2, sample_pattern(1160))
        tr = Tracer()
        tr.emit_comm_step(result.timeline, result.ctimes, algo="standard")
        names = {e.name for e in tr.events}
        assert "comm" in names and "send" in names and "recv" in names
        # every op slice lies inside its processor's comm phase
        comm = {e.proc: e for e in tr.events if e.name == "comm"}
        for e in tr.events:
            if e.name in ("send", "recv"):
                phase = comm[e.proc]
                assert phase.ts <= e.ts and e.end <= phase.end + 1e-9


class TestAmbientTracer:
    def test_default_is_disabled(self):
        assert get_tracer() is NULL_TRACER
        assert not is_enabled()

    def test_tracing_installs_and_restores(self):
        tr = Tracer()
        with tracing(tr) as got:
            assert got is tr and get_tracer() is tr and is_enabled()
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_resets(self):
        set_tracer(Tracer())
        try:
            assert is_enabled()
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        nt = NullTracer()
        nt.slice("x", proc=0, ts=0, dur=1)
        nt.instant("x", ts=0)
        nt.count("x")
        nt.observe("x", 1.0)
        nt.gauge("x", 1.0)
        with nt.span("x"):
            pass
        with nt.in_track("t"):
            pass
        nt.emit_comm_step(None, {}, algo="none")
        assert nt.events == [] and len(nt.metrics) == 0


class TestMetrics:
    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_streams(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3 and snap["min"] == 1.0 and snap["max"] == 6.0
        assert snap["mean"] == pytest.approx(3.0)

    def test_registry_reuses_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert len(reg) == 1


def _some_events():
    return [
        TraceEvent(name="compute", kind="slice", ts=0.0, dur=3.0, proc=0),
        TraceEvent(name="comm", kind="slice", ts=3.0, dur=4.0, proc=0),
        TraceEvent(name="send", kind="slice", ts=3.0, dur=1.0, proc=0,
                   attrs={"peer": 1, "bytes": 8}),
        TraceEvent(name="done", kind="instant", ts=7.0, proc=0),
    ]


class TestExporters:
    def test_jsonl_round_trips_fields(self, tmp_path):
        path = tmp_path / "e.jsonl"
        write_events_jsonl(_some_events(), path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 4
        assert rows[2]["attrs"] == {"peer": 1, "bytes": 8}
        assert rows[0]["ts"] == 0.0 and rows[1]["dur"] == 4.0

    def test_csv_has_header_and_rows(self, tmp_path):
        path = tmp_path / "e.csv"
        write_events_csv(_some_events(), path)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["name", "kind", "ts", "dur", "proc", "track", "attrs"]
        assert len(rows) == 5

    def test_chrome_trace_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "t.json"
        tr = Tracer()
        tr.count("x")
        events = _some_events()
        write_chrome_trace(events, path, metrics=tr.metrics)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["metrics"]["counters"]["x"] == 1
        back = events_from_chrome_trace(doc)
        orig_sums, orig_mk = bucket_sums(events, num_procs=1)
        back_sums, back_mk = bucket_sums(back, num_procs=1)
        assert back_sums == orig_sums and back_mk == orig_mk

    def test_chrome_trace_synthesises_wait(self):
        doc = to_chrome_trace(_some_events())
        waits = [e for e in doc["traceEvents"] if e.get("name") == "wait"]
        # comm covers [3, 7), the send covers [3, 4) -> wait [4, 7)
        assert any(e["ph"] == "B" and e["ts"] == pytest.approx(4.0) for e in waits)

    def test_unmatched_end_is_rejected(self):
        doc = {"traceEvents": [
            {"ph": "E", "ts": 1.0, "pid": 0, "tid": 0, "name": "x"},
        ]}
        with pytest.raises(ValueError, match="unmatched"):
            events_from_chrome_trace(doc)

    def test_unclosed_begin_is_rejected(self):
        doc = {"traceEvents": [
            {"ph": "B", "ts": 1.0, "pid": 0, "tid": 0, "name": "x"},
        ]}
        with pytest.raises(ValueError, match="unclosed"):
            events_from_chrome_trace(doc)


class TestRunRecord:
    def test_begin_note_finish_write_load(self, tmp_path):
        tr = Tracer()
        tr.slice("compute", proc=0, ts=0.0, dur=1.0)
        tr.count("runs")
        rec = RunRecord.begin("predict", ["predict", "-n", "120"])
        rec.note(
            params=loggp_dict(MEIKO_CS2), engine="standard",
            workload={"n": 120, "b": 24}, makespan_us=123.5, custom="x",
        )
        rec.finish(tracer=tr)
        path = rec.write(tmp_path / "r.json")
        back = RunRecord.load(path)
        assert back.command == "predict" and back.status == "ok"
        assert back.params["P"] == MEIKO_CS2.P
        assert back.makespan_us == 123.5
        assert back.event_count == 1
        assert back.extra["custom"] == "x"
        assert back.wall_s > 0 and back.events_per_sec > 0
        assert back.metrics["counters"]["runs"] == 1

    def test_default_path_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        path = default_manifest_path("sweep")
        assert path.parent == tmp_path / "runs"
        assert path.name.startswith("sweep-")

    def test_write_creates_directories(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "deep" / "runs"))
        rec = RunRecord.begin("ops")
        out = rec.finish().write()
        assert out.exists()
        assert json.loads(out.read_text())["schema"] == "repro.run-record/v1"


class TestInstrumentedEngines:
    def test_des_engine_counts_events(self):
        from repro.des import Environment

        tr = Tracer()
        with tracing(tr):
            env = Environment()

            def proc(env):
                yield env.timeout(1.0)
                yield env.timeout(2.0)

            env.process(proc(env))
            env.run()
        assert tr.metrics.counter("des.events").value > 0

    def test_program_simulator_emits_per_mode_track(self):
        from repro.apps.gauss import GEConfig, build_ge_trace
        from repro.core import CalibratedCostModel
        from repro.core.program_sim import ProgramSimulator
        from repro.layouts import LAYOUTS

        trace = build_ge_trace(
            GEConfig(n=120, b=24, layout=LAYOUTS["diagonal"](5, 4))
        )
        tr = Tracer()
        with tracing(tr):
            ProgramSimulator(MEIKO_CS2, CalibratedCostModel(), mode="worstcase").run(trace)
        tracks = {e.track for e in tr.events}
        assert tracks == {"sim:worstcase"}
        assert {"compute", "comm", "send", "recv"} <= {e.name for e in tr.events}

    def test_emulator_emits_on_emulator_track(self):
        from repro.apps.gauss import GEConfig, build_ge_trace
        from repro.core import CalibratedCostModel
        from repro.layouts import LAYOUTS
        from repro.machine import MachineEmulator

        trace = build_ge_trace(
            GEConfig(n=120, b=24, layout=LAYOUTS["diagonal"](5, 4))
        )
        tr = Tracer()
        with tracing(tr):
            MachineEmulator(MEIKO_CS2, CalibratedCostModel()).run(trace)
        assert {e.track for e in tr.events} == {"emulator"}
        assert tr.metrics.counter("emulator.runs").value == 1

    def test_disabled_tracer_means_no_events(self):
        from repro.apps.gauss import GEConfig, build_ge_trace
        from repro.core import CalibratedCostModel
        from repro.core.program_sim import ProgramSimulator
        from repro.layouts import LAYOUTS

        trace = build_ge_trace(
            GEConfig(n=120, b=24, layout=LAYOUTS["diagonal"](5, 4))
        )
        assert not is_enabled()
        report = ProgramSimulator(MEIKO_CS2, CalibratedCostModel()).run(trace)
        assert report.total_us > 0
        assert NULL_TRACER.events == []

"""Tests for sensitivity analysis, SVG export and trace classification."""

import pytest

from repro.analysis import (
    dominant_parameter,
    parameter_elasticities,
    save_timeline_svg,
    timeline_to_svg,
)
from repro.apps import GEConfig, build_ge_trace, sample_pattern
from repro.core import (
    MEIKO_CS2,
    CalibratedCostModel,
    CommPattern,
    ProgramSimulator,
    simulate_standard,
)
from repro.layouts import DiagonalLayout
from repro.trace import ProgramTrace, Step, Work, classify_trace


class TestSensitivity:
    def test_linear_in_L_for_single_message(self):
        """One message's completion is o + L + o: elasticity of L is
        L / total exactly."""
        pat = CommPattern(2, edges=[(0, 1, 1)])
        predict = lambda p: simulate_standard(p, pat).completion_time
        res = parameter_elasticities(predict, MEIKO_CS2)
        expected = MEIKO_CS2.L / MEIKO_CS2.end_to_end(1)
        assert res.elasticity["L"] == pytest.approx(expected, rel=1e-6)
        assert res.elasticity["g"] == pytest.approx(0.0, abs=1e-9)

    def test_bandwidth_dominates_midsize_blocks(self):
        """GE communication in the mid-block regime is bandwidth-bound: G
        has the largest elasticity; at the smallest blocks the per-message
        gap g competes (many small messages), but latency L never wins."""
        cm = CalibratedCostModel()
        trace = build_ge_trace(GEConfig(240, 24, DiagonalLayout(10, 8)))
        predict = lambda p: ProgramSimulator(p, cm).run(trace).comm_us
        assert dominant_parameter(predict, MEIKO_CS2) == "G"

        tiny = build_ge_trace(GEConfig(240, 10, DiagonalLayout(24, 8)))
        predict_tiny = lambda p: ProgramSimulator(p, cm).run(tiny).comm_us
        res = parameter_elasticities(predict_tiny, MEIKO_CS2)
        assert res.dominant() in ("G", "g")
        assert res.elasticity["L"] < 0.05

    def test_elasticities_nonnegative_for_ge(self):
        cm = CalibratedCostModel()
        trace = build_ge_trace(GEConfig(240, 24, DiagonalLayout(10, 8)))
        predict = lambda p: ProgramSimulator(p, cm).run(trace).total_us
        res = parameter_elasticities(predict, MEIKO_CS2)
        assert all(v >= -1e-6 for v in res.elasticity.values())

    def test_zero_parameter_gets_zero_elasticity(self):
        pat = CommPattern(2, edges=[(0, 1, 100)])
        params = MEIKO_CS2.with_(G=0.0)
        predict = lambda p: simulate_standard(p, pat).completion_time
        res = parameter_elasticities(predict, params)
        assert res.elasticity["G"] == 0.0

    def test_validation(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        predict = lambda p: simulate_standard(p, pat).completion_time
        with pytest.raises(ValueError):
            parameter_elasticities(predict, MEIKO_CS2, rel_step=0.0)
        with pytest.raises(ValueError):
            parameter_elasticities(predict, MEIKO_CS2, parameters=["P"])
        with pytest.raises(ValueError):
            parameter_elasticities(lambda p: 0.0, MEIKO_CS2)

    def test_describe(self):
        pat = CommPattern(2, edges=[(0, 1, 1)])
        res = parameter_elasticities(
            lambda p: simulate_standard(p, pat).completion_time, MEIKO_CS2
        )
        assert "elasticities" in res.describe()


class TestSvgExport:
    @pytest.fixture(scope="class")
    def timeline(self):
        return simulate_standard(MEIKO_CS2, sample_pattern()).timeline

    def test_valid_svg_document(self, timeline):
        svg = timeline_to_svg(timeline, title="Figure 4")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "Figure 4" in svg

    def test_one_rect_per_operation(self, timeline):
        svg = timeline_to_svg(timeline)
        # operation bars carry <title> tooltips; background rect does not
        assert svg.count("<title>") == len(timeline.events)

    def test_lane_labels(self, timeline):
        svg = timeline_to_svg(timeline)
        for p in timeline.participants():
            assert f">P{p}</text>" in svg

    def test_parses_as_xml(self, timeline):
        import xml.etree.ElementTree as ET

        ET.fromstring(timeline_to_svg(timeline))

    def test_save(self, timeline, tmp_path):
        path = tmp_path / "fig4.svg"
        save_timeline_svg(timeline, path, title="t")
        assert path.read_text().startswith("<svg")

    def test_width_validated(self, timeline):
        with pytest.raises(ValueError):
            timeline_to_svg(timeline, width=50)


class TestClassification:
    def test_ge_trace_in_class(self):
        trace = build_ge_trace(GEConfig(96, 24, DiagonalLayout(4, 4)))
        report = classify_trace(trace)
        assert report.in_class
        assert report.warnings() == []
        assert "inside" in report.describe()

    def test_variable_blocks_flagged(self):
        trace = ProgramTrace(num_procs=2)
        trace.add_step(Step(work={0: [Work(op="op1", b=8), Work(op="op1", b=16)]}))
        report = classify_trace(trace)
        assert not report.in_class
        warned = report.warnings()
        assert len(warned) == 1
        assert warned[0].condition == "equal-sized blocks"

    def test_huge_op_set_flagged(self):
        trace = ProgramTrace(num_procs=1)
        trace.add_step(
            Step(work={0: [Work(op=f"op_{i}", b=8) for i in range(20)]})
        )
        report = classify_trace(trace, max_ops=16)
        assert not report.in_class

    def test_empty_trace_in_class(self):
        assert classify_trace(ProgramTrace(num_procs=1)).in_class

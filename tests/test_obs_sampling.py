"""The ring-buffer tracer: golden exports, filters, deterministic sampling.

Three properties of the PR-6 tracer rewrite are pinned here:

1. **Bit-exact deferred encoding.**  An unfiltered run exported to
   Chrome-trace/JSONL/CSV is byte-identical to ``tests/data/obs_golden/``,
   which was generated with the pre-rewrite eager tracer — deferred
   materialisation must be observationally invisible.
2. **Filters mean zero buffer writes.**  A category that is filtered out
   never reaches the ring buffer, which the per-category counters (and
   the raw buffer count) make assertable.
3. **Sampling is content-keyed.**  Retention is a pure function of event
   content and the config seed, so a 1-worker and a 2-worker sweep of
   the same grid retain the *identical* event sequence.
"""

import hashlib
from pathlib import Path

import pytest

from repro.apps.gauss import GEConfig, build_ge_trace
from repro.core import MEIKO_CS2, CalibratedCostModel
from repro.core.collectives import binomial_broadcast_pattern, simulate_tree_broadcast
from repro.core.program_sim import ProgramSimulator
from repro.layouts import LAYOUTS
from repro.machine import MachineEmulator
from repro.obs import (
    CATEGORIES,
    MetricsRegistry,
    TraceConfig,
    Tracer,
    tracing,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
)
from repro.obs.ringbuf import CHUNK_SLOTS, RingBuffer
from repro.sweep.points import expand_grid
from repro.sweep.runner import run_sweep

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "obs_golden"

#: the golden workload — mirror any change in data/regen_obs_golden.py
N, B, LAYOUT, P = 120, 24, "block2d", 4


def _golden_run() -> Tracer:
    trace = build_ge_trace(GEConfig(n=N, b=B, layout=LAYOUTS[LAYOUT](N // B, P)))
    tracer = Tracer()
    with tracing(tracer):
        ProgramSimulator(MEIKO_CS2, CalibratedCostModel(), mode="standard").run(trace)
        ProgramSimulator(MEIKO_CS2, CalibratedCostModel(), mode="causal").run(trace)
        MachineEmulator(MEIKO_CS2, CalibratedCostModel()).run(trace)
        simulate_tree_broadcast(MEIKO_CS2, binomial_broadcast_pattern(P, size=1160))
    return tracer


def _ge_events(config=None):
    """A small traced simulator run; returns the tracer."""
    trace = build_ge_trace(GEConfig(n=96, b=24, layout=LAYOUTS["block2d"](4, 4)))
    tracer = Tracer(config=config)
    with tracing(tracer):
        ProgramSimulator(MEIKO_CS2, CalibratedCostModel(), mode="standard").run(trace)
    return tracer


def _keys(events):
    return [(e.name, e.kind, e.ts, e.dur, e.proc, e.track) for e in events]


class TestGoldenExports:
    """Deferred encoding is byte-identical to the pre-rewrite tracer."""

    @pytest.fixture(scope="class")
    def tracer(self):
        return _golden_run()

    @pytest.mark.parametrize(
        "golden, writer",
        [
            ("chrome.json", write_chrome_trace),
            ("events.jsonl", write_events_jsonl),
            ("events.csv", write_events_csv),
        ],
    )
    def test_export_bytes_match_golden(self, tracer, tmp_path, golden, writer):
        out = tmp_path / golden
        writer(tracer.events, out)
        expected = (GOLDEN_DIR / golden).read_bytes()
        got = out.read_bytes()
        assert hashlib.sha256(got).hexdigest() == hashlib.sha256(expected).hexdigest()

    def test_materialisation_is_idempotent(self, tracer):
        first = _keys(tracer.events)
        assert _keys(tracer.events) == first


class TestCategoryFilters:
    def test_filtered_categories_emit_zero_buffer_writes(self):
        tracer = _ge_events(TraceConfig.parse(categories="comm,send,recv"))
        # the hoisted wants("compute") check skips the buffer entirely
        counts = tracer.category_counts()
        assert "compute" not in counts
        assert counts["comm"] > 0 and counts["send"] > 0 and counts["recv"] > 0
        # every buffer record materialises into retained events only
        assert all(e.name != "compute" for e in tracer.events)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["obs.events.comm"] == counts["comm"]
        assert "obs.events.compute" not in counters

    def test_filter_all_comm_keeps_compute_only(self):
        tracer = _ge_events(TraceConfig.parse(categories="compute"))
        counts = tracer.category_counts()
        assert set(counts) == {"compute"}
        # the filtered comm step tallies what it did not record
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["obs.dropped.send"] > 0
        assert counters["obs.dropped.recv"] > 0
        assert counters["obs.dropped.comm"] > 0

    def test_sim_ops_metric_is_retention_independent(self):
        full = _ge_events()
        filtered = _ge_events(TraceConfig.parse(categories="compute"))
        key = "sim.ops.standard"
        assert (
            filtered.metrics.snapshot()["counters"][key]
            == full.metrics.snapshot()["counters"][key]
        )

    def test_wants_reflects_config(self):
        tracer = Tracer(config=TraceConfig.parse(categories="send,recv"))
        assert tracer.wants("send") and tracer.wants("recv")
        assert not tracer.wants("compute") and not tracer.wants("wall")


class TestDeterministicSampling:
    def test_sampled_stream_is_subset_and_accounted(self):
        full = _ge_events()
        sampled = _ge_events(TraceConfig.parse(sample="send=4,recv=4"))
        full_keys = set(_keys(full.events))
        sampled_keys = _keys(sampled.events)
        assert set(sampled_keys) <= full_keys
        counters = sampled.metrics.snapshot()["counters"]
        counts = sampled.category_counts()
        for cat in ("send", "recv"):
            retained = counts.get(cat, 0)
            rejected = counters.get(f"obs.sampled.{cat}", 0)
            total = full.category_counts()[cat]
            assert retained + rejected == total
            assert 0 < retained < total

    def test_same_seed_same_retention(self):
        cfg = TraceConfig.parse(sample="send=4,recv=4", seed=3)
        assert _keys(_ge_events(cfg).events) == _keys(_ge_events(cfg).events)

    def test_different_seed_different_retention(self):
        a = _ge_events(TraceConfig.parse(sample="send=4,recv=4", seed=0))
        b = _ge_events(TraceConfig.parse(sample="send=4,recv=4", seed=99))
        assert _keys(a.events) != _keys(b.events)

    @pytest.mark.parametrize("mp_context", [None])
    def test_one_and_two_workers_retain_identical_events(self, tmp_path, mp_context):
        """ISSUE 6: same seed => identical retained sets across worker counts.

        Wall spans are excluded by the category filter (worker wall clocks
        differ by construction); everything simulated must match exactly.
        """
        points = expand_grid(96, [12, 24, 48], ["block2d"], with_measured=False)
        cfg = TraceConfig.parse(
            categories="compute,comm,send,recv", sample="send=4,recv=4", seed=7
        )

        def run(workers):
            tracer = Tracer(config=cfg)
            with tracing(tracer):
                result = run_sweep(
                    points, MEIKO_CS2, CalibratedCostModel(),
                    workers=workers, mp_context=mp_context,
                )
            return result, tracer

        r1, t1 = run(1)
        r2, t2 = run(2)
        assert r1.digest() == r2.digest()
        assert _keys(t1.events) == _keys(t2.events)
        assert t1.category_counts() == t2.category_counts()
        c1 = t1.metrics.snapshot()["counters"]
        c2 = t2.metrics.snapshot()["counters"]
        sampled = lambda c: {k: v for k, v in c.items() if k.startswith("obs.sampled.")}
        assert sampled(c1) == sampled(c2)


class TestTraceConfig:
    def test_round_trip(self):
        cfg = TraceConfig.parse(
            categories="comm,send,recv", sample="send=16,recv=8", seed=5
        )
        assert TraceConfig.from_dict(cfg.to_dict()) == cfg

    def test_default_is_default(self):
        assert TraceConfig().is_default()
        assert TraceConfig.parse().is_default()
        assert not TraceConfig.parse(sample="16").is_default()

    def test_alias_kernel_step_maps_to_compute(self):
        cfg = TraceConfig.parse(categories="kernel_step")
        assert cfg.enabled("compute")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace category"):
            TraceConfig.parse(categories="bogus")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            TraceConfig.parse(sample="send=0")
        with pytest.raises(ValueError, match="integer"):
            TraceConfig.parse(sample="send=fast")

    def test_global_rate_applies_everywhere(self):
        cfg = TraceConfig.parse(sample="16")
        assert all(cfg.rate_of(cat) == 16 for cat in CATEGORIES)


class TestRingBuffer:
    def test_append_iterate_across_chunks(self):
        buf = RingBuffer()
        n = CHUNK_SLOTS + 17
        for i in range(n):
            buf.append((i,))
        assert len(buf) == n
        assert [r[0] for r in buf] == list(range(n))

    def test_iter_from_resumes(self):
        buf = RingBuffer()
        for i in range(CHUNK_SLOTS + 5):
            buf.append((i,))
        start = CHUNK_SLOTS - 2
        assert [r[0] for r in buf.iter_from(start)] == list(
            range(start, CHUNK_SLOTS + 5)
        )
        assert list(buf.iter_from(len(buf))) == []


class TestMetricsMerge:
    def test_merge_folds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.gauge("g").set(7)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        b.histogram("h").observe(3.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7
        h = snap["histograms"]["h"]
        assert h["count"] == 3 and h["min"] == 1.0 and h["max"] == 5.0
        assert h["sum"] == pytest.approx(9.0)

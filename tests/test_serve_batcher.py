"""Batcher unit tests: window/size dispatch, shutdown, and fault paths.

The server suites exercise the batcher end to end through HTTP; this
file pins its contract in isolation — in particular the timeout paths
(window expiry with a partial batch, ``batch_max`` firing before the
window closes, STOP arriving mid-window) and the exception-safety
guarantee that a crashed executor fails every pending future instead of
hanging clients.
"""

import threading
import time

import pytest

from repro.serve.batcher import Batcher, PendingRequest


class Recorder:
    """Collects dispatched batches and releases a latch per dispatch."""

    def __init__(self, resolve=True, raise_exc=None):
        self.batches = []
        self.dispatched = threading.Event()
        self._resolve = resolve
        self._raise = raise_exc

    def __call__(self, batch):
        self.batches.append(list(batch))
        self.dispatched.set()
        if self._raise is not None:
            raise self._raise
        if self._resolve:
            for pending in batch:
                pending.future.set_result(pending.key)


def make_pending(key):
    return PendingRequest(key=key, request={"key": key})


@pytest.fixture
def closing():
    batchers = []
    yield batchers.append
    for b in batchers:
        b.close()


class TestValidation:
    def test_rejects_negative_window(self):
        with pytest.raises(ValueError, match="window_s must be >= 0"):
            Batcher(lambda batch: None, window_s=-0.1)

    def test_rejects_nonpositive_batch_max(self):
        with pytest.raises(ValueError, match="batch_max must be >= 1"):
            Batcher(lambda batch: None, batch_max=0)

    def test_pending_request_records_submission_time(self):
        before = time.perf_counter()
        pending = make_pending("a")
        assert before <= pending.submitted_s <= time.perf_counter()


class TestDispatchPaths:
    def test_batch_max_fires_before_the_window_closes(self, closing):
        """A full batch must not wait out a long window."""
        recorder = Recorder()
        batcher = Batcher(recorder, window_s=30.0, batch_max=3)
        closing(batcher)
        pendings = [make_pending(k) for k in ("a", "b", "c")]
        t0 = time.perf_counter()
        for p in pendings:
            batcher.submit(p)
        results = [p.future.result(timeout=5.0) for p in pendings]
        assert time.perf_counter() - t0 < 5.0  # nowhere near the 30s window
        assert results == ["a", "b", "c"]
        assert [len(b) for b in recorder.batches] == [3]

    def test_window_expiry_dispatches_a_partial_batch(self, closing):
        recorder = Recorder()
        batcher = Batcher(recorder, window_s=0.05, batch_max=64)
        closing(batcher)
        pending = make_pending("lone")
        batcher.submit(pending)
        assert pending.future.result(timeout=5.0) == "lone"
        assert [len(b) for b in recorder.batches] == [1]

    def test_zero_window_means_singleton_batches(self, closing):
        recorder = Recorder()
        batcher = Batcher(recorder, window_s=0.0, batch_max=64)
        closing(batcher)
        first = make_pending("a")
        batcher.submit(first)
        assert first.future.result(timeout=5.0) == "a"
        second = make_pending("b")
        batcher.submit(second)
        assert second.future.result(timeout=5.0) == "b"
        assert [len(b) for b in recorder.batches] == [1, 1]

    def test_misses_inside_the_window_ride_one_batch(self, closing):
        release = threading.Event()

        def gated(batch):
            release.wait(timeout=5.0)
            for pending in batch:
                pending.future.set_result(pending.key)

        recorder_batches = []

        def execute(batch):
            recorder_batches.append(list(batch))
            gated(batch)

        batcher = Batcher(execute, window_s=0.25, batch_max=64)
        closing(batcher)
        pendings = [make_pending(k) for k in ("a", "b", "c", "d")]
        for p in pendings:
            batcher.submit(p)
        release.set()
        for p in pendings:
            p.future.result(timeout=5.0)
        assert [len(b) for b in recorder_batches] == [4]


class TestShutdown:
    def test_stop_during_window_still_dispatches_the_batch(self):
        """close() while a window is open must not strand the batch."""
        recorder = Recorder()
        batcher = Batcher(recorder, window_s=30.0, batch_max=64)
        pending = make_pending("open-window")
        batcher.submit(pending)
        recorder.dispatched.wait(timeout=0.0)  # not yet: window is open
        batcher.close(timeout_s=5.0)
        assert pending.future.result(timeout=0.0) == "open-window"
        assert [len(b) for b in recorder.batches] == [1]

    def test_submit_after_close_raises(self):
        batcher = Batcher(Recorder(), window_s=0.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="batcher is closed"):
            batcher.submit(make_pending("late"))

    def test_close_is_idempotent(self):
        batcher = Batcher(Recorder(), window_s=0.0)
        batcher.close()
        batcher.close()  # second close is a no-op, not an error

    def test_worker_thread_exits_on_close(self):
        batcher = Batcher(Recorder(), window_s=0.0)
        assert batcher._thread.is_alive()
        batcher.close(timeout_s=5.0)
        assert not batcher._thread.is_alive()


class TestFaultPaths:
    def test_executor_exception_fails_every_pending_future(self, closing):
        boom = RuntimeError("injected batch crash")
        recorder = Recorder(raise_exc=boom)
        batcher = Batcher(recorder, window_s=30.0, batch_max=2)
        closing(batcher)
        pendings = [make_pending("a"), make_pending("b")]
        for p in pendings:
            batcher.submit(p)
        for p in pendings:
            with pytest.raises(RuntimeError, match="injected batch crash"):
                p.future.result(timeout=5.0)

    def test_crashed_batch_does_not_kill_the_worker(self, closing):
        """The thread survives an executor crash and serves the next batch."""
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first batch dies")
            for pending in batch:
                pending.future.set_result(pending.key)

        batcher = Batcher(flaky, window_s=0.0, batch_max=1)
        closing(batcher)
        dead = make_pending("dead")
        batcher.submit(dead)
        with pytest.raises(RuntimeError, match="first batch dies"):
            dead.future.result(timeout=5.0)
        alive = make_pending("alive")
        batcher.submit(alive)
        assert alive.future.result(timeout=5.0) == "alive"

    def test_partially_resolved_batch_fails_only_the_rest(self, closing):
        """An executor that resolves some futures then raises: the resolved
        results survive; only the unresolved ones get the exception."""

        def half(batch):
            batch[0].future.set_result("ok")
            raise RuntimeError("died after the first")

        batcher = Batcher(half, window_s=30.0, batch_max=2)
        closing(batcher)
        good, bad = make_pending("good"), make_pending("bad")
        batcher.submit(good)
        batcher.submit(bad)
        assert good.future.result(timeout=5.0) == "ok"
        with pytest.raises(RuntimeError, match="died after the first"):
            bad.future.result(timeout=5.0)

"""QuantileTracker backfill: edges, quantile math, and thread safety.

The tracker shipped with the serving layer but only had incidental
coverage through the server's ``/v1/stats`` tests.  This file pins its
contract directly: empty/single-sample behaviour, nearest-rank quantiles
against a sorted reference, ring eviction, and — now that ``observe`` and
the window copy hold a lock — no lost updates under concurrent writers.
"""

import math
import random
import threading

import pytest

from repro.obs.metrics import QuantileTracker


def nearest_rank(window, q):
    """Reference nearest-rank quantile over a sorted copy."""
    s = sorted(window)
    rank = min(len(s) - 1, max(0, math.ceil(q * len(s)) - 1))
    return s[rank]


class TestEdges:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            QuantileTracker("lat", capacity=0)

    def test_empty_tracker(self):
        t = QuantileTracker("lat")
        assert t.count == 0
        assert t.window() == []
        assert t.quantile(0.5) == 0.0
        assert t.snapshot() == {
            "count": 0, "window": 0, "p50": None, "p90": None, "p99": None,
        }

    def test_single_sample_is_every_quantile(self):
        t = QuantileTracker("lat")
        t.observe(7.25)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert t.quantile(q) == 7.25
        assert t.snapshot() == {
            "count": 1, "window": 1, "p50": 7.25, "p90": 7.25, "p99": 7.25,
        }

    def test_quantile_rejects_out_of_range(self):
        t = QuantileTracker("lat")
        with pytest.raises(ValueError, match=r"quantile must be in \[0, 1\]"):
            t.quantile(1.5)
        with pytest.raises(ValueError, match=r"quantile must be in \[0, 1\]"):
            t.quantile(-0.1)


class TestQuantileMath:
    def test_matches_sorted_reference_on_known_window(self):
        t = QuantileTracker("lat", capacity=128)
        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0]
        for v in values:
            t.observe(v)
        assert t.quantile(0.5) == nearest_rank(values, 0.5) == 5.0
        assert t.quantile(0.9) == nearest_rank(values, 0.9) == 9.0
        assert t.quantile(0.99) == nearest_rank(values, 0.99) == 10.0
        assert t.quantile(0.0) == 1.0
        assert t.quantile(1.0) == 10.0

    def test_matches_sorted_reference_on_random_windows(self):
        rng = random.Random(42)
        for n in (1, 2, 3, 17, 100):
            t = QuantileTracker("lat", capacity=256)
            values = [rng.uniform(0.0, 50.0) for _ in range(n)]
            for v in values:
                t.observe(v)
            for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
                assert t.quantile(q) == nearest_rank(values, q), (n, q)

    def test_ring_evicts_oldest(self):
        t = QuantileTracker("lat", capacity=4)
        for v in (100.0, 200.0, 1.0, 2.0, 3.0, 4.0):
            t.observe(v)
        assert t.count == 6  # total seen, not capped
        assert sorted(t.window()) == [1.0, 2.0, 3.0, 4.0]
        assert t.quantile(1.0) == 4.0  # the 100/200 outliers are gone

    def test_snapshot_quantile_keys(self):
        t = QuantileTracker("lat")
        for v in range(1, 101):
            t.observe(float(v))
        doc = t.snapshot(quantiles=(0.5, 0.75, 0.999))
        assert doc["count"] == doc["window"] == 100
        assert doc["p50"] == 50.0
        assert doc["p75"] == 75.0
        assert doc["p99_9"] == 100.0


class TestThreadSafety:
    def test_no_lost_updates_under_concurrent_observers(self):
        """Unlocked ``_pos`` RMW could double-write a slot and drop samples."""
        t = QuantileTracker("lat", capacity=1 << 16)
        per_thread, threads = 2000, 8

        def hammer(tid):
            for i in range(per_thread):
                t.observe(tid * per_thread + i)

        workers = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        assert t.count == per_thread * threads
        window = t.window()
        assert len(window) == per_thread * threads
        # every observation landed in exactly one slot
        assert sorted(window) == [float(v) for v in range(per_thread * threads)]

    def test_snapshot_concurrent_with_writers_stays_consistent(self):
        """Snapshots taken mid-stream must see a coherent window."""
        t = QuantileTracker("lat", capacity=64)
        stop = threading.Event()
        errors = []

        def writer():
            v = 0
            while not stop.is_set():
                t.observe(v % 64)
                v += 1

        def reader():
            while not stop.is_set():
                doc = t.snapshot()
                try:
                    assert doc["window"] <= 64
                    if doc["p50"] is not None:
                        assert 0.0 <= doc["p50"] <= 63.0
                except AssertionError as exc:  # pragma: no cover
                    errors.append(exc)
                    stop.set()

        workers = [threading.Thread(target=writer) for _ in range(4)]
        workers.append(threading.Thread(target=reader))
        for w in workers:
            w.start()
        stop.wait(timeout=0.5)
        stop.set()
        for w in workers:
            w.join()
        assert errors == []

"""Tests for the extended CLI subcommands (profile / fit / svg)."""

import xml.etree.ElementTree as ET

import pytest

from repro.cli import main


class TestProfileCommand:
    def test_profile_prints_buckets(self, capsys):
        assert main(["profile", "-n", "120", "-b", "24", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        for bucket in ("compute", "send", "recv", "wait", "idle"):
            assert bucket in out
        assert "utilization" in out

    def test_profile_worstcase_mode(self, capsys):
        assert main(
            ["profile", "-n", "120", "-b", "24", "--procs", "4", "--mode", "worstcase"]
        ) == 0
        assert "makespan" in capsys.readouterr().out

    def test_profile_bad_block_reported(self, capsys):
        assert main(["profile", "-n", "100", "-b", "7"]) == 2
        assert "error" in capsys.readouterr().err


class TestFitCommand:
    def test_clean_fit_exact(self, capsys):
        assert main(["fit"]) == 0
        out = capsys.readouterr().out
        assert "fitted:" in out
        assert "L=0.00%" in out

    def test_jittered_fit(self, capsys):
        assert main(["fit", "--jitter", "--repeats", "5"]) == 0
        out = capsys.readouterr().out
        assert "o=0.00%" in out  # sender-side params stay exact

    def test_custom_machine(self, capsys):
        assert main(["fit", "--L", "25", "--o", "3", "--g", "8", "--G", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "L=25" in out


class TestSvgCommand:
    def test_writes_valid_svg(self, tmp_path, capsys):
        out_file = tmp_path / "step.svg"
        assert main(["svg", "--pattern", "sample", "-o", str(out_file)]) == 0
        svg = out_file.read_text()
        ET.fromstring(svg)
        assert "wrote" in capsys.readouterr().out

    def test_worstcase_variant(self, tmp_path):
        out_file = tmp_path / "wc.svg"
        assert main(
            ["svg", "--pattern", "sample", "--algorithm", "worstcase", "-o", str(out_file)]
        ) == 0
        assert "worstcase" in out_file.read_text()

    def test_ring_pattern(self, tmp_path):
        out_file = tmp_path / "ring.svg"
        assert main(
            ["svg", "--pattern", "ring", "--procs", "4", "--size", "64", "-o", str(out_file)]
        ) == 0
        assert out_file.exists()

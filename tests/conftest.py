"""Shared test fixtures and hypothesis profiles."""

import os

import pytest

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    settings = None

if settings is not None:
    # CI runs derandomized so a red build is reproducible from its log
    # (select with HYPOTHESIS_PROFILE=ci); local runs keep the default
    # randomized search, which explores more of the input space over time.
    settings.register_profile("ci", derandomize=True)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(autouse=True)
def _runs_dir(tmp_path, monkeypatch):
    """Redirect CLI run manifests into the test's tmp dir.

    Every ``repro`` CLI invocation writes a RunRecord manifest; without
    this, tests exercising ``main()`` would litter ``.repro/runs`` in the
    working tree.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))

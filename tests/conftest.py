"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _runs_dir(tmp_path, monkeypatch):
    """Redirect CLI run manifests into the test's tmp dir.

    Every ``repro`` CLI invocation writes a RunRecord manifest; without
    this, tests exercising ``main()`` would litter ``.repro/runs`` in the
    working tree.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))

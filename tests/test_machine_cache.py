"""Tests for the cache models (repro.machine.cache)."""

import pytest

from repro.machine import BlockCache, LineCache


class TestLineCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LineCache(size_bytes=0)
        with pytest.raises(ValueError):
            LineCache(size_bytes=1000, line_bytes=32, ways=4)  # not a multiple

    def test_cold_miss_then_hit(self):
        cache = LineCache(size_bytes=1024, line_bytes=32, ways=4)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(31) is True  # same line
        assert cache.access(32) is False  # next line

    def test_associativity_eviction(self):
        # 2 sets, 2 ways, 32B lines: lines 0,2,4 map to set 0
        cache = LineCache(size_bytes=128, line_bytes=32, ways=2)
        cache.access(0 * 32)
        cache.access(2 * 32)
        cache.access(4 * 32)  # evicts line 0 (LRU)
        assert cache.access(2 * 32) is True
        assert cache.access(0 * 32) is False

    def test_lru_order_updated_on_hit(self):
        cache = LineCache(size_bytes=128, line_bytes=32, ways=2)
        cache.access(0 * 32)
        cache.access(2 * 32)
        cache.access(0 * 32)  # refresh line 0
        cache.access(4 * 32)  # evicts line 2 now
        assert cache.access(0 * 32) is True
        assert cache.access(2 * 32) is False

    def test_access_range_counts_misses(self):
        cache = LineCache(size_bytes=1024, line_bytes=32, ways=4)
        assert cache.access_range(0, 64) == 2
        assert cache.access_range(0, 64) == 0

    def test_stats(self):
        cache = LineCache(size_bytes=1024, line_bytes=32, ways=4)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.miss_rate == 0.5

    def test_flush(self):
        cache = LineCache(size_bytes=1024, line_bytes=32, ways=4)
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            LineCache(size_bytes=1024).access(-1)

    def test_zero_range_rejected(self):
        with pytest.raises(ValueError):
            LineCache(size_bytes=1024).access_range(0, 0)


class TestBlockCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BlockCache(0)

    def test_miss_then_hit(self):
        cache = BlockCache(1000)
        assert cache.touch("a", 100) is False
        assert cache.touch("a", 100) is True

    def test_lru_eviction_by_bytes(self):
        cache = BlockCache(250)
        cache.touch("a", 100)
        cache.touch("b", 100)
        cache.touch("c", 100)  # evicts "a"
        assert cache.touch("b", 100) is True
        assert cache.touch("a", 100) is False

    def test_oversized_block_streams_through(self):
        cache = BlockCache(100)
        cache.touch("small", 50)
        assert cache.touch("huge", 500) is False
        assert cache.used_bytes == 0  # everything flushed, nothing kept
        assert cache.touch("huge", 500) is False  # never resident

    def test_used_bytes_accounting(self):
        cache = BlockCache(1000)
        cache.touch("a", 300)
        cache.touch("b", 200)
        assert cache.used_bytes == 500

    def test_invalidate(self):
        cache = BlockCache(1000)
        cache.touch("a", 300)
        cache.invalidate("a")
        assert cache.used_bytes == 0
        assert cache.touch("a", 300) is False
        cache.invalidate("missing")  # no-op

    def test_flush_keeps_stats(self):
        cache = BlockCache(1000)
        cache.touch("a", 10)
        cache.flush()
        assert cache.stats.misses == 1
        assert cache.touch("a", 10) is False

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(100).touch("a", 0)

    def test_hit_refreshes_lru_position(self):
        cache = BlockCache(200)
        cache.touch("a", 100)
        cache.touch("b", 100)
        cache.touch("a", 100)  # refresh
        cache.touch("c", 100)  # evicts "b"
        assert cache.touch("a", 100) is True
        assert cache.touch("b", 100) is False

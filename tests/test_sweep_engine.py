"""Tests for the parallel sweep engine (repro.sweep)."""

import pytest

from repro.core import MEIKO_CS2, CalibratedCostModel, summarize_ge_point
from repro.experiments import ExperimentStore, PointSummary
from repro.sweep import SweepPoint, expand_grid, run_sweep
from repro.sweep.runner import _chunked

PARAMS = MEIKO_CS2
CM = CalibratedCostModel()

#: small prediction-only grid every engine test reuses (fast: no emulator)
GRID = expand_grid(120, [24, 40], ["diagonal", "stripped"], with_measured=False)


class TestSweepPoint:
    def test_validates_divisibility(self):
        with pytest.raises(ValueError, match="does not divide"):
            SweepPoint(n=100, b=7, layout="diagonal")

    def test_validates_layout(self):
        with pytest.raises(ValueError, match="unknown layout"):
            SweepPoint(n=120, b=24, layout="nope")

    def test_validates_positive(self):
        with pytest.raises(ValueError):
            SweepPoint(n=0, b=1, layout="diagonal")

    def test_describe(self):
        p = SweepPoint(n=120, b=24, layout="diagonal", seed=3)
        assert p.describe() == "n=120 b=24 diagonal seed=3"


class TestExpandGrid:
    def test_order_matches_serial_sweep(self):
        # layout-major, then block size: the run_ge_sweep enumeration
        assert [(p.layout, p.b) for p in GRID] == [
            ("diagonal", 24), ("diagonal", 40),
            ("stripped", 24), ("stripped", 40),
        ]

    def test_multiple_ns_and_seeds(self):
        grid = expand_grid([120, 240], [24], ["diagonal"], seeds=(0, 1))
        assert [(p.n, p.seed) for p in grid] == [
            (120, 0), (120, 1), (240, 0), (240, 1),
        ]

    def test_duplicates_dropped(self):
        grid = expand_grid(120, [24, 24], ["diagonal", "diagonal"])
        assert len(grid) == 1

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            expand_grid(120, [], ["diagonal"])

    def test_bad_point_rejected_at_expansion(self):
        with pytest.raises(ValueError, match="does not divide"):
            expand_grid(120, [24, 50], ["diagonal"])


class TestSerialEngine:
    def test_matches_single_point_entrypoint(self):
        result = run_sweep(GRID, PARAMS, CM, workers=1)
        for point, summary in zip(GRID, result.summaries):
            expect = PointSummary(**summarize_ge_point(
                point.n, point.b, point.layout, PARAMS, CM,
                with_measured=False, seed=point.seed,
            ))
            assert summary == expect  # exact, not approx

    def test_stats(self):
        result = run_sweep(GRID, PARAMS, CM, workers=1)
        assert result.stats.total == len(GRID)
        assert result.stats.cached == 0
        assert result.stats.computed == len(GRID)
        assert result.stats.wall_s > 0

    def test_digest_is_stable_and_value_sensitive(self):
        a = run_sweep(GRID, PARAMS, CM, workers=1)
        b = run_sweep(GRID, PARAMS, CM, workers=1)
        assert a.digest() == b.digest()
        c = run_sweep(GRID[:2], PARAMS, CM, workers=1)
        assert c.digest() != a.digest()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(GRID, PARAMS, CM, workers=-1)


class TestParallelEngine:
    def test_bit_identical_to_serial(self):
        serial = run_sweep(GRID, PARAMS, CM, workers=1)
        parallel = run_sweep(GRID, PARAMS, CM, workers=2)
        assert parallel.summaries == serial.summaries
        assert parallel.digest() == serial.digest()

    def test_results_in_grid_order(self):
        result = run_sweep(GRID, PARAMS, CM, workers=2, chunk_size=1)
        assert [(s.layout, s.b) for s in result.summaries] == [
            (p.layout, p.b) for p in GRID
        ]

    def test_more_workers_than_points(self):
        grid = GRID[:2]
        result = run_sweep(grid, PARAMS, CM, workers=8)
        assert len(result.summaries) == 2

    def test_chunk_size_one(self):
        result = run_sweep(GRID, PARAMS, CM, workers=2, chunk_size=1)
        assert result.stats.chunks == len(GRID)


class TestStoreCoordination:
    def test_workers_persist_through_store(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        run_sweep(GRID, PARAMS, CM, workers=2, store=store)
        assert store.cached_count() == len(GRID)

    def test_store_accepts_plain_directory(self, tmp_path):
        run_sweep(GRID, PARAMS, CM, workers=1, store=tmp_path / "sub")
        store = ExperimentStore(tmp_path / "sub", PARAMS, CM)
        assert store.cached_count() == len(GRID)

    def test_cached_points_short_circuit_before_dispatch(self, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        run_sweep(GRID[:2], PARAMS, CM, workers=1, store=store)

        computed = []

        import repro.experiments as experiments

        real = experiments.summarize_ge_point

        def counting(n, b, layout, *args, **kwargs):
            computed.append((layout, b))
            return real(n, b, layout, *args, **kwargs)

        monkeypatch.setattr(experiments, "summarize_ge_point", counting)
        result = run_sweep(GRID, PARAMS, CM, workers=1, store=store)
        assert result.stats.cached == 2
        assert result.stats.computed == 2
        assert computed == [("stripped", 24), ("stripped", 40)]

    def test_resume_false_recomputes_everything(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        run_sweep(GRID, PARAMS, CM, workers=1, store=store)
        again = run_sweep(GRID, PARAMS, CM, workers=1, store=store, resume=False)
        assert again.stats.cached == 0
        assert again.stats.computed == len(GRID)

    def test_resumed_sweep_equals_cold_sweep(self, tmp_path):
        cold = run_sweep(GRID, PARAMS, CM, workers=1)
        store = ExperimentStore(tmp_path, PARAMS, CM)
        run_sweep(GRID[:3], PARAMS, CM, workers=1, store=store)
        resumed = run_sweep(GRID, PARAMS, CM, workers=2, store=store)
        assert resumed.summaries == cold.summaries
        assert resumed.stats.cached == 3

    def test_progress_reports_every_point(self, tmp_path):
        store = ExperimentStore(tmp_path, PARAMS, CM)
        run_sweep(GRID[:1], PARAMS, CM, workers=1, store=store)
        seen = []
        run_sweep(
            GRID, PARAMS, CM, workers=1, store=store,
            progress=lambda done, total, point, source: seen.append(
                (done, total, (point.layout, point.b), source)
            ),
        )
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(s[1] == len(GRID) for s in seen)
        assert seen[0] == (1, 4, ("diagonal", 24), "cached")
        assert {s[3] for s in seen[1:]} == {"computed"}


class TestChunking:
    def test_chunked_covers_everything_once(self):
        items = list(range(10))
        chunks = list(_chunked(items, 3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [x for c in chunks for x in c] == items

    def test_default_chunking_is_about_four_per_worker(self):
        grid = expand_grid(120, [24], ["diagonal"], seeds=range(16),
                           with_measured=False)
        result = run_sweep(grid, PARAMS, CM, workers=2)
        assert result.stats.chunks == 8  # 16 points / (2 workers * 4)


class TestObservability:
    def test_sweep_metrics_recorded(self, tmp_path):
        from repro.obs import Tracer, tracing

        store = ExperimentStore(tmp_path, PARAMS, CM)
        run_sweep(GRID[:1], PARAMS, CM, workers=1, store=store)
        tracer = Tracer()
        with tracing(tracer):
            run_sweep(GRID, PARAMS, CM, workers=1, store=store)
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["sweep.points_cached"] == 1
        assert snap["counters"]["sweep.points_computed"] == 3
        assert snap["histograms"]["sweep.wall_s"]["count"] == 1

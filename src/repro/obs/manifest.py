"""Machine-readable run manifests (:class:`RunRecord`).

Every CLI command and benchmark writes one ``RunRecord`` JSON file
capturing *what ran and how fast*: the LogGP parameters, the workload
(matrix size, block size, layout, engine), event counts, the predicted
makespan, and the wall-clock time and throughput (events/sec) of the
simulator itself.  These manifests are the repo's perf trajectory — CI
compares the throughput of a smoke run against a checked-in baseline.

Manifests land in ``$REPRO_RUNS_DIR`` (default ``.repro/runs`` under the
current directory) unless an explicit path is given.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional

__all__ = ["RunRecord", "default_manifest_path", "loggp_dict", "RUNS_DIR_ENV"]

SCHEMA = "repro.run-record/v1"

#: environment variable overriding the default manifest directory
RUNS_DIR_ENV = "REPRO_RUNS_DIR"


def loggp_dict(params) -> dict:
    """JSON-ready dict of a :class:`repro.core.loggp.LogGPParameters`."""
    return {
        "name": params.name,
        "L": params.L,
        "o": params.o,
        "g": params.g,
        "G": params.G,
        "P": params.P,
    }


def _resource_usage() -> dict:
    """Peak RSS and CPU split of this process (empty where unsupported).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value is
    normalised to kilobytes so manifests compare across platforms.
    """
    usage: dict = {}
    try:
        import resource as _resource

        ru = _resource.getrusage(_resource.RUSAGE_SELF)
        maxrss_kb = ru.ru_maxrss
        if platform.system() == "Darwin":
            maxrss_kb //= 1024
        usage["ru_maxrss_kb"] = int(maxrss_kb)
    except (ImportError, OSError, ValueError):  # pragma: no cover - non-POSIX
        pass
    try:
        t = os.times()
        usage["cpu_user_s"] = t.user
        usage["cpu_system_s"] = t.system
    except OSError:  # pragma: no cover - exotic platforms
        pass
    return usage


def default_manifest_path(command: str, directory: Optional[str] = None) -> Path:
    """A collision-free manifest path for one run of ``command``."""
    base = Path(directory or os.environ.get(RUNS_DIR_ENV, ".repro/runs"))
    stamp = time.strftime("%Y%m%dT%H%M%S")
    pid = os.getpid()
    path = base / f"{command}-{stamp}-{pid}.json"
    n = 1
    while path.exists():
        path = base / f"{command}-{stamp}-{pid}-{n}.json"
        n += 1
    return path


@dataclass
class RunRecord:
    """One run's machine-readable manifest.

    ``workload`` holds run-specific configuration (``n``, ``b``,
    ``layout``, pattern, ...); ``params`` the LogGP machine; ``metrics``
    the tracer's registry snapshot.  ``events_per_sec`` is simulator
    throughput: structured events emitted per wall-clock second.

    ``uq`` is the uncertainty-quantification block of ``repro uq`` runs:
    the perturbation spec document, replicate count, CI level, the
    summary digest gating worker-count equivalence, and whether the spec
    was deterministic (empty for non-UQ runs).

    ``trace`` is the telemetry block of traced runs: the
    :class:`repro.obs.config.TraceConfig` document plus retained /
    dropped / sampled-out tallies per category (empty for untraced
    runs).  It is filled automatically by :meth:`finish` when the tracer
    exposes :meth:`repro.obs.Tracer.telemetry`.

    ``trace_id`` is the distributed-trace correlation key of traced runs
    (empty otherwise) — the same id stamped on spans, shard files and
    JSONL log lines, so a manifest can be joined against its merged
    timeline.  ``resource`` records peak RSS (``ru_maxrss_kb``) and the
    user/system CPU-second split, captured by :meth:`finish` for every
    CLI verb.
    """

    command: str
    argv: list[str] = field(default_factory=list)
    schema: str = SCHEMA
    status: str = "ok"
    params: dict = field(default_factory=dict)
    workload: dict = field(default_factory=dict)
    engine: str = ""
    uq: dict = field(default_factory=dict)
    makespan_us: Optional[float] = None
    event_count: int = 0
    trace: dict = field(default_factory=dict)
    trace_id: str = ""
    metrics: dict = field(default_factory=dict)
    resource: dict = field(default_factory=dict)
    wall_s: Optional[float] = None
    events_per_sec: Optional[float] = None
    started_unix: float = 0.0
    host: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def begin(cls, command: str, argv: Optional[list[str]] = None) -> "RunRecord":
        """Start a record: stamps the start time and host facts."""
        rec = cls(command=command, argv=list(argv or []))
        rec.started_unix = time.time()
        rec._t0 = time.perf_counter()
        rec.host = {
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        return rec

    def note(self, **fields: Any) -> "RunRecord":
        """Merge run facts: known attributes are set, the rest go to extra."""
        for key, value in fields.items():
            if hasattr(self, key) and key != "extra":
                setattr(self, key, value)
            else:
                self.extra[key] = value
        return self

    def finish(self, tracer=None, status: str = "ok") -> "RunRecord":
        """Close the record: wall time, throughput, resources, tracer counts."""
        self.status = status
        t0 = getattr(self, "_t0", None)
        if t0 is not None:
            self.wall_s = time.perf_counter() - t0
        self.resource = _resource_usage()
        if tracer is not None:
            ctx = getattr(tracer, "context", None)
            if ctx is not None and not self.trace_id:
                self.trace_id = ctx.trace_id
            # telemetry() materialises the stream, which updates the
            # per-category obs.events.* counters *before* the snapshot
            telemetry = getattr(tracer, "telemetry", None)
            if callable(telemetry):
                self.trace = telemetry()
            self.event_count = len(tracer.events)
            self.metrics = tracer.metrics.snapshot()
        if self.wall_s and self.event_count:
            self.events_per_sec = self.event_count / self.wall_s
        return self

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d.pop("_t0", None)
        return d

    def to_json(self, indent: int = 2) -> str:
        """The manifest as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path=None) -> Path:
        """Write the manifest JSON; returns the path written."""
        out = Path(path) if path is not None else default_manifest_path(self.command)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json() + "\n")
        return out

    @classmethod
    def load(cls, path) -> "RunRecord":
        """Read a manifest back (unknown keys are preserved in extra)."""
        doc = json.loads(Path(path).read_text())
        known = {f for f in cls.__dataclass_fields__}
        extra = doc.pop("extra", {})
        rec = cls(**{k: v for k, v in doc.items() if k in known})
        rec.extra = dict(extra)
        for k, v in doc.items():
            if k not in known:
                rec.extra[k] = v
        return rec

"""Unified observability layer: structured events, metrics, exporters.

Every execution path of the package — the DES kernel, the three
communication-simulation algorithms, the whole-program simulator, the
machine emulator and the active-message runtime — emits structured events
through one :class:`Tracer`.  The design goals, in order:

1. **Zero overhead when disabled.**  The default ambient tracer is a
   :class:`NullTracer`; instrumented code pays one attribute check
   (``tracer.enabled``) per emission site and nothing else.
2. **One stream, many consumers.**  The same event list feeds the
   Chrome-trace/Perfetto exporter (:mod:`repro.obs.export`), the flat
   JSONL/CSV dumps, and the lost-cycles bucket aggregation
   (:mod:`repro.obs.aggregate`) that powers
   :func:`repro.machine.profiler.profile_program`.
3. **Machine-readable run manifests.**  Every CLI command and benchmark
   writes a :class:`RunRecord` (:mod:`repro.obs.manifest`) capturing the
   configuration, event counts and simulator throughput of the run.

Quick start::

    from repro.obs import Tracer, tracing, write_chrome_trace

    tracer = Tracer()
    with tracing(tracer):
        profile = profile_program(trace, MEIKO_CS2, CalibratedCostModel())
    write_chrome_trace(tracer.events, "timeline.json")  # open in Perfetto
"""

from .aggregate import BUCKET_NAMES, bucket_sums, profile_from_events
from .config import CATEGORIES, TraceConfig, category_of
from .events import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    get_tracer,
    is_enabled,
    set_tracer,
    tracing,
)
from .export import (
    events_from_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
)
from .log import JsonlLogger, get_logger, log_event, set_logger
from .manifest import RunRecord, default_manifest_path, loggp_dict
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, QuantileTracker
from .promtext import parse as parse_prometheus
from .promtext import render as render_prometheus
from .ringbuf import CHUNK_SLOTS, RingBuffer
from .telemetry import (
    MergedTrace,
    TraceContext,
    TraceShard,
    merge_shards,
    read_shard,
    shard_paths,
    trace_digest,
    validate_span_tree,
    write_merged_events,
    write_merged_trace,
    write_shard,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "TraceConfig",
    "CATEGORIES",
    "category_of",
    "RingBuffer",
    "CHUNK_SLOTS",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "is_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileTracker",
    "MetricsRegistry",
    "to_chrome_trace",
    "write_chrome_trace",
    "events_from_chrome_trace",
    "write_events_jsonl",
    "write_events_csv",
    "BUCKET_NAMES",
    "bucket_sums",
    "profile_from_events",
    "RunRecord",
    "default_manifest_path",
    "loggp_dict",
    "TraceContext",
    "TraceShard",
    "MergedTrace",
    "write_shard",
    "read_shard",
    "shard_paths",
    "merge_shards",
    "trace_digest",
    "validate_span_tree",
    "write_merged_trace",
    "write_merged_events",
    "render_prometheus",
    "parse_prometheus",
    "JsonlLogger",
    "get_logger",
    "set_logger",
    "log_event",
]

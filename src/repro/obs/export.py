"""Exporters: Chrome trace-event JSON (Perfetto), JSONL and CSV dumps.

The Chrome trace-event format is the lingua franca of timeline viewers —
the exported file loads directly in `Perfetto <https://ui.perfetto.dev>`_
or ``chrome://tracing``.  Layout:

* one Chrome *process* per track (``sim:standard``, ``emulator``, ...),
* one Chrome *thread* per simulated processor (named ``P0``, ``P1``, ...),
* every slice as a matched ``B``/``E`` duration pair (children nested
  inside their enclosing ``comm`` phase),
* uncovered stretches of ``comm`` phases synthesised as ``wait`` slices,
  so each track reads compute / send / recv / wait at a glance,
* instants as ``i`` events, metrics as the top-level ``otherData``.

Timestamps stay in microseconds — the package's native unit and the trace
format's expected one, so no scaling is applied.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, Optional

from .events import WALL_TRACK, TraceEvent
from .metrics import MetricsRegistry

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "events_from_chrome_trace",
    "write_events_jsonl",
    "write_events_csv",
]

#: tid used for machine-level (proc == -1) events
_MACHINE_TID = 999_999

#: slice names treated as children of an enclosing ``comm`` phase
_COMM_OPS = ("send", "recv")

#: gaps shorter than this are not synthesised as wait slices (float fuzz)
_WAIT_EPS = 1e-9

#: reserved args key carrying a slice's exact duration across export/import
_DUR_KEY = "dur_us"


def _tid(proc: int) -> int:
    return proc if proc >= 0 else _MACHINE_TID


def _synth_wait(slices: list[TraceEvent]) -> list[TraceEvent]:
    """Wait slices for the uncovered parts of each ``comm`` phase."""
    out: list[TraceEvent] = []
    ops = sorted(
        (s for s in slices if s.name in _COMM_OPS), key=lambda s: (s.ts, s.end)
    )
    for phase in (s for s in slices if s.name == "comm"):
        cursor = phase.ts
        for op in ops:
            if op.ts < phase.ts - _WAIT_EPS or op.end > phase.end + _WAIT_EPS:
                continue
            if op.ts - cursor > _WAIT_EPS:
                out.append(
                    TraceEvent(
                        name="wait", kind="slice", ts=cursor, dur=op.ts - cursor,
                        proc=phase.proc, track=phase.track,
                    )
                )
            cursor = max(cursor, op.end)
        if phase.end - cursor > _WAIT_EPS:
            out.append(
                TraceEvent(
                    name="wait", kind="slice", ts=cursor, dur=phase.end - cursor,
                    proc=phase.proc, track=phase.track,
                )
            )
    return out


def _nested_begin_end(slices: list[TraceEvent], pid: int) -> list[dict]:
    """Emit one thread's slices as properly nested B/E pairs.

    Slices are sorted outermost-first; a stack closes every slice that
    ends at or before the next one starts.  Ties close children before
    parents, which is what the B/E stack discipline requires.
    """
    ordered = sorted(slices, key=lambda s: (s.ts, -s.dur))
    out: list[dict] = []
    stack: list[TraceEvent] = []

    def close(upto: float) -> None:
        while stack and stack[-1].end <= upto:
            top = stack.pop()
            out.append(
                {"ph": "E", "ts": top.end, "pid": pid, "tid": _tid(top.proc),
                 "name": top.name}
            )

    for s in ordered:
        close(s.ts)
        ev = {"ph": "B", "ts": s.ts, "pid": pid, "tid": _tid(s.proc),
              "name": s.name, "cat": s.track}
        # The exact duration: E.ts - B.ts cannot recover it bit-for-bit
        # ((ts + dur) - ts loses low bits), and the aggregation round-trip
        # guarantee needs it.  Viewers show it as a slice property.
        ev["args"] = {**(s.attrs or {}), _DUR_KEY: s.dur}
        out.append(ev)
        stack.append(s)
    close(float("inf"))
    return out


def to_chrome_trace(
    events: Iterable[TraceEvent],
    metrics: Optional[MetricsRegistry] = None,
    synthesize_wait: bool = True,
) -> dict:
    """Convert an event stream to a Chrome trace-event JSON object."""
    events = list(events)
    tracks: list[str] = []
    for e in events:
        if e.track not in tracks:
            tracks.append(e.track)
    pid_of = {t: i for i, t in enumerate(tracks)}

    trace_events: list[dict] = []
    for track in tracks:
        pid = pid_of[track]
        trace_events.append(
            {"ph": "M", "ts": 0, "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": track}}
        )
        mine = [e for e in events if e.track == track]
        procs = sorted({e.proc for e in mine})
        for proc in procs:
            trace_events.append(
                {"ph": "M", "ts": 0, "pid": pid, "tid": _tid(proc),
                 "name": "thread_name",
                 "args": {"name": f"P{proc}" if proc >= 0 else "machine"}}
            )
            slices = [e for e in mine if e.proc == proc and e.kind == "slice"]
            if synthesize_wait and track != WALL_TRACK:
                slices = slices + _synth_wait(slices)
            trace_events.extend(_nested_begin_end(slices, pid))
            for e in mine:
                if e.proc == proc and e.kind == "instant":
                    ev = {"ph": "i", "ts": e.ts, "pid": pid, "tid": _tid(proc),
                          "name": e.name, "s": "t"}
                    if e.attrs:
                        ev["args"] = dict(e.attrs)
                    trace_events.append(ev)

    doc: dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["otherData"] = {"metrics": metrics.snapshot()}
    return doc


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path,
    metrics: Optional[MetricsRegistry] = None,
    synthesize_wait: bool = True,
) -> None:
    """Write the Chrome trace JSON for ``events`` to ``path``."""
    doc = to_chrome_trace(events, metrics=metrics, synthesize_wait=synthesize_wait)
    with open(path, "w") as fh:
        json.dump(doc, fh)


def events_from_chrome_trace(doc: dict) -> list[TraceEvent]:
    """Reconstruct slice/instant events from a Chrome trace JSON object.

    The inverse of :func:`to_chrome_trace` up to the synthesised ``wait``
    slices (which aggregation ignores by design); used by tests to prove
    that bucket sums survive an export/import round trip exactly.
    """
    names: dict[int, str] = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            names[ev["pid"]] = ev["args"]["name"]

    out: list[TraceEvent] = []
    open_stacks: dict[tuple[int, int], list[dict]] = {}
    for ev in doc["traceEvents"]:
        ph = ev.get("ph")
        key = (ev.get("pid", 0), ev.get("tid", 0))
        track = names.get(ev.get("pid", 0), "sim")
        proc = ev["tid"] if ev.get("tid", _MACHINE_TID) != _MACHINE_TID else -1
        if ph == "B":
            open_stacks.setdefault(key, []).append(ev)
        elif ph == "E":
            stack = open_stacks.get(key)
            if not stack:
                raise ValueError(f"unmatched E event {ev!r}")
            b = stack.pop()
            if b["name"] != ev["name"]:
                raise ValueError(
                    f"mismatched B/E pair: {b['name']!r} closed by {ev['name']!r}"
                )
            attrs = dict(b.get("args") or {})
            dur = attrs.pop(_DUR_KEY, None)
            out.append(
                TraceEvent(
                    name=b["name"], kind="slice", ts=b["ts"],
                    dur=dur if dur is not None else ev["ts"] - b["ts"],
                    proc=proc, track=track, attrs=attrs or None,
                )
            )
        elif ph == "i":
            out.append(
                TraceEvent(
                    name=ev["name"], kind="instant", ts=ev["ts"], proc=proc,
                    track=track, attrs=ev.get("args"),
                )
            )
    leftovers = [b["name"] for stack in open_stacks.values() for b in stack]
    if leftovers:
        raise ValueError(f"unclosed B events: {leftovers}")
    return out


def write_events_jsonl(events: Iterable[TraceEvent], path) -> None:
    """Flat dump: one JSON object per line per event."""
    with open(path, "w") as fh:
        for e in events:
            rec = {
                "name": e.name, "kind": e.kind, "ts": e.ts, "dur": e.dur,
                "proc": e.proc, "track": e.track,
            }
            if e.attrs:
                rec["attrs"] = dict(e.attrs)
            fh.write(json.dumps(rec) + "\n")


def write_events_csv(events: Iterable[TraceEvent], path) -> None:
    """Flat dump: one CSV row per event (attrs as a JSON column)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["name", "kind", "ts", "dur", "proc", "track", "attrs"])
        for e in events:
            writer.writerow(
                [e.name, e.kind, repr(e.ts), repr(e.dur), e.proc, e.track,
                 json.dumps(dict(e.attrs)) if e.attrs else ""]
            )

"""The tracer's storage: a chunked, append-only ring buffer of packed tuples.

The pre-ring-buffer tracer allocated one frozen dataclass (plus one attrs
dict) per event; on the Figure 7 sweep that doubled the runtime of an
enabled run.  This buffer stores *packed records* — plain tuples written
into preallocated list slots — and defers all interpretation (dataclass
materialisation, Perfetto/JSONL/CSV encoding, bucket aggregation) to
export time:

* **Preallocated chunks.**  Slots come from fixed-size lists allocated a
  chunk at a time, so an append is one bounds check, one slot store and
  one integer bump — no per-event container growth beyond the amortised
  chunk allocation.
* **Append-only.**  Records are never moved or overwritten; iteration
  order is emission order, which the deferred encoder relies on to
  reproduce the eager tracer's output bit for bit.
* **Indexable tail.**  Consumers track how many records they have seen
  (:meth:`count`) and resume iteration from there
  (:meth:`iter_from`), which is how the tracer materialises
  incrementally instead of re-decoding the whole run on every access.

The record vocabulary (first element of every tuple) is defined by the
tracer (:mod:`repro.obs.events`); the buffer itself is payload-agnostic.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["RingBuffer", "CHUNK_SLOTS"]

#: slots per preallocated chunk (a compromise between allocation
#: amortisation and worst-case wasted tail memory)
CHUNK_SLOTS = 1 << 14


class RingBuffer:
    """Chunked append-only storage of packed record tuples."""

    __slots__ = ("_chunks", "_tail", "_pos")

    def __init__(self) -> None:
        self._tail: list = [None] * CHUNK_SLOTS
        self._chunks: list[list] = [self._tail]
        #: next free slot in the tail chunk
        self._pos: int = 0

    def append(self, record: tuple) -> None:
        """Write ``record`` into the next slot (growing by one chunk if full)."""
        pos = self._pos
        if pos == CHUNK_SLOTS:
            self._tail = [None] * CHUNK_SLOTS
            self._chunks.append(self._tail)
            pos = 0
        self._tail[pos] = record
        self._pos = pos + 1

    def extend(self, records) -> None:
        """Append every record of an iterable (shard absorption bulk path)."""
        append = self.append
        for record in records:
            append(record)

    def count(self) -> int:
        """Number of records appended so far."""
        return (len(self._chunks) - 1) * CHUNK_SLOTS + self._pos

    def __len__(self) -> int:
        return self.count()

    def iter_from(self, start: int = 0) -> Iterator[tuple]:
        """Yield records ``start``, ``start + 1``, ... in emission order."""
        total = self.count()
        if start >= total:
            return
        chunk_idx, pos = divmod(start, CHUNK_SLOTS)
        for ci in range(chunk_idx, len(self._chunks)):
            chunk = self._chunks[ci]
            end = self._pos if ci == len(self._chunks) - 1 else CHUNK_SLOTS
            for i in range(pos, end):
                yield chunk[i]
            pos = 0

    def __iter__(self) -> Iterator[tuple]:
        return self.iter_from(0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RingBuffer records={self.count()} chunks={len(self._chunks)}>"

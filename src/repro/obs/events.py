"""The structured event model and the tracer (span/event) API.

An observability *event* is one of

* a **slice** — a named interval ``[ts, ts + dur)`` on some processor's
  track (``compute``, ``send``, ``recv``, ``comm``, ``local_copy``, ...),
* an **instant** — a named point in time, or
* a wall-clock **span** recorded by the :meth:`Tracer.span` context
  manager (self-instrumentation of the simulator: how long a phase of
  *our* code took, as opposed to simulated time).

Simulated timestamps are microseconds, like everything else in the
package.  Wall-clock spans live on the reserved ``"wall"`` track and are
excluded from bucket aggregation.

The ambient tracer
------------------
Instrumented code asks for the current tracer with :func:`get_tracer` and
checks ``tracer.enabled`` before doing any work::

    tr = get_tracer()
    if tr.enabled:
        tr.emit_comm_step(timeline, ctimes, algo="standard")

The default ambient tracer is :data:`NULL_TRACER` (``enabled = False``,
every method a no-op), so an uninstrumented run pays one attribute read
per emission *site*, not per event.  :func:`tracing` installs a real
:class:`Tracer` for the duration of a ``with`` block.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

from .metrics import MetricsRegistry

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "is_enabled",
    "WALL_TRACK",
]

#: reserved track for wall-clock self-instrumentation spans
WALL_TRACK = "wall"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured observation.

    ``kind`` is ``"slice"`` (interval) or ``"instant"`` (point).  ``proc``
    is the processor the event belongs to, or ``-1`` for machine-level
    events.  ``track`` groups events into Perfetto processes (one per
    simulator engine / emulator run).
    """

    name: str
    kind: str
    ts: float
    dur: float = 0.0
    proc: int = -1
    track: str = "sim"
    attrs: Optional[Mapping[str, Any]] = None

    @property
    def end(self) -> float:
        """End of the interval (``ts`` for instants)."""
        return self.ts + self.dur


class Tracer:
    """Collects :class:`TraceEvent` records and metrics during a run.

    One tracer is one event stream; exporters and aggregators consume
    :attr:`events` after the traced section completes.  ``enabled`` is a
    plain attribute so hot paths can gate on it cheaply.
    """

    enabled: bool = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.events: list[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: current track name; use :meth:`in_track` to switch temporarily
        self.track: str = "sim"

    # -- emission -----------------------------------------------------------
    def slice(
        self,
        name: str,
        proc: int,
        ts: float,
        dur: float,
        track: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Record a named interval ``[ts, ts + dur)`` on ``proc``'s track."""
        self.events.append(
            TraceEvent(
                name=name,
                kind="slice",
                ts=ts,
                dur=dur,
                proc=proc,
                track=track if track is not None else self.track,
                attrs=attrs or None,
            )
        )

    def instant(self, name: str, ts: float, proc: int = -1, **attrs: Any) -> None:
        """Record a named point in (simulated) time."""
        self.events.append(
            TraceEvent(
                name=name,
                kind="instant",
                ts=ts,
                proc=proc,
                track=self.track,
                attrs=attrs or None,
            )
        )

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment the counter ``name`` in the metrics registry."""
        self.metrics.counter(name).inc(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.metrics.gauge(name).set(value)

    @contextmanager
    def span(self, name: str, proc: int = -1, **attrs: Any) -> Iterator[None]:
        """Wall-clock span: times the enclosed block of *our* code.

        The slice lands on the reserved ``"wall"`` track with microsecond
        timestamps from :func:`time.perf_counter`, so exported traces show
        the simulator's own phases alongside the simulated timelines.
        """
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.slice(
                name, proc=proc, ts=t0 * 1e6, dur=(t1 - t0) * 1e6,
                track=WALL_TRACK, **attrs,
            )

    @contextmanager
    def in_track(self, track: str) -> Iterator[None]:
        """Route emissions inside the block to the named track."""
        prev, self.track = self.track, track
        try:
            yield
        finally:
            self.track = prev

    # -- domain helpers -----------------------------------------------------
    def emit_comm_step(self, timeline, ctimes: Mapping[int, float], algo: str) -> None:
        """Emit one simulated communication step as structured events.

        For every participating processor: an enclosing ``comm`` phase
        slice from its start clock to its finish clock, with the
        individual ``send``/``recv`` operation slices nested inside.
        ``timeline`` is a :class:`repro.core.events.StepTimeline` (duck
        typed: ``events`` with ``proc``/``kind``/``start``/``duration``/
        ``message``, and ``start_times``).
        """
        by_proc: dict[int, list] = {}
        for e in timeline.events:
            by_proc.setdefault(e.proc, []).append(e)
        start_times = timeline.start_times
        for p in sorted(set(start_times) | set(by_proc)):
            ops = by_proc.get(p, ())
            start = start_times.get(p, ops[0].start if ops else 0.0)
            finish = ctimes.get(p, start)
            if not ops and finish <= start:
                continue  # mentioned in start clocks but did nothing
            self.slice("comm", proc=p, ts=start, dur=finish - start, algo=algo)
            for e in ops:
                kind = e.kind.value  # "send" | "recv"
                peer = e.message.dst if kind == "send" else e.message.src
                attrs = {"peer": peer, "bytes": e.message.size, "uid": e.message.uid}
                if kind == "recv" and e.arrival is not None:
                    attrs["arrival"] = e.arrival
                self.slice(kind, proc=p, ts=e.start, dur=e.duration, **attrs)
            self.count(f"sim.ops.{algo}", len(ops))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tracer events={len(self.events)} track={self.track!r}>"


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op.

    Installed as the ambient tracer by default so instrumented code can
    unconditionally fetch it and branch on :attr:`enabled`.
    """

    enabled = False

    def __init__(self):
        super().__init__(metrics=MetricsRegistry())

    def slice(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    def count(self, *args: Any, **kwargs: Any) -> None:
        pass

    def observe(self, *args: Any, **kwargs: Any) -> None:
        pass

    def gauge(self, *args: Any, **kwargs: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, proc: int = -1, **attrs: Any) -> Iterator[None]:
        yield

    @contextmanager
    def in_track(self, track: str) -> Iterator[None]:
        yield

    def emit_comm_step(self, timeline, ctimes, algo) -> None:
        pass


#: the shared disabled tracer (ambient default)
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The ambient tracer (a :class:`NullTracer` unless one is installed)."""
    return _current


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` as the ambient tracer (``None`` disables tracing)."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER


def is_enabled() -> bool:
    """True when the ambient tracer records events."""
    return _current.enabled


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the ``with`` block."""
    global _current
    prev, _current = _current, tracer
    try:
        yield tracer
    finally:
        _current = prev

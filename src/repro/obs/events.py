"""The structured event model and the tracer (span/event) API.

An observability *event* is one of

* a **slice** — a named interval ``[ts, ts + dur)`` on some processor's
  track (``compute``, ``send``, ``recv``, ``comm``, ``local_copy``, ...),
* an **instant** — a named point in time, or
* a wall-clock **span** recorded by the :meth:`Tracer.span` context
  manager (self-instrumentation of the simulator: how long a phase of
  *our* code took, as opposed to simulated time).

Simulated timestamps are microseconds, like everything else in the
package.  Wall-clock spans live on the reserved ``"wall"`` track and are
excluded from bucket aggregation.

Production-cost recording
-------------------------
The tracer is built to stay on during real sweeps.  Three mechanisms
keep an *enabled* run close to the disabled one:

1. **Ring buffer of packed tuples.**  Emission writes a plain tuple into
   a preallocated chunk slot (:mod:`repro.obs.ringbuf`); no dataclass,
   no per-event dict beyond what the caller already built.
2. **Deferred encoding.**  :class:`TraceEvent` objects — and everything
   downstream of them (Perfetto/JSONL/CSV serialisation, bucket
   aggregation) — materialise lazily when :attr:`Tracer.events` is first
   consumed, bit-exactly equal to what eager emission produced.  Whole
   communication steps are recorded as *one* packed record holding the
   step timeline, so the per-message expansion (the bulk of a traced
   sweep) happens entirely at export time.
3. **Category filters and deterministic sampling.**  A
   :class:`repro.obs.config.TraceConfig` turns categories off (zero
   buffer writes, tallied in ``obs.dropped.<category>``) or retains a
   deterministic 1-in-N subset (content-keyed, so retention is identical
   across worker counts; rejects tallied in ``obs.sampled.<category>``).
   Retained counts appear as ``obs.events.<category>`` once the stream
   is materialised.

The ambient tracer
------------------
Instrumented code asks for the current tracer with :func:`get_tracer` and
checks ``tracer.enabled`` before doing any work::

    tr = get_tracer()
    if tr.enabled:
        tr.emit_comm_step(timeline, ctimes, algo="standard")

The default ambient tracer is :data:`NULL_TRACER` (``enabled = False``,
every method a no-op), so an uninstrumented run pays one attribute read
per emission *site*, not per event.  :func:`tracing` installs a real
:class:`Tracer` for the duration of a ``with`` block.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional

from .config import CATEGORIES, TraceConfig, category_of
from .metrics import MetricsRegistry
from .ringbuf import RingBuffer

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "is_enabled",
    "WALL_TRACK",
]

#: reserved track for wall-clock self-instrumentation spans
WALL_TRACK = "wall"

# -- packed record tags (first element of every ring-buffer tuple) ----------
_R_SLICE = 0     # (_R_SLICE, name, ts, dur, proc, track, attrs)
_R_INSTANT = 1   # (_R_INSTANT, name, ts, proc, track, attrs)
_R_COMM = 2      # (_R_COMM, algo, track, events, ctimes, start_times)

#: per-category codes feeding the retention hash (stable across processes)
_CAT_CODE = {cat: i + 1 for i, cat in enumerate(CATEGORIES)}

_M64 = 0xFFFFFFFFFFFFFFFF
_MIX = 0x9E3779B97F4A7C15


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured observation.

    ``kind`` is ``"slice"`` (interval) or ``"instant"`` (point).  ``proc``
    is the processor the event belongs to, or ``-1`` for machine-level
    events.  ``track`` groups events into Perfetto processes (one per
    simulator engine / emulator run).
    """

    name: str
    kind: str
    ts: float
    dur: float = 0.0
    proc: int = -1
    track: str = "sim"
    attrs: Optional[Mapping[str, Any]] = None

    @property
    def end(self) -> float:
        """End of the interval (``ts`` for instants)."""
        return self.ts + self.dur


def _expand_comm_step(
    algo: str,
    track: str,
    events,
    ctimes: Mapping[int, float],
    start_times: Mapping[int, float],
) -> Iterator[TraceEvent]:
    """Deferred encoder of one communication step.

    Reproduces, event for event, what the eager tracer used to emit: per
    participating processor an enclosing ``comm`` phase slice, with the
    individual ``send``/``recv`` operation slices nested inside.  Any
    change here breaks the bit-exact golden-export regression
    (``tests/test_obs_sampling.py``).
    """
    by_proc: dict[int, list] = {}
    for e in events:
        by_proc.setdefault(e.proc, []).append(e)
    for p in sorted(set(start_times) | set(by_proc)):
        ops = by_proc.get(p, ())
        start = start_times.get(p, ops[0].start if ops else 0.0)
        finish = ctimes.get(p, start)
        if not ops and finish <= start:
            continue  # mentioned in start clocks but did nothing
        yield TraceEvent(
            name="comm", kind="slice", ts=start, dur=finish - start,
            proc=p, track=track, attrs={"algo": algo},
        )
        for e in ops:
            kind = e.kind.value  # "send" | "recv"
            peer = e.message.dst if kind == "send" else e.message.src
            attrs = {"peer": peer, "bytes": e.message.size, "uid": e.message.uid}
            if kind == "recv" and e.arrival is not None:
                attrs["arrival"] = e.arrival
            yield TraceEvent(
                name=kind, kind="slice", ts=e.start, dur=e.duration,
                proc=e.proc, track=track, attrs=attrs,
            )


class Tracer:
    """Collects packed event records and metrics during a run.

    One tracer is one event stream; exporters and aggregators consume
    :attr:`events` (materialised on demand) after the traced section
    completes.  ``enabled`` is a plain attribute so hot paths can gate on
    it cheaply; ``config`` selects categories and sampling rates (the
    default records everything).
    """

    enabled: bool = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        config: Optional[TraceConfig] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.config = config if config is not None else TraceConfig()
        #: current track name; use :meth:`in_track` to switch temporarily
        self.track: str = "sim"
        self._buf = RingBuffer()
        #: (on, rate, code) per category, resolved once from the config
        self._plans = {
            cat: (self.config.enabled(cat), self.config.rate_of(cat), _CAT_CODE[cat])
            for cat in CATEGORIES
        }
        #: whole-step deferral is valid while every comm category is
        #: unfiltered — sampling (content-keyed, order-independent) can be
        #: applied equally well at materialisation time, so only a filter,
        #: whose contract is zero buffer writes, forces eager expansion
        self._comm_deferred = all(
            self._plans[c][0] for c in ("comm", "send", "recv")
        )
        self._comm_sampled = any(
            self._plans[c][1] > 1 for c in ("comm", "send", "recv")
        )
        self._seed_mix = (self.config.seed * 0x94D049BB133111EB) & _M64
        #: distributed trace context (:class:`repro.obs.telemetry.TraceContext`)
        #: — ``None`` (the default) keeps spans id-free, so pre-existing
        #: golden exports are bit-identical; installing one makes every
        #: :meth:`span` stamp trace/span/parent ids onto its wall slice
        self.context: Optional[Any] = None
        #: per-(parent span id, name) child sequence numbers
        self._span_seq: dict[tuple[str, str], int] = {}
        self._ops_counters: dict[str, Any] = {}
        self._dropped: dict[str, Any] = {}
        self._sampled: dict[str, Any] = {}
        # incremental materialisation state
        self._mat: list[TraceEvent] = []
        self._mat_records = 0
        self._retained: dict[str, int] = {}

    # -- retention ----------------------------------------------------------
    def wants(self, category: str) -> bool:
        """True when events of ``category`` are recorded (possibly sampled).

        Emission sites with per-run loops hoist this check so a filtered
        category costs nothing per event.
        """
        return self._plans[category][0]

    def _keep(self, code: int, rate: int, proc: int, ts: float, uid: int = 0) -> bool:
        """Deterministic 1-in-``rate`` retention, keyed on event content.

        Pure integer arithmetic over (proc, quantised ts, uid, category,
        seed) — no string hashing, no emission-order counters — so the
        same event is retained or rejected identically in every process.
        """
        h = (
            (int(ts * 1024.0) + uid * 7919 + (proc + 2) * 2654435761 + code * 40503
             + self._seed_mix)
            * _MIX
        ) & _M64
        h ^= h >> 29
        return h % rate == 0

    def _tally(self, cache: dict, prefix: str, category: str, amount: int) -> None:
        c = cache.get(category)
        if c is None:
            c = cache[category] = self.metrics.counter(prefix + category)
        c.inc(amount)

    # -- emission -----------------------------------------------------------
    def slice(
        self,
        name: str,
        proc: int,
        ts: float,
        dur: float,
        track: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Record a named interval ``[ts, ts + dur)`` on ``proc``'s track."""
        if track is None:
            track = self.track
        cat = category_of(name, "slice", track)
        on, rate, code = self._plans[cat]
        if not on:
            self._tally(self._dropped, "obs.dropped.", cat, 1)
            return
        if rate > 1 and not self._keep(code, rate, proc, ts):
            self._tally(self._sampled, "obs.sampled.", cat, 1)
            return
        self._buf.append((_R_SLICE, name, ts, dur, proc, track, attrs or None))

    def instant(self, name: str, ts: float, proc: int = -1, **attrs: Any) -> None:
        """Record a named point in (simulated) time."""
        on, rate, code = self._plans["instant"]
        if not on:
            self._tally(self._dropped, "obs.dropped.", "instant", 1)
            return
        if rate > 1 and not self._keep(code, rate, proc, ts):
            self._tally(self._sampled, "obs.sampled.", "instant", 1)
            return
        self._buf.append((_R_INSTANT, name, ts, proc, self.track, attrs or None))

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment the counter ``name`` in the metrics registry."""
        self.metrics.counter(name).inc(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.metrics.gauge(name).set(value)

    @contextmanager
    def span(
        self,
        name: str,
        proc: int = -1,
        ctx: Optional[Any] = None,
        parent_span_id: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[None]:
        """Wall-clock span: times the enclosed block of *our* code.

        The slice lands on the reserved ``"wall"`` track with microsecond
        timestamps from :func:`time.perf_counter`, so exported traces show
        the simulator's own phases alongside the simulated timelines.

        With a trace :attr:`context` installed the span becomes a node of
        the distributed trace: its slice carries ``trace_id`` /
        ``span_id`` / ``parent_span_id`` attrs with a deterministic child
        id (per-(parent, name) sequence), and the context moves down to
        the node for the duration of the block so nested spans parent
        correctly.  ``ctx`` short-circuits the derivation with an
        explicitly pre-derived node — the cross-process case, where a
        sweep worker's chunk id must be a function of the chunk number,
        not of a per-process counter (see
        :mod:`repro.obs.telemetry`).  Without either, nothing changes:
        the slice is bit-identical to the pre-context tracer's.
        """
        prev = self.context
        if ctx is not None:
            self.context = ctx
            attrs["trace_id"] = ctx.trace_id
            attrs["span_id"] = ctx.span_id
            if parent_span_id is not None:
                attrs["parent_span_id"] = parent_span_id
        elif prev is not None:
            key = (prev.span_id, name)
            seq = self._span_seq.get(key, 0)
            self._span_seq[key] = seq + 1
            node = prev.child(name, seq)
            self.context = node
            attrs["trace_id"] = node.trace_id
            attrs["span_id"] = node.span_id
            attrs["parent_span_id"] = prev.span_id
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.context = prev
            self.slice(
                name, proc=proc, ts=t0 * 1e6, dur=(t1 - t0) * 1e6,
                track=WALL_TRACK, **attrs,
            )

    @contextmanager
    def in_track(self, track: str) -> Iterator[None]:
        """Route emissions inside the block to the named track."""
        prev, self.track = self.track, track
        try:
            yield
        finally:
            self.track = prev

    # -- domain helpers -----------------------------------------------------
    def emit_comm_step(self, timeline, ctimes: Mapping[int, float], algo: str) -> None:
        """Record one simulated communication step.

        While ``comm``/``send``/``recv`` are all unfiltered (sampled or
        not) this appends a *single* packed record referencing the step's
        timeline — the per-processor ``comm`` phases and nested
        ``send``/``recv`` operation slices materialise (and sampling, a
        pure function of event content, applies) only at
        export/aggregation time.  With a comm-category *filter* active —
        whose contract is zero buffer writes for the filtered category —
        the step expands eagerly instead, writing only retained events.

        ``timeline`` is a :class:`repro.core.events.StepTimeline` (duck
        typed: ``events`` with ``proc``/``kind``/``start``/``duration``/
        ``message``, and ``start_times``).
        """
        events = timeline.events
        if self._comm_deferred:
            # Snapshots guard against callers reusing the dicts; the event
            # list is copied into a tuple so later timeline.add() calls
            # (none exist today) could not corrupt the deferred record.
            self._buf.append(
                (_R_COMM, algo, self.track, tuple(events),
                 dict(ctimes), dict(timeline.start_times))
            )
            try:
                ops_counter = self._ops_counters[algo]
            except KeyError:
                ops_counter = self._ops_counters[algo] = self.metrics.counter(
                    f"sim.ops.{algo}"
                )
            ops_counter.inc(len(events))
            return
        self._emit_comm_step_filtered(events, timeline.start_times, ctimes, algo)

    def _emit_comm_step_filtered(self, events, start_times, ctimes, algo) -> None:
        """The non-default path: expand now, keeping only retained events."""
        comm_on, comm_rate, comm_code = self._plans["comm"]
        send_on, send_rate, send_code = self._plans["send"]
        recv_on, recv_rate, recv_code = self._plans["recv"]
        track = self.track
        append = self._buf.append
        keep = self._keep
        dropped = {"comm": 0, "send": 0, "recv": 0}
        sampled = {"comm": 0, "send": 0, "recv": 0}

        by_proc: dict[int, list] = {}
        for e in events:
            by_proc.setdefault(e.proc, []).append(e)
        for p in sorted(set(start_times) | set(by_proc)):
            ops = by_proc.get(p, ())
            start = start_times.get(p, ops[0].start if ops else 0.0)
            finish = ctimes.get(p, start)
            if not ops and finish <= start:
                continue  # mentioned in start clocks but did nothing
            if not comm_on:
                dropped["comm"] += 1
            elif comm_rate > 1 and not keep(comm_code, comm_rate, p, start):
                sampled["comm"] += 1
            else:
                append(
                    (_R_SLICE, "comm", start, finish - start, p, track,
                     {"algo": algo})
                )
            for e in ops:
                kind = e.kind.value  # "send" | "recv"
                if kind == "send":
                    on, rate, code = send_on, send_rate, send_code
                else:
                    on, rate, code = recv_on, recv_rate, recv_code
                msg = e.message
                if not on:
                    dropped[kind] += 1
                    continue
                if rate > 1 and not keep(code, rate, e.proc, e.start, uid=msg.uid):
                    sampled[kind] += 1
                    continue
                peer = msg.dst if kind == "send" else msg.src
                attrs = {"peer": peer, "bytes": msg.size, "uid": msg.uid}
                if kind == "recv" and e.arrival is not None:
                    attrs["arrival"] = e.arrival
                append((_R_SLICE, kind, e.start, e.duration, e.proc, track, attrs))

        for cat, n in dropped.items():
            if n:
                self._tally(self._dropped, "obs.dropped.", cat, n)
        for cat, n in sampled.items():
            if n:
                self._tally(self._sampled, "obs.sampled.", cat, n)
        # the sim.* ops metric counts simulated operations, not retained ones
        self.metrics.counter(f"sim.ops.{algo}").inc(len(events))

    def _expand_comm_step_sampled(
        self, algo, track, events, ctimes, start_times
    ) -> Iterator[TraceEvent]:
        """Deferred expansion of one comm step with sampling applied.

        Same ordering and skip rules as :func:`_expand_comm_step`; the
        content-keyed :meth:`_keep` makes applying the sampler here (at
        materialisation) indistinguishable from applying it at emission,
        while the traced run itself pays only the one-record append.
        Rejects are tallied into ``obs.sampled.<cat>`` as they surface.
        """
        _, comm_rate, comm_code = self._plans["comm"]
        _, send_rate, send_code = self._plans["send"]
        _, recv_rate, recv_code = self._plans["recv"]
        keep = self._keep
        sampled = {"comm": 0, "send": 0, "recv": 0}

        by_proc: dict[int, list] = {}
        for e in events:
            by_proc.setdefault(e.proc, []).append(e)
        for p in sorted(set(start_times) | set(by_proc)):
            ops = by_proc.get(p, ())
            start = start_times.get(p, ops[0].start if ops else 0.0)
            finish = ctimes.get(p, start)
            if not ops and finish <= start:
                continue  # mentioned in start clocks but did nothing
            if comm_rate > 1 and not keep(comm_code, comm_rate, p, start):
                sampled["comm"] += 1
            else:
                yield TraceEvent(
                    name="comm", kind="slice", ts=start, dur=finish - start,
                    proc=p, track=track, attrs={"algo": algo},
                )
            for e in ops:
                kind = e.kind.value  # "send" | "recv"
                rate, code = (
                    (send_rate, send_code) if kind == "send"
                    else (recv_rate, recv_code)
                )
                msg = e.message
                if rate > 1 and not keep(code, rate, e.proc, e.start, uid=msg.uid):
                    sampled[kind] += 1
                    continue
                peer = msg.dst if kind == "send" else msg.src
                attrs = {"peer": peer, "bytes": msg.size, "uid": msg.uid}
                if kind == "recv" and e.arrival is not None:
                    attrs["arrival"] = e.arrival
                yield TraceEvent(
                    name=kind, kind="slice", ts=e.start, dur=e.duration,
                    proc=e.proc, track=track, attrs=attrs,
                )
        for cat, n in sampled.items():
            if n:
                self._tally(self._sampled, "obs.sampled.", cat, n)

    # -- materialisation ----------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """The recorded events as :class:`TraceEvent` objects.

        Packed records are decoded lazily and incrementally: the first
        access after new emissions expands only the new records.  The
        returned list is the tracer's materialisation cache — treat it as
        read-only.
        """
        total = self._buf.count()
        if self._mat_records != total:
            self._materialize(total)
        return self._mat

    def _materialize(self, upto: int) -> None:
        out = self._mat
        fresh_from = len(out)
        for rec in self._buf.iter_from(self._mat_records):
            tag = rec[0]
            if tag == _R_SLICE:
                out.append(
                    TraceEvent(
                        name=rec[1], kind="slice", ts=rec[2], dur=rec[3],
                        proc=rec[4], track=rec[5], attrs=rec[6],
                    )
                )
            elif tag == _R_INSTANT:
                out.append(
                    TraceEvent(
                        name=rec[1], kind="instant", ts=rec[2], proc=rec[3],
                        track=rec[4], attrs=rec[5],
                    )
                )
            elif self._comm_sampled:
                out.extend(
                    self._expand_comm_step_sampled(
                        rec[1], rec[2], rec[3], rec[4], rec[5]
                    )
                )
            else:
                out.extend(_expand_comm_step(rec[1], rec[2], rec[3], rec[4], rec[5]))
        self._mat_records = upto
        # fold the newly materialised span into the per-category tallies
        fresh: dict[str, int] = {}
        for e in out[fresh_from:]:
            cat = category_of(e.name, e.kind, e.track)
            fresh[cat] = fresh.get(cat, 0) + 1
        for cat, n in fresh.items():
            self._retained[cat] = self._retained.get(cat, 0) + n
            self.metrics.counter(f"obs.events.{cat}").inc(n)

    def category_counts(self) -> dict[str, int]:
        """Retained events per category (materialises the stream)."""
        self.events  # noqa: B018 - force materialisation
        return dict(self._retained)

    def telemetry(self) -> dict:
        """JSON-ready summary of what was kept, dropped and sampled out."""
        self.events  # noqa: B018 - force materialisation
        dropped = {cat: c.value for cat, c in self._dropped.items()}
        sampled = {cat: c.value for cat, c in self._sampled.items()}
        return {
            "config": self.config.to_dict(),
            "events_by_category": dict(self._retained),
            "dropped_by_category": dropped,
            "sampled_out_by_category": sampled,
        }

    # -- cross-process shipping ---------------------------------------------
    def export_rows(self) -> list[tuple]:
        """The materialised stream as plain picklable tuples.

        Sweep workers trace their chunks locally (with the parent's
        config, so filters and sampling have already been applied) and
        ship these rows back for :meth:`absorb_rows`.
        """
        return [
            (e.name, e.kind, e.ts, e.dur, e.proc, e.track,
             dict(e.attrs) if e.attrs else None)
            for e in self.events
        ]

    def absorb_rows(self, rows) -> None:
        """Append rows from :meth:`export_rows` (no re-filtering)."""
        self._buf.extend(
            (_R_SLICE, name, ts, dur, proc, track, attrs)
            if kind == "slice"
            else (_R_INSTANT, name, ts, proc, track, attrs)
            for name, kind, ts, dur, proc, track, attrs in rows
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Tracer records={self._buf.count()} track={self.track!r} "
            f"config={'default' if self.config.is_default() else self.config.to_dict()}>"
        )


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op.

    Installed as the ambient tracer by default so instrumented code can
    unconditionally fetch it and branch on :attr:`enabled`.
    """

    enabled = False

    def __init__(self):
        super().__init__(metrics=MetricsRegistry())

    def wants(self, category: str) -> bool:
        return False

    def slice(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    def count(self, *args: Any, **kwargs: Any) -> None:
        pass

    def observe(self, *args: Any, **kwargs: Any) -> None:
        pass

    def gauge(self, *args: Any, **kwargs: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, proc: int = -1, **attrs: Any) -> Iterator[None]:
        yield

    @contextmanager
    def in_track(self, track: str) -> Iterator[None]:
        yield

    def emit_comm_step(self, timeline, ctimes, algo) -> None:
        pass


#: the shared disabled tracer (ambient default)
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The ambient tracer (a :class:`NullTracer` unless one is installed)."""
    return _current


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` as the ambient tracer (``None`` disables tracing)."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER


def is_enabled() -> bool:
    """True when the ambient tracer records events."""
    return _current.enabled


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the ``with`` block."""
    global _current
    prev, _current = _current, tracer
    try:
        yield tracer
    finally:
        _current = prev

"""Aggregation of the event stream into lost-cycles buckets.

This is the bridge that makes the lost-cycles profiler
(:mod:`repro.machine.profiler`) a *consumer* of the observability event
stream instead of a parallel re-implementation of the simulation: the
whole-program simulator emits ``compute`` slices and enclosing ``comm``
phase slices (with ``send``/``recv`` operation slices nested inside), and
this module folds them into the paper's per-processor buckets:

* ``compute`` — sum of ``compute`` slice durations,
* ``send`` / ``recv`` — sum of the operation slice durations,
* ``wait``    — time inside ``comm`` phases not covered by operations
  (``Σ comm − Σ send − Σ recv``),
* ``idle``    — from the processor's last event to the makespan.

``idle`` is derived by subtraction in the exact expression order
:attr:`repro.machine.profiler.ProcessorProfile.total` re-adds the
buckets, so ``compute + send + recv + wait + idle == makespan`` holds to
within a couple of ulps for every processor — the invariant the test
suite asserts at 1e-9 µs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .events import WALL_TRACK, TraceEvent

__all__ = ["BUCKET_NAMES", "bucket_sums", "profile_from_events"]

#: the lost-cycles buckets, in the paper's reporting order
BUCKET_NAMES = ("compute", "send", "recv", "wait", "idle")


def bucket_sums(
    events: Iterable[TraceEvent],
    num_procs: int,
    makespan: Optional[float] = None,
) -> tuple[dict[int, dict[str, float]], float]:
    """Fold slices into per-processor buckets.

    Only ``compute``, ``send``, ``recv`` and ``comm`` slices participate;
    wall-clock spans and machine-level events are ignored.  Returns
    ``({proc: {bucket: µs}}, makespan)``; when ``makespan`` is not given
    it is the maximum slice end over all processors.
    """
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1")
    compute = {p: 0.0 for p in range(num_procs)}
    send = {p: 0.0 for p in range(num_procs)}
    recv = {p: 0.0 for p in range(num_procs)}
    comm = {p: 0.0 for p in range(num_procs)}
    finish = {p: 0.0 for p in range(num_procs)}

    for e in events:
        if e.kind != "slice" or e.track == WALL_TRACK:
            continue
        p = e.proc
        if p < 0 or p >= num_procs:
            continue
        end = e.ts + e.dur
        if end > finish[p]:
            finish[p] = end
        if e.name == "compute":
            compute[p] += e.dur
        elif e.name == "send":
            send[p] += e.dur
        elif e.name == "recv":
            recv[p] += e.dur
        elif e.name == "comm":
            comm[p] += e.dur

    if makespan is None:
        makespan = max(finish.values(), default=0.0)

    out: dict[int, dict[str, float]] = {}
    for p in range(num_procs):
        wait = max(0.0, comm[p] - send[p] - recv[p])
        # Accumulate in ProcessorProfile.total's left-to-right order so the
        # derived idle makes the bucket identity exact in float arithmetic.
        accounted = ((compute[p] + send[p]) + recv[p]) + wait
        idle = max(0.0, makespan - accounted)
        out[p] = {
            "compute": compute[p],
            "send": send[p],
            "recv": recv[p],
            "wait": wait,
            "idle": idle,
        }
    return out, makespan


def profile_from_events(
    events: Iterable[TraceEvent],
    num_procs: int,
    makespan: Optional[float] = None,
    meta: Optional[Mapping] = None,
):
    """Build a :class:`repro.machine.profiler.ProgramProfile` from events.

    The inverse-dependency twin of :func:`bucket_sums`: the profiler
    imports this module, so the profile classes are imported lazily here.
    """
    from ..machine.profiler import ProcessorProfile, ProgramProfile

    sums, makespan = bucket_sums(events, num_procs, makespan)
    processors = {
        p: ProcessorProfile(proc=p, **buckets) for p, buckets in sums.items()
    }
    return ProgramProfile(
        makespan_us=makespan,
        processors=processors,
        meta=dict(meta) if meta else {},
    )

"""A small metrics registry: counters, gauges, histograms.

Metrics complement the event stream: events answer *when and where*,
metrics answer *how many and how much* without retaining every sample.
The registry snapshot is embedded into run manifests
(:mod:`repro.obs.manifest`) so benchmark trajectories can track event
counts and throughput over time.
"""

from __future__ import annotations

import math
import threading
from typing import Union

__all__ = ["Counter", "Gauge", "Histogram", "QuantileTracker", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: Number = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. current queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Replace the gauge value."""
        self.value = float(value)


class Histogram:
    """Streaming aggregates of observations: count / sum / min / max / mean.

    Keeps O(1) state — no samples are retained — which is what a tracer
    attached to a multi-million-event simulation needs.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def observe(self, value: Number) -> None:
        """Fold one observation into the aggregates."""
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-ready summary of the aggregates."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class QuantileTracker:
    """Quantiles over a bounded window of the most recent observations.

    :class:`Histogram` keeps O(1) aggregates and therefore cannot answer
    p50/p99 — which is exactly what a serving layer reports about its
    request latencies.  This tracker keeps the last ``capacity``
    observations in a ring (O(capacity) memory regardless of traffic) and
    computes quantiles on demand by sorting the window.  It is not
    registered in :class:`MetricsRegistry` snapshots (those stay additive
    and mergeable); callers embed :meth:`snapshot` where they need it,
    e.g. the prediction server's ``/v1/stats`` document.

    Thread-safe: the server observes latencies from request threads while
    the stats endpoint snapshots concurrently, so the slot/counter update
    in :meth:`observe` and the window copy both hold a lock (an unlocked
    read-modify-write of ``_pos`` can double-write one slot and skip
    another, silently dropping observations).
    """

    __slots__ = ("name", "capacity", "_ring", "_pos", "_count", "_lock")

    def __init__(self, name: str, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._ring: list[float] = [0.0] * capacity
        self._pos = 0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        """Fold one observation into the window (evicting the oldest)."""
        v = float(value)
        with self._lock:
            self._ring[self._pos] = v
            self._pos = (self._pos + 1) % self.capacity
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations seen (not capped at the window size)."""
        with self._lock:
            return self._count

    def window(self) -> list[float]:
        """The retained observations (unordered; at most ``capacity``)."""
        with self._lock:
            if self._count >= self.capacity:
                return list(self._ring)
            return self._ring[: self._pos]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the window (nearest-rank; 0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        window = sorted(self.window())
        if not window:
            return 0.0
        rank = min(len(window) - 1, max(0, math.ceil(q * len(window)) - 1))
        return window[rank]

    def snapshot(self, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict:
        """JSON-ready window summary with the requested quantiles."""
        window = sorted(self.window())
        doc: dict = {"count": self.count, "window": len(window)}
        for q in quantiles:
            key = f"p{q * 100:g}".replace(".", "_")
            if window:
                rank = min(len(window) - 1, max(0, math.ceil(q * len(window)) - 1))
                doc[key] = window[rank]
            else:
                doc[key] = None
        return doc


class MetricsRegistry:
    """Name-indexed counters, gauges and histograms (created on first use)."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter ``name`` (registered on first access)."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        """The gauge ``name`` (registered on first access)."""
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        """The histogram ``name`` (registered on first access)."""
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name)
            return h

    def snapshot(self) -> dict:
        """All metrics as one JSON-ready dict (sorted by name)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram aggregates are additive (min/max fold
        through comparison); gauges take the incoming value, last writer
        wins.  Sweep workers trace their chunks in separate processes and
        ship snapshots back for merging, so a parallel traced sweep ends
        with the same totals a serial one accumulates directly.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, agg in snapshot.get("histograms", {}).items():
            if not agg.get("count"):
                continue
            h = self.histogram(name)
            h.count += agg["count"]
            h.total += agg["sum"]
            if agg["min"] < h.min:
                h.min = agg["min"]
            if agg["max"] > h.max:
                h.max = agg["max"]

    def to_prometheus(self, extra_samples=()) -> str:
        """The registry in Prometheus text exposition format.

        Convenience front-end to :func:`repro.obs.promtext.render`; the
        round trip ``promtext.parse(registry.to_prometheus())`` equals
        :meth:`snapshot` exactly.
        """
        from .promtext import render  # deferred: promtext is standalone

        return render(self.snapshot(), extra_samples=extra_samples)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

"""Structured JSONL logging, correlated with the ambient trace.

One log record per line, machine-parseable, stamped with the trace and
span ids of whatever span is open on the ambient tracer at emission
time — so ``grep <trace_id> run.log.jsonl`` pulls every log line of one
request/run out of an interleaved file, and a merged trace plus the log
share a join key.

The module-level logger follows the tracer's ambient pattern
(:func:`repro.obs.events.get_tracer`): the default is a no-op, callers
opt in by installing a :class:`JsonlLogger`, and library code logs
unconditionally through :func:`log_event` at near-zero disabled cost.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional, Union

__all__ = [
    "JsonlLogger",
    "NULL_LOGGER",
    "get_logger",
    "set_logger",
    "log_event",
]

LOG_SCHEMA = "repro.log/v1"


def _ambient_trace_fields() -> dict:
    # deferred import: events must not import log at module load time
    from .events import get_tracer

    ctx = getattr(get_tracer(), "context", None)
    if ctx is None:
        return {}
    return {"trace_id": ctx.trace_id, "span_id": ctx.span_id}


class JsonlLogger:
    """Thread-safe writer of one JSON object per line.

    ``sink`` is a path (opened append-mode, line-buffered) or an already
    open text stream.  Every record carries ``ts`` (unix seconds),
    ``event`` and — when the ambient tracer has a trace context
    installed — ``trace_id``/``span_id``; explicit keyword fields win
    over the ambient stamps.
    """

    def __init__(self, sink: Union[str, "IO[str]"]) -> None:
        if isinstance(sink, str):
            self._stream: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns = True
        else:
            self._stream = sink
            self._owns = False
        self._lock = threading.Lock()

    def log(self, event: str, **fields) -> dict:
        record = {"schema": LOG_SCHEMA, "ts": time.time(), "event": event}
        record.update(_ambient_trace_fields())
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
        return record

    def close(self) -> None:
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "JsonlLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullLogger:
    """Disabled logging: every call is a cheap no-op."""

    def log(self, event: str, **fields) -> dict:
        return {}

    def close(self) -> None:
        pass


NULL_LOGGER = _NullLogger()

_ambient = threading.local()


def get_logger():
    """The installed logger, or the no-op default."""
    return getattr(_ambient, "logger", NULL_LOGGER)


def set_logger(logger) -> None:
    """Install ``logger`` (or ``None`` to restore the no-op default)."""
    _ambient.logger = NULL_LOGGER if logger is None else logger


def log_event(event: str, **fields) -> dict:
    """Emit through the ambient logger (no-op unless one is installed)."""
    return get_logger().log(event, **fields)

"""Prometheus text exposition: render a metrics snapshot, parse it back.

The serving layer exposes ``GET /metrics`` for scrapers, and the repo
takes no dependencies — so both directions live here, with a round-trip
contract the test suite pins exactly::

    parse(render(registry)) == registry.snapshot()

The registry's metric names are dotted (``sim.ops.standard``), which the
exposition format's name charset forbids.  Rather than mangling names
lossily (``sim_ops_standard`` cannot be inverted), every sample carries
its registry name in a ``metric`` label under one family per metric
type::

    repro_counter_total{metric="sim.ops.standard"} 1234.0
    repro_gauge{metric="serve.inflight"} 2.0
    repro_histogram_count{metric="sweep.wall_s"} 3
    repro_histogram_sum{metric="sweep.wall_s"} 0.41

Histograms are the registry's O(1) aggregates (count/sum/min/max — no
buckets are retained, see :class:`repro.obs.metrics.Histogram`), rendered
as four gauge-shaped families; ``min``/``max`` are omitted for empty
histograms and ``mean`` is recomputed as ``sum / count`` on parse, which
is bit-identical to what :meth:`Histogram.snapshot` computes.  Float
values use ``repr`` (shortest round-tripping form), so parsing recovers
the exact IEEE value.

:func:`parse_samples` is the strict layer — it validates every
non-comment line against the exposition grammar and is what the tests
use to *lint* ``/metrics`` output (including extra families like the
latency quantiles, which are not part of the registry snapshot).
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Tuple, Union

__all__ = [
    "FAMILIES",
    "render",
    "parse",
    "parse_samples",
]

#: exposition family -> (metric type, help text)
FAMILIES = {
    "repro_counter_total": ("counter", "Monotonic counters of the repro metrics registry."),
    "repro_gauge": ("gauge", "Point-in-time gauges of the repro metrics registry."),
    "repro_histogram_count": ("gauge", "Observation counts of the repro histograms."),
    "repro_histogram_sum": ("gauge", "Observation sums of the repro histograms."),
    "repro_histogram_min": ("gauge", "Minimum observations of the repro histograms."),
    "repro_histogram_max": ("gauge", "Maximum observations of the repro histograms."),
}

_NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_RE = rf'(?P<lname>{_NAME_RE})="(?P<lvalue>(?:[^"\\\n]|\\.)*)"'
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_NAME_RE})"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_ITEM_RE = re.compile(_LABEL_RE)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


Sample = Tuple[str, dict, float]


def render(
    snapshot,
    extra_samples: Iterable[Sample] = (),
) -> str:
    """The Prometheus text exposition of a registry (or its snapshot).

    ``extra_samples`` appends wholesale ``(family, labels, value)``
    samples — the server uses it for latency quantiles and uptime, which
    live outside the additive registry.  Families appear in a fixed
    order with ``# HELP`` / ``# TYPE`` headers; samples are sorted by
    metric name, so the output is deterministic.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    by_family: dict[str, list[tuple[dict, Union[int, float]]]] = {
        fam: [] for fam in FAMILIES
    }
    for name, value in sorted(snapshot.get("counters", {}).items()):
        by_family["repro_counter_total"].append(({"metric": name}, value))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        by_family["repro_gauge"].append(({"metric": name}, value))
    for name, agg in sorted(snapshot.get("histograms", {}).items()):
        labels = {"metric": name}
        by_family["repro_histogram_count"].append((labels, int(agg["count"])))
        by_family["repro_histogram_sum"].append((labels, float(agg["sum"])))
        if agg["count"]:
            by_family["repro_histogram_min"].append((labels, float(agg["min"])))
            by_family["repro_histogram_max"].append((labels, float(agg["max"])))

    lines: list[str] = []

    def emit(family: str, labels: Mapping[str, str], value) -> None:
        if labels:
            body = ",".join(
                f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
            )
            lines.append(f"{family}{{{body}}} {_fmt(value)}")
        else:
            lines.append(f"{family} {_fmt(value)}")

    for family, (mtype, help_text) in FAMILIES.items():
        samples = by_family[family]
        if not samples:
            continue
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {mtype}")
        for labels, value in samples:
            emit(family, labels, value)
    extras = list(extra_samples)
    if extras:
        seen: set[str] = set()
        for family, labels, value in extras:
            if family not in seen and family not in FAMILIES:
                seen.add(family)
                lines.append(f"# TYPE {family} gauge")
            emit(family, labels, value)
    return "\n".join(lines) + "\n"


def parse_samples(text: str) -> list[Sample]:
    """Every sample of an exposition document, strictly validated.

    Raises :class:`ValueError` on any line that is neither a comment,
    blank, nor a well-formed ``name[{labels}] value`` sample — this is
    the linter the ``/metrics`` tests run over the full endpoint output.
    """
    samples: list[Sample] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        labels: dict[str, str] = {}
        raw = m.group("labels")
        if raw:
            consumed = 0
            for lm in _LABEL_ITEM_RE.finditer(raw):
                labels[lm.group("lname")] = _unescape(lm.group("lvalue"))
                consumed += 1
            # every comma-separated item must have matched
            if consumed != len([p for p in _split_labels(raw)]):
                raise ValueError(f"line {lineno}: malformed labels: {raw!r}")
        try:
            value = _parse_value(m.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: not a valid sample value: {m.group('value')!r}"
            )
        samples.append((m.group("name"), labels, value))
    return samples


def _split_labels(raw: str) -> list[str]:
    """Comma-split label items, honouring quotes and escapes."""
    items: list[str] = []
    buf: list[str] = []
    quoted = False
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and quoted and i + 1 < len(raw):
            buf.append(ch)
            buf.append(raw[i + 1])
            i += 2
            continue
        if ch == '"':
            quoted = not quoted
        if ch == "," and not quoted:
            if buf:
                items.append("".join(buf))
                buf = []
        else:
            buf.append(ch)
        i += 1
    if buf:
        items.append("".join(buf))
    return [item for item in items if item.strip()]


def parse(text: str) -> dict:
    """Invert :func:`render` back to a registry snapshot dict.

    Samples of unknown families (latency quantiles, uptime, ...) are
    ignored — they are exposition extras, not registry state.  The
    result is structurally identical to
    :meth:`repro.obs.MetricsRegistry.snapshot`, including recomputed
    histogram means, hence the exact round-trip contract.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    parts: dict[str, dict[str, float]] = {}
    for family, labels, value in parse_samples(text):
        if family not in FAMILIES:
            continue
        name = labels.get("metric")
        if name is None:
            raise ValueError(
                f"family {family} sample without a metric label: {labels!r}"
            )
        if family == "repro_counter_total":
            counters[name] = value
        elif family == "repro_gauge":
            gauges[name] = value
        else:
            field = family[len("repro_histogram_"):]
            parts.setdefault(name, {})[field] = value
    histograms: dict[str, dict] = {}
    for name, fields in sorted(parts.items()):
        count = int(fields.get("count", 0))
        total = float(fields.get("sum", 0.0))
        if not count:
            histograms[name] = {
                "count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0,
            }
        else:
            histograms[name] = {
                "count": count,
                "sum": total,
                "min": fields["min"],
                "max": fields["max"],
                "mean": total / count,
            }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": histograms,
    }

"""Trace configuration: category filters and deterministic sampling.

Every event the tracer can emit belongs to exactly one **category**:

=============  ==========================================================
``compute``    per-step kernel work: the simulators' and the emulator's
               computation-phase slices (alias: ``kernel_step``)
``comm``       the enclosing per-processor communication-phase slices
``send``       individual send operation slices
``recv``       individual receive operation slices
``local_copy`` the emulator's self-message memory-transfer slices
``instant``    all point events (collective markers, ...)
``wall``       wall-clock self-instrumentation spans (simulator phases,
               sweep-engine chunks, store writes)
``other``      any slice name the core taxonomy does not know
=============  ==========================================================

A :class:`TraceConfig` decides, per category, whether events are recorded
at all (the filter) and, when they are, whether only a deterministic
1-in-N subset is retained (the sampler).  Sampling decisions are a pure
function of event *content* (processor, timestamp, message uid) and the
config's ``seed`` — never of emission order or process identity — so a
sweep traced under 1 worker and under 8 workers retains the identical
event set.

The config round-trips through JSON (:meth:`to_dict`/:meth:`from_dict`)
so it can travel to sweep worker processes and into run manifests, and
parses from the CLI flag syntax (:meth:`parse`):

* ``--trace-categories comm,send,recv`` — only those categories;
* ``--trace-sample 16`` — keep 1-in-16 of every category;
* ``--trace-sample send=16,recv=16`` — per-category rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

__all__ = ["CATEGORIES", "TraceConfig", "category_of"]

#: the category taxonomy, in reporting order
CATEGORIES = (
    "compute",
    "comm",
    "send",
    "recv",
    "local_copy",
    "instant",
    "wall",
    "other",
)

#: accepted spellings that map onto a canonical category
_ALIASES = {"kernel_step": "compute", "span": "wall"}

#: slice names the core taxonomy knows (anything else is ``other``)
_NAME_CATEGORY = {
    "compute": "compute",
    "comm": "comm",
    "send": "send",
    "recv": "recv",
    "local_copy": "local_copy",
}

#: reserved track for wall-clock spans (mirrors events.WALL_TRACK; kept
#: here so this module stays import-leaf)
_WALL_TRACK = "wall"


def category_of(name: str, kind: str, track: str) -> str:
    """The category of an event with the given name/kind/track."""
    if kind == "instant":
        return "instant"
    if track == _WALL_TRACK:
        return "wall"
    return _NAME_CATEGORY.get(name, "other")


def _canonical(name: str) -> str:
    cat = _ALIASES.get(name, name)
    if cat not in CATEGORIES:
        raise ValueError(
            f"unknown trace category {name!r}; expected one of "
            f"{', '.join(CATEGORIES)} (or alias "
            f"{', '.join(sorted(_ALIASES))})"
        )
    return cat


def _parse_rate(text: str, what: str) -> int:
    try:
        rate = int(text)
    except ValueError:
        raise ValueError(f"trace sample rate {what} must be an integer, got {text!r}")
    if rate < 1:
        raise ValueError(f"trace sample rate {what} must be >= 1, got {rate}")
    return rate


@dataclass(frozen=True)
class TraceConfig:
    """Which categories a tracer records, and at what sampling rate.

    ``categories=None`` means *all* categories are on.  ``sample`` maps a
    category to its 1-in-N retention rate; ``sample_default`` applies to
    categories without an explicit rate (1 = keep everything).  ``seed``
    perturbs the deterministic retention hash, so distinct studies can
    retain distinct (but internally reproducible) subsets.
    """

    categories: Optional[frozenset[str]] = None
    sample: tuple[tuple[str, int], ...] = ()
    sample_default: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.categories is not None:
            object.__setattr__(
                self, "categories", frozenset(_canonical(c) for c in self.categories)
            )
        norm = tuple(sorted((_canonical(c), int(r)) for c, r in self.sample))
        for cat, rate in norm:
            if rate < 1:
                raise ValueError(f"sample rate for {cat!r} must be >= 1, got {rate}")
        object.__setattr__(self, "sample", norm)
        if self.sample_default < 1:
            raise ValueError(
                f"sample_default must be >= 1, got {self.sample_default}"
            )

    # -- queries ------------------------------------------------------------
    def enabled(self, category: str) -> bool:
        """True when events of ``category`` are recorded at all."""
        return self.categories is None or category in self.categories

    def rate_of(self, category: str) -> int:
        """The 1-in-N retention rate of ``category`` (1 = keep all)."""
        for cat, rate in self.sample:
            if cat == category:
                return rate
        return self.sample_default

    def is_default(self) -> bool:
        """True for the record-everything config (no filter, no sampling)."""
        return self.categories is None and not self.sample and self.sample_default == 1

    # -- construction -------------------------------------------------------
    @classmethod
    def parse(
        cls,
        categories: Union[str, Sequence[str], None] = None,
        sample: Union[str, int, Mapping[str, int], None] = None,
        seed: int = 0,
    ) -> "TraceConfig":
        """Build a config from the CLI flag syntax (see module docstring)."""
        cats: Optional[frozenset[str]] = None
        if categories is not None:
            if isinstance(categories, str):
                names = [c.strip() for c in categories.split(",") if c.strip()]
            else:
                names = list(categories)
            if names and names != ["all"]:
                cats = frozenset(_canonical(c) for c in names)

        pairs: list[tuple[str, int]] = []
        default = 1
        if sample is not None:
            if isinstance(sample, int):
                default = sample
                if default < 1:
                    raise ValueError(f"trace sample rate must be >= 1, got {default}")
            elif isinstance(sample, Mapping):
                pairs = [(c, int(r)) for c, r in sample.items()]
            else:
                for part in (p.strip() for p in sample.split(",")):
                    if not part:
                        continue
                    if "=" in part:
                        cat, _, rate = part.partition("=")
                        pairs.append((cat.strip(), _parse_rate(rate, f"for {cat!r}")))
                    else:
                        default = _parse_rate(part, "")
        return cls(
            categories=cats, sample=tuple(pairs), sample_default=default, seed=seed
        )

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready document (what run manifests and sweep workers see)."""
        return {
            "categories": sorted(self.categories) if self.categories is not None else None,
            "sample": {cat: rate for cat, rate in self.sample},
            "sample_default": self.sample_default,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "TraceConfig":
        """Inverse of :meth:`to_dict`."""
        cats = doc.get("categories")
        return cls(
            categories=frozenset(cats) if cats is not None else None,
            sample=tuple((c, int(r)) for c, r in dict(doc.get("sample") or {}).items()),
            sample_default=int(doc.get("sample_default", 1)),
            seed=int(doc.get("seed", 0)),
        )

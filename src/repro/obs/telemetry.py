"""Cross-process trace propagation, shard files and deterministic stitching.

The PR 6 tracer stops at process boundaries: a traced ``repro sweep
--workers N`` ships worker events back for live absorption, but nothing
ties a worker's ``sweep.chunk`` span to the dispatching run — and a
crashed or long-running job leaves no per-process artefact to stitch
after the fact.  This module closes both gaps:

* :class:`TraceContext` — a compact trace context (``trace_id`` +
  ``span_id``) that travels in worker payloads and serve batches.  Span
  ids are *derived*, not drawn: ``sha256(trace_id | parent | name | seq)``
  truncated to 16 hex chars, so re-running the same program yields the
  same tree and no coordination between processes is ever needed.
  :meth:`repro.obs.Tracer.span` stamps ``trace_id`` / ``span_id`` /
  ``parent_span_id`` attrs onto its wall slices whenever a context is
  installed (and stays bit-exactly silent when none is — the golden
  exports never see an id).
* **Shard files** — :func:`write_shard` flushes one tracer's ring buffer
  to a JSONL sidecar (header line with schema/config/context/metrics,
  then one packed event row per line, written atomically);
  :func:`read_shard` inverts it.
* **Deterministic merging** — :func:`merge_shards` stitches any set of
  shards into one timeline by a stable sort on packed event tuples.  The
  sort key is a pure function of event content, so merging shards *in
  any permutation* yields a byte-identical export, and — because PR 6's
  retention hash is content-keyed — the non-wall portion of the merged
  stream is identical across worker counts.  :func:`trace_digest`
  canonicalises exactly that portion (wall spans carry
  ``perf_counter`` timestamps and worker-dependent chunk structure, so
  they are correlation data, not digest material).
* **Validation** — :func:`validate_span_tree` resolves every
  ``parent_span_id`` against the span ids present in the stream (plus
  the implicit per-trace root, a pure function of the trace id), which
  is the CI gate's zero-orphan check.

Wire format and determinism rules are specified in DESIGN.md §14.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .events import WALL_TRACK, TraceEvent, Tracer
from .export import to_chrome_trace
from .metrics import MetricsRegistry

__all__ = [
    "SHARD_SCHEMA",
    "TRACE_ID_ATTR",
    "SPAN_ID_ATTR",
    "PARENT_SPAN_ATTR",
    "TraceContext",
    "root_span_id",
    "child_span_id",
    "TraceShard",
    "write_shard",
    "read_shard",
    "MergedTrace",
    "merge_shards",
    "trace_digest",
    "SpanTreeReport",
    "validate_span_tree",
    "write_merged_trace",
    "write_merged_events",
]

#: schema identifier of shard files (the header line's ``schema`` field)
SHARD_SCHEMA = "repro.trace-shard/v1"

#: attr keys carrying the trace context on wall-track span slices
TRACE_ID_ATTR = "trace_id"
SPAN_ID_ATTR = "span_id"
PARENT_SPAN_ATTR = "parent_span_id"

_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16


def _hex(material: str, width: int) -> str:
    return hashlib.sha256(material.encode()).hexdigest()[:width]


def root_span_id(trace_id: str) -> str:
    """The implicit root span id of ``trace_id``.

    A pure function of the trace id, so any process holding the id — and
    any post-hoc validator — can resolve parents that point at the root
    without a root event ever being shipped.
    """
    return _hex(f"repro-root|{trace_id}", _SPAN_ID_HEX)


def child_span_id(trace_id: str, parent_span_id: str, name: str, seq: int) -> str:
    """The deterministic id of the ``seq``-th ``name`` child of a span."""
    return _hex(
        f"repro-span|{trace_id}|{parent_span_id}|{name}|{seq}", _SPAN_ID_HEX
    )


@dataclass(frozen=True)
class TraceContext:
    """One node of a distributed trace: ``(trace_id, span_id)``.

    Immutable and JSON-round-trippable, so it travels in sweep worker
    payloads, serve batch state and shard headers.  :meth:`child` derives
    the next tree node without coordination; the caller supplies the
    sequence discriminator (the tracer uses a per-(parent, name) counter,
    the sweep runner uses the chunk number, the server its request/batch
    sequence) so ids stay unique *and* reproducible.
    """

    trace_id: str
    span_id: str

    @classmethod
    def root(cls, *material: object) -> "TraceContext":
        """A root context derived from ``material`` (command, argv, ...)."""
        trace_id = _hex(
            "repro-trace|" + "|".join(str(m) for m in material), _TRACE_ID_HEX
        )
        return cls(trace_id=trace_id, span_id=root_span_id(trace_id))

    def child(self, name: str, seq: int) -> "TraceContext":
        """The context of this node's ``seq``-th ``name`` child span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=child_span_id(self.trace_id, self.span_id, name, seq),
        )

    def to_dict(self) -> dict:
        """JSON-ready wire document (see DESIGN.md §14)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, doc) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        return cls(trace_id=str(doc["trace_id"]), span_id=str(doc["span_id"]))


# -- shard files --------------------------------------------------------------
@dataclass
class TraceShard:
    """One process's flushed trace: header facts plus packed event rows."""

    label: str
    config: dict
    context: Optional[dict]
    metrics: dict
    rows: list[tuple]

    @property
    def trace_context(self) -> Optional[TraceContext]:
        """The shard's :class:`TraceContext` (``None`` for uncorrelated)."""
        return TraceContext.from_dict(self.context) if self.context else None


def _event_row(e: TraceEvent) -> tuple:
    return (
        e.name, e.kind, e.ts, e.dur, e.proc, e.track,
        dict(e.attrs) if e.attrs else None,
    )


def write_shard(
    path,
    tracer: Tracer,
    *,
    label: str = "main",
    context: Optional[TraceContext] = None,
) -> Path:
    """Flush one tracer's materialised stream to a shard file.

    The file is JSONL: one header object (schema, label, trace config,
    context, metrics snapshot), then one packed ``[name, kind, ts, dur,
    proc, track, attrs]`` row per retained event.  Written atomically
    (temp file + rename) so a concurrently-started merge never reads a
    torn shard.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    if context is None:
        context = getattr(tracer, "context", None)
    # materialise before snapshotting: materialisation tallies the
    # obs.events.* retained counters, which belong in the header
    events = list(tracer.events)
    header = {
        "schema": SHARD_SCHEMA,
        "label": label,
        "config": tracer.config.to_dict(),
        "context": context.to_dict() if context is not None else None,
        "metrics": tracer.metrics.snapshot(),
    }
    tmp = out.with_name(out.name + f".tmp.{os.getpid()}")
    with open(tmp, "w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for e in events:
            fh.write(json.dumps(_event_row(e)) + "\n")
    os.replace(tmp, out)
    return out


def read_shard(path) -> TraceShard:
    """Read one :func:`write_shard` file back."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"empty trace shard: {path}")
    header = json.loads(lines[0])
    if header.get("schema") != SHARD_SCHEMA:
        raise ValueError(
            f"{path}: not a {SHARD_SCHEMA} shard "
            f"(schema={header.get('schema')!r})"
        )
    rows = [tuple(json.loads(line)) for line in lines[1:] if line.strip()]
    return TraceShard(
        label=str(header.get("label", "")),
        config=dict(header.get("config") or {}),
        context=header.get("context"),
        metrics=dict(header.get("metrics") or {}),
        rows=rows,
    )


# -- deterministic merging ----------------------------------------------------
_KIND_RANK = {"slice": 0, "instant": 1}


def _sort_key(row: tuple) -> tuple:
    """Total order over packed event rows, a pure function of content.

    ``(track, proc, ts, dur, kind, name, canonical attrs)`` — two rows
    compare equal under this key only when they are the same event, so a
    stable sort of any shard permutation produces one canonical stream.
    """
    name, kind, ts, dur, proc, track, attrs = row
    return (
        track, proc, ts, dur, _KIND_RANK.get(kind, 2), name,
        json.dumps(attrs, sort_keys=True) if attrs else "",
    )


@dataclass
class MergedTrace:
    """A stitched timeline: canonical events plus folded shard metrics."""

    events: list[TraceEvent]
    metrics: MetricsRegistry
    shards: list[str] = field(default_factory=list)
    contexts: list[Optional[dict]] = field(default_factory=list)

    @property
    def trace_ids(self) -> list[str]:
        """Distinct trace ids among the shard contexts (sorted)."""
        return sorted(
            {c["trace_id"] for c in self.contexts if c and c.get("trace_id")}
        )


ShardLike = Union[TraceShard, str, Path]


def merge_shards(shards: Iterable[ShardLike]) -> MergedTrace:
    """Stitch shards into one canonical timeline.

    Event rows from every shard are concatenated and stable-sorted on
    :func:`_sort_key`; shard metric snapshots fold into one registry
    (counters/histograms additive).  The result is independent of the
    order shards are passed in — the order-invariance property the
    hypothesis suite pins byte-for-byte.

    Each event must live in exactly one shard (the sweep runner and the
    CLI guarantee this: worker chunks flush their own shards *instead of*
    shipping rows back when a shard directory is configured).
    """
    loaded: list[TraceShard] = []
    for s in shards:
        loaded.append(s if isinstance(s, TraceShard) else read_shard(s))
    if not loaded:
        raise ValueError("merge_shards needs at least one shard")
    rows = [row for shard in loaded for row in shard.rows]
    rows.sort(key=_sort_key)
    events = [
        TraceEvent(
            name=r[0], kind=r[1], ts=r[2], dur=r[3], proc=r[4], track=r[5],
            attrs=r[6] or None,
        )
        for r in rows
    ]
    metrics = MetricsRegistry()
    # fold in label order so gauge last-writer-wins is deterministic too
    for shard in sorted(loaded, key=lambda s: s.label):
        if shard.metrics:
            metrics.merge(shard.metrics)
    return MergedTrace(
        events=events,
        metrics=metrics,
        shards=[s.label for s in sorted(loaded, key=lambda s: s.label)],
        contexts=[s.context for s in sorted(loaded, key=lambda s: s.label)],
    )


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """SHA-256 over the canonical non-wall portion of an event stream.

    Wall-track spans carry host ``perf_counter`` timestamps and
    worker-count-dependent chunk boundaries; everything else is simulated
    time under the content-keyed retention discipline, hence identical
    across re-runs and worker counts.  The digest sorts those events on
    the same key the merger uses, so a serial run's stream and a merged
    worker-shard stream agree bit for bit — the trace-stitch CI gate.
    """
    rows = sorted(
        (_event_row(e) for e in events if e.track != WALL_TRACK),
        key=_sort_key,
    )
    h = hashlib.sha256()
    for row in rows:
        h.update(json.dumps(row, sort_keys=True).encode())
        h.update(b"\n")
    return h.hexdigest()


# -- span-tree validation -----------------------------------------------------
@dataclass
class SpanTreeReport:
    """What :func:`validate_span_tree` found."""

    spans: int
    traces: list[str]
    roots: list[str]
    orphans: list[TraceEvent]

    @property
    def ok(self) -> bool:
        """True when every parent id resolves within the stream."""
        return not self.orphans

    def to_dict(self) -> dict:
        return {
            "spans": self.spans,
            "traces": self.traces,
            "roots": self.roots,
            "orphans": [
                {
                    "name": e.name,
                    "parent_span_id": (e.attrs or {}).get(PARENT_SPAN_ATTR),
                }
                for e in self.orphans
            ],
            "ok": self.ok,
        }


def validate_span_tree(
    events: Iterable[TraceEvent],
    extra_roots: Sequence[str] = (),
) -> SpanTreeReport:
    """Resolve every ``parent_span_id`` within the stream.

    A parent resolves when it is (a) some event's ``span_id``, (b) the
    implicit root of any trace id seen in the stream, or (c) listed in
    ``extra_roots`` (a client-supplied upstream context whose span lives
    in another system's trace).  Anything else is an orphan — the merge
    dropped a shard or a propagation path failed to thread the context.
    """
    events = list(events)
    known: set[str] = set(extra_roots)
    traces: set[str] = set()
    spans = 0
    for e in events:
        attrs = e.attrs or {}
        sid = attrs.get(SPAN_ID_ATTR)
        if sid:
            known.add(sid)
            spans += 1
        tid = attrs.get(TRACE_ID_ATTR)
        if tid:
            traces.add(tid)
    roots = sorted(root_span_id(tid) for tid in traces)
    known.update(roots)
    orphans = [
        e
        for e in events
        if (e.attrs or {}).get(PARENT_SPAN_ATTR) not in (None, *known)
    ]
    return SpanTreeReport(
        spans=spans, traces=sorted(traces), roots=roots, orphans=orphans
    )


# -- merged exports -----------------------------------------------------------
def write_merged_trace(merged: MergedTrace, path) -> Path:
    """Write the merged timeline as Chrome/Perfetto trace JSON."""
    doc = to_chrome_trace(merged.events, metrics=merged.metrics)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(doc, fh, sort_keys=True)
    return out


def write_merged_events(merged: MergedTrace, path) -> Path:
    """Write the merged timeline as a flat JSONL event dump."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        for e in merged.events:
            fh.write(json.dumps(_event_row(e)) + "\n")
    return out


def shard_paths(directory) -> list[Path]:
    """The shard files under ``directory``, sorted by name."""
    return sorted(Path(directory).glob("shard-*.jsonl"))

"""Measurement collection for Bayesian LogGP calibration.

A calibration starts from raw timing observations — individual
micro-benchmark samples and per-op block timings, *not* the medians the
point fit consumes — because the spread across repeats is exactly the
information a posterior needs and a median throws away.

:class:`Measurement` is one observation; :class:`MeasurementSet` is the
calibration input: the observations plus the suite configuration needed
to invert them (``large_bytes``, ``burst_count``, ``num_procs``) and the
provenance of synthetic sets (``noise_sigma``, ``seed``).  Both are
frozen value objects with exact JSON round-trips, so measured traces can
be exported from one machine and imported into ``repro calibrate
--measurements`` on another.

:func:`measure_emulator` generates a set from the repository's own
emulator with *injected timer noise*: every observable is multiplied by
``exp(noise_sigma * z)`` where ``z`` is a standard normal drawn from a
seeded stream keyed **without** the sigma.  Scaling ``noise_sigma``
therefore scales every log-residual exactly linearly — the construction
that makes the credible-interval-width monotonicity property in the test
harness a theorem rather than a tendency — and ``noise_sigma == 0``
returns the noiseless observables bit for bit (the collapse anchor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..blockops.ops import OP_NAMES
from ..core.fitting import (
    MICROBENCH_KINDS,
    MicrobenchResults,
    emulator_runner,
    invert_microbenchmarks,
    observe_microbenchmark,
)
from ..core.loggp import LogGPParameters
from ..uq.sampler import child_rng

__all__ = [
    "DEFAULT_OP_SIZES",
    "Measurement",
    "MeasurementSet",
    "measure_emulator",
]

#: block sizes at which per-op computation costs are observed by default
DEFAULT_OP_SIZES = (16, 64)

#: the observation kinds a measurement may carry
MEASUREMENT_KINDS = MICROBENCH_KINDS + ("op",)


@dataclass(frozen=True)
class Measurement:
    """One raw timing observation (µs).

    ``kind`` is a micro-benchmark kind (:data:`repro.core.fitting.
    MICROBENCH_KINDS`) or ``"op"`` for a basic-operation block timing.
    ``size`` is the message size (``send_large``), the send count
    (``burst``) or the block size (``op``); ``op`` names the basic
    operation for ``kind == "op"``.  Values must be strictly positive —
    the calibration likelihood lives in log space.
    """

    kind: str
    value: float
    size: Optional[int] = None
    op: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in MEASUREMENT_KINDS:
            raise ValueError(
                f"unknown measurement kind {self.kind!r}; "
                f"expected one of {MEASUREMENT_KINDS}"
            )
        if self.kind == "op" and (self.op is None or self.size is None):
            raise ValueError("op measurements need both `op` and `size`")
        if self.kind != "op" and self.op is not None:
            raise ValueError(f"{self.kind!r} measurements must not name an op")
        if not (self.value > 0):
            raise ValueError(
                f"measurement values must be > 0 (log-space likelihood), "
                f"got {self.value!r} for {self.kind}"
            )

    def group(self) -> Tuple[str, Optional[int], Optional[str]]:
        """The observable this measurement samples: ``(kind, size, op)``."""
        return (self.kind, self.size, self.op)

    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict`` inverts it bit-exactly."""
        doc = {"kind": self.kind, "value": self.value}
        if self.size is not None:
            doc["size"] = self.size
        if self.op is not None:
            doc["op"] = self.op
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping) -> "Measurement":
        known = {"kind", "value", "size", "op"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown Measurement keys: {sorted(unknown)}")
        return cls(**dict(doc))


@dataclass(frozen=True)
class MeasurementSet:
    """The full input of one calibration run.

    ``large_bytes`` / ``burst_count`` / ``num_procs`` mirror the
    micro-benchmark suite configuration so :meth:`point_fit` can invert
    the medians exactly like :func:`repro.core.fitting.fit_loggp` does.
    ``noise_sigma`` and ``seed`` record how a synthetic set was
    generated (zero/irrelevant for imported traces) — provenance only,
    never consulted by the calibrator.
    """

    measurements: Sequence
    num_procs: int = 8
    large_bytes: int = 65536
    burst_count: int = 16
    noise_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        ms = tuple(
            m if isinstance(m, Measurement) else Measurement.from_dict(m)
            for m in self.measurements
        )
        if not ms:
            raise ValueError("MeasurementSet needs at least one measurement")
        object.__setattr__(self, "measurements", ms)

    def groups(self) -> dict:
        """Observed values per observable: ``{(kind, size, op): [µs, ...]}``."""
        out: dict = {}
        for m in self.measurements:
            out.setdefault(m.group(), []).append(m.value)
        return out

    def kind_values(self, kind: str) -> list:
        """All observed values of one measurement kind, in input order."""
        return [m.value for m in self.measurements if m.kind == kind]

    def ops_present(self) -> tuple:
        """The basic operations with at least one timing, sorted."""
        return tuple(sorted({m.op for m in self.measurements if m.kind == "op"}))

    def point_fit(self) -> LogGPParameters:
        """The classical point estimate: invert the per-kind medians.

        Exactly the :func:`repro.core.fitting.fit_loggp` computation —
        median over repeats, closed-form inversion — so a zero-noise
        measurement set reproduces the point fit bit for bit.
        """
        medians = {}
        for kind in MICROBENCH_KINDS:
            values = self.kind_values(kind)
            if not values:
                raise ValueError(f"no {kind!r} measurements; cannot point-fit")
            medians[kind] = float(np.median(values))
        bench = MicrobenchResults(
            send_small=medians["send_small"],
            send_large=medians["send_large"],
            large_bytes=self.large_bytes,
            burst=medians["burst"],
            burst_count=self.burst_count,
            one_way=medians["one_way"],
        )
        return invert_microbenchmarks(bench, self.num_procs)

    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict`` inverts it bit-exactly."""
        return {
            "measurements": [m.to_dict() for m in self.measurements],
            "num_procs": self.num_procs,
            "large_bytes": self.large_bytes,
            "burst_count": self.burst_count,
            "noise_sigma": self.noise_sigma,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "MeasurementSet":
        known = {
            "measurements", "num_procs", "large_bytes",
            "burst_count", "noise_sigma", "seed",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown MeasurementSet keys: {sorted(unknown)}")
        return cls(**dict(doc))


def measure_emulator(
    params: LogGPParameters,
    cost_model=None,
    *,
    noise_sigma: float = 0.0,
    repeats: int = 5,
    large_bytes: int = 65536,
    burst_count: int = 16,
    op_sizes: Sequence[int] = DEFAULT_OP_SIZES,
    seed: int = 0,
) -> MeasurementSet:
    """Collect a calibration set from the emulator, with injected jitter.

    Runs each micro-benchmark pattern once (the simulation is
    deterministic) and emits ``repeats`` observations of it, each
    multiplied by an independent ``exp(noise_sigma * z)`` timer-noise
    factor; with ``cost_model`` given, per-op block timings at
    ``op_sizes`` are observed the same way.  The standard-normal ``z``
    is drawn from a stream keyed by ``(seed, observable, repeat)`` —
    *not* by sigma — so two sets differing only in ``noise_sigma`` share
    their underlying draws and their log-residuals scale exactly
    linearly with sigma.  ``noise_sigma == 0`` emits the noiseless
    observables unchanged.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if noise_sigma < 0:
        raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
    runner = emulator_runner(params)

    def noisy(value: float, *keys) -> float:
        if noise_sigma == 0:
            return value
        z = float(child_rng("calib-noise", seed, *keys).standard_normal())
        return value * float(np.exp(noise_sigma * z))

    out = []
    for kind, size in (
        ("send_small", None),
        ("send_large", large_bytes),
        ("burst", burst_count),
        ("one_way", None),
    ):
        base = observe_microbenchmark(runner, kind, size)
        for rep in range(repeats):
            out.append(
                Measurement(kind=kind, size=size, value=noisy(base, kind, rep))
            )
    if cost_model is not None:
        for op in OP_NAMES:
            for b in op_sizes:
                base = float(cost_model.cost(op, b))
                for rep in range(repeats):
                    out.append(
                        Measurement(
                            kind="op", op=op, size=b,
                            value=noisy(base, "op", op, b, rep),
                        )
                    )
    return MeasurementSet(
        measurements=tuple(out),
        num_procs=params.P,
        large_bytes=large_bytes,
        burst_count=burst_count,
        noise_sigma=noise_sigma,
        seed=seed,
    )

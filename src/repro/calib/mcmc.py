"""A seeded componentwise Metropolis sampler for the calibration posterior.

Pure Python + numpy, no new dependencies: a random-walk Metropolis chain
that updates one dimension at a time.  Componentwise (single-site)
updates matter here because measurement groups can have wildly different
spreads — a zero-noise group pins its parameter (zero proposal scale)
without freezing the whole chain, which a joint proposal would.

Everything is a pure function of the seed: the chain's RNG comes from
:func:`repro.uq.sampler.child_rng` with a dedicated key, so the same
measurement set and configuration reproduce the same posterior draws on
any platform, in any process — which is what lets golden tests assert
posterior summaries with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uq.sampler import child_rng
from .likelihood import CalibModel

__all__ = ["MCMCConfig", "MCMCResult", "run_mcmc"]


@dataclass(frozen=True)
class MCMCConfig:
    """Chain configuration: length, thinning and the seed."""

    draws: int = 200  # posterior samples to keep
    burn: int = 200  # sweeps discarded before collection
    thin: int = 2  # sweeps per kept sample
    seed: int = 0

    def __post_init__(self) -> None:
        if self.draws < 1:
            raise ValueError(f"draws must be >= 1, got {self.draws}")
        if self.burn < 0:
            raise ValueError(f"burn must be >= 0, got {self.burn}")
        if self.thin < 1:
            raise ValueError(f"thin must be >= 1, got {self.thin}")

    def to_dict(self) -> dict:
        return {
            "draws": self.draws, "burn": self.burn,
            "thin": self.thin, "seed": self.seed,
        }


@dataclass(frozen=True)
class MCMCResult:
    """The chain's output: kept samples plus acceptance diagnostics."""

    samples: np.ndarray  # (draws, dim) log-parameter vectors
    accept_rate: float  # proposals accepted / proposals made, all dims
    accept_by_dim: tuple  # per-dimension acceptance rates


def run_mcmc(model: CalibModel, config: MCMCConfig) -> MCMCResult:
    """Sample the calibration posterior with single-site Metropolis.

    One *sweep* proposes a Gaussian step in every dimension in turn
    (scales from :meth:`CalibModel.proposal_scales`); after ``burn``
    sweeps, every ``thin``-th sweep's state is kept.  Dimensions with a
    zero proposal scale never move — their groups have no spread, so the
    posterior conditional is (numerically) a point mass at the start.
    """
    rng = child_rng("calib-mcmc", config.seed)
    theta = model.initial()
    dim = theta.shape[0]
    steps = model.proposal_scales()
    if steps.shape != (dim,):
        raise ValueError(
            f"proposal scales shape {steps.shape} != parameter dim {dim}"
        )
    lp = model.log_posterior(theta)
    accepts = np.zeros(dim, dtype=np.int64)
    proposals = np.zeros(dim, dtype=np.int64)
    samples = np.empty((config.draws, dim), dtype=float)
    kept = 0
    total_sweeps = config.burn + config.draws * config.thin
    for sweep in range(total_sweeps):
        for j in range(dim):
            z = rng.standard_normal()
            if steps[j] == 0.0:
                continue  # pinned dimension (zero-spread group)
            proposals[j] += 1
            prop = theta.copy()
            prop[j] += steps[j] * z
            lp_prop = model.log_posterior(prop)
            if rng.random() < np.exp(min(0.0, lp_prop - lp)):
                theta, lp = prop, lp_prop
                accepts[j] += 1
        if sweep >= config.burn and (sweep - config.burn) % config.thin == 0:
            samples[kept] = theta
            kept += 1
    assert kept == config.draws
    total = int(proposals.sum())
    by_dim = tuple(
        float(a / p) if p else 0.0 for a, p in zip(accepts, proposals)
    )
    return MCMCResult(
        samples=samples,
        accept_rate=float(accepts.sum() / total) if total else 0.0,
        accept_by_dim=by_dim,
    )

"""Bayesian calibration of the LogGP machine from measured timings.

The paper predicts running times from *fitted* machine parameters; this
package quantifies how sure that fit is.  Given raw timing measurements
— emulator runs via :func:`measure_emulator`, or imported JSON traces —
:func:`calibrate` produces a joint posterior over ``(L, o, g, G)`` and
per-op cost factors:

1. :mod:`repro.calib.measure` collects per-repeat observations (the
   spread the point fit's medians throw away);
2. :mod:`repro.calib.likelihood` scores candidate machines against them
   using the *same* closed forms the point fit inverts
   (:func:`repro.core.fitting.microbench_model`);
3. :mod:`repro.calib.mcmc` samples the posterior with a seeded,
   dependency-free componentwise Metropolis chain;
4. the resulting :class:`Posterior` hands its draws to the UQ engine as
   an :class:`repro.uq.EmpiricalSpec` — predicted runtimes then carry
   credible intervals derived from data instead of hand-picked sigmas.

Two anchors make the whole stochastic pipeline testable exactly:

* **zero-noise collapse** — measurements with no spread produce a
  degenerate posterior equal to the point fit bit for bit, whose
  ``EmpiricalSpec`` is deterministic, so ``repro calibrate`` followed by
  ``repro uq --posterior`` reproduces the plain sweep digest;
* **seeded everything** — measurement noise and the chain both draw
  from :func:`repro.uq.sampler.child_rng` streams, so posterior
  summaries are exact-equality golden-testable across platforms,
  worker counts and ``REPRO_FAST``.

CLI front-end: ``python -m repro calibrate --noise-sigma 0.05``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.events import get_tracer
from ..uq.spec import LOGGP_PARAMS, MachineDraw
from .likelihood import CalibModel, GroupStats, group_stats
from .measure import DEFAULT_OP_SIZES, Measurement, MeasurementSet, measure_emulator
from .mcmc import MCMCConfig, MCMCResult, run_mcmc
from .posterior import Posterior

__all__ = [
    "DEFAULT_OP_SIZES",
    "CalibModel",
    "GroupStats",
    "MCMCConfig",
    "MCMCResult",
    "Measurement",
    "MeasurementSet",
    "Posterior",
    "calibrate",
    "calibrate_emulator",
    "group_stats",
    "measure_emulator",
    "run_mcmc",
]


def _point_fit_draw(model: CalibModel) -> MachineDraw:
    """The classical point estimate as a :class:`MachineDraw`.

    Network parameters come straight from the median inversion; each
    op's factor is the geometric-mean observed/base ratio (the prior
    centre), computed from the raw group values so that measurements
    matching the base cost model give a factor of exactly ``1.0``.
    """
    fit = model.point
    ops = {}
    for op in model.ops:
        # raw per-(op, size) ratios: identical observations divide the
        # base cost exactly (1.0 bit for bit when they match it)
        raw = [
            (values, size)
            for (kind, size, gop), values in model.mset.groups().items()
            if kind == "op" and gop == op
        ]
        per_size = []
        for values, size in raw:
            base = model.base_cost_model.cost(op, size)
            if all(v == values[0] for v in values):
                per_size.append(values[0] / base)
            else:
                per_size.append(
                    float(np.exp(np.mean(np.log(np.asarray(values) / base))))
                )
        first = per_size[0]
        if all(r == first for r in per_size):
            ops[op] = first
        else:
            ops[op] = float(np.exp(np.mean(np.log(per_size))))
    return MachineDraw(L=fit.L, o=fit.o, g=fit.g, G=fit.G, ops=ops)


def calibrate(
    mset: MeasurementSet,
    *,
    base_cost_model=None,
    draws: int = 200,
    burn: int = 200,
    thin: int = 2,
    prior_tau: float = 1.0,
    seed: int = 0,
) -> Posterior:
    """Posterior inference over the machine from one measurement set.

    Builds the likelihood (``calib.fit`` span), then either collapses —
    measurements with no spread anywhere yield the degenerate posterior
    at the point fit, bit for bit, without running a chain
    (``calib.collapse`` span) — or samples with the seeded Metropolis
    chain (``calib.mcmc`` span).  ``base_cost_model`` is required iff
    the set contains op timings.
    """
    tracer = get_tracer()
    with tracer.span("calib.fit", measurements=len(mset.measurements)):
        model = CalibModel(mset, base_cost_model, prior_tau=prior_tau)
        point = _point_fit_draw(model)
    config_doc = {
        "draws": draws, "burn": burn, "thin": thin,
        "prior_tau": prior_tau, "seed": seed,
        "noise_sigma": mset.noise_sigma,
        "measurements": len(mset.measurements),
    }
    if model.is_degenerate():
        with tracer.span("calib.collapse"):
            return Posterior(
                draws=(point,),
                point_fit=point,
                degenerate=True,
                accept_rate=0.0,
                config=config_doc,
            )
    with tracer.span("calib.mcmc", draws=draws, dims=len(model.names)):
        result = run_mcmc(
            model, MCMCConfig(draws=draws, burn=burn, thin=thin, seed=seed)
        )
        machine_draws = tuple(
            MachineDraw(
                L=float(np.exp(row[0])),
                o=float(np.exp(row[1])),
                g=float(np.exp(row[2])),
                G=float(np.exp(row[3])),
                ops={
                    op: float(np.exp(row[len(LOGGP_PARAMS) + i]))
                    for i, op in enumerate(model.ops)
                },
            )
            for row in result.samples
        )
    return Posterior(
        draws=machine_draws,
        point_fit=point,
        degenerate=False,
        accept_rate=result.accept_rate,
        config=config_doc,
    )


def calibrate_emulator(
    params,
    cost_model=None,
    *,
    noise_sigma: float = 0.0,
    repeats: int = 5,
    large_bytes: int = 65536,
    burst_count: int = 16,
    op_sizes=DEFAULT_OP_SIZES,
    draws: int = 200,
    burn: int = 200,
    thin: int = 2,
    prior_tau: float = 1.0,
    seed: int = 0,
) -> Posterior:
    """Measure the emulator with injected jitter, then :func:`calibrate`.

    The self-validation entrypoint: ``params`` is the *known* ground
    truth, and the harness gates that the posterior's credible intervals
    cover it.  One ``calib.measure`` span wraps the collection.
    """
    tracer = get_tracer()
    with tracer.span("calib.measure", repeats=repeats):
        mset = measure_emulator(
            params,
            cost_model,
            noise_sigma=noise_sigma,
            repeats=repeats,
            large_bytes=large_bytes,
            burst_count=burst_count,
            op_sizes=op_sizes,
            seed=seed,
        )
    return calibrate(
        mset,
        base_cost_model=cost_model,
        draws=draws,
        burn=burn,
        thin=thin,
        prior_tau=prior_tau,
        seed=seed,
    )

"""The calibration likelihood: measurements vs the micro-benchmark model.

The forward model is the *same* closed form the point fit inverts —
:func:`repro.core.fitting.microbench_model` — so the posterior and the
point estimate can never disagree about what an observable means.  Per-op
computation costs enter as one multiplicative factor per operation on
the base cost model, matching exactly what
:class:`repro.machine.perturbed.ScaledCostModel` applies downstream.

Parameterisation: the sampled vector is ``log(L), log(o), log(g),
log(G)`` followed by ``log(factor_op)`` for each op with measurements —
log space keeps every machine positive and makes the multiplicative
timer noise of :func:`repro.calib.measure.measure_emulator` additive.

Likelihood: within each observable group ``(kind, size, op)`` the log
observations scatter around the log model value with the group's own
empirical sigma (an empirical-Bayes plug-in, floored to keep degenerate
groups finite).  The prior is a weak log-normal centred on the point fit
(``prior_tau`` wide), which regularises parameters that a noisy group
barely identifies without visibly shrinking well-measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.fitting import microbench_model
from ..core.loggp import LogGPParameters
from ..uq.spec import LOGGP_PARAMS
from .measure import MeasurementSet

__all__ = ["GroupStats", "CalibModel", "group_stats"]

#: lower bound on a group's plug-in sigma: keeps the log-likelihood
#: finite for zero-spread groups without letting them dominate
_SIGMA_FLOOR = 1e-9

#: lower bound when taking logs of point-fit values that clamped to zero
_LOG_FLOOR = 1e-12


@dataclass(frozen=True)
class GroupStats:
    """Sufficient statistics of one observable group (log space)."""

    kind: str
    size: Optional[int]
    op: Optional[str]
    n: int
    mean_log: float  # mean of log observations
    ss_log: float  # sum of squared deviations from mean_log
    sd_log: float  # population sd of log observations


def group_stats(mset: MeasurementSet) -> Tuple[GroupStats, ...]:
    """Per-observable sufficient statistics, in first-seen group order."""
    out = []
    for (kind, size, op), values in mset.groups().items():
        logs = np.log(np.asarray(values, dtype=float))
        if np.all(logs == logs[0]):
            # identical observations: zero spread *exactly* (np.mean of
            # n equal floats can be off by an ulp, which would break the
            # degenerate-collapse detection)
            mean, ss = float(logs[0]), 0.0
        else:
            mean = float(np.mean(logs))
            ss = float(np.sum((logs - mean) ** 2))
        out.append(
            GroupStats(
                kind=kind, size=size, op=op, n=len(values),
                mean_log=mean, ss_log=ss,
                sd_log=float(np.sqrt(ss / len(values))),
            )
        )
    return tuple(out)


class CalibModel:
    """Log-posterior of the machine parameters given a measurement set.

    Binds the sufficient statistics, the base cost model (needed to
    interpret op timings as factors) and the prior width.  The instance
    exposes the pieces the sampler needs: the parameter ordering
    (:attr:`names`), the initial vector (:meth:`initial`), per-dimension
    proposal scales (:meth:`proposal_scales`) and
    :meth:`log_posterior`.
    """

    def __init__(
        self,
        mset: MeasurementSet,
        base_cost_model=None,
        prior_tau: float = 1.0,
    ):
        if prior_tau <= 0:
            raise ValueError(f"prior_tau must be > 0, got {prior_tau}")
        self.mset = mset
        self.stats = group_stats(mset)
        self.ops = mset.ops_present()
        if self.ops and base_cost_model is None:
            raise ValueError(
                "measurement set contains op timings; a base cost model "
                "is required to interpret them as factors"
            )
        self.base_cost_model = base_cost_model
        self.prior_tau = float(prior_tau)
        self.point = mset.point_fit()
        #: sampled dimensions, in order: network params then op factors
        self.names: Tuple[str, ...] = LOGGP_PARAMS + tuple(
            f"op:{op}" for op in self.ops
        )
        # log of the base op cost per op group, precomputed once
        self._base_log = {
            (s.op, s.size): float(np.log(base_cost_model.cost(s.op, s.size)))
            for s in self.stats
            if s.kind == "op"
        }
        self._center = self._prior_center()

    # -- construction helpers ------------------------------------------------
    def _prior_center(self) -> np.ndarray:
        """Prior mean in log space: the point fit, factors from the data.

        Each op's centre is the mean over its groups of ``mean_log -
        log(base cost)`` — the geometric-mean observed/base ratio, which
        is exactly ``0`` (factor 1) when the measurements match the base
        model.
        """
        center = [
            float(np.log(max(getattr(self.point, name), _LOG_FLOOR)))
            for name in LOGGP_PARAMS
        ]
        for op in self.ops:
            offsets = [
                s.mean_log - self._base_log[(s.op, s.size)]
                for s in self.stats
                if s.kind == "op" and s.op == op
            ]
            center.append(float(np.mean(offsets)))
        return np.asarray(center, dtype=float)

    def initial(self) -> np.ndarray:
        """The chain's starting vector: the prior centre (the point fit)."""
        return self._center.copy()

    def is_degenerate(self) -> bool:
        """True when no group has any spread: the posterior is the fit.

        Zero spread everywhere means the data carry no scale for the
        noise, so the only defensible posterior is the point estimate
        itself — the collapse the test harness gates bit for bit.
        """
        return all(s.ss_log == 0.0 for s in self.stats)

    def proposal_scales(self) -> np.ndarray:
        """Per-dimension random-walk steps ``~ 2.4 x`` the posterior sd guess.

        Each parameter's scale comes from the group that identifies it
        most directly (``o`` from ``send_small``, ``G`` from
        ``send_large``, ``g`` from ``burst``, ``L`` from ``one_way``, an
        op factor from its own timing groups): ``sd_log / sqrt(n)`` is
        the posterior sd the group alone would give.  Zero-spread groups
        yield zero steps — those dimensions stay pinned at the point
        fit, which is what partially-degenerate data support.  Steps are
        capped at the prior sd so an uninformative group cannot produce
        a runaway walk.
        """
        informing = {"o": "send_small", "G": "send_large", "g": "burst", "L": "one_way"}
        by_kind = {}
        for s in self.stats:
            if s.kind != "op":
                by_kind.setdefault(s.kind, []).append(s)
        scales = []
        for name in LOGGP_PARAMS:
            group = by_kind.get(informing[name], [])
            sd = max((s.sd_log / np.sqrt(s.n) for s in group), default=0.0)
            scales.append(min(sd, self.prior_tau))
        for op in self.ops:
            own = [s for s in self.stats if s.kind == "op" and s.op == op]
            sd = max((s.sd_log / np.sqrt(s.n) for s in own), default=0.0)
            scales.append(min(sd, self.prior_tau))
        return 2.4 * np.asarray(scales, dtype=float)

    # -- the density ---------------------------------------------------------
    def _model_log(self, theta: np.ndarray, s: GroupStats) -> float:
        """Log of the modelled observable for one group at ``theta``."""
        if s.kind == "op":
            j = len(LOGGP_PARAMS) + self.ops.index(s.op)
            return float(theta[j]) + self._base_log[(s.op, s.size)]
        params = LogGPParameters(
            L=float(np.exp(theta[0])),
            o=float(np.exp(theta[1])),
            g=float(np.exp(theta[2])),
            G=float(np.exp(theta[3])),
            P=self.mset.num_procs,
        )
        return float(np.log(microbench_model(params, s.kind, s.size)))

    def log_posterior(self, theta: np.ndarray) -> float:
        """Unnormalised log posterior density at one log-parameter vector."""
        lp = 0.0
        for s in self.stats:
            sigma = max(s.sd_log, _SIGMA_FLOOR)
            resid = s.mean_log - self._model_log(theta, s)
            # sum_i (log v_i - log m)^2 = n*(mean - log m)^2 + ss
            lp -= (s.n * resid * resid + s.ss_log) / (2.0 * sigma * sigma)
        dev = theta - self._center
        lp -= float(np.sum(dev * dev)) / (2.0 * self.prior_tau**2)
        return lp

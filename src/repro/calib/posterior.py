"""The calibration result: a posterior over machines, ready for the UQ engine.

A :class:`Posterior` holds the kept draws as
:class:`repro.uq.spec.MachineDraw` values — the exact currency the UQ
engine's :class:`repro.uq.EmpiricalSpec` replays — plus the point fit,
chain diagnostics and the generating configuration.  It is a frozen
value object with an exact JSON round-trip (the ``repro calibrate``
output file), a canonical fingerprint
(:func:`repro.core.fingerprint.posterior_fingerprint`, which also keys
experiment-store entries downstream) and the summary/credible-interval
arithmetic the validation harness gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.fingerprint import posterior_fingerprint
from ..core.loggp import LogGPParameters
from ..uq.spec import LOGGP_PARAMS, EmpiricalSpec, MachineDraw

__all__ = ["Posterior"]


@dataclass(frozen=True)
class Posterior:
    """A joint posterior over (L, o, g, G, op factors).

    ``draws`` are the kept MCMC samples (a single repeated draw for the
    degenerate zero-noise case); ``point_fit`` is the classical median
    inversion of the same measurements.  ``config`` records how the
    posterior was produced (chain settings, measurement provenance) for
    the manifest ``calib`` block — it is provenance, excluded from the
    fingerprint.
    """

    draws: Sequence
    point_fit: MachineDraw
    degenerate: bool = False
    accept_rate: float = 0.0
    config: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        draws = tuple(
            d if isinstance(d, MachineDraw) else MachineDraw.from_dict(d)
            for d in self.draws
        )
        if not draws:
            raise ValueError("Posterior needs at least one draw")
        pf = self.point_fit
        if not isinstance(pf, MachineDraw):
            pf = MachineDraw.from_dict(pf)
        object.__setattr__(self, "draws", draws)
        object.__setattr__(self, "point_fit", pf)
        object.__setattr__(self, "config", dict(self.config))

    # -- access --------------------------------------------------------------
    def parameter_names(self) -> Tuple[str, ...]:
        """The summarised dimensions: network params then ``op:<name>``."""
        ops = sorted({op for d in self.draws for op, _ in d.ops})
        return LOGGP_PARAMS + tuple(f"op:{op}" for op in ops)

    def samples(self, name: str) -> np.ndarray:
        """All draws of one dimension (``"L"``..``"G"`` or ``"op:op1"``)."""
        if name in LOGGP_PARAMS:
            return np.asarray([getattr(d, name) for d in self.draws], dtype=float)
        if name.startswith("op:"):
            op = name[3:]
            return np.asarray(
                [d.op_factors().get(op, 1.0) for d in self.draws], dtype=float
            )
        raise ValueError(f"unknown posterior dimension {name!r}")

    # -- summaries -----------------------------------------------------------
    def credible_interval(self, name: str, level: float = 0.9) -> Tuple[float, float]:
        """The central ``level`` credible interval of one dimension."""
        if not (0 < level < 1):
            raise ValueError(f"level must be in (0, 1), got {level}")
        values = self.samples(name)
        alpha = (1.0 - level) / 2.0
        return (
            float(np.quantile(values, alpha)),
            float(np.quantile(values, 1.0 - alpha)),
        )

    def summary(self, level: float = 0.9) -> dict:
        """Per-dimension ``{mean, sd, median, lo, hi}`` (µs / factors)."""
        out = {}
        for name in self.parameter_names():
            values = self.samples(name)
            lo, hi = self.credible_interval(name, level)
            out[name] = {
                "mean": float(np.mean(values)),
                "sd": float(np.std(values)),
                "median": float(np.median(values)),
                "lo": lo,
                "hi": hi,
            }
        return out

    def covers(self, truth: LogGPParameters, level: float = 0.9) -> dict:
        """Whether each network parameter's CI contains the true value."""
        out = {}
        for name in LOGGP_PARAMS:
            lo, hi = self.credible_interval(name, level)
            out[name] = bool(lo <= getattr(truth, name) <= hi)
        return out

    def coverage_count(self, truth: LogGPParameters, level: float = 0.9) -> int:
        """How many of (L, o, g, G) the credible intervals cover."""
        return sum(self.covers(truth, level).values())

    # -- downstream hand-off -------------------------------------------------
    def fingerprint(self) -> str:
        """Canonical tag of the draw set (manifests, store keys)."""
        return posterior_fingerprint(self.draws)

    def to_spec(self, max_draws: Optional[int] = None) -> EmpiricalSpec:
        """The :class:`repro.uq.EmpiricalSpec` replaying this posterior.

        ``max_draws`` subsamples evenly-strided draws (deterministic, no
        RNG) to bound UQ cost; the spec's ``source`` records this
        posterior's fingerprint for provenance.
        """
        draws = self.draws
        if max_draws is not None:
            if max_draws < 1:
                raise ValueError(f"max_draws must be >= 1, got {max_draws}")
            if max_draws < len(draws):
                idx = np.linspace(0, len(draws) - 1, max_draws).astype(int)
                draws = tuple(draws[i] for i in idx)
        return EmpiricalSpec(draws=draws, source=f"calib-{self.fingerprint()}")

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict`` inverts it bit-exactly."""
        return {
            "draws": [d.to_dict() for d in self.draws],
            "point_fit": self.point_fit.to_dict(),
            "degenerate": self.degenerate,
            "accept_rate": self.accept_rate,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "Posterior":
        known = {"draws", "point_fit", "degenerate", "accept_rate", "config"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown Posterior keys: {sorted(unknown)}")
        return cls(**dict(doc))

"""Experiment orchestration with a persistent, concurrency-safe result store.

Running the full GE evaluation is expensive (minutes at paper scale), and
a study typically revisits the same (n, b, layout, seed) points many
times — from benchmarks, notebooks, the CLI and the parallel sweep engine
(:mod:`repro.sweep`).  :class:`ExperimentStore` memoises
:func:`repro.core.predictor.run_ge_point` results on disk as JSON, keyed
by the full configuration, so repeated studies are free and interrupted
sweeps resume where they stopped.

Stored values are *summaries* (totals and breakdowns, not per-event
timelines), versioned with :data:`STORE_VERSION`; changing the underlying
models bumps the version and silently invalidates old entries.

Concurrency model
-----------------
The store is safe for many processes at once (the sweep engine fans one
store out across workers):

* **Atomic entries.**  :meth:`ExperimentStore.put` writes to a temporary
  file in the store directory and publishes it with :func:`os.replace`,
  so a reader can never observe a truncated entry — a crash mid-write
  leaves the previous value (or nothing) behind, never garbage.
* **Advisory per-entry locks.**  Writers serialise on a ``fcntl.flock``
  side-car lock per entry (a no-op on platforms without ``fcntl``), so
  two workers racing on one key settle on one complete value and never
  duplicate entries — the key fully determines the file name.
* **Self-healing reads.**  :meth:`ExperimentStore.get` treats an
  unreadable or stale-schema entry as a miss, so a corrupt file (e.g.
  hand-edited) costs one recomputation, not a crash.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

try:  # advisory locking is POSIX-only; the store degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from .core.costmodel import CostModel
from .core.fingerprint import machine_fingerprint
from .core.loggp import LogGPParameters
from .core.predictor import summarize_ge_point
from .obs.events import get_tracer

__all__ = ["STORE_VERSION", "PointSummary", "ExperimentStore"]

#: v2: keys use the canonical machine fingerprint (repr-exact LogGP floats
#: plus the cost model's own identity) shared with the kernel memo and the
#: UQ engine, replacing the lossy describe()+probe hash of v1.
STORE_VERSION = 2


@dataclass(frozen=True)
class PointSummary:
    """Flat summary of one GE evaluation point (all times µs)."""

    n: int
    b: int
    layout: str
    seed: int
    pred_standard_total: float
    pred_standard_comp: float
    pred_standard_comm: float
    pred_worstcase_total: float
    pred_worstcase_comm: float
    measured_total: Optional[float] = None
    measured_total_wo_cache: Optional[float] = None
    measured_comp: Optional[float] = None
    measured_comm: Optional[float] = None

    def series(self) -> dict[str, float]:
        """The Figure 7 series of this point (like :meth:`GERow.series`)."""
        out = {
            "simulated_standard": self.pred_standard_total,
            "simulated_worstcase": self.pred_worstcase_total,
        }
        if self.measured_total is not None:
            out["measured_with_caching"] = self.measured_total
            out["measured_without_caching"] = self.measured_total_wo_cache
        return out


class ExperimentStore:
    """Disk-backed memo of GE evaluation points.

    Parameters
    ----------
    directory:
        Where the JSON entries live (created on demand).
    params, cost_model:
        The machine and cost model every point in this store uses; they
        are part of the cache key (via the machine description and the
        cost model's class name + probe costs).
    extra_tag:
        Optional extra fingerprint component for callers whose
        evaluations depend on more than (machine, cost model) — the UQ
        engine passes its perturbation spec's tag so perturbed ensembles
        never collide with deterministic entries (``None``: unchanged
        legacy keyspace).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        params: LogGPParameters,
        cost_model: CostModel,
        extra_tag: Optional[str] = None,
    ):
        self.directory = Path(directory)
        self.params = params
        self.cost_model = cost_model
        self.extra_tag = extra_tag
        self._model_tag = self._fingerprint()

    def _fingerprint(self) -> str:
        """Stable tag for (machine, cost model) so stale entries miss.

        Composes the canonical :func:`repro.core.fingerprint.machine_fingerprint`
        — the same identity the kernel cost memo keys on — with the store
        version and the caller's extra tag.  Fingerprintable cost models
        hash their own exact contents; models without a ``fingerprint()``
        method fall back to the probe costs, as the v1 store did.
        """
        extra = "|".join(
            part
            for part in (f"store-v{STORE_VERSION}", self.extra_tag)
            if part is not None
        )
        return machine_fingerprint(self.params, self.cost_model, extra=extra)

    # -- keys and paths ------------------------------------------------------
    def key(
        self, n: int, b: int, layout: str, seed: int = 0, with_measured: bool = True
    ) -> str:
        """The entry file name of one configuration.

        Purely a function of the configuration values and the store's
        model fingerprint — stable under keyword reordering and across
        processes, which is what lets concurrent sweep workers agree on
        what is already done.
        """
        measured = "m1" if with_measured else "m0"
        return f"ge_n{n}_b{b}_{layout}_s{seed}_{measured}_{self._model_tag}.json"

    def _path(self, n: int, b: int, layout: str, seed: int, measured: bool) -> Path:
        return self.directory / self.key(n, b, layout, seed, with_measured=measured)

    @contextmanager
    def _entry_lock(self, path: Path) -> Iterator[None]:
        """Advisory exclusive lock for one entry (no-op without fcntl)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = path.with_suffix(".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        """Write ``text`` to ``path`` via a same-directory temp + rename.

        ``os.replace`` is atomic on POSIX and Windows, so readers see
        either the old entry or the complete new one — never a prefix.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- coordination API (what the parallel sweep engine builds on) --------
    def get(
        self,
        n: int,
        b: int,
        layout: str,
        seed: int = 0,
        with_measured: bool = True,
    ) -> Optional[PointSummary]:
        """The stored summary, or ``None`` on a miss (never computes).

        Unreadable entries (truncated by hand, wrong schema) read as
        misses so a damaged store heals itself on the next compute.
        """
        path = self._path(n, b, layout, seed, with_measured)
        try:
            return PointSummary(**json.loads(path.read_text()))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, TypeError, ValueError):
            return None

    def put(self, summary: PointSummary, with_measured: bool = True) -> Path:
        """Persist one summary atomically; returns the entry path.

        Safe to call from many processes at once: writers serialise on
        the entry's advisory lock and publish with an atomic rename.
        """
        path = self._path(
            summary.n, summary.b, summary.layout, summary.seed, with_measured
        )
        tracer = get_tracer()
        with tracer.span("store.put", n=summary.n, b=summary.b):
            with self._entry_lock(path):
                self._atomic_write(path, json.dumps(summary.__dict__))
        return path

    def contains(
        self,
        n: int,
        b: int,
        layout: str,
        seed: int = 0,
        with_measured: bool = True,
    ) -> bool:
        """Whether a *readable* entry exists for this configuration."""
        return self.get(n, b, layout, seed=seed, with_measured=with_measured) is not None

    # -- public API ---------------------------------------------------------
    def point(
        self,
        n: int,
        b: int,
        layout: str,
        seed: int = 0,
        with_measured: bool = True,
    ) -> PointSummary:
        """The summary for one configuration, computing it on a miss."""
        hit = self.get(n, b, layout, seed=seed, with_measured=with_measured)
        if hit is not None:
            return hit
        summary = PointSummary(
            **summarize_ge_point(
                n, b, layout, self.params, self.cost_model,
                with_measured=with_measured, seed=seed,
            )
        )
        self.put(summary, with_measured=with_measured)
        return summary

    def sweep(
        self,
        n: int,
        block_sizes: Sequence[int],
        layouts: Sequence[str],
        seed: int = 0,
        with_measured: bool = True,
    ) -> list[PointSummary]:
        """A full sweep, point by point (resumable: hits are free).

        Serial by construction; :func:`repro.sweep.run_sweep` runs the
        same grid across worker processes sharing this store.
        """
        return [
            self.point(n, b, layout, seed=seed, with_measured=with_measured)
            for layout in layouts
            for b in block_sizes
        ]

    def cached_count(self) -> int:
        """Entries on disk for the current model fingerprint."""
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob(f"*_{self._model_tag}.json"))

    def clear(self) -> int:
        """Delete entries for the current fingerprint; returns the count."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob(f"*_{self._model_tag}.json"):
            path.unlink()
            removed += 1
        for lock in self.directory.glob(f"*_{self._model_tag}.lock"):
            lock.unlink(missing_ok=True)
        return removed

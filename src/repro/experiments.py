"""Experiment orchestration with a persistent result store.

Running the full GE evaluation is expensive (minutes at paper scale), and
a study typically revisits the same (n, b, layout, seed) points many
times — from benchmarks, notebooks and the CLI.  :class:`ExperimentStore`
memoises :func:`repro.core.predictor.run_ge_point` results on disk as
JSON, keyed by the full configuration, so repeated studies are free and
interrupted sweeps resume where they stopped.

Stored values are *summaries* (totals and breakdowns, not per-event
timelines), versioned with :data:`STORE_VERSION`; changing the underlying
models bumps the version and silently invalidates old entries.
"""

from __future__ import annotations

import json
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from .core.costmodel import CostModel
from .core.loggp import LogGPParameters
from .core.predictor import run_ge_point

__all__ = ["STORE_VERSION", "PointSummary", "ExperimentStore"]

STORE_VERSION = 1


@dataclass(frozen=True)
class PointSummary:
    """Flat summary of one GE evaluation point (all times µs)."""

    n: int
    b: int
    layout: str
    seed: int
    pred_standard_total: float
    pred_standard_comp: float
    pred_standard_comm: float
    pred_worstcase_total: float
    pred_worstcase_comm: float
    measured_total: Optional[float] = None
    measured_total_wo_cache: Optional[float] = None
    measured_comp: Optional[float] = None
    measured_comm: Optional[float] = None

    def series(self) -> dict[str, float]:
        """The Figure 7 series of this point (like :meth:`GERow.series`)."""
        out = {
            "simulated_standard": self.pred_standard_total,
            "simulated_worstcase": self.pred_worstcase_total,
        }
        if self.measured_total is not None:
            out["measured_with_caching"] = self.measured_total
            out["measured_without_caching"] = self.measured_total_wo_cache
        return out


class ExperimentStore:
    """Disk-backed memo of GE evaluation points.

    Parameters
    ----------
    directory:
        Where the JSON entries live (created on demand).
    params, cost_model:
        The machine and cost model every point in this store uses; they
        are part of the cache key (via the machine description and the
        cost model's class name + probe costs).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        params: LogGPParameters,
        cost_model: CostModel,
    ):
        self.directory = Path(directory)
        self.params = params
        self.cost_model = cost_model
        self._model_tag = self._fingerprint()

    def _fingerprint(self) -> str:
        """Stable tag for (machine, cost model) so stale entries miss."""
        probes = [
            ("op1", 16),
            ("op4", 16),
            ("op2", 64),
            ("op3", 64),
        ]
        costs = []
        for op, b in probes:
            try:
                costs.append(f"{self.cost_model.cost(op, b):.6f}")
            except ValueError:
                costs.append("n/a")
        payload = "|".join(
            [
                f"v{STORE_VERSION}",
                self.params.describe(),
                type(self.cost_model).__name__,
                *costs,
            ]
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _path(self, n: int, b: int, layout: str, seed: int, measured: bool) -> Path:
        name = f"ge_n{n}_b{b}_{layout}_s{seed}_{'m1' if measured else 'm0'}_{self._model_tag}.json"
        return self.directory / name

    # -- public API ---------------------------------------------------------
    def point(
        self,
        n: int,
        b: int,
        layout: str,
        seed: int = 0,
        with_measured: bool = True,
    ) -> PointSummary:
        """The summary for one configuration, computing it on a miss."""
        path = self._path(n, b, layout, seed, with_measured)
        if path.exists():
            return PointSummary(**json.loads(path.read_text()))
        row = run_ge_point(
            n, b, layout, self.params, self.cost_model,
            with_measured=with_measured, seed=seed,
        )
        summary = PointSummary(
            n=n,
            b=b,
            layout=layout,
            seed=seed,
            pred_standard_total=row.pred_standard.total_us,
            pred_standard_comp=row.pred_standard.comp_us,
            pred_standard_comm=row.pred_standard.comm_us,
            pred_worstcase_total=row.pred_worstcase.total_us,
            pred_worstcase_comm=row.pred_worstcase.comm_us,
            measured_total=row.measured.total_us if row.measured else None,
            measured_total_wo_cache=(
                row.measured.total_without_cache_us if row.measured else None
            ),
            measured_comp=row.measured.comp_us if row.measured else None,
            measured_comm=row.measured.comm_us if row.measured else None,
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary.__dict__))
        return summary

    def sweep(
        self,
        n: int,
        block_sizes: Sequence[int],
        layouts: Sequence[str],
        seed: int = 0,
        with_measured: bool = True,
    ) -> list[PointSummary]:
        """A full sweep, point by point (resumable: hits are free)."""
        return [
            self.point(n, b, layout, seed=seed, with_measured=with_measured)
            for layout in layouts
            for b in block_sizes
        ]

    def cached_count(self) -> int:
        """Entries on disk for the current model fingerprint."""
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob(f"*_{self._model_tag}.json"))

    def clear(self) -> int:
        """Delete entries for the current fingerprint; returns the count."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob(f"*_{self._model_tag}.json"):
            path.unlink()
            removed += 1
        return removed

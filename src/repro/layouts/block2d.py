"""2-D block-cyclic layout (extension baseline).

The ScaLAPACK-style mapping: processors form a ``pr x pc`` grid and block
``(i, j)`` belongs to processor ``(i mod pr) * pc + (j mod pc)``.  Balances
both row and column traffic; included as an extra baseline beyond the
paper's two layouts.
"""

from __future__ import annotations

import math

from .base import DataLayout

__all__ = ["BlockCyclic2DLayout"]


def _default_grid(num_procs: int) -> tuple[int, int]:
    """Most-square factorisation ``pr * pc == num_procs`` with ``pr <= pc``."""
    pr = int(math.isqrt(num_procs))
    while num_procs % pr:
        pr -= 1
    return pr, num_procs // pr


class BlockCyclic2DLayout(DataLayout):
    """Block ``(i, j)`` → processor ``(i mod pr) * pc + (j mod pc)``."""

    name = "block2d"

    def __init__(self, nb: int, num_procs: int, grid: tuple[int, int] | None = None):
        super().__init__(nb, num_procs)
        if grid is None:
            grid = _default_grid(num_procs)
        pr, pc = grid
        if pr * pc != num_procs:
            raise ValueError(f"grid {grid} does not tile {num_procs} processors")
        self.pr, self.pc = pr, pc

    def owner(self, i: int, j: int) -> int:
        self._check(i, j)
        return (i % self.pr) * self.pc + (j % self.pc)

"""Column-cyclic layout (extension baseline).

The transpose of the row-stripped cyclic layout: block ``(i, j)`` belongs
to processor ``j mod P``.  Column-wise propagation is local; row-wise
propagation always crosses processors.  Included as an extra baseline for
layout-comparison experiments (it is not in the paper's evaluation).
"""

from __future__ import annotations

from .base import DataLayout

__all__ = ["ColumnCyclicLayout"]


class ColumnCyclicLayout(DataLayout):
    """Block ``(i, j)`` → processor ``j mod P``."""

    name = "column"

    def owner(self, i: int, j: int) -> int:
        self._check(i, j)
        return j % self.num_procs

"""Block-to-processor data layouts (paper section 6.2 plus extensions)."""

from .base import DataLayout, adjacency_conflicts, load_imbalance
from .block2d import BlockCyclic2DLayout
from .column import ColumnCyclicLayout
from .diagonal import DiagonalLayout
from .stripped import RowStrippedCyclicLayout

#: registry used by examples / benches to select layouts by name
LAYOUTS: dict[str, type[DataLayout]] = {
    RowStrippedCyclicLayout.name: RowStrippedCyclicLayout,
    DiagonalLayout.name: DiagonalLayout,
    ColumnCyclicLayout.name: ColumnCyclicLayout,
    BlockCyclic2DLayout.name: BlockCyclic2DLayout,
}

__all__ = [
    "DataLayout",
    "RowStrippedCyclicLayout",
    "DiagonalLayout",
    "ColumnCyclicLayout",
    "BlockCyclic2DLayout",
    "LAYOUTS",
    "adjacency_conflicts",
    "load_imbalance",
]

"""Data layouts: mappings from matrix blocks to processors.

The paper's restricted algorithm class (section 2) divides the whole data
volume into equal-sized basic blocks spread across processors.  A
:class:`DataLayout` is the block→processor map; the Gaussian Elimination
case study compares the *row-stripped cyclic* and *diagonal* layouts
(section 6.2), and this package adds column-cyclic and 2-D block-cyclic as
further baselines.

Blocks are addressed by ``(i, j)`` block coordinates in an ``nb x nb``
block grid.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["DataLayout", "load_imbalance", "adjacency_conflicts"]


class DataLayout(abc.ABC):
    """Abstract block→processor mapping over an ``nb x nb`` block grid."""

    #: short identifier used in reports ("stripped", "diagonal", ...)
    name: str = "abstract"

    def __init__(self, nb: int, num_procs: int):
        if nb < 1:
            raise ValueError("nb must be >= 1")
        if num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        self.nb = nb
        self.num_procs = num_procs

    @abc.abstractmethod
    def owner(self, i: int, j: int) -> int:
        """Processor owning block ``(i, j)``."""

    # -- derived queries -------------------------------------------------------
    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.nb and 0 <= j < self.nb):
            raise IndexError(f"block ({i},{j}) outside {self.nb}x{self.nb} grid")

    def blocks_of(self, proc: int) -> list[tuple[int, int]]:
        """All blocks owned by ``proc`` in row-major order."""
        return [
            (i, j)
            for i in range(self.nb)
            for j in range(self.nb)
            if self.owner(i, j) == proc
        ]

    def block_counts(self) -> Counter:
        """``Counter{proc: number of blocks}`` (zero-count procs omitted)."""
        counts: Counter = Counter()
        for i in range(self.nb):
            for j in range(self.nb):
                counts[self.owner(i, j)] += 1
        return counts

    def owner_matrix(self) -> np.ndarray:
        """The full ``nb x nb`` integer matrix of owners."""
        out = np.empty((self.nb, self.nb), dtype=np.int64)
        for i in range(self.nb):
            for j in range(self.nb):
                out[i, j] = self.owner(i, j)
        return out

    def iter_blocks(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(i, j, owner)`` in row-major order."""
        for i in range(self.nb):
            for j in range(self.nb):
                yield i, j, self.owner(i, j)

    def antidiagonal(self, d: int) -> list[tuple[int, int]]:
        """Blocks on anti-diagonal ``i + j == d`` (the GE wavefront)."""
        if not (0 <= d <= 2 * (self.nb - 1)):
            raise IndexError(f"anti-diagonal {d} outside grid")
        lo = max(0, d - (self.nb - 1))
        hi = min(d, self.nb - 1)
        return [(i, d - i) for i in range(lo, hi + 1)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nb={self.nb}, P={self.num_procs})"


def load_imbalance(layout: DataLayout) -> float:
    """Ratio ``max_blocks / mean_blocks`` over processors (1.0 is perfect).

    The paper observes that row-stripped cyclic "produces a non-uniform
    load distribution" on the active wavefront while the diagonal mapping
    keeps diagonal bands uniform; this metric quantifies the static part.
    """
    counts = layout.block_counts()
    per_proc = [counts.get(p, 0) for p in range(layout.num_procs)]
    mean = sum(per_proc) / len(per_proc)
    if mean == 0:
        return 1.0
    return max(per_proc) / mean


def adjacency_conflicts(layout: DataLayout) -> int:
    """Number of row- or column-adjacent block pairs mapped to one processor.

    The paper notes the diagonal mapping has "a small probability that row-
    or column-adjacent blocks are mapped on the same processor", which turns
    a neighbour transfer into an all-to-all-like broadcast situation.
    """
    conflicts = 0
    for i in range(layout.nb):
        for j in range(layout.nb):
            me = layout.owner(i, j)
            if j + 1 < layout.nb and layout.owner(i, j + 1) == me:
                conflicts += 1
            if i + 1 < layout.nb and layout.owner(i + 1, j) == me:
                conflicts += 1
    return conflicts

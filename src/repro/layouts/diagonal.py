"""Diagonal layout (paper section 6.2, layout 2).

The blocks of each anti-diagonal ``i + j = d`` — the active wavefront of
the parallel Gaussian Elimination — are dealt to *different* processors,
so the load on every diagonal band is uniform and the computation time
drops.  We deal cyclically and carry the cursor across diagonals so the
whole matrix stays balanced:

* blocks on diagonal ``d`` are numbered ``k = 0, 1, ...`` from the top-right
  end (smallest ``i``),
* block ``k`` of diagonal ``d`` goes to processor
  ``(offset(d) + k) mod P`` where ``offset(d)`` is the total number of
  blocks on diagonals ``< d`` modulo ``P``.

As the paper notes, with this family of mappings there is a small chance
that row- or column-adjacent blocks land on the same processor (quantified
by :func:`repro.layouts.base.adjacency_conflicts`), which replaces cheap
neighbour transfers with an all-to-all-broadcast-like situation and can
increase communication time.
"""

from __future__ import annotations

from .base import DataLayout

__all__ = ["DiagonalLayout"]


class DiagonalLayout(DataLayout):
    """Cyclic dealing of each anti-diagonal's blocks across processors."""

    name = "diagonal"

    def __init__(self, nb: int, num_procs: int):
        super().__init__(nb, num_procs)
        # offset(d) = (# blocks on diagonals < d) mod P, precomputed.
        self._offsets = []
        total = 0
        for d in range(2 * nb - 1):
            self._offsets.append(total % num_procs)
            length = min(d, nb - 1) - max(0, d - (nb - 1)) + 1
            total += length

    def owner(self, i: int, j: int) -> int:
        self._check(i, j)
        d = i + j
        lo = max(0, d - (self.nb - 1))
        k = i - lo  # position along the diagonal, 0 at smallest i
        return (self._offsets[d] + k) % self.num_procs

"""Row-stripped cyclic layout (paper section 6.2, layout 1).

Processors are assigned whole rows of blocks cyclically: block ``(i, j)``
belongs to processor ``i mod P``.  Row-wise propagation of data therefore
never crosses processors (those transfers are local), but the active
wavefront of the Gaussian Elimination touches consecutive block rows, so
the load on a diagonal band is uneven — the paper's stated drawback.
"""

from __future__ import annotations

from .base import DataLayout

__all__ = ["RowStrippedCyclicLayout"]


class RowStrippedCyclicLayout(DataLayout):
    """Block ``(i, j)`` → processor ``i mod P``."""

    name = "stripped"

    def owner(self, i: int, j: int) -> int:
        self._check(i, j)
        return i % self.num_procs

"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``timeline``   simulate one communication step and render it
               (the paper's Figures 4/5 for any pattern)
``predict``    predict a GE configuration (both algorithms + emulated run)
``sweep``      block-size sweep for GE, with optimum report (Figure 7)
``ops``        print the basic-operation cost table (Figure 6)
``trace``      generate a GE trace and save it as JSON

Examples
--------
::

    python -m repro timeline --pattern sample --algorithm worstcase
    python -m repro predict -n 480 -b 48 --layout diagonal
    python -m repro sweep -n 480 --layout diagonal stripped
    python -m repro ops -b 10 20 40 80 160 --source calibrated
    python -m repro trace -n 240 -b 24 --layout diagonal -o ge.json
    python -m repro profile -n 480 -b 48
    python -m repro fit --jitter
    python -m repro svg --pattern sample -o fig4.svg
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import format_figure, format_table, render_timeline, series_from_rows
from .apps import (
    PAPER_BLOCK_SIZES,
    all_to_all_pattern,
    ring_pattern,
    sample_pattern,
)
from .apps.gauss import GEConfig, build_ge_trace
from .blockops import OP_NAMES, calibrated_table, measure_op_costs
from .core import (
    MEIKO_CS2,
    CalibratedCostModel,
    LogGPParameters,
    run_ge_point,
    run_ge_sweep,
    simulate_causal,
    simulate_standard,
    simulate_worstcase,
)
from .core.units import us_to_s
from .layouts import LAYOUTS
from .trace.serialization import save_trace

__all__ = ["main", "build_parser"]

_ALGORITHMS = {
    "standard": simulate_standard,
    "worstcase": simulate_worstcase,
    "causal": simulate_causal,
}

_PATTERNS = {
    "sample": lambda P, size: sample_pattern(size),
    "ring": ring_pattern,
    "alltoall": all_to_all_pattern,
}


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--L", type=float, default=MEIKO_CS2.L, help="latency, us")
    parser.add_argument("--o", type=float, default=MEIKO_CS2.o, help="overhead, us")
    parser.add_argument("--g", type=float, default=MEIKO_CS2.g, help="gap, us")
    parser.add_argument("--G", type=float, default=MEIKO_CS2.G, help="gap per byte, us/B")
    parser.add_argument("--procs", type=int, default=MEIKO_CS2.P, help="processor count")


def _machine(args: argparse.Namespace) -> LogGPParameters:
    return LogGPParameters(L=args.L, o=args.o, g=args.g, G=args.G, P=args.procs, name="cli")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LogGP running-time prediction (Rugina & Schauser, IPPS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("timeline", help="simulate one communication step")
    p.add_argument("--pattern", choices=sorted(_PATTERNS), default="sample")
    p.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="standard")
    p.add_argument("--size", type=int, default=1160, help="message bytes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--width", type=int, default=100)
    _add_machine_args(p)

    p = sub.add_parser("predict", help="predict one GE configuration")
    p.add_argument("-n", type=int, default=480, help="matrix order")
    p.add_argument("-b", type=int, default=48, help="block size")
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="diagonal")
    p.add_argument("--no-measured", action="store_true", help="skip the emulated run")
    p.add_argument("--seed", type=int, default=0)
    _add_machine_args(p)

    p = sub.add_parser("sweep", help="GE block-size sweep (Figure 7)")
    p.add_argument("-n", type=int, default=480)
    p.add_argument("--blocks", type=int, nargs="*", default=None,
                   help="block sizes (default: paper sizes dividing n)")
    p.add_argument("--layout", nargs="+", choices=sorted(LAYOUTS), default=["diagonal"])
    p.add_argument("--no-measured", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    _add_machine_args(p)

    p = sub.add_parser("ops", help="basic-operation cost table (Figure 6)")
    p.add_argument("-b", "--blocks", type=int, nargs="+", default=[10, 20, 40, 60, 80, 160])
    p.add_argument("--source", choices=["calibrated", "measured"], default="calibrated")
    p.add_argument("--repeats", type=int, default=3, help="host-timing repeats")

    p = sub.add_parser("trace", help="generate and save a GE trace as JSON")
    p.add_argument("-n", type=int, default=240)
    p.add_argument("-b", type=int, default=24)
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="diagonal")
    p.add_argument("-o", "--output", required=True, help="output JSON path")
    p.add_argument("--procs", type=int, default=MEIKO_CS2.P)

    p = sub.add_parser("profile", help="lost-cycles decomposition of a GE run")
    p.add_argument("-n", type=int, default=480)
    p.add_argument("-b", type=int, default=48)
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="diagonal")
    p.add_argument("--mode", choices=["standard", "worstcase", "causal"], default="standard")
    _add_machine_args(p)

    p = sub.add_parser("fit", help="recover LogGP parameters via micro-benchmarks")
    p.add_argument("--jitter", action="store_true", help="run against the jittered network")
    p.add_argument("--repeats", type=int, default=9)
    p.add_argument("--seed", type=int, default=0)
    _add_machine_args(p)

    p = sub.add_parser("svg", help="render a communication step as SVG")
    p.add_argument("--pattern", choices=sorted(_PATTERNS), default="sample")
    p.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="standard")
    p.add_argument("--size", type=int, default=1160)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--svg-width", type=int, default=900)
    p.add_argument("-o", "--output", required=True, help="output SVG path")
    _add_machine_args(p)

    return parser


def _cmd_timeline(args: argparse.Namespace) -> int:
    params = _machine(args)
    pattern = _PATTERNS[args.pattern](params.P if args.pattern != "sample" else 10, args.size)
    result = _ALGORITHMS[args.algorithm](params, pattern, seed=args.seed)
    print(f"{args.algorithm} algorithm on {args.pattern!r} pattern  ({params.describe()})")
    print(render_timeline(result.timeline, width=args.width))
    print(f"completion: {result.completion_time:.2f} us")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    params = _machine(args)
    row = run_ge_point(
        args.n, args.b, args.layout, params, CalibratedCostModel(),
        with_measured=not args.no_measured, seed=args.seed,
    )
    print(f"{args.n}x{args.n} GE, b={args.b}, layout={args.layout}  ({params.describe()})")
    for name, us in row.series().items():
        print(f"  {name:26s} {us_to_s(us):9.4f} s")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    params = _machine(args)
    blocks = args.blocks or [b for b in PAPER_BLOCK_SIZES if args.n % b == 0]
    if not blocks:
        print(f"error: no paper block size divides n={args.n}", file=sys.stderr)
        return 2
    bad = [b for b in blocks if args.n % b]
    if bad:
        print(f"error: block sizes {bad} do not divide n={args.n}", file=sys.stderr)
        return 2
    rows = run_ge_sweep(
        args.n, blocks, args.layout, params, CalibratedCostModel(),
        with_measured=not args.no_measured, seed=args.seed,
    )
    for layout in args.layout:
        mine = [r for r in rows if r.layout == layout]
        series = series_from_rows(mine, "b", lambda r: r.series())
        print(format_figure(f"{layout} mapping, n={args.n}", series))
        best = min(mine, key=lambda r: r.pred_standard.total_us)
        print(f"predicted optimal block size: {best.b}\n")
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    if args.source == "calibrated":
        table = calibrated_table(args.blocks)
        title = "calibrated CS-2 stand-in [ms]"
    else:
        table = measure_op_costs(args.blocks, repeats=args.repeats)
        title = "host-measured [ms]"
    rows = [
        {"b": b, **{op: table[op][b] / 1000.0 for op in OP_NAMES}} for b in args.blocks
    ]
    print(format_table(rows, ["b", *OP_NAMES], title=title))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    layout = LAYOUTS[args.layout](args.n // args.b, args.procs)
    trace = build_ge_trace(GEConfig(n=args.n, b=args.b, layout=layout))
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {len(trace)} steps, {trace.total_ops()} ops, "
        f"{trace.total_messages()} messages"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .apps.gauss import GEConfig as _GEConfig
    from .machine import profile_program

    params = _machine(args)
    layout = LAYOUTS[args.layout](args.n // args.b, params.P)
    trace = build_ge_trace(_GEConfig(n=args.n, b=args.b, layout=layout))
    profile = profile_program(trace, params, CalibratedCostModel(), mode=args.mode)
    print(profile.describe())
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from .core.fitting import assess_fit, emulator_runner, fit_loggp

    truth = _machine(args)
    if args.jitter:
        from .machine import JitteredNetwork

        net = JitteredNetwork(params=truth, seed=args.seed)
        runner = emulator_runner(truth, latency_of=net.latency_of)
    else:
        runner = emulator_runner(truth, seed=args.seed)
    fitted = fit_loggp(runner, num_procs=truth.P, repeats=args.repeats)
    errors = assess_fit(fitted, truth)
    print(f"truth : {truth.describe()}")
    print(f"fitted: {fitted.describe()}")
    print(
        "errors: "
        + ", ".join(f"{k}={100 * v:.2f}%" for k, v in sorted(errors.items()))
    )
    return 0


def _cmd_svg(args: argparse.Namespace) -> int:
    from .analysis.svg import save_timeline_svg

    params = _machine(args)
    pattern = _PATTERNS[args.pattern](params.P if args.pattern != "sample" else 10, args.size)
    result = _ALGORITHMS[args.algorithm](params, pattern, seed=args.seed)
    save_timeline_svg(
        result.timeline,
        args.output,
        width=args.svg_width,
        title=f"{args.algorithm} algorithm, {args.pattern} pattern",
    )
    print(f"wrote {args.output} (completion {result.completion_time:.2f} us)")
    return 0


_COMMANDS = {
    "timeline": _cmd_timeline,
    "predict": _cmd_predict,
    "sweep": _cmd_sweep,
    "ops": _cmd_ops,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "fit": _cmd_fit,
    "svg": _cmd_svg,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``timeline``   simulate one communication step and render it
               (the paper's Figures 4/5 for any pattern)
``predict``    predict a GE configuration (both algorithms + emulated run)
``sweep``      block-size sweep for GE, with optimum report (Figure 7);
               ``--workers auto`` (default) self-tunes the execution
               strategy, ``--workers N`` forces the legacy process pool,
               ``--executor auto|serial|thread|process`` overrides, and
               ``--store DIR --resume`` makes interrupted sweeps restart
               where they stopped (see :mod:`repro.sweep`)
``uq``         Monte Carlo uncertainty bands around the sweep: seeded
               machine-parameter perturbations fanned as replicates
               through the sweep engine, reduced to mean/CI envelopes
               plus an optional LogGP sensitivity ranking
               (see :mod:`repro.uq`)
``serve``      run the prediction server: JSON over HTTP with a layered
               cache (in-memory LRU -> experiment store -> sweep engine),
               single-flighted misses and request batching
               (see :mod:`repro.serve`); ``--check`` runs an in-process
               self-test and exits
``ops``        print the basic-operation cost table (Figure 6)
``trace``      generate a GE trace and save it as JSON
``observe``    run one GE configuration under the tracer and export the
               event stream (Chrome/Perfetto trace, JSONL/CSV, profile)
``trace-merge``  stitch per-process trace shards (``--trace-shards``)
               into one correlated timeline, validate the span tree and
               print the deterministic retention digest

Every run also writes a machine-readable :class:`repro.obs.RunRecord`
manifest (``.repro/runs/`` by default, ``--manifest-out`` to choose the
path, ``--no-manifest`` to skip).  ``predict``/``sweep``/``profile``/
``observe`` accept ``--json`` for machine-readable stdout output and
``--trace-out`` to export a Perfetto-loadable trace of the run.

Examples
--------
::

    python -m repro timeline --pattern sample --algorithm worstcase
    python -m repro predict -n 480 -b 48 --layout diagonal --json
    python -m repro sweep -n 480 --layout diagonal stripped
    python -m repro sweep -n 960 --workers 4 --store .repro/store --resume
    python -m repro uq -n 960 --layout block2d --replicates 64 --sigma 0.1
    python -m repro serve --store .repro/store --port 8787
    python -m repro serve --check --json
    python -m repro uq -n 480 --replicates 32 --sigma 0.15 --sensitivity --json
    python -m repro ops -b 10 20 40 80 160 --source calibrated
    python -m repro trace -n 240 -b 24 --layout diagonal -o ge.json
    python -m repro profile -n 480 -b 48 --trace-out profile.trace.json
    python -m repro observe --layout block2d -b 60 -P 8 --trace-out t.json
    python -m repro fit --jitter
    python -m repro svg --pattern sample -o fig4.svg
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Optional, Sequence

from .analysis import format_figure, format_table, render_timeline, series_from_rows
from .apps import (
    PAPER_BLOCK_SIZES,
    all_to_all_pattern,
    ring_pattern,
    sample_pattern,
)
from .apps.gauss import GEConfig, build_ge_trace
from .blockops import OP_NAMES, calibrated_table, measure_op_costs
from .core import (
    MEIKO_CS2,
    CalibratedCostModel,
    LogGPParameters,
    run_ge_point,
    simulate_causal,
    simulate_standard,
    simulate_worstcase,
)
from .core.units import us_to_s
from .layouts import LAYOUTS
from .obs import (
    CATEGORIES,
    JsonlLogger,
    RunRecord,
    TraceConfig,
    TraceContext,
    Tracer,
    bucket_sums,
    loggp_dict,
    merge_shards,
    set_logger,
    shard_paths,
    trace_digest,
    tracing,
    validate_span_tree,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
    write_merged_events,
    write_merged_trace,
    write_shard,
)
from .sweep import expand_grid, run_sweep
from .trace.serialization import save_trace

__all__ = ["main", "build_parser"]

_ALGORITHMS = {
    "standard": simulate_standard,
    "worstcase": simulate_worstcase,
    "causal": simulate_causal,
}

_PATTERNS = {
    "sample": lambda P, size: sample_pattern(size),
    "ring": ring_pattern,
    "alltoall": all_to_all_pattern,
}


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--L", type=float, default=MEIKO_CS2.L, help="latency, us")
    parser.add_argument("--o", type=float, default=MEIKO_CS2.o, help="overhead, us")
    parser.add_argument("--g", type=float, default=MEIKO_CS2.g, help="gap, us")
    parser.add_argument("--G", type=float, default=MEIKO_CS2.G, help="gap per byte, us/B")
    parser.add_argument(
        "-P", "--procs", type=int, default=MEIKO_CS2.P, help="processor count"
    )


def _add_obs_args(parser: argparse.ArgumentParser, exports: bool = False) -> None:
    """Observability flags; ``exports`` adds --json/--trace-out."""
    grp = parser.add_argument_group("observability")
    if exports:
        grp.add_argument(
            "--json", action="store_true",
            help="print machine-readable JSON results to stdout",
        )
        grp.add_argument(
            "--trace-out", metavar="PATH",
            help="write a Chrome/Perfetto trace JSON of the run",
        )
        grp.add_argument(
            "--trace-categories", metavar="CATS",
            help="comma-separated event categories to record "
                 f"(default: all of {','.join(CATEGORIES)})",
        )
        grp.add_argument(
            "--trace-sample", metavar="SPEC",
            help="deterministic 1-in-N event sampling: a global rate "
                 "('16') or per-category rates ('send=16,recv=16')",
        )
        grp.add_argument(
            "--trace-seed", type=int, default=0, metavar="SEED",
            help="seed of the deterministic sampling hash (default: 0)",
        )
        grp.add_argument(
            "--trace-shards", metavar="DIR",
            help="flush per-process trace shards under DIR (the parent "
                 "writes shard-main.jsonl, sweep workers their chunks); "
                 "stitch afterwards with `repro trace-merge DIR`",
        )
    grp.add_argument(
        "--log-jsonl", metavar="PATH",
        help="append structured JSONL log records (stamped with "
             "trace/span ids when tracing) to PATH",
    )
    grp.add_argument(
        "--manifest-out", metavar="PATH",
        help="run manifest path (default: $REPRO_RUNS_DIR or .repro/runs/)",
    )
    grp.add_argument(
        "--no-manifest", action="store_true",
        help="skip writing the run manifest",
    )


def _workers_arg(value: str):
    """``--workers`` accepts an integer or ``auto`` (the default)."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer or 'auto', got {value!r}"
        )


def _resolve_executor(args: argparse.Namespace):
    """``(workers, executor)`` for :func:`run_sweep` from the CLI flags.

    An explicit ``--workers N`` without ``--executor`` keeps the legacy
    contract (N alone picks serial vs process pool); ``--workers auto``
    — the default — hands the choice to the self-tuning executor.
    """
    workers, executor = args.workers, args.executor
    if executor is not None:
        return (None if workers == "auto" else workers), executor
    if workers == "auto":
        return None, "auto"
    return workers, None


def _add_sweep_engine_args(parser: argparse.ArgumentParser) -> None:
    """The execution knobs shared by ``sweep`` and ``uq``."""
    grp = parser.add_argument_group("sweep engine")
    grp.add_argument(
        "-w", "--workers", type=_workers_arg, default="auto",
        help="worker processes: an integer (1 = in-process serial, the "
             "reference engine; N > 1 = process pool) or 'auto' (default: "
             "let the calibrated executor decide)",
    )
    grp.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None,
        help="execution strategy (default: auto when --workers is auto, "
             "else the legacy workers-count behaviour); every strategy "
             "is bit-identical — only wall time differs",
    )
    grp.add_argument(
        "--store", metavar="DIR",
        help="persist every point into an experiment store at DIR",
    )
    grp.add_argument(
        "--resume", action="store_true",
        help="skip points already in --store (only missing ones are dispatched)",
    )
    grp.add_argument(
        "--chunk-size", type=int, default=None,
        help="points per dispatched chunk (default: ~4 chunks per worker)",
    )
    grp.add_argument(
        "--progress", action="store_true",
        help="print one progress line per point to stderr",
    )


def _machine(args: argparse.Namespace) -> LogGPParameters:
    return LogGPParameters(L=args.L, o=args.o, g=args.g, G=args.G, P=args.procs, name="cli")


def _record(args: argparse.Namespace) -> RunRecord:
    """The run's manifest record (a detached one if main() didn't attach)."""
    rec = getattr(args, "run_record", None)
    if rec is None:
        rec = RunRecord.begin(getattr(args, "command", "unknown"))
        args.run_record = rec
    return rec


def _trace_config(args: argparse.Namespace) -> TraceConfig:
    """The run's :class:`TraceConfig`, parsed from the CLI flags."""
    return TraceConfig.parse(
        categories=getattr(args, "trace_categories", None),
        sample=getattr(args, "trace_sample", None),
        seed=getattr(args, "trace_seed", 0),
    )


def _root_context(args: argparse.Namespace) -> TraceContext:
    """The run's deterministic trace root.

    Derived from the command and its *workload* scalars only — never the
    execution knobs — so a ``--workers 2`` re-run of the same grid shares
    the trace id (and hence every derived span id) with the ``--workers
    1`` reference run.
    """
    material = {
        key: getattr(args, key)
        for key in ("n", "b", "blocks", "layout", "seed", "replicates",
                    "trace_seed")
        if getattr(args, key, None) is not None
    }
    return TraceContext.root(
        args.command, json.dumps(material, sort_keys=True, default=str)
    )


def _wants_trace(args: argparse.Namespace) -> Optional[Tracer]:
    """A fresh tracer when the run asked for one, else ``None``.

    ``--trace-out`` requests an export; ``--trace-categories`` /
    ``--trace-sample`` alone still enable tracing so the run manifest
    captures the (filtered, sampled) telemetry without writing a trace
    file, and ``--trace-shards`` enables it for shard-mode stitching.
    The tracer carries the run's deterministic root
    :class:`~repro.obs.TraceContext`, so every span is stamped with
    trace/span ids.  It is stashed on ``args`` so :func:`main` can fold
    its event count, telemetry block, trace id and metrics into the
    manifest.
    """
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "trace_categories", None)
        or getattr(args, "trace_sample", None)
        or getattr(args, "trace_shards", None)
    ):
        tracer = Tracer(config=_trace_config(args))
        tracer.context = _root_context(args)
        args.obs_tracer = tracer
        return tracer
    return None


def _export_trace(args: argparse.Namespace, tracer: Optional[Tracer]) -> None:
    if tracer is None:
        return
    if getattr(args, "trace_out", None):
        write_chrome_trace(tracer.events, args.trace_out, metrics=tracer.metrics)
        print(f"wrote trace {args.trace_out} ({len(tracer.events)} events)", file=sys.stderr)
    if getattr(args, "trace_shards", None):
        path = write_shard(
            Path(args.trace_shards) / "shard-main.jsonl", tracer, label="main"
        )
        print(
            f"wrote trace shard {path} ({len(tracer.events)} events)",
            file=sys.stderr,
        )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LogGP running-time prediction (Rugina & Schauser, IPPS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("timeline", help="simulate one communication step")
    p.add_argument("--pattern", choices=sorted(_PATTERNS), default="sample")
    p.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="standard")
    p.add_argument("--size", type=int, default=1160, help="message bytes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--width", type=int, default=100)
    _add_machine_args(p)
    _add_obs_args(p)

    p = sub.add_parser("predict", help="predict one GE configuration")
    p.add_argument("-n", type=int, default=480, help="matrix order")
    p.add_argument("-b", type=int, default=48, help="block size")
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="diagonal")
    p.add_argument("--no-measured", action="store_true", help="skip the emulated run")
    p.add_argument("--seed", type=int, default=0)
    _add_machine_args(p)
    _add_obs_args(p, exports=True)

    p = sub.add_parser("sweep", help="GE block-size sweep (Figure 7)")
    p.add_argument("-n", type=int, default=480)
    p.add_argument("--blocks", type=int, nargs="*", default=None,
                   help="block sizes (default: paper sizes dividing n)")
    p.add_argument("--layout", nargs="+", choices=sorted(LAYOUTS), default=["diagonal"])
    p.add_argument("--no-measured", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    _add_sweep_engine_args(p)
    _add_machine_args(p)
    _add_obs_args(p, exports=True)

    p = sub.add_parser(
        "uq", help="Monte Carlo uncertainty bands for the GE sweep"
    )
    p.add_argument("-n", type=int, default=480)
    p.add_argument("--blocks", type=int, nargs="*", default=None,
                   help="block sizes (default: paper sizes dividing n)")
    p.add_argument("--layout", nargs="+", choices=sorted(LAYOUTS), default=["diagonal"])
    p.add_argument("--no-measured", action="store_true")
    p.add_argument("--seed", type=int, default=0, help="base seed of the study")
    grp = p.add_argument_group("uncertainty model")
    grp.add_argument(
        "-r", "--replicates", type=int, default=32,
        help="Monte Carlo replicates per point",
    )
    grp.add_argument(
        "--sigma", type=float, default=0.1,
        help="relative log-normal sigma on L, o, g, G (0 = deterministic)",
    )
    grp.add_argument(
        "--op-sigma", type=float, default=0.0,
        help="relative log-normal sigma on per-op block timings",
    )
    grp.add_argument(
        "--ci", type=float, default=0.95,
        help="confidence level of the percentile interval",
    )
    grp.add_argument(
        "--jitter-sigma", type=float, default=None,
        help="override the emulated network's jitter sigma",
    )
    grp.add_argument(
        "--straggler-prob", type=float, default=None,
        help="override the emulated network's straggler probability",
    )
    grp.add_argument(
        "--straggler-factor", type=float, default=None,
        help="override the emulated network's straggler factor",
    )
    grp.add_argument(
        "--posterior", metavar="PATH",
        help="replay a calibrated posterior (the `repro calibrate` output "
             "JSON) instead of the sigma knobs above",
    )
    grp.add_argument(
        "--sensitivity", action="store_true",
        help="also report one-at-a-time LogGP elasticities per block size",
    )
    grp.add_argument(
        "--svg-out", metavar="PATH",
        help="write a CI-band SVG per layout (layout name suffixed when >1)",
    )
    _add_sweep_engine_args(p)
    _add_machine_args(p)
    _add_obs_args(p, exports=True)

    p = sub.add_parser(
        "serve", help="run the prediction server (JSON over HTTP)"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8787, help="bind port (0 = ephemeral)")
    p.add_argument(
        "--store", metavar="DIR",
        help="experiment-store directory (tier 2; omit for memory + compute only)",
    )
    p.add_argument(
        "--cache-size", type=int, default=4096,
        help="entries held by the in-memory LRU (tier 1)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=10.0,
        help="how long the first miss waits to coalesce a batch",
    )
    p.add_argument(
        "--batch-max", type=int, default=64,
        help="most misses coalesced into one batch",
    )
    grp = p.add_argument_group("sweep engine")
    grp.add_argument(
        "-w", "--workers", type=_workers_arg, default="auto",
        help="worker processes per batch sweep (integer or 'auto')",
    )
    grp.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None, help="batch execution strategy (default: auto)",
    )
    p.add_argument(
        "--serve-manifests", metavar="DIR",
        help="write per-request and per-batch run manifests under DIR",
    )
    p.add_argument(
        "--check", action="store_true",
        help="self-test: answer one request in process twice "
             "(cold then cached), print the stats document and exit",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable --check output (stats document only)",
    )
    _add_machine_args(p)
    _add_obs_args(p)

    p = sub.add_parser("ops", help="basic-operation cost table (Figure 6)")
    p.add_argument("-b", "--blocks", type=int, nargs="+", default=[10, 20, 40, 60, 80, 160])
    p.add_argument("--source", choices=["calibrated", "measured"], default="calibrated")
    p.add_argument("--repeats", type=int, default=3, help="host-timing repeats")
    _add_obs_args(p)

    p = sub.add_parser("trace", help="generate and save a GE trace as JSON")
    p.add_argument("-n", type=int, default=240)
    p.add_argument("-b", type=int, default=24)
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="diagonal")
    p.add_argument("-o", "--output", required=True, help="output JSON path")
    p.add_argument("-P", "--procs", type=int, default=MEIKO_CS2.P)
    _add_obs_args(p)

    p = sub.add_parser("profile", help="lost-cycles decomposition of a GE run")
    p.add_argument("-n", type=int, default=480)
    p.add_argument("-b", type=int, default=48)
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="diagonal")
    p.add_argument("--mode", choices=["standard", "worstcase", "causal"], default="standard")
    p.add_argument("--seed", type=int, default=0)
    _add_machine_args(p)
    _add_obs_args(p, exports=True)

    p = sub.add_parser(
        "observe",
        help="run one GE configuration under the tracer and export the events",
    )
    p.add_argument("-n", type=int, default=960, help="matrix order")
    p.add_argument("-b", type=int, default=60, help="block size")
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="block2d")
    p.add_argument("--mode", choices=["standard", "worstcase", "causal"], default="standard")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events-out", metavar="PATH", help="flat JSONL event dump")
    p.add_argument("--csv-out", metavar="PATH", help="flat CSV event dump")
    _add_machine_args(p)
    _add_obs_args(p, exports=True)

    p = sub.add_parser("fit", help="recover LogGP parameters via micro-benchmarks")
    p.add_argument("--jitter", action="store_true", help="run against the jittered network")
    p.add_argument("--repeats", type=int, default=9)
    p.add_argument("--seed", type=int, default=0)
    _add_machine_args(p)
    _add_obs_args(p)

    p = sub.add_parser(
        "calibrate",
        help="Bayesian LogGP calibration: posterior over (L, o, g, G, op costs)",
    )
    src = p.add_argument_group("measurements")
    src.add_argument(
        "--measurements", metavar="PATH",
        help="import a measurement-set JSON (trace) instead of measuring "
             "the emulator",
    )
    src.add_argument(
        "--noise-sigma", type=float, default=0.05,
        help="injected log-normal timer noise on emulator observables "
             "(0 = noiseless: the posterior collapses to the point fit)",
    )
    src.add_argument(
        "--repeats", type=int, default=7,
        help="observations per micro-benchmark observable",
    )
    src.add_argument("--large-bytes", type=int, default=65536)
    src.add_argument("--burst-count", type=int, default=16)
    src.add_argument(
        "--no-ops", action="store_true",
        help="calibrate the network parameters only (skip per-op costs)",
    )
    grp = p.add_argument_group("posterior")
    grp.add_argument("--draws", type=int, default=200, help="posterior samples kept")
    grp.add_argument("--burn", type=int, default=200, help="burn-in sweeps")
    grp.add_argument("--thin", type=int, default=2, help="sweeps per kept sample")
    grp.add_argument(
        "--prior-tau", type=float, default=1.0,
        help="prior sd in log space around the point fit",
    )
    grp.add_argument(
        "--ci", type=float, default=0.9,
        help="credible-interval level of the printed summary",
    )
    grp.add_argument(
        "--max-draws", type=int, default=None,
        help="subsample the posterior to this many draws in the output spec",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "-o", "--out", metavar="PATH",
        help="write the posterior JSON here (feeds `repro uq --posterior`)",
    )
    _add_machine_args(p)
    _add_obs_args(p, exports=True)

    p = sub.add_parser(
        "trace-merge",
        help="stitch trace shards into one correlated timeline",
    )
    p.add_argument(
        "shards", nargs="+", metavar="SHARD",
        help="shard files, or directories holding shard-*.jsonl",
    )
    p.add_argument(
        "-o", "--output", metavar="PATH",
        help="write the merged Chrome/Perfetto trace JSON here",
    )
    p.add_argument(
        "--events-out", metavar="PATH",
        help="write the merged flat JSONL event dump here",
    )
    p.add_argument(
        "--extra-root", action="append", default=[], metavar="SPAN_ID",
        help="treat SPAN_ID as a resolvable upstream parent "
             "(a client-supplied trace context from another system)",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any span's parent does not resolve (orphans)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable merge summary on stdout",
    )
    _add_obs_args(p)

    p = sub.add_parser("svg", help="render a communication step as SVG")
    p.add_argument("--pattern", choices=sorted(_PATTERNS), default="sample")
    p.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="standard")
    p.add_argument("--size", type=int, default=1160)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--svg-width", type=int, default=900)
    p.add_argument("-o", "--output", required=True, help="output SVG path")
    _add_machine_args(p)
    _add_obs_args(p)

    return parser


def _cmd_timeline(args: argparse.Namespace) -> int:
    params = _machine(args)
    pattern = _PATTERNS[args.pattern](params.P if args.pattern != "sample" else 10, args.size)
    result = _ALGORITHMS[args.algorithm](params, pattern, seed=args.seed)
    _record(args).note(
        params=loggp_dict(params), engine=args.algorithm,
        workload={"pattern": args.pattern, "size": args.size},
        makespan_us=result.completion_time,
    )
    print(f"{args.algorithm} algorithm on {args.pattern!r} pattern  ({params.describe()})")
    print(render_timeline(result.timeline, width=args.width))
    print(f"completion: {result.completion_time:.2f} us")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    params = _machine(args)
    tracer = _wants_trace(args)
    with tracing(tracer) if tracer else nullcontext():
        row = run_ge_point(
            args.n, args.b, args.layout, params, CalibratedCostModel(),
            with_measured=not args.no_measured, seed=args.seed,
        )
    _export_trace(args, tracer)
    _record(args).note(
        params=loggp_dict(params), engine="predict",
        workload={"n": args.n, "b": args.b, "layout": args.layout},
        makespan_us=row.pred_standard.total_us,
    )
    if args.json:
        print(json.dumps({
            "n": args.n, "b": args.b, "layout": args.layout,
            "params": loggp_dict(params), "series_us": row.series(),
        }, indent=2))
        return 0
    print(f"{args.n}x{args.n} GE, b={args.b}, layout={args.layout}  ({params.describe()})")
    for name, us in row.series().items():
        print(f"  {name:26s} {us_to_s(us):9.4f} s")
    return 0


def _sweep_blocks(args: argparse.Namespace) -> Optional[list[int]]:
    """Validated block sizes for a sweep-shaped command (None = usage error)."""
    blocks = args.blocks or [b for b in PAPER_BLOCK_SIZES if args.n % b == 0]
    if not blocks:
        print(f"error: no paper block size divides n={args.n}", file=sys.stderr)
        return None
    bad = [b for b in blocks if args.n % b]
    if bad:
        print(f"error: block sizes {bad} do not divide n={args.n}", file=sys.stderr)
        return None
    if args.resume and not args.store:
        print("error: --resume requires --store DIR", file=sys.stderr)
        return None
    return blocks


def _sweep_progress(args: argparse.Namespace):
    """The stderr per-point progress callback, or None."""
    if not args.progress:
        return None

    def show_progress(done, total, point, source):
        print(f"sweep [{done}/{total}] {point.describe()} ({source})",
              file=sys.stderr)

    return show_progress


def _cmd_sweep(args: argparse.Namespace) -> int:
    params = _machine(args)
    blocks = _sweep_blocks(args)
    if blocks is None:
        return 2
    grid = expand_grid(
        args.n, blocks, args.layout, seeds=(args.seed,),
        with_measured=not args.no_measured,
    )
    show_progress = _sweep_progress(args)
    workers, executor = _resolve_executor(args)
    tracer = _wants_trace(args)
    with tracing(tracer) if tracer else nullcontext():
        result = run_sweep(
            grid, params, CalibratedCostModel(),
            workers=workers,
            executor=executor,
            store=args.store,
            resume=args.resume,
            chunk_size=args.chunk_size,
            progress=show_progress,
            trace_shard_dir=args.trace_shards,
        )
    rows = result.summaries
    _export_trace(args, tracer)
    best_by_layout = {
        layout: min(
            (r for r in rows if r.layout == layout),
            key=lambda r: r.pred_standard_total,
        ).b
        for layout in args.layout
    }
    _record(args).note(
        params=loggp_dict(params), engine="sweep",
        workload={"n": args.n, "blocks": blocks, "layouts": args.layout,
                  "seed": args.seed},
        best_block=best_by_layout,
        results_sha256=result.digest(),
        sweep=result.stats.to_dict(),
    )
    if args.json:
        print(json.dumps({
            "n": args.n, "params": loggp_dict(params),
            "rows": [
                {"layout": r.layout, "b": r.b, "series_us": r.series()}
                for r in rows
            ],
            "best_block": best_by_layout,
        }, indent=2))
        return 0
    for layout in args.layout:
        mine = [r for r in rows if r.layout == layout]
        series = series_from_rows(mine, "b", lambda r: r.series())
        print(format_figure(f"{layout} mapping, n={args.n}", series))
        print(f"predicted optimal block size: {best_by_layout[layout]}\n")
    return 0


def _load_posterior_spec(path: str):
    """The :class:`repro.uq.EmpiricalSpec` inside a calibrate output file.

    Accepts the ``repro calibrate -o`` document (uses its ``spec`` block,
    which reflects any ``--max-draws`` subsampling), a bare spec
    document, or a bare posterior document.
    """
    from .calib import Posterior
    from .uq import EmpiricalSpec

    with open(path) as fh:
        doc = json.load(fh)
    if "spec" in doc:
        return EmpiricalSpec.from_dict(doc["spec"])
    if "posterior" in doc:
        return Posterior.from_dict(doc["posterior"]).to_spec()
    if doc.get("kind") == "empirical":
        return EmpiricalSpec.from_dict(doc)
    return Posterior.from_dict(doc).to_spec()


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .calib import MeasurementSet, calibrate, calibrate_emulator

    params = _machine(args)
    cost_model = None if args.no_ops else CalibratedCostModel()
    tracer = _wants_trace(args)
    with tracing(tracer) if tracer else nullcontext():
        if args.measurements:
            with open(args.measurements) as fh:
                mset = MeasurementSet.from_dict(json.load(fh))
            posterior = calibrate(
                mset,
                base_cost_model=cost_model,
                draws=args.draws, burn=args.burn, thin=args.thin,
                prior_tau=args.prior_tau, seed=args.seed,
            )
        else:
            posterior = calibrate_emulator(
                params, cost_model,
                noise_sigma=args.noise_sigma, repeats=args.repeats,
                large_bytes=args.large_bytes, burst_count=args.burst_count,
                draws=args.draws, burn=args.burn, thin=args.thin,
                prior_tau=args.prior_tau, seed=args.seed,
            )
    _export_trace(args, tracer)
    spec = posterior.to_spec(max_draws=args.max_draws)
    summary = posterior.summary(args.ci)
    doc = {
        "posterior": posterior.to_dict(),
        "spec": spec.to_dict(),
        "summary": summary,
        "ci": args.ci,
        "fingerprint": posterior.fingerprint(),
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    _record(args).note(
        params=loggp_dict(params), engine="calib",
        workload={
            "measurements": args.measurements,
            "noise_sigma": args.noise_sigma if not args.measurements else None,
            "repeats": args.repeats, "seed": args.seed,
        },
        calib={
            "fingerprint": posterior.fingerprint(),
            "spec_fingerprint": spec.fingerprint(),
            "degenerate": posterior.degenerate,
            "accept_rate": posterior.accept_rate,
            "draws": len(posterior.draws),
            "spec_draws": len(spec.draws),
            "ci": args.ci,
            "summary": summary,
            "config": dict(posterior.config),
        },
    )
    if args.json:
        print(json.dumps(doc, indent=2))
        return 0
    point = posterior.point_fit
    fit_by_name = {"L": point.L, "o": point.o, "g": point.g, "G": point.G}
    fit_by_name.update({f"op:{op}": f for op, f in point.ops})
    level = int(args.ci * 100)
    print(
        f"posterior {posterior.fingerprint()} "
        f"({len(posterior.draws)} draws"
        + (", degenerate — collapsed to the point fit"
           if posterior.degenerate
           else f", accept rate {posterior.accept_rate:.2f}")
        + ")"
    )
    header = (
        f"{'parameter':<10} {'point fit':>12} {'post mean':>12} "
        f"{'sd':>10} {level:>3}% CI"
    )
    print(header)
    for name, stats in summary.items():
        print(
            f"{name:<10} {fit_by_name.get(name, float('nan')):>12.6g} "
            f"{stats['mean']:>12.6g} {stats['sd']:>10.3g} "
            f"[{stats['lo']:.6g}, {stats['hi']:.6g}]"
        )
    if args.out:
        print(f"wrote {args.out}")
    return 0


def _cmd_uq(args: argparse.Namespace) -> int:
    from .analysis import (
        format_ci_band_table,
        format_sensitivity_table,
        save_ci_band_svg,
    )
    from .uq import UQSpec, oat_sensitivity, run_uq

    params = _machine(args)
    blocks = _sweep_blocks(args)
    if blocks is None:
        return 2
    if args.posterior:
        spec = _load_posterior_spec(args.posterior)
    else:
        spec = UQSpec(
            sigma=args.sigma,
            op_sigma=args.op_sigma,
            jitter_sigma=args.jitter_sigma,
            straggler_prob=args.straggler_prob,
            straggler_factor=args.straggler_factor,
        )
    cost_model = CalibratedCostModel()
    workers, executor = _resolve_executor(args)
    tracer = _wants_trace(args)
    with tracing(tracer) if tracer else nullcontext():
        result = run_uq(
            args.n, blocks, args.layout, params, cost_model,
            spec=spec,
            replicates=args.replicates,
            ci=args.ci,
            base_seed=args.seed,
            with_measured=not args.no_measured,
            workers=workers,
            executor=executor,
            store=args.store,
            resume=args.resume,
            chunk_size=args.chunk_size,
            progress=_sweep_progress(args),
            trace_shard_dir=args.trace_shards,
        )
    _export_trace(args, tracer)
    sensitivity = (
        {
            layout: oat_sensitivity(args.n, blocks, layout, params, cost_model)
            for layout in args.layout
        }
        if args.sensitivity
        else None
    )
    svg_paths = []
    if args.svg_out:
        for layout in args.layout:
            mine = [s for s in result.summaries if s.layout == layout]
            path = args.svg_out
            if len(args.layout) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}-{layout}{dot}{ext}" if dot else f"{path}-{layout}"
            save_ci_band_svg(
                mine, path,
                title=f"{layout} mapping, n={args.n}, "
                      f"{int(args.ci * 100)}% CI over {args.replicates} replicates",
            )
            svg_paths.append(path)
    _record(args).note(
        params=loggp_dict(params), engine="uq",
        workload={"n": args.n, "blocks": blocks, "layouts": args.layout,
                  "seed": args.seed},
        results_sha256=result.replicate_digest(),
        sweep=result.sweep.stats.to_dict(),
        uq={
            "spec": spec.to_dict(),
            "replicates": args.replicates,
            "ci": args.ci,
            "deterministic": spec.is_deterministic(),
            "summary_sha256": result.summary_digest(),
        },
    )
    if args.json:
        doc = {
            "n": args.n, "params": loggp_dict(params),
            "spec": spec.to_dict(),
            "replicates": args.replicates, "ci": args.ci,
            "rows": result.to_rows(),
            "summary_sha256": result.summary_digest(),
            "results_sha256": result.replicate_digest(),
        }
        if sensitivity is not None:
            doc["sensitivity"] = sensitivity
        print(json.dumps(doc, indent=2))
        return 0
    noise_label = (
        f"posterior {spec.fingerprint()}" if args.posterior
        else f"sigma={args.sigma:g}"
    )
    for layout in args.layout:
        mine = [s for s in result.summaries if s.layout == layout]
        print(format_ci_band_table(
            mine,
            title=(
                f"{layout} mapping, n={args.n}: predicted time [s], "
                f"{int(args.ci * 100)}% CI over {args.replicates} replicates "
                f"({noise_label})"
            ),
        ))
        if sensitivity is not None:
            print()
            print(format_sensitivity_table(
                sensitivity[layout],
                title=f"{layout} mapping: LogGP elasticities (OAT)",
            ))
        print()
    for path in svg_paths:
        print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import PredictionClient, PredictionService, ServeConfig, serve_http

    params = _machine(args)
    workers, executor = _resolve_executor(args)
    config = ServeConfig(
        store_dir=args.store,
        cache_size=args.cache_size,
        batch_window_s=args.batch_window_ms / 1000.0,
        batch_max=args.batch_max,
        workers=workers,
        executor=executor,
        manifest_dir=args.serve_manifests,
        machine=params,
    )
    _record(args).note(
        params=loggp_dict(params), engine="serve",
        workload={
            "host": args.host, "port": args.port, "store": args.store,
            "cache_size": args.cache_size, "batch_max": args.batch_max,
            "batch_window_ms": args.batch_window_ms, "check": args.check,
        },
    )
    if args.check:
        with PredictionService(config) as service:
            client = PredictionClient.in_process(service)
            cold = client.predict(n=120, b=30, layout="diagonal")
            warm = client.predict(n=120, b=30, layout="diagonal")
            ok = cold.digest == warm.digest and warm.cache_tier == "memory"
            stats = service.stats()
        _record(args).note(digest=cold.digest, serve=stats)
        doc = {
            "status": "ok" if ok else "error",
            "digest": cold.digest,
            "tiers": [cold.cache_tier, warm.cache_tier],
            "stats": stats,
        }
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print(
                f"serve self-test: {doc['status']} "
                f"(tiers {cold.cache_tier} -> {warm.cache_tier}, "
                f"digest {cold.digest[:16]}...)"
            )
        return 0 if ok else 1
    service = PredictionService(config)
    server = serve_http(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"repro serve listening on http://{host}:{port} "
        f"(store={args.store or 'none'}, cache={args.cache_size}, "
        f"window={args.batch_window_ms:g}ms)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        service.close()
        _record(args).note(serve=service.stats())
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    if args.source == "calibrated":
        table = calibrated_table(args.blocks)
        title = "calibrated CS-2 stand-in [ms]"
    else:
        table = measure_op_costs(args.blocks, repeats=args.repeats)
        title = "host-measured [ms]"
    _record(args).note(workload={"blocks": args.blocks, "source": args.source})
    rows = [
        {"b": b, **{op: table[op][b] / 1000.0 for op in OP_NAMES}} for b in args.blocks
    ]
    print(format_table(rows, ["b", *OP_NAMES], title=title))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    layout = LAYOUTS[args.layout](args.n // args.b, args.procs)
    trace = build_ge_trace(GEConfig(n=args.n, b=args.b, layout=layout))
    save_trace(trace, args.output)
    _record(args).note(
        workload={"n": args.n, "b": args.b, "layout": args.layout, "P": args.procs},
        steps=len(trace), ops=trace.total_ops(), messages=trace.total_messages(),
    )
    print(
        f"wrote {args.output}: {len(trace)} steps, {trace.total_ops()} ops, "
        f"{trace.total_messages()} messages"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .apps.gauss import GEConfig as _GEConfig
    from .machine import profile_program

    params = _machine(args)
    layout = LAYOUTS[args.layout](args.n // args.b, params.P)
    trace = build_ge_trace(_GEConfig(n=args.n, b=args.b, layout=layout))
    tracer = _wants_trace(args)
    profile = profile_program(
        trace, params, CalibratedCostModel(), mode=args.mode, seed=args.seed,
        tracer=tracer,
    )
    _export_trace(args, tracer)
    _record(args).note(
        params=loggp_dict(params), engine=args.mode,
        workload={"n": args.n, "b": args.b, "layout": args.layout},
        makespan_us=profile.makespan_us,
    )
    if args.json:
        print(json.dumps({
            "n": args.n, "b": args.b, "layout": args.layout, "mode": args.mode,
            "params": loggp_dict(params), "makespan_us": profile.makespan_us,
            "processors": {
                str(p): {k: getattr(prof, k) for k in
                         ("compute", "send", "recv", "wait", "idle")}
                for p, prof in profile.processors.items()
            },
            "utilization": profile.utilization,
        }, indent=2))
        return 0
    print(profile.describe())
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    from .apps.gauss import GEConfig as _GEConfig
    from .machine import profile_program

    params = _machine(args)
    layout = LAYOUTS[args.layout](args.n // args.b, params.P)
    trace = build_ge_trace(_GEConfig(n=args.n, b=args.b, layout=layout))

    tracer = Tracer(config=_trace_config(args))
    tracer.context = _root_context(args)
    args.obs_tracer = tracer
    with tracer.span("observe.simulate"):
        profile = profile_program(
            trace, params, CalibratedCostModel(), mode=args.mode,
            seed=args.seed, tracer=tracer,
        )
    sums, makespan = bucket_sums(
        tracer.events, trace.num_procs, makespan=profile.makespan_us
    )

    if args.trace_out:
        write_chrome_trace(tracer.events, args.trace_out, metrics=tracer.metrics)
    if args.events_out:
        write_events_jsonl(tracer.events, args.events_out)
    if args.csv_out:
        write_events_csv(tracer.events, args.csv_out)
    if args.trace_shards:
        write_shard(
            Path(args.trace_shards) / "shard-main.jsonl", tracer, label="main"
        )

    _record(args).note(
        params=loggp_dict(params), engine=args.mode,
        workload={"n": args.n, "b": args.b, "layout": args.layout},
        makespan_us=profile.makespan_us,
    )
    if args.json:
        print(json.dumps({
            "n": args.n, "b": args.b, "layout": args.layout, "mode": args.mode,
            "params": loggp_dict(params), "makespan_us": makespan,
            "processors": {str(p): buckets for p, buckets in sums.items()},
            "event_count": len(tracer.events),
            "metrics": tracer.metrics.snapshot(),
        }, indent=2))
        return 0
    print(
        f"{args.n}x{args.n} GE, b={args.b}, layout={args.layout}, "
        f"mode={args.mode}  ({params.describe()})"
    )
    print(profile.describe())
    print(f"events: {len(tracer.events)}, metrics: {len(tracer.metrics)}")
    for flag, path in (
        ("trace", args.trace_out), ("events", args.events_out), ("csv", args.csv_out),
    ):
        if path:
            print(f"wrote {flag}: {path}")
    return 0


def _cmd_trace_merge(args: argparse.Namespace) -> int:
    paths: list[Path] = []
    for item in args.shards:
        p = Path(item)
        if p.is_dir():
            paths.extend(shard_paths(p))
        else:
            paths.append(p)
    if not paths:
        print("error: no shard files found", file=sys.stderr)
        return 2
    merged = merge_shards(paths)
    report = validate_span_tree(merged.events, extra_roots=args.extra_root)
    digest = trace_digest(merged.events)
    if args.output:
        write_merged_trace(merged, args.output)
    if args.events_out:
        write_merged_events(merged, args.events_out)
    _record(args).note(
        engine="trace-merge",
        workload={"shards": [str(p) for p in paths]},
        trace_merge={
            "digest": digest,
            "events": len(merged.events),
            **report.to_dict(),
        },
    )
    doc = {
        "shards": [str(p) for p in paths],
        "labels": merged.shards,
        "trace_ids": merged.trace_ids,
        "events": len(merged.events),
        "spans": report.spans,
        "orphans": len(report.orphans),
        "ok": report.ok,
        "digest": digest,
    }
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(
            f"merged {len(paths)} shards: {len(merged.events)} events, "
            f"{report.spans} spans, {len(report.orphans)} orphans"
        )
        print(f"digest {digest}")
        for flag, path in (("trace", args.output), ("events", args.events_out)):
            if path:
                print(f"wrote {flag}: {path}")
    if args.strict and not report.ok:
        for orphan in report.to_dict()["orphans"]:
            print(
                f"orphan span: {orphan['name']} "
                f"(parent {orphan['parent_span_id']})",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from .core.fitting import assess_fit, emulator_runner, fit_loggp

    truth = _machine(args)
    if args.jitter:
        from .machine import JitteredNetwork

        net = JitteredNetwork(params=truth, seed=args.seed)
        runner = emulator_runner(truth, latency_of=net.latency_of)
    else:
        runner = emulator_runner(truth, seed=args.seed)
    fitted = fit_loggp(runner, num_procs=truth.P, repeats=args.repeats)
    errors = assess_fit(fitted, truth)
    _record(args).note(
        params=loggp_dict(truth), engine="fit",
        workload={"jitter": args.jitter, "repeats": args.repeats},
        fitted=loggp_dict(fitted),
    )
    print(f"truth : {truth.describe()}")
    print(f"fitted: {fitted.describe()}")
    print(
        "errors: "
        + ", ".join(f"{k}={100 * v:.2f}%" for k, v in sorted(errors.items()))
    )
    return 0


def _cmd_svg(args: argparse.Namespace) -> int:
    from .analysis.svg import save_timeline_svg

    params = _machine(args)
    pattern = _PATTERNS[args.pattern](params.P if args.pattern != "sample" else 10, args.size)
    result = _ALGORITHMS[args.algorithm](params, pattern, seed=args.seed)
    save_timeline_svg(
        result.timeline,
        args.output,
        width=args.svg_width,
        title=f"{args.algorithm} algorithm, {args.pattern} pattern",
    )
    _record(args).note(
        params=loggp_dict(params), engine=args.algorithm,
        workload={"pattern": args.pattern, "size": args.size},
        makespan_us=result.completion_time,
    )
    print(f"wrote {args.output} (completion {result.completion_time:.2f} us)")
    return 0


_COMMANDS = {
    "timeline": _cmd_timeline,
    "predict": _cmd_predict,
    "sweep": _cmd_sweep,
    "uq": _cmd_uq,
    "serve": _cmd_serve,
    "ops": _cmd_ops,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "observe": _cmd_observe,
    "fit": _cmd_fit,
    "calibrate": _cmd_calibrate,
    "trace-merge": _cmd_trace_merge,
    "svg": _cmd_svg,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Every invocation writes a :class:`repro.obs.RunRecord` manifest
    (unless ``--no-manifest``); manifest I/O failures warn on stderr but
    never change the exit code.
    """
    argv_list = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv_list)
    rec = RunRecord.begin(args.command, argv_list)
    args.run_record = rec
    logger = None
    if getattr(args, "log_jsonl", None):
        logger = JsonlLogger(args.log_jsonl)
        set_logger(logger)
    status = "ok"
    try:
        code = _COMMANDS[args.command](args)
        if code != 0:
            status = "error"
        return code
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        rec.note(error=str(exc))
        status = "error"
        return 2
    finally:
        rec.finish(tracer=getattr(args, "obs_tracer", None), status=status)
        if logger is not None:
            logger.log(
                "cli.run", command=args.command, status=status,
                wall_s=rec.wall_s, trace_id=rec.trace_id or None,
            )
            set_logger(None)
            logger.close()
        if not getattr(args, "no_manifest", False):
            try:
                rec.write(getattr(args, "manifest_out", None))
            except OSError as exc:  # pragma: no cover - environment-dependent
                print(f"warning: could not write run manifest: {exc}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())

"""Statistical helpers for checking the paper's qualitative claims.

The reproduction cannot match 1997 absolute times, so the benchmarks and
integration tests verify *shapes* instead; these helpers make the shapes
checkable: interior minima (Figure 7's nonlinear running-time curve),
sawtooth scores, cost-curve crossovers (Figure 6), bracketing of measured
communication between the standard and worst-case simulations (Figure 8).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "argmin_key",
    "has_interior_minimum",
    "sawtooth_score",
    "crossover_points",
    "bracketed_fraction",
    "relative_gap",
    "is_within_neighbors",
]


def argmin_key(series: Mapping[int, float]) -> int:
    """The key with the smallest value."""
    if not series:
        raise ValueError("empty series")
    return min(series, key=series.__getitem__)


def has_interior_minimum(series: Mapping[int, float]) -> bool:
    """True if the minimum is at neither end of the (sorted-key) series."""
    if len(series) < 3:
        return False
    keys = sorted(series)
    best = argmin_key(series)
    return best not in (keys[0], keys[-1])


def sawtooth_score(series: Mapping[int, float]) -> int:
    """Number of sign changes of the discrete derivative (>=1 = non-monotone).

    The paper's Figure 7 curves are "sawtooth" for block sizes above ~40:
    the running time alternates as the block size's divisibility interacts
    with the wavefront length.  A pure monotone curve scores 0.
    """
    keys = sorted(series)
    if len(keys) < 3:
        return 0
    signs = []
    for a, b in zip(keys, keys[1:]):
        diff = series[b] - series[a]
        if diff != 0:
            signs.append(1 if diff > 0 else -1)
    return sum(1 for s0, s1 in zip(signs, signs[1:]) if s0 != s1)


def crossover_points(
    curve_a: Mapping[int, float], curve_b: Mapping[int, float]
) -> list[int]:
    """Keys where ``curve_a - curve_b`` changes sign (shared keys only).

    Used on the Figure 6 op-cost curves: Op1 starts above Op4 and ends
    below it, so exactly one crossover is expected.
    """
    keys = sorted(set(curve_a) & set(curve_b))
    if len(keys) < 2:
        return []
    out = []
    prev = curve_a[keys[0]] - curve_b[keys[0]]
    for k in keys[1:]:
        cur = curve_a[k] - curve_b[k]
        if prev != 0 and cur != 0 and (prev > 0) != (cur > 0):
            out.append(k)
        if cur != 0:
            prev = cur
    return out


def bracketed_fraction(
    measured: Mapping[int, float],
    lower: Mapping[int, float],
    upper: Mapping[int, float],
    slack: float = 0.0,
) -> float:
    """Fraction of points with ``lower*(1-slack) <= measured <= upper*(1+slack)``.

    The Figure 8 claim: measured communication time falls between the
    standard (lower) and worst-case (upper) simulations.
    """
    keys = sorted(set(measured) & set(lower) & set(upper))
    if not keys:
        raise ValueError("no common keys")
    ok = sum(
        1
        for k in keys
        if lower[k] * (1.0 - slack) <= measured[k] <= upper[k] * (1.0 + slack)
    )
    return ok / len(keys)


def relative_gap(predicted: float, measured: float) -> float:
    """``(measured - predicted) / measured`` (positive = under-prediction)."""
    if measured == 0:
        raise ValueError("measured value is zero")
    return (measured - predicted) / measured


def is_within_neighbors(
    candidate: int, target: int, candidates: Sequence[int], hops: int = 1
) -> bool:
    """True if ``candidate`` is within ``hops`` grid points of ``target``.

    The paper's optimum-prediction tolerance: the predicted best block
    size may differ from the measured one, but only by neighbouring
    entries of the size set (e.g. predicted 30 vs measured 48).
    """
    cands = sorted(set(candidates))
    if candidate not in cands or target not in cands:
        raise ValueError("candidate/target must be in the candidate set")
    return abs(cands.index(candidate) - cands.index(target)) <= hops

"""Scalability analysis: speedup, efficiency, and saturation detection.

The paper's introduction: "The prediction of running times is also useful
for analyzing the scaling behavior of parallel programs."  These helpers
turn a family of predictions across processor counts into the standard
scalability quantities, plus a crude-but-useful serial-fraction estimate
(Karp-Flatt metric) that flags where an app stops scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["ScalingPoint", "scaling_study", "karp_flatt", "saturation_point"]


@dataclass(frozen=True)
class ScalingPoint:
    """One processor-count sample of a scaling study."""

    procs: int
    total_us: float
    speedup: float
    efficiency: float

    def __post_init__(self) -> None:
        if self.procs < 1:
            raise ValueError("procs must be >= 1")


def scaling_study(
    predict: Callable[[int], float], proc_counts: Sequence[int]
) -> list[ScalingPoint]:
    """Run ``predict(P) -> total_us`` over ``proc_counts``.

    Speedup is measured against the smallest processor count supplied
    (relative speedup; with ``1`` in the list it is absolute).
    """
    counts = sorted(set(proc_counts))
    if not counts:
        raise ValueError("need at least one processor count")
    totals = {p: float(predict(p)) for p in counts}
    base_p = counts[0]
    base = totals[base_p]
    if base <= 0:
        raise ValueError("baseline running time must be positive")
    out = []
    for p in counts:
        speedup = base / totals[p]
        out.append(
            ScalingPoint(
                procs=p,
                total_us=totals[p],
                speedup=speedup,
                efficiency=speedup * (base_p / p),
            )
        )
    return out


def karp_flatt(point: ScalingPoint, base: ScalingPoint) -> float:
    """Experimentally determined serial fraction (Karp-Flatt metric).

    ``e = (1/s - 1/p) / (1 - 1/p)`` with ``s`` the speedup relative to
    ``base`` and ``p`` the processor ratio.  Rising ``e`` with ``p``
    indicates overheads growing with the machine (communication), not a
    fixed serial part.
    """
    p = point.procs / base.procs
    if p <= 1:
        raise ValueError("point must use more processors than base")
    s = base.total_us / point.total_us
    return (1.0 / s - 1.0 / p) / (1.0 - 1.0 / p)


def saturation_point(
    points: Sequence[ScalingPoint], efficiency_floor: float = 0.5
) -> int | None:
    """Smallest processor count whose efficiency drops below the floor.

    Returns ``None`` if the study never saturates.  Efficiencies are
    relative to the study's own baseline (see :func:`scaling_study`).
    """
    if not (0.0 < efficiency_floor <= 1.0):
        raise ValueError("efficiency_floor must be in (0, 1]")
    for pt in sorted(points, key=lambda q: q.procs):
        if pt.efficiency < efficiency_floor:
            return pt.procs
    return None

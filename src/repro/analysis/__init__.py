"""Reporting and shape-checking helpers for the reproduced figures."""

from .ascii_chart import ascii_chart
from .critical_path import CriticalPath, critical_path, operation_slack
from .report import format_figure, format_table, series_from_rows
from .sensitivity import SensitivityResult, dominant_parameter, parameter_elasticities
from .speedup import ScalingPoint, karp_flatt, saturation_point, scaling_study
from .svg import save_timeline_svg, timeline_to_svg
from .stats import (
    argmin_key,
    bracketed_fraction,
    crossover_points,
    has_interior_minimum,
    is_within_neighbors,
    relative_gap,
    sawtooth_score,
)
from .timeline import describe_sequence, render_timeline
from .uq_report import (
    ci_band_svg,
    format_ci_band_table,
    format_sensitivity_table,
    save_ci_band_svg,
)

__all__ = [
    "format_figure",
    "format_table",
    "series_from_rows",
    "argmin_key",
    "bracketed_fraction",
    "crossover_points",
    "has_interior_minimum",
    "is_within_neighbors",
    "relative_gap",
    "sawtooth_score",
    "describe_sequence",
    "render_timeline",
    "CriticalPath",
    "critical_path",
    "operation_slack",
    "ScalingPoint",
    "scaling_study",
    "karp_flatt",
    "saturation_point",
    "SensitivityResult",
    "parameter_elasticities",
    "dominant_parameter",
    "timeline_to_svg",
    "save_timeline_svg",
    "ascii_chart",
    "ci_band_svg",
    "format_ci_band_table",
    "format_sensitivity_table",
    "save_ci_band_svg",
]

"""Table/series formatting for the benchmark reports.

The benchmark harness prints, for every figure of the paper, the same
rows/series the paper plots.  These helpers format them consistently
(block sizes down the side, series across the top, seconds like the
paper's figures).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.units import us_to_s

__all__ = ["format_table", "series_from_rows", "format_figure"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    floatfmt: str = "{:.4f}",
) -> str:
    """Plain-text table: ``rows`` are dicts, ``columns`` selects and orders."""
    if not columns:
        raise ValueError("need at least one column")
    header = [str(c) for c in columns]
    body = []
    for row in rows:
        line = []
        for c in columns:
            v = row.get(c, "")
            line.append(floatfmt.format(v) if isinstance(v, float) else str(v))
        body.append(line)
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    out.append("  ".join("-" * w for w in widths))
    for line in body:
        out.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(out)


def series_from_rows(
    rows, x_attr: str, series_fn, x_filter=None
) -> dict[str, dict[int, float]]:
    """Pivot row objects into ``{series_name: {x: value}}``.

    ``series_fn(row) -> {name: value}``; ``x_attr`` names the x attribute.
    """
    out: dict[str, dict[int, float]] = {}
    for row in rows:
        x = getattr(row, x_attr)
        if x_filter is not None and not x_filter(x):
            continue
        for name, value in series_fn(row).items():
            out.setdefault(name, {})[x] = value
    return out


def format_figure(
    title: str,
    series: Mapping[str, Mapping[int, float]],
    x_label: str = "block size",
    in_seconds: bool = True,
) -> str:
    """Render a figure's series as one table, x down the side.

    Values are converted from µs to seconds when ``in_seconds`` (matching
    the paper's figure axes).
    """
    names = sorted(series)
    xs = sorted({x for s in series.values() for x in s})
    rows = []
    for x in xs:
        row: dict[str, object] = {x_label: x}
        for name in names:
            v = series[name].get(x)
            if v is not None:
                row[name] = us_to_s(v) if in_seconds else v
        rows.append(row)
    unit = "seconds" if in_seconds else "microseconds"
    return format_table(rows, [x_label, *names], title=f"{title}  [{unit}]")

"""ASCII rendering of send/receive sequences (paper Figures 4 and 5).

The paper plots, per processor, the timed sequence of send (dark) and
receive (light) operations of a communication step.  These helpers render
the same picture in a terminal: one lane per processor, ``S``/``#`` for
sends, ``R``/``=`` for receives, a µs axis underneath.
"""

from __future__ import annotations

from ..core.events import StepTimeline
from ..core.loggp import OpKind

__all__ = ["render_timeline", "describe_sequence"]


def render_timeline(timeline: StepTimeline, width: int = 100) -> str:
    """Render a :class:`StepTimeline` as an ASCII gantt chart.

    Each processor gets one lane; an operation paints ``S``/``R`` at its
    start and fills its duration with ``#`` (send) or ``=`` (receive).
    """
    if width < 20:
        raise ValueError("width must be >= 20")
    procs = timeline.participants()
    if not procs:
        return "(empty timeline)"
    t0 = min(timeline.start_times.values(), default=0.0)
    t0 = min([t0] + [e.start for e in timeline.events])
    t1 = timeline.completion_time
    span = max(t1 - t0, 1e-9)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) * scale + 0.5)))

    label_w = max(len(f"P{p}") for p in procs) + 1
    lines = []
    for p in procs:
        lane = [" "] * width
        for e in timeline.events_of(p):
            c0, c1 = col(e.start), col(e.end)
            fill = "#" if e.kind is OpKind.SEND else "="
            for c in range(c0, max(c0, c1) + 1):
                lane[c] = fill
            lane[c0] = "S" if e.kind is OpKind.SEND else "R"
        lines.append(f"P{p}".ljust(label_w) + "|" + "".join(lane) + "|")

    # time axis with ~5 tick labels (padded so the last label never truncates)
    axis = [" "] * (label_w + 1 + width + 8)
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = t0 + frac * span
        c = label_w + 1 + col(t)
        label = f"{t:.0f}"
        for i, ch in enumerate(label):
            if c + i < len(axis):
                axis[c + i] = ch
    lines.append("".join(axis).rstrip() + " us")
    return "\n".join(lines)


def describe_sequence(timeline: StepTimeline) -> str:
    """Textual per-processor op listing (start/end times, peers, sizes)."""
    out = []
    for p in timeline.participants():
        out.append(f"P{p}:")
        for e in timeline.events_of(p):
            out.append(f"  {e}")
        out.append(f"  finishes at {timeline.finish_time(p):.2f} us")
    out.append(f"step completion: {timeline.completion_time:.2f} us")
    return "\n".join(out)

"""SVG rendering of simulated timelines (Figures 4/5 as vector graphics).

The ASCII renderer (:mod:`repro.analysis.timeline`) is for terminals;
this writer produces a standalone SVG — one lane per processor, sends and
receives as coloured bars, a µs axis — with no dependencies beyond the
standard library.  Colours follow the paper's figures: dark bars for
sends, light bars for receives.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union
from xml.sax.saxutils import escape

from ..core.events import StepTimeline
from ..core.loggp import OpKind

__all__ = ["timeline_to_svg", "save_timeline_svg"]

_SEND_FILL = "#30507a"
_RECV_FILL = "#9db8d9"
_LANE_H = 22
_BAR_H = 14
_MARGIN_L = 52
_MARGIN_T = 28
_MARGIN_B = 34
_MARGIN_R = 16


def timeline_to_svg(
    timeline: StepTimeline, width: int = 800, title: str = ""
) -> str:
    """Render a :class:`StepTimeline` as an SVG document (a string)."""
    if width < 100:
        raise ValueError("width must be >= 100")
    procs = timeline.participants()
    if not procs:
        procs = sorted(timeline.start_times)
    t0 = min(
        [min(timeline.start_times.values(), default=0.0)]
        + [e.start for e in timeline.events]
    ) if (timeline.events or timeline.start_times) else 0.0
    t1 = timeline.completion_time
    span = max(t1 - t0, 1e-9)
    plot_w = width - _MARGIN_L - _MARGIN_R
    height = _MARGIN_T + len(procs) * _LANE_H + _MARGIN_B

    def x(t: float) -> float:
        return _MARGIN_L + (t - t0) / span * plot_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_MARGIN_L}" y="16" font-size="13">{escape(title)}</text>'
        )

    lane_of = {p: i for i, p in enumerate(procs)}
    for p, i in lane_of.items():
        y = _MARGIN_T + i * _LANE_H
        parts.append(
            f'<text x="6" y="{y + _BAR_H - 2}" fill="#333">P{p}</text>'
        )
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y + _LANE_H - 3}" x2="{width - _MARGIN_R}" '
            f'y2="{y + _LANE_H - 3}" stroke="#eee"/>'
        )

    for e in sorted(timeline.events, key=lambda ev: ev.start):
        y = _MARGIN_T + lane_of[e.proc] * _LANE_H
        fill = _SEND_FILL if e.kind is OpKind.SEND else _RECV_FILL
        bar_w = max(1.0, x(e.end) - x(e.start))
        peer = e.message.dst if e.kind is OpKind.SEND else e.message.src
        label = (
            f"{e.kind.value} P{e.proc}&#8596;P{peer} "
            f"[{e.start:.1f}, {e.end:.1f}) us, {e.message.size}B"
        )
        parts.append(
            f'<rect x="{x(e.start):.2f}" y="{y}" width="{bar_w:.2f}" '
            f'height="{_BAR_H}" fill="{fill}"><title>{label}</title></rect>'
        )

    axis_y = _MARGIN_T + len(procs) * _LANE_H + 8
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{axis_y}" x2="{width - _MARGIN_R}" '
        f'y2="{axis_y}" stroke="#666"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = t0 + frac * span
        parts.append(
            f'<line x1="{x(t):.2f}" y1="{axis_y}" x2="{x(t):.2f}" '
            f'y2="{axis_y + 4}" stroke="#666"/>'
        )
        parts.append(
            f'<text x="{x(t):.2f}" y="{axis_y + 16}" text-anchor="middle" '
            f'fill="#333">{t:.0f}</text>'
        )
    parts.append(
        f'<text x="{width - _MARGIN_R}" y="{axis_y + 28}" text-anchor="end" '
        f'fill="#333">microseconds</text>'
    )
    # legend
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{axis_y + 20}" width="10" height="10" fill="{_SEND_FILL}"/>'
        f'<text x="{_MARGIN_L + 14}" y="{axis_y + 29}">send</text>'
        f'<rect x="{_MARGIN_L + 55}" y="{axis_y + 20}" width="10" height="10" fill="{_RECV_FILL}"/>'
        f'<text x="{_MARGIN_L + 69}" y="{axis_y + 29}">receive</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def save_timeline_svg(
    timeline: StepTimeline,
    path: Union[str, Path],
    width: int = 800,
    title: Optional[str] = None,
) -> None:
    """Write the SVG rendering of ``timeline`` to ``path``."""
    Path(path).write_text(
        timeline_to_svg(timeline, width=width, title=title or "")
    )

"""ASCII line charts for figure series — the paper's plots in a terminal.

The benchmark tables carry the numbers; these charts carry the *shape* —
the sawtooth of Figure 7, the bracketing band of Figure 8 — in plain
text, so `pytest -s` output and the persisted result files read like the
paper's figures.

One chart plots several named series against a shared integer x-axis
(block sizes); each series gets a marker character; collisions show the
later series' marker.  Values are auto-scaled; the y-axis is labelled
with the data range.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["ascii_chart"]

_MARKERS = "o*x+#@%&"


def ascii_chart(
    series: Mapping[str, Mapping[int, float]],
    width: int = 72,
    height: int = 16,
    x_label: str = "block size",
    y_label: str = "seconds",
    y_scale: float = 1.0,
) -> str:
    """Render ``{name: {x: y}}`` as an ASCII chart.

    ``y_scale`` divides every value before plotting (e.g. ``1e6`` to plot
    µs data in seconds).  X positions are spread by *rank*, not value —
    matching the paper's figures, whose block-size axes are categorical.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 20 or height < 5:
        raise ValueError("chart too small")
    names = list(series)
    if len(names) > len(_MARKERS):
        raise ValueError(f"too many series (max {len(_MARKERS)})")

    xs = sorted({x for s in series.values() for x in s})
    if not xs:
        raise ValueError("series contain no points")
    ys = [y / y_scale for s in series.values() for y in s.values()]
    y_min, y_max = min(ys), max(ys)
    y_span = max(y_max - y_min, 1e-12)

    grid = [[" "] * width for _ in range(height)]

    def col(x: int) -> int:
        if len(xs) == 1:
            return width // 2
        return round(xs.index(x) / (len(xs) - 1) * (width - 1))

    def row(y: float) -> int:
        frac = (y / y_scale - y_min) / y_span
        return (height - 1) - round(frac * (height - 1))

    for name, marker in zip(names, _MARKERS):
        for x, y in sorted(series[name].items()):
            grid[row(y)][col(x)] = marker

    label_w = 10
    lines = []
    for i, cells in enumerate(grid):
        if i == 0:
            label = f"{y_max:9.3g}"
        elif i == height - 1:
            label = f"{y_min:9.3g}"
        elif i == height // 2:
            label = f"{(y_min + y_max) / 2:9.3g}"
        else:
            label = " " * 9
        lines.append(label + " |" + "".join(cells))

    lines.append(" " * label_w + "+" + "-" * width)
    # x tick labels at first / middle / last (buffer padded so the last
    # label never truncates)
    axis = [" "] * (label_w + 1 + width + 8)
    for x in (xs[0], xs[len(xs) // 2], xs[-1]):
        pos = label_w + 1 + col(x)
        text = str(x)
        for i, ch in enumerate(text):
            if pos + i < len(axis):
                axis[pos + i] = ch
    lines.append("".join(axis) + f"  {x_label}")
    legend = "   ".join(
        f"{marker} {name}" for name, marker in zip(names, _MARKERS)
    )
    lines.append(" " * label_w + f"[{y_label}]  " + legend)
    return "\n".join(lines)

"""Rendering of UQ results: CI-band tables, sensitivity rankings, SVG bands.

The Monte Carlo engine (:mod:`repro.uq`) reduces replicate ensembles to
per-point summaries; this module turns those summaries into the
user-facing artefacts: a Figure-7-style table with confidence bands
around each predicted time, a LogGP sensitivity ranking table, and a
standalone-SVG band plot (mean line inside a shaded CI envelope) in the
style of :mod:`repro.analysis.svg` — standard library only.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union
from xml.sax.saxutils import escape

from ..core.units import us_to_s
from .report import format_table

__all__ = [
    "format_ci_band_table",
    "format_sensitivity_table",
    "ci_band_svg",
    "save_ci_band_svg",
]

_BAND_FILL = "#9db8d9"
_MEAN_STROKE = "#30507a"
_MARGIN_L = 64
_MARGIN_T = 28
_MARGIN_B = 40
_MARGIN_R = 16


def format_ci_band_table(
    summaries: Sequence,
    metric: str = "pred_standard_total",
    title: str = "",
    in_seconds: bool = True,
) -> str:
    """One row per block size: mean, CI band, envelope and spread.

    ``summaries`` are :class:`repro.uq.UQPointSummary` values of one
    layout (the caller filters); ``halfwidth%`` is the half CI width as a
    percentage of the mean — the headline "how uncertain is this
    prediction" number.
    """
    rows = []
    scale = (lambda v: us_to_s(v)) if in_seconds else (lambda v: v)
    for s in summaries:
        entry = s.metrics.get(metric)
        if entry is None:
            continue
        mean = entry["mean"]
        half = (entry["ci_hi"] - entry["ci_lo"]) / 2.0
        rows.append(
            {
                "b": s.b,
                "mean": scale(mean),
                "std": scale(entry["std"]),
                "ci_lo": scale(entry["ci_lo"]),
                "ci_hi": scale(entry["ci_hi"]),
                "min": scale(entry["min"]),
                "max": scale(entry["max"]),
                "halfwidth%": 100.0 * half / mean if mean else 0.0,
                "reps": s.replicates,
            }
        )
    if not rows:
        raise ValueError(f"no summaries carry metric {metric!r}")
    unit = "s" if in_seconds else "us"
    header = title or f"{metric} [{unit}], {int(summaries[0].ci * 100)}% CI"
    return format_table(
        rows,
        ["b", "mean", "std", "ci_lo", "ci_hi", "min", "max", "halfwidth%", "reps"],
        title=header,
    )


def format_sensitivity_table(report: Sequence[dict], title: str = "") -> str:
    """The OAT sensitivity ranking as a table (one row per block size).

    ``report`` comes from :func:`repro.uq.oat_sensitivity`; cells are
    elasticities (% time change per % parameter change).
    """
    if not report:
        raise ValueError("empty sensitivity report")
    rows = [
        {
            "b": entry["b"],
            **{p: entry["elasticity"][p] for p in sorted(entry["elasticity"])},
            "dominant": entry["dominant"],
        }
        for entry in report
    ]
    params = sorted(report[0]["elasticity"])
    header = title or "LogGP elasticities of predicted time (OAT)"
    return format_table(rows, ["b", *params, "dominant"], title=header)


def ci_band_svg(
    summaries: Sequence,
    metric: str = "pred_standard_total",
    width: int = 800,
    height: int = 360,
    title: str = "",
) -> str:
    """An SVG band plot: mean polyline inside the shaded CI envelope.

    X is the block size (linear), Y the metric in seconds.  Summaries
    are plotted in ascending ``b`` order; at least two points are needed
    to draw a band.
    """
    if width < 100 or height < 100:
        raise ValueError("width and height must be >= 100")
    pts = sorted(
        (s for s in summaries if s.metrics.get(metric) is not None),
        key=lambda s: s.b,
    )
    if len(pts) < 2:
        raise ValueError("need >= 2 summaries with the metric to draw a band")
    bs = [s.b for s in pts]
    mean = [us_to_s(s.metrics[metric]["mean"]) for s in pts]
    lo = [us_to_s(s.metrics[metric]["ci_lo"]) for s in pts]
    hi = [us_to_s(s.metrics[metric]["ci_hi"]) for s in pts]

    x0, x1 = min(bs), max(bs)
    y0 = min(lo)
    y1 = max(hi)
    xspan = max(x1 - x0, 1e-9)
    yspan = max(y1 - y0, 1e-9)
    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def x(b: float) -> float:
        return _MARGIN_L + (b - x0) / xspan * plot_w

    def y(v: float) -> float:
        return _MARGIN_T + (y1 - v) / yspan * plot_h

    band = " ".join(
        f"{x(b):.2f},{y(v):.2f}" for b, v in zip(bs, hi)
    ) + " " + " ".join(
        f"{x(b):.2f},{y(v):.2f}" for b, v in zip(reversed(bs), reversed(lo))
    )
    mean_pts = " ".join(f"{x(b):.2f},{y(v):.2f}" for b, v in zip(bs, mean))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_MARGIN_L}" y="16" font-size="13">{escape(title)}</text>'
        )
    parts.append(
        f'<polygon points="{band}" fill="{_BAND_FILL}" fill-opacity="0.5" '
        f'stroke="none"/>'
    )
    parts.append(
        f'<polyline points="{mean_pts}" fill="none" stroke="{_MEAN_STROKE}" '
        f'stroke-width="2"/>'
    )
    for b in bs:
        parts.append(
            f'<text x="{x(b):.2f}" y="{height - _MARGIN_B + 16}" '
            f'text-anchor="middle">{b}</text>'
        )
    for v in (y0, (y0 + y1) / 2.0, y1):
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y(v):.2f}" text-anchor="end" '
            f'dominant-baseline="middle">{v:.3g}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.0f}" y="{height - 8}" '
        f'text-anchor="middle">block size</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def save_ci_band_svg(
    summaries: Sequence,
    path: Union[str, Path],
    metric: str = "pred_standard_total",
    width: int = 800,
    height: int = 360,
    title: str = "",
) -> Path:
    """Write :func:`ci_band_svg` output to ``path``; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        ci_band_svg(summaries, metric=metric, width=width, height=height, title=title)
    )
    return out

"""Critical-path analysis of simulated communication schedules.

Once the simulation has produced a timed schedule (Figures 4/5), the next
question a performance engineer asks is *why* it finishes when it does.
This module extracts the chain of operations that determines the
completion time and computes per-operation slack, exposing exactly which
messages an optimisation would have to move.

Dependency model (derived from the LogGP rules the simulators enforce):

* an operation depends on the *previous operation at its processor*
  (port/gap dependency), and
* a receive additionally depends on its matching send (wire dependency).

An operation is **tight** on an edge when it starts exactly when that
dependency allows; the critical path follows tight edges backwards from
the operation that ends last.  ``slack(op)`` is how much later the
operation could have started without changing the step's completion time
(computed by a backward pass over the dependency DAG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.events import CommEvent, StepTimeline
from ..core.loggp import OpKind
from ..core.units import TIME_EPS

__all__ = ["CriticalPath", "critical_path", "operation_slack"]


def _dependencies(timeline: StepTimeline) -> dict[int, list[tuple[CommEvent, float]]]:
    """``{id(op): [(dependency op, earliest start it allows), ...]}``."""
    params = timeline.params
    deps: dict[int, list[tuple[CommEvent, float]]] = {id(e): [] for e in timeline.events}
    # port order per processor
    for proc in timeline.participants():
        seq = timeline.events_of(proc)
        for prev, nxt in zip(seq, seq[1:]):
            allowed = params.earliest_start(prev.kind, prev.end, nxt.kind)
            deps[id(nxt)].append((prev, allowed))
    # wire dependencies
    sends = {e.message.uid: e for e in timeline.events if e.kind is OpKind.SEND}
    for e in timeline.events:
        if e.kind is OpKind.RECV:
            send = sends.get(e.message.uid)
            if send is not None:
                arrival = e.arrival if e.arrival is not None else (
                    send.start + params.send_duration(send.message.size) + params.L
                )
                deps[id(e)].append((send, arrival))
    return deps


@dataclass(frozen=True)
class CriticalPath:
    """The chain of operations that pins the completion time.

    ``operations`` runs from the earliest element of the chain to the
    final operation of the step.
    """

    operations: tuple[CommEvent, ...]
    completion_time: float

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def processors(self) -> tuple[int, ...]:
        """Processors visited along the path, in order (dedup'd runs)."""
        out: list[int] = []
        for e in self.operations:
            if not out or out[-1] != e.proc:
                out.append(e.proc)
        return tuple(out)

    @property
    def wire_hops(self) -> int:
        """Number of send→receive (cross-processor) hops on the path."""
        hops = 0
        for a, b in zip(self.operations, self.operations[1:]):
            if a.kind is OpKind.SEND and b.kind is OpKind.RECV and a.message.uid == b.message.uid:
                hops += 1
        return hops

    def describe(self) -> str:
        """Readable rendering of the path."""
        lines = [f"critical path ({len(self)} ops, completion {self.completion_time:.2f} us):"]
        for e in self.operations:
            lines.append(f"  {e}")
        return "\n".join(lines)


def critical_path(timeline: StepTimeline) -> CriticalPath:
    """Extract the critical path of a simulated communication step.

    Walks tight dependency edges backwards from the operation that ends
    last.  Ties (several tight predecessors) prefer the wire dependency,
    which yields the more informative cross-processor chain.
    """
    if not timeline.events:
        return CriticalPath(operations=(), completion_time=timeline.completion_time)
    deps = _dependencies(timeline)
    last = max(timeline.events, key=lambda e: e.end)
    chain = [last]
    current = last
    while True:
        candidates = deps[id(current)]
        tight: Optional[CommEvent] = None
        # prefer wire edges: scan in reverse (wire deps are appended last)
        for dep, allowed in reversed(candidates):
            if current.start <= allowed + TIME_EPS:
                tight = dep
                break
        if tight is None:
            break
        chain.append(tight)
        current = tight
    chain.reverse()
    return CriticalPath(operations=tuple(chain), completion_time=timeline.completion_time)


def operation_slack(timeline: StepTimeline) -> dict[int, float]:
    """Per-operation slack: ``{message uid * 2 + is_recv: slack_us}``.

    Keyed by ``(uid, kind)`` encoded as ``uid * 2 + (kind is RECV)`` so the
    result is hashable and stable.  Slack is how much an operation's start
    could slip without moving the step completion, holding everything
    else's *dependencies* (not start times) fixed — the standard backward
    longest-path slack over the dependency DAG.
    """
    events = timeline.events
    if not events:
        return {}
    params = timeline.params
    deps = _dependencies(timeline)
    # invert: successors with the lag they impose
    succs: dict[int, list[tuple[CommEvent, float]]] = {id(e): [] for e in events}
    for e in events:
        for dep, allowed in deps[id(e)]:
            # successor e can start no earlier than `allowed`; the lag from
            # the dependency's *start* is (allowed - dep.start)
            succs[id(dep)].append((e, allowed - dep.start))

    completion = timeline.completion_time
    latest_start: dict[int, float] = {}

    def compute(e: CommEvent) -> float:
        key = id(e)
        if key in latest_start:
            return latest_start[key]
        latest = completion - e.duration  # may always slip to the very end
        for succ, lag in succs[key]:
            latest = min(latest, compute(succ) - lag)
        latest_start[key] = latest
        return latest

    out: dict[int, float] = {}
    for e in events:
        slack = compute(e) - e.start
        out[e.message.uid * 2 + (1 if e.kind is OpKind.RECV else 0)] = max(0.0, slack)
    return out

"""Sensitivity of predicted running times to the machine parameters.

A designer using the paper's tool wants to know not just *how long* but
*what to buy*: does this workload care about latency, overhead, gap or
bandwidth?  This module computes elasticities — the percentage change of
the predicted time per percentage change of each LogGP parameter — by
central finite differences on the full simulation.

``elasticity[p] ≈ 1`` means the workload's time is proportional to
parameter ``p``; ``≈ 0`` means the parameter is irrelevant in this
regime.  The GE study shows the classic pattern: G (bandwidth) dominates
at small block sizes, while at large block sizes no single network
parameter matters much (the time is computation- and pipeline-bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.loggp import LogGPParameters

__all__ = ["SensitivityResult", "parameter_elasticities", "dominant_parameter"]

PARAMETERS = ("L", "o", "g", "G")


@dataclass(frozen=True)
class SensitivityResult:
    """Elasticities of one prediction w.r.t. the four network parameters."""

    base_us: float
    elasticity: Mapping[str, float]

    def dominant(self) -> str:
        """The parameter with the largest absolute elasticity."""
        return max(self.elasticity, key=lambda k: abs(self.elasticity[k]))

    def describe(self) -> str:
        """One-line summary."""
        parts = ", ".join(f"{k}={v:+.3f}" for k, v in sorted(self.elasticity.items()))
        return f"T={self.base_us:.1f}us; elasticities: {parts}"


def parameter_elasticities(
    predict: Callable[[LogGPParameters], float],
    params: LogGPParameters,
    rel_step: float = 0.05,
    parameters: Sequence[str] = PARAMETERS,
) -> SensitivityResult:
    """Central-difference elasticities of ``predict`` around ``params``.

    ``predict`` maps machine parameters to a predicted time (µs); it is
    called twice per parameter with ``±rel_step`` relative perturbations.
    Parameters whose base value is zero get elasticity 0 (no relative
    perturbation exists).
    """
    if not (0.0 < rel_step < 1.0):
        raise ValueError("rel_step must be in (0, 1)")
    for name in parameters:
        if name not in PARAMETERS:
            raise ValueError(f"unknown parameter {name!r}")
    base = float(predict(params))
    if base <= 0:
        raise ValueError("baseline prediction must be positive")
    elastic: dict[str, float] = {}
    for name in parameters:
        value = getattr(params, name)
        if value == 0.0:
            elastic[name] = 0.0
            continue
        hi = predict(params.with_(**{name: value * (1 + rel_step)}))
        lo = predict(params.with_(**{name: value * (1 - rel_step)}))
        elastic[name] = ((hi - lo) / base) / (2 * rel_step)
    return SensitivityResult(base_us=base, elasticity=elastic)


def dominant_parameter(
    predict: Callable[[LogGPParameters], float],
    params: LogGPParameters,
    rel_step: float = 0.05,
) -> str:
    """Convenience: the single most influential network parameter."""
    return parameter_elasticities(predict, params, rel_step).dominant()

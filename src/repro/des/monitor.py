"""Tracing and probing utilities for the DES engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .engine import Environment

__all__ = ["TraceRecord", "Monitor"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One observation: ``(time, tag, payload)``."""

    time: float
    tag: str
    payload: Any = None


@dataclass
class Monitor:
    """Accumulates timestamped observations during a simulation run.

    The machine emulator uses one monitor per run to record per-processor
    send/receive/compute intervals, from which the "measured" breakdowns of
    Figures 7-9 are assembled.
    """

    env: Environment
    records: list[TraceRecord] = field(default_factory=list)

    def record(self, tag: str, payload: Any = None) -> None:
        """Append an observation stamped with the current simulation time."""
        self.records.append(TraceRecord(self.env.now, tag, payload))

    def filter(self, tag: str) -> list[TraceRecord]:
        """All records with the given tag, in time order."""
        return [r for r in self.records if r.tag == tag]

    def series(self, tag: str, key: Optional[Callable[[Any], float]] = None) -> list[tuple[float, float]]:
        """``(time, value)`` pairs for a tag; ``key`` extracts the value."""
        key = key or (lambda p: float(p))
        return [(r.time, key(r.payload)) for r in self.records if r.tag == tag]

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

"""Tracing and probing utilities for the DES engine.

.. deprecated::
    :class:`Monitor` predates the structured observability layer and is
    kept only for backward compatibility.  New code should use
    :class:`repro.obs.Tracer` — it offers typed slice/instant events,
    counters and histograms, Chrome-trace and CSV/JSONL export, and
    zero-overhead no-op behaviour when disabled.  Instantiating
    :class:`Monitor` emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .engine import Environment

__all__ = ["TraceRecord", "Monitor"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One observation: ``(time, tag, payload)``."""

    time: float
    tag: str
    payload: Any = None


@dataclass
class Monitor:
    """Accumulates timestamped observations during a simulation run.

    .. deprecated:: use :class:`repro.obs.Tracer` instead (see the module
       docstring).  This shim remains functional but warns on creation.
    """

    env: Environment
    records: list[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        warnings.warn(
            "repro.des.Monitor is deprecated; use repro.obs.Tracer "
            "(structured events, metrics, and exporters) instead",
            DeprecationWarning,
            stacklevel=2,
        )

    def record(self, tag: str, payload: Any = None) -> None:
        """Append an observation stamped with the current simulation time."""
        self.records.append(TraceRecord(self.env.now, tag, payload))

    def filter(self, tag: str) -> list[TraceRecord]:
        """All records with the given tag, in time order."""
        return [r for r in self.records if r.tag == tag]

    def series(self, tag: str, key: Optional[Callable[[Any], float]] = None) -> list[tuple[float, float]]:
        """``(time, value)`` pairs for a tag; ``key`` extracts the value.

        Raises a :class:`TypeError` naming the offending tag when a payload
        cannot be interpreted as a number (e.g. ``None`` or a dict recorded
        without passing a ``key`` extractor).
        """
        extract = key or (lambda p: float(p))
        out: list[tuple[float, float]] = []
        for r in self.records:
            if r.tag != tag:
                continue
            try:
                value = float(extract(r.payload))
            except (TypeError, ValueError) as exc:
                raise TypeError(
                    f"Monitor.series({tag!r}): payload {r.payload!r} at "
                    f"t={r.time} is not numeric; pass key= to extract a "
                    f"numeric value from structured payloads"
                ) from exc
            out.append((r.time, value))
        return out

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

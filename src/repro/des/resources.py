"""Shared resources for the DES engine: capacity resources and stores.

These mirror the SimPy resource suite at the scale this package needs:

* :class:`Resource` — ``capacity`` slots, FIFO queue of requesters.
* :class:`Store` — unbounded (or bounded) FIFO buffer of items.
* :class:`PriorityStore` — buffer that always yields the smallest item;
  used by the active-message layer to deliver the earliest-arriving message
  first, matching the priority receive queue of the paper's Figure 2
  algorithm.
"""

from __future__ import annotations

import heapq
from typing import Any

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Release", "Store", "PriorityStore"]


class Request(Event):
    """Pending claim on a :class:`Resource` slot (also a context manager)."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Release(Event):
    """Immediate event confirming a :class:`Resource` slot release."""

    __slots__ = ()


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: list[Request] = []
        self._queue: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires once the slot is granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Return a previously granted slot."""
        if request in self._users:
            self._users.remove(request)
        elif request in self._queue:
            # Cancelling a request that never got the resource.
            self._queue.remove(request)
        ev = Release(self.env)
        ev.succeed()
        self._trigger()
        return ev

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.pop(0)
            self._users.append(req)
            req.succeed()


class _Get(Event):
    __slots__ = ()


class _Put(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item


class Store:
    """FIFO item buffer.

    ``put(item)`` returns an event that fires when the item is accepted
    (immediately unless the store is at ``capacity``); ``get()`` returns an
    event that fires with the next item once one is available.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[_Get] = []
        self._putters: list[_Put] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Offer ``item`` to the store."""
        ev = _Put(self.env, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Take the next item (event fires with the item as its value)."""
        ev = _Get(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    # -- internals ----------------------------------------------------------
    def _accept(self, item: Any) -> None:
        self.items.append(item)

    def _yield_item(self) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self._accept(put.item)
                put.succeed()
                progressed = True
            while self._getters and self.items:
                get = self._getters.pop(0)
                get.succeed(self._yield_item())
                progressed = True


class PriorityStore(Store):
    """A :class:`Store` that always yields its smallest item first.

    Items must be mutually orderable; ``(priority, tiebreak, payload)``
    tuples are the usual shape.
    """

    def _accept(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _yield_item(self) -> Any:
        return heapq.heappop(self.items)

    def peek(self) -> Any:
        """Smallest item without removing it."""
        if not self.items:
            raise SimulationError("peek() on empty PriorityStore")
        return self.items[0]

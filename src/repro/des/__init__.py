"""From-scratch discrete-event simulation substrate.

The paper's "repro" hint suggests an event-driven LogGP model (SimPy-style);
SimPy is not available offline, so :mod:`repro.des` provides an equivalent
generator-coroutine kernel used by the machine emulator
(:mod:`repro.machine`) and by the DES cross-check of the LogGP algorithms
(:mod:`repro.core.des_check`).
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "PriorityStore",
    "Resource",
    "Store",
]

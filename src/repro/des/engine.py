"""Discrete-event simulation engine.

A from-scratch, generator-coroutine discrete-event kernel in the style of
SimPy (which is not available offline).  It provides everything the machine
emulator and the DES cross-check of the LogGP algorithms need:

* :class:`Environment` — simulation clock and event heap.
* :class:`Event` — one-shot occurrence with callbacks and a value.
* :class:`Timeout` — event that fires after a simulated delay.
* :class:`Process` — a generator wrapped as a coroutine; ``yield``-ing an
  event suspends the process until the event fires.
* :class:`AllOf` / :class:`AnyOf` — composite wait conditions.

Times are plain floats; the engine imposes no unit (the rest of the package
uses microseconds).

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs.events import get_tracer

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a :class:`Process` by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot simulation event.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled on the heap with a value), and *processed* (callbacks ran).
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    #: sentinel distinguishing "no value yet" from a ``None`` value
    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = Event._PENDING
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (False once :meth:`fail` is used)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event occurred with; raises if still pending."""
        if self._value is Event._PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule the event to occur after ``delay`` with ``value``."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule the event to occur as a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def _resolve(self) -> None:
        """Run callbacks.  Called by the environment at the event's time."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # An un-waited-for failure propagates out of the run loop.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Flattened Event.__init__ + _schedule: timeouts dominate the DES
        # hot path, and the two extra calls are measurable there.  The
        # counter draw happens at exactly the same point as before.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        heapq.heappush(env._heap, (env._now + delay, next(env._counter), self))


class Initialize(Event):
    """Internal event used to start a :class:`Process` at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        # Flattened like Timeout.__init__ (one Initialize per process).
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        heapq.heappush(env._heap, (env._now, next(env._counter), self))


class Process(Event):
    """A generator running as a simulation coroutine.

    The process itself is an event that fires when the generator returns
    (its value is the generator's return value), so processes can wait for
    each other by yielding the :class:`Process` object.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"Process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event._defused = True
        interrupt_event.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        self.env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {result!r}"
            )
        if result.env is not self.env:
            raise SimulationError("yielded event belongs to a different environment")
        self._target = result
        if result.callbacks is None:
            # Already processed: resume immediately at the current time.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            if result._ok:
                immediate.succeed(result._value)
            else:
                result._defused = True
                immediate._defused = True
                immediate.fail(result._value)
        else:
            result.callbacks.append(self._resume)
            if not result._ok:
                result._defused = True


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_n_needed", "_n_done")

    def __init__(self, env: "Environment", events: Iterable[Event], need_all: bool):
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all events must share one environment")
        self._n_needed = len(self.events) if need_all else min(1, len(self.events))
        self._n_done = 0
        if self._n_needed == 0:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done >= self._n_needed:
            self.succeed(
                {ev: ev._value for ev in self.events if ev._triggered and ev._ok}
            )


class AllOf(Condition):
    """Fires once *all* constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=True)


class AnyOf(Condition):
    """Fires as soon as *any* constituent event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=False)


class Environment:
    """Simulation environment: clock, event heap, and factory helpers."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events this environment has processed so far."""
        return self._processed

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("no more events")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        self._processed += 1
        event._resolve()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a time (run up to and
        including that time, then set ``now`` to it), or an :class:`Event`
        (run until it fires and return its value).

        When the ambient observability tracer is enabled, the number of
        kernel events processed by this call is counted into the
        ``des.events`` metric (see :mod:`repro.obs`).
        """
        tracer = get_tracer()
        if tracer.enabled:
            before = self._processed
            try:
                return self._run(until)
            finally:
                tracer.count("des.events", self._processed - before)
        return self._run(until)

    def _run(self, until: Optional[float | Event] = None) -> Any:
        if until is None:
            # Run-to-exhaustion is the only mode the simulators use; the
            # inlined step()/_resolve() bodies save two calls per event.
            heap = self._heap
            pop = heapq.heappop
            while heap:
                when, _, event = pop(heap)
                self._now = when
                self._processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None
        if isinstance(until, Event):
            stop: list[Any] = []
            if until.callbacks is None:
                return until._value
            until.callbacks.append(lambda ev: stop.append(ev))
            while self._heap and not stop:
                self.step()
            if not stop:
                raise SimulationError("event never fired; simulation ran dry")
            if not until._ok:
                until._defused = True
                raise until._value
            return until._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError("cannot run backwards in time")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

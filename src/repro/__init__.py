"""repro — Predicting the Running Times of Parallel Programs by Simulation.

A full reproduction of Rugina & Schauser (IPPS 1998): LogGP-based
simulation of the send/receive sequences of oblivious parallel programs,
validated on the blocked parallel Gaussian Elimination against an emulated
Meiko CS-2.

Quick start::

    from repro import MEIKO_CS2, simulate_standard, sample_pattern

    result = simulate_standard(MEIKO_CS2, sample_pattern())
    print(result.completion_time)

Subpackages
-----------
``repro.core``
    The paper's contribution: LogGP model, the two communication-step
    simulation algorithms, cost models, whole-program prediction,
    optimum search.
``repro.des``
    From-scratch discrete-event simulation engine.
``repro.machine``
    Emulated Meiko CS-2 (cache, CPU, jittered network, active messages).
``repro.apps``
    In-class applications: Gaussian Elimination, Cannon, Jacobi stencil,
    plus the paper's Figure 3 sample pattern.
``repro.layouts``
    Row-stripped cyclic and diagonal data layouts (plus extensions).
``repro.blockops``
    The four GE basic operations with timing and calibration.
``repro.trace``
    The oblivious alternating comp/comm program representation.
``repro.analysis``
    Timeline rendering, figure formatting, shape statistics.
``repro.sweep``
    Parallel sweep engine: grid studies fanned across worker processes
    with a shared, crash-safe experiment store.
"""

from .apps import (
    PAPER_BLOCK_SIZES,
    PAPER_MATRIX_N,
    CannonConfig,
    GEConfig,
    StencilConfig,
    build_cannon_trace,
    build_ge_trace,
    build_stencil_trace,
    sample_pattern,
)
from .core import (
    ETHERNET_CLUSTER,
    LOW_OVERHEAD_NIC,
    MEIKO_CS2,
    CachePredictionModel,
    CalibratedCostModel,
    CommPattern,
    FlopCostModel,
    GERow,
    LogGPParameters,
    MeasuredCostModel,
    Message,
    OpKind,
    PredictionReport,
    ProgramSimulator,
    RunningTimePredictor,
    SimulationResult,
    StepTimeline,
    TableCostModel,
    predicted_optimum,
    run_ge_point,
    run_ge_sweep,
    simulate_causal,
    simulate_standard,
    simulate_worstcase,
)
from .layouts import (
    LAYOUTS,
    BlockCyclic2DLayout,
    ColumnCyclicLayout,
    DataLayout,
    DiagonalLayout,
    RowStrippedCyclicLayout,
)
from .machine import MachineEmulator, MeasuredReport, SplitCMachine
from .trace import ProgramTrace, Step, TraceBuilder, Work

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machine model & algorithms
    "LogGPParameters",
    "OpKind",
    "MEIKO_CS2",
    "ETHERNET_CLUSTER",
    "LOW_OVERHEAD_NIC",
    "CommPattern",
    "Message",
    "StepTimeline",
    "SimulationResult",
    "simulate_standard",
    "simulate_worstcase",
    "simulate_causal",
    # cost models & prediction
    "TableCostModel",
    "CalibratedCostModel",
    "MeasuredCostModel",
    "FlopCostModel",
    "CachePredictionModel",
    "ProgramSimulator",
    "PredictionReport",
    "RunningTimePredictor",
    "GERow",
    "run_ge_point",
    "run_ge_sweep",
    "predicted_optimum",
    # machine emulator
    "MachineEmulator",
    "MeasuredReport",
    "SplitCMachine",
    # apps & layouts & traces
    "GEConfig",
    "build_ge_trace",
    "CannonConfig",
    "build_cannon_trace",
    "StencilConfig",
    "build_stencil_trace",
    "sample_pattern",
    "PAPER_MATRIX_N",
    "PAPER_BLOCK_SIZES",
    "DataLayout",
    "RowStrippedCyclicLayout",
    "DiagonalLayout",
    "ColumnCyclicLayout",
    "BlockCyclic2DLayout",
    "LAYOUTS",
    "ProgramTrace",
    "Step",
    "Work",
    "TraceBuilder",
]

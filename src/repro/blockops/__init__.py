"""Basic block operations of the blocked Gaussian Elimination (paper §5.1).

Real NumPy implementations (plus scalar references), a host timing harness
reproducing the Figure 6 measurement methodology, and a deterministic
Meiko-CS-2-shaped calibration for the cost curves.
"""

from .calibration import (
    CS2_CACHE_BYTES,
    CS2_FLOP_US,
    CS2_LINE_BYTES,
    CS2_MISS_PENALTY_US,
    SCAN_US_PER_BLOCK,
    LOCAL_COPY_US_PER_BYTE,
    calibrated_cost,
    calibrated_table,
    cold_extra_cost,
    operand_bytes,
)
from .ops import (
    OP_NAMES,
    Factors,
    flop_count,
    op1_factor,
    op1_factor_ref,
    op2_row,
    op2_row_ref,
    op3_col,
    op3_col_ref,
    op4_update,
    op4_update_ref,
)
from .timing import OpTimer, measure_op_costs

__all__ = [
    "OP_NAMES",
    "Factors",
    "flop_count",
    "op1_factor",
    "op1_factor_ref",
    "op2_row",
    "op2_row_ref",
    "op3_col",
    "op3_col_ref",
    "op4_update",
    "op4_update_ref",
    "OpTimer",
    "measure_op_costs",
    "calibrated_cost",
    "calibrated_table",
    "cold_extra_cost",
    "operand_bytes",
    "CS2_FLOP_US",
    "CS2_CACHE_BYTES",
    "CS2_LINE_BYTES",
    "CS2_MISS_PENALTY_US",
    "SCAN_US_PER_BLOCK",
    "LOCAL_COPY_US_PER_BYTE",
]

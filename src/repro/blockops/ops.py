"""The four basic block operations of the blocked Gaussian Elimination.

Paper section 5.1: the blocked GE operates on ``b x b`` basic blocks with
four basic operations (notation reconstructed from the garbled source —
this is the standard right-looking blocked LU without pivoting):

* **Op1** — factor the diagonal block: ``B = L U`` (no pivoting) and invert
  both triangular factors, producing ``L^-1`` and ``U^-1``.
* **Op2** — transform a pivot-row block: ``B <- L^-1 B``.
* **Op3** — transform a pivot-column block: ``B <- B U^-1``.
* **Op4** — update a trailing block: ``B <- B - B_col B_row``.

Applying Op1 at ``(k,k)``, Op2 across row ``k``, Op3 down column ``k`` and
Op4 on the trailing submatrix for ``k = 0..nb-1`` computes the blocked LU
factorisation ``A = L U`` — which the tests verify numerically against
``L @ U``.

Each operation has a vectorised NumPy implementation (used by the apps and
the host-timing harness) and a pure-Python reference (``*_ref``) used for
cross-validation on small blocks, mirroring the flop counts a scalar
CPU — like the Meiko CS-2's SPARC — would execute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "OP_NAMES",
    "Factors",
    "op1_factor",
    "op2_row",
    "op3_col",
    "op4_update",
    "op1_factor_ref",
    "op2_row_ref",
    "op3_col_ref",
    "op4_update_ref",
    "flop_count",
]

#: canonical operation names used by cost models and traces
OP_NAMES = ("op1", "op2", "op3", "op4")


@dataclass(frozen=True)
class Factors:
    """Output of Op1: the triangular factors of a diagonal block and inverses.

    ``lower`` is unit lower triangular, ``upper`` upper triangular, with
    ``lower @ upper`` equal to the input block.
    """

    lower: np.ndarray
    upper: np.ndarray
    lower_inv: np.ndarray
    upper_inv: np.ndarray


def _lu_nopivot(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """In-place-style LU without pivoting; returns ``(L, U)``.

    Rank-1 updates are vectorised; the ``k`` loop is inherent to the
    factorisation.  Raises on a (numerically) zero pivot, which the GE
    driver avoids by using diagonally dominant inputs (the paper's
    algorithm has no pivoting either).
    """
    a = np.array(block, dtype=np.float64, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError(f"block must be square, got {a.shape}")
    for k in range(n - 1):
        pivot = a[k, k]
        if abs(pivot) < 1e-300:
            raise ZeroDivisionError(f"zero pivot at position {k} (no pivoting)")
        a[k + 1 :, k] /= pivot
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    lower = np.tril(a, -1) + np.eye(n)
    upper = np.triu(a)
    return lower, upper


def _inv_lower_unit(lower: np.ndarray) -> np.ndarray:
    """Invert a unit lower-triangular matrix by forward substitution."""
    n = lower.shape[0]
    inv = np.eye(n)
    for k in range(1, n):
        inv[k, :k] = -lower[k, :k] @ inv[:k, :k]
    return inv


def _inv_upper(upper: np.ndarray) -> np.ndarray:
    """Invert an upper-triangular matrix by back substitution."""
    n = upper.shape[0]
    inv = np.zeros((n, n))
    for k in range(n - 1, -1, -1):
        pivot = upper[k, k]
        if abs(pivot) < 1e-300:
            raise ZeroDivisionError(f"zero pivot at position {k} (no pivoting)")
        inv[k, k] = 1.0 / pivot
        if k + 1 < n:
            inv[k, k + 1 :] = -(upper[k, k + 1 :] @ inv[k + 1 :, k + 1 :]) / pivot
    return inv


def op1_factor(block: np.ndarray) -> Factors:
    """Op1: factor a diagonal block and invert both triangular factors."""
    lower, upper = _lu_nopivot(block)
    return Factors(
        lower=lower,
        upper=upper,
        lower_inv=_inv_lower_unit(lower),
        upper_inv=_inv_upper(upper),
    )


def op2_row(lower_inv: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Op2: transform a pivot-row block, ``L^-1 @ B``."""
    return lower_inv @ block


def op3_col(block: np.ndarray, upper_inv: np.ndarray) -> np.ndarray:
    """Op3: transform a pivot-column block, ``B @ U^-1``."""
    return block @ upper_inv


def op4_update(block: np.ndarray, col_block: np.ndarray, row_block: np.ndarray) -> np.ndarray:
    """Op4: trailing update, ``B - col_block @ row_block``."""
    return block - col_block @ row_block


# -- pure-Python references (scalar flop-for-flop, for cross-validation) -----

def op1_factor_ref(block: np.ndarray) -> Factors:
    """Scalar reference for :func:`op1_factor` (O(b^3) Python loops)."""
    n = block.shape[0]
    a = [[float(block[i][j]) for j in range(n)] for i in range(n)]
    for k in range(n - 1):
        pivot = a[k][k]
        if abs(pivot) < 1e-300:
            raise ZeroDivisionError(f"zero pivot at position {k}")
        for i in range(k + 1, n):
            a[i][k] /= pivot
            factor = a[i][k]
            for j in range(k + 1, n):
                a[i][j] -= factor * a[k][j]
    lower = np.eye(n)
    upper = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i > j:
                lower[i, j] = a[i][j]
            else:
                upper[i, j] = a[i][j]
    return Factors(
        lower=lower,
        upper=upper,
        lower_inv=_inv_lower_unit(lower),
        upper_inv=_inv_upper(upper),
    )


def _matmul_ref(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    n, m = x.shape
    m2, p = y.shape
    assert m == m2
    out = np.zeros((n, p))
    for i in range(n):
        for k in range(m):
            xik = x[i, k]
            if xik == 0.0:
                continue
            for j in range(p):
                out[i, j] += xik * y[k, j]
    return out


def op2_row_ref(lower_inv: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Scalar reference for :func:`op2_row`."""
    return _matmul_ref(lower_inv, block)


def op3_col_ref(block: np.ndarray, upper_inv: np.ndarray) -> np.ndarray:
    """Scalar reference for :func:`op3_col`."""
    return _matmul_ref(block, upper_inv)


def op4_update_ref(block: np.ndarray, col_block: np.ndarray, row_block: np.ndarray) -> np.ndarray:
    """Scalar reference for :func:`op4_update`."""
    return block - _matmul_ref(col_block, row_block)


def flop_count(op: str, b: int) -> float:
    """Nominal floating-point operation count of a basic op on a ``b x b`` block.

    Op1: LU (2/3 b^3) plus two triangular inversions (1/3 b^3 each) ~= 4/3 b^3.
    Op2/Op3: one triangular-by-square product ~= b^3.
    Op4: one full product plus a subtraction ~= 2 b^3 + b^2.
    """
    if op == "op1":
        return (4.0 / 3.0) * b**3
    if op in ("op2", "op3"):
        return float(b**3)
    if op == "op4":
        return 2.0 * b**3 + b**2
    raise ValueError(f"unknown op {op!r}; expected one of {OP_NAMES}")

"""Deterministic Meiko-CS-2-shaped basic-operation cost tables.

We do not have a Meiko CS-2 to measure, so this module provides an
analytic stand-in calibrated to the *shape* the paper reports in Figure 6
(section 5.1):

* the dependence of every op's cost on the block size ``b`` is nonlinear
  (cubic flop terms plus linear/constant per-call and per-row overheads);
* for **small** blocks, **Op1** (triangularise + invert) is the most
  expensive — its ``b`` sequential pivot steps carry the largest per-row
  overhead;
* near ``b ~ 60`` all four operations cost roughly the same (~1.7 ms);
* for **large** blocks (``b ~ 120..160``) the full multiplication of
  Op3/Op4 costs about **twice** Op1.

The model is ``cost(b) = f * flops(op, b) * w_op + row * b + call`` with a
per-op cubic weight ``w_op`` chosen so the asymptotic ratios match the
paper, and overheads chosen so the curves cross near ``b = 60``.

The cost of a *cache-cold* invocation (used by the machine emulator and
the cache-aware prediction extension) adds a miss term proportional to the
operand footprint; see :func:`cold_extra_cost`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .ops import OP_NAMES, flop_count

__all__ = [
    "CS2_FLOP_US",
    "calibrated_cost",
    "calibrated_table",
    "cold_extra_cost",
    "operand_bytes",
    "CS2_CACHE_BYTES",
    "CS2_LINE_BYTES",
    "CS2_MISS_PENALTY_US",
    "SCAN_US_PER_BLOCK",
    "LOCAL_COPY_US_PER_BYTE",
]

#: per-flop cost stand-in for a mid-90s SPARC node (~100 MFLOPS), µs/flop
CS2_FLOP_US = 0.01

#: cubic weight per op.  Op1's 4/3 b^3 factor/invert flops pipeline better
#: per flop than its raw count suggests (weight 0.75 makes its effective
#: cubic term f*b^3), so that Op4's full multiply (2 f b^3) costs about
#: twice Op1 at large block sizes — the paper's Figure 6 asymptote.  Op2
#: and Op3 (triangular-by-square products, b^3 multiply-adds but poorer
#: pipelining than the full product) sit between, keeping all four curves
#: within a small band near the crossover as the paper's Figure 6 shows.
_CUBIC_WEIGHT = {"op1": 0.75, "op2": 1.6, "op3": 1.6, "op4": 1.0}

#: per-row overhead (µs per b): Op1 pays for its sequential pivot loop,
#: which makes it the most expensive op for small blocks (Figure 6).
_ROW_OVERHEAD = {"op1": 30.0, "op2": 5.0, "op3": 5.0, "op4": 1.5}

#: fixed per-call overhead (µs); tuned so Op1 and Op4 cross near b ~ 56.
_CALL_OVERHEAD = {"op1": 200.0, "op2": 50.0, "op3": 50.0, "op4": 25.0}

#: cache geometry of the emulated node (256 KiB direct-ish cache, 32 B lines)
CS2_CACHE_BYTES = 256 * 1024
CS2_LINE_BYTES = 32
#: penalty per missed cache line, µs
CS2_MISS_PENALTY_US = 0.35

#: per-step scan cost of iterating over one assigned block (each processor
#: walks all of its blocks every wavefront step to find the active ones —
#: the paper's explanation for the computation-time under-prediction at
#: small block sizes, section 6.3), µs per block per step
SCAN_US_PER_BLOCK = 1.0

#: local memory transfer cost (self-messages in real execution), µs/byte;
#: ~500 MB/s node-local copy, an order of magnitude cheaper than the wire
LOCAL_COPY_US_PER_BYTE = 0.002


def calibrated_cost(op: str, b: int) -> float:
    """Warm-cache cost in µs of one basic op on a ``b x b`` block."""
    if op not in OP_NAMES:
        raise ValueError(f"unknown op {op!r}; expected one of {OP_NAMES}")
    if b < 1:
        raise ValueError("block size must be >= 1")
    cubic = CS2_FLOP_US * flop_count(op, b) * _CUBIC_WEIGHT[op]
    return cubic + _ROW_OVERHEAD[op] * b + _CALL_OVERHEAD[op]


def calibrated_table(block_sizes: Sequence[int]) -> Mapping[str, Mapping[int, float]]:
    """``{op: {b: cost_us}}`` for the given block sizes."""
    return {op: {b: calibrated_cost(op, b) for b in block_sizes} for op in OP_NAMES}


def operand_bytes(op: str, b: int) -> int:
    """Bytes of float64 operands an op touches (inputs + output)."""
    blocks = {"op1": 3, "op2": 3, "op3": 3, "op4": 4}[op]
    return blocks * b * b * 8


def cold_extra_cost(
    op: str,
    b: int,
    cache_bytes: int = CS2_CACHE_BYTES,
    line_bytes: int = CS2_LINE_BYTES,
    miss_penalty_us: float = CS2_MISS_PENALTY_US,
) -> float:
    """Extra µs for a cache-cold invocation of ``op`` on a ``b x b`` block.

    Every operand line must be fetched; once the operand footprint exceeds
    the cache, even "warm" invocations stream (that regime is already
    inside the calibrated cubic term, so the cold extra is capped at the
    cache size).
    """
    touched = min(operand_bytes(op, b), cache_bytes)
    lines = touched / line_bytes
    return lines * miss_penalty_us

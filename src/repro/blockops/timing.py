"""Host measurement of basic-operation running times (paper Figure 6).

The paper measured the four basic operations on a Meiko CS-2 node for each
block size.  The equivalent here is to time our own implementations on the
host; the resulting cost table plugs into the prediction through
:class:`repro.core.costmodel.TableCostModel`.

Host timings are inherently machine- and load-dependent — they reproduce
the *kind* of nonlinearity of Figure 6 (per-call overheads dominating small
blocks, cubic terms dominating large ones), while the deterministic tables
in :mod:`repro.blockops.calibration` reproduce the paper's exact shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from .ops import OP_NAMES, op1_factor, op2_row, op3_col, op4_update

__all__ = ["OpTimer", "measure_op_costs"]


def _mk_inputs(op: str, b: int, rng: np.random.Generator) -> tuple:
    """Random, numerically safe inputs for one basic op."""
    base = rng.standard_normal((b, b))
    dominant = base + b * np.eye(b)  # diagonally dominant: safe without pivoting
    if op == "op1":
        return (dominant,)
    if op == "op2":
        lower_inv = np.tril(rng.standard_normal((b, b)), -1) + np.eye(b)
        return (lower_inv, base)
    if op == "op3":
        upper_inv = np.triu(rng.standard_normal((b, b))) + b * np.eye(b)
        return (base, upper_inv)
    if op == "op4":
        return (base, rng.standard_normal((b, b)), rng.standard_normal((b, b)))
    raise ValueError(f"unknown op {op!r}")


_IMPLS: dict[str, Callable] = {
    "op1": op1_factor,
    "op2": op2_row,
    "op3": op3_col,
    "op4": op4_update,
}


@dataclass
class OpTimer:
    """Times basic operations on the host with warmup and median-of-repeats.

    Parameters
    ----------
    repeats:
        Timed repetitions per (op, block size); the median is reported.
    warmup:
        Untimed calls before measuring (JIT-less here, but primes caches
        and NumPy internals).
    seed:
        Seed for the random inputs.
    """

    repeats: int = 5
    warmup: int = 1
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        self._rng = np.random.default_rng(self.seed)

    def time_op(self, op: str, b: int) -> float:
        """Median wall time of one ``op`` call on a ``b x b`` block, in µs."""
        if op not in _IMPLS:
            raise ValueError(f"unknown op {op!r}; expected one of {OP_NAMES}")
        if b < 1:
            raise ValueError("block size must be >= 1")
        impl = _IMPLS[op]
        args = _mk_inputs(op, b, self._rng)
        for _ in range(self.warmup):
            impl(*args)
        samples = []
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            impl(*args)
            samples.append((time.perf_counter() - t0) * 1e6)
        return float(np.median(samples))

    def sweep(self, block_sizes: Sequence[int]) -> dict[str, dict[int, float]]:
        """``{op: {b: cost_us}}`` over all four ops and the given sizes."""
        return {
            op: {b: self.time_op(op, b) for b in block_sizes} for op in OP_NAMES
        }


def measure_op_costs(
    block_sizes: Sequence[int], repeats: int = 5, seed: int = 0
) -> Mapping[str, Mapping[int, float]]:
    """Convenience wrapper: measure all four ops over ``block_sizes``."""
    return OpTimer(repeats=repeats, seed=seed).sweep(block_sizes)

"""Batch submission: heterogeneous prediction requests → grouped sweeps.

:func:`run_sweep` evaluates one grid under one machine.  The prediction
service (:mod:`repro.serve`) coalesces whatever distinct requests arrive
inside a batching window — points that may disagree on the machine
parameters or carry different UQ specs — and needs them fanned through
the sweep engine *as few sweeps as possible* so the PR 7 self-tuning
executor and the vectorized batch kernel see whole batches, not
point-at-a-time calls.

:func:`run_point_batch` is that entrypoint: it groups items by
``(machine fingerprint, UQ tag)``, dedupes repeated points inside each
group, runs one store-backed :func:`run_sweep` per group, and hands back
summaries aligned with the submitted items plus per-item *source*
attribution (``"cached"`` — the store already held it — or
``"computed"``), which is how the serve layer tells a store-tier hit
from a genuine simulation without a second store read.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from ..core.fingerprint import loggp_fingerprint
from ..core.loggp import LogGPParameters
from ..experiments import PointSummary
from ..uq.spec import UQSpec
from .points import SweepPoint
from .runner import SweepStats, run_sweep

__all__ = ["BatchItem", "BatchResult", "run_point_batch"]


@dataclass(frozen=True)
class BatchItem:
    """One submitted evaluation: a sweep point under a specific machine."""

    point: SweepPoint
    params: LogGPParameters
    uq: Optional[UQSpec] = None

    def group_key(self) -> tuple:
        """Items sharing this key can ride one :func:`run_sweep` call."""
        uq_tag = None
        if self.uq is not None and not self.uq.is_identity():
            uq_tag = self.uq.fingerprint()
        return (loggp_fingerprint(self.params), uq_tag)


@dataclass
class BatchResult:
    """A completed batch: per-item summaries plus per-group sweep stats."""

    #: aligned with the submitted items
    summaries: list[PointSummary]
    #: ``"cached"`` (store tier) or ``"computed"`` per item
    sources: list[str]
    #: one :class:`SweepStats` per executed machine/UQ group
    group_stats: list[SweepStats]

    @property
    def computed(self) -> int:
        """How many submitted items required a simulation."""
        return sum(1 for s in self.sources if s == "computed")

    @property
    def cached(self) -> int:
        """How many submitted items the store tier already held."""
        return sum(1 for s in self.sources if s == "cached")


def run_point_batch(
    items: Sequence[BatchItem],
    cost_model,
    *,
    store_dir: Union[str, Path, None] = None,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> BatchResult:
    """Evaluate a heterogeneous batch through grouped, store-backed sweeps.

    Parameters
    ----------
    items:
        The submitted evaluations, in response order.  Items may mix
        machines, UQ specs, seeds and ``with_measured`` freely; repeated
        identical points inside one group are evaluated once.
    cost_model:
        The cost model shared by every item (the server's).
    store_dir:
        Directory of the shared :class:`~repro.experiments.ExperimentStore`
        (tier 2).  Each group opens its own handle — entries are keyed by
        the group's machine fingerprint and UQ tag, so one directory
        safely serves every machine.  ``None`` computes without
        persistence (every item then reports ``"computed"``).
    workers, executor:
        Forwarded to :func:`run_sweep` per group (``executor="auto"``
        rides the self-tuning executor; ``None``/``None`` keeps the
        serial reference path).
    """
    items = list(items)
    if not items:
        return BatchResult(summaries=[], sources=[], group_stats=[])

    # -- group by (machine, uq), first-occurrence order ----------------------
    groups: dict[tuple, list[int]] = {}
    for idx, item in enumerate(items):
        groups.setdefault(item.group_key(), []).append(idx)

    summaries: list[Optional[PointSummary]] = [None] * len(items)
    sources: list[Optional[str]] = [None] * len(items)
    group_stats: list[SweepStats] = []
    for indices in groups.values():
        rep = items[indices[0]]
        # dedupe repeated points inside the group, preserving order
        unique: list[SweepPoint] = []
        position: dict[SweepPoint, int] = {}
        for idx in indices:
            point = items[idx].point
            if point not in position:
                position[point] = len(unique)
                unique.append(point)
        point_source: dict[SweepPoint, str] = {}

        def _observe(done, total, point, source):
            point_source[point] = source

        result = run_sweep(
            unique, rep.params, cost_model,
            workers=workers,
            executor=executor,
            store=store_dir,
            resume=True,
            progress=_observe,
            uq=rep.uq,
        )
        group_stats.append(result.stats)
        for idx in indices:
            point = items[idx].point
            summaries[idx] = result.summaries[position[point]]
            sources[idx] = point_source.get(point, "computed")

    assert all(s is not None for s in summaries)
    return BatchResult(
        summaries=summaries,  # type: ignore[arg-type]
        sources=sources,  # type: ignore[arg-type]
        group_stats=group_stats,
    )

"""Self-tuning sweep execution: the paper's idea, pointed at ourselves.

The paper predicts a parallel program's running time from a calibrated
model instead of running it.  The sweep engine has the same scheduling
problem one level up: dispatching a grid to a process pool costs real
time (interpreter spawn, module import, argument pickling) that only
pays off when the simulation work dwarfs it — ``BENCH_sweep.json`` once
recorded a 4-worker sweep at **0.87x** of serial on a 1-CPU host
because nobody predicted that cost.  So the executor calibrates a cost
model of the sweep itself and *predicts* the best strategy:

``serial``
    Evaluate in-process through the vectorized batch kernel.  Zero
    dispatch overhead; always the floor the others must beat.
``thread``
    A thread pool sharing the process's GE trace cache, compiled plans
    and cost memos.  Python's GIL serialises the simulation bytecode,
    so threads mostly overlap the store's file I/O and advisory-lock
    waits — worthwhile for store-backed grids of cheap points, where
    process spawn costs more than the whole grid.
``process``
    The classic pool: linear CPU scaling for grids whose estimated
    serial time clearly exceeds spawn+pickle overhead.

Inputs to the decision: the measured pool spawn overhead (once per
process, ~tens of milliseconds with fork, ~seconds with spawn), the
per-point cost estimate calibrated by the memo layer
(:func:`repro.kernel.memo.estimate_point_cost` — an EWMA over observed
evaluations, probed on the first point when cold), the host's CPU
count, and whether tracing is active (the tracer is process-global, so
thread workers cannot trace independently: traced sweeps never run the
thread strategy).

Every decision is returned as an :class:`ExecutorDecision` and recorded
in the run manifest and the ``sweep.decide`` trace span, so a surprising
schedule can always be audited after the fact.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from ..kernel.memo import estimate_point_cost, point_weight
from ..obs import get_tracer

__all__ = [
    "EXECUTORS",
    "ExecutorDecision",
    "available_cpus",
    "measure_spawn_overhead",
    "estimate_grid_cost",
    "decide_executor",
]

#: accepted ``--executor`` values (``auto`` resolves to one of the rest)
EXECUTORS = ("auto", "serial", "thread", "process")

#: grids estimated cheaper than this never leave the main thread: even a
#: forked pool costs a few tens of milliseconds plus per-chunk pickling
MIN_PARALLEL_S = 0.5

#: a process pool must predict at least this much advantage over serial
#: before we commit to it (estimates are coarse; ties go to the simpler
#: strategy, and a near-tie parallel run still pays pickling + teardown)
PROCESS_ADVANTAGE = 0.85


@dataclass(frozen=True)
class ExecutorDecision:
    """One executor choice and the numbers that produced it."""

    #: the strategy that will run: ``serial`` | ``thread`` | ``process``
    executor: str
    #: what the caller asked for (``auto`` or a forced strategy)
    requested: str
    #: worker count the strategy will use (1 for serial)
    workers: int
    #: human-readable rationale, for manifests and trace spans
    reason: str
    cpu_count: int
    #: calibrated estimate of the pending grid's serial seconds (None
    #: when the cost model had no observations and no probe ran)
    est_total_s: Optional[float] = None
    #: measured pool spawn overhead (None when never measured)
    spawn_overhead_s: Optional[float] = None

    def to_dict(self) -> dict:
        return asdict(self)


def available_cpus() -> int:
    """CPUs the scheduler may plan for (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pool_probe(_arg):  # pragma: no cover - runs in the worker process
    return None


_SPAWN_CACHE: dict[Optional[str], float] = {}
_SPAWN_LOCK = threading.Lock()


def measure_spawn_overhead(mp_context: Optional[str] = None) -> float:
    """Measured seconds to stand up a 1-worker pool and run a no-op.

    This is the fixed cost a process-pool sweep pays before any point
    computes (interpreter fork/spawn, module import, first-task
    round-trip).  Measured once per process per start method and
    cached; ``REPRO_SPAWN_OVERHEAD_S`` overrides the measurement (CI
    and the regression tests pin it for determinism).
    """
    override = os.environ.get("REPRO_SPAWN_OVERHEAD_S")
    if override is not None:
        return float(override)
    with _SPAWN_LOCK:
        cached = _SPAWN_CACHE.get(mp_context)
        if cached is not None:
            return cached
    ctx = multiprocessing.get_context(mp_context)
    t0 = time.perf_counter()
    with ctx.Pool(processes=1) as pool:
        pool.map(_pool_probe, [None])
    overhead = time.perf_counter() - t0
    with _SPAWN_LOCK:
        _SPAWN_CACHE[mp_context] = overhead
    return overhead


def clear_spawn_cache() -> None:
    """Forget measured spawn overheads (tests)."""
    with _SPAWN_LOCK:
        _SPAWN_CACHE.clear()


def estimate_grid_cost(points: Sequence) -> Optional[float]:
    """Calibrated serial seconds of a pending grid; ``None`` when cold."""
    total = 0.0
    for p in points:
        est = estimate_point_cost(p.n, p.b, p.with_measured)
        if est is None:
            return None
        total += est
    return total


def grid_weight(points: Sequence) -> float:
    """Total relative weight of a grid (for apportioning observations)."""
    return sum(point_weight(p.n, p.b, p.with_measured) for p in points)


def decide_executor(
    points: Sequence,
    requested: str,
    workers: Optional[int],
    *,
    traced: bool = False,
    store_attached: bool = False,
    mp_context: Optional[str] = None,
    cpu_count: Optional[int] = None,
) -> ExecutorDecision:
    """Choose how to execute ``points`` (the pending, uncached grid).

    ``requested`` is one of :data:`EXECUTORS`; a forced strategy is
    honoured (validated against impossibilities), ``auto`` runs the cost
    model.  ``workers`` caps the pool width; ``None`` lets the decision
    use every available CPU.
    """
    if requested not in EXECUTORS:
        raise ValueError(
            f"unknown executor {requested!r}; expected one of {EXECUTORS}"
        )
    # deterministic decision telemetry: which strategies callers *ask* for
    # (the runner separately counts what was picked) — exposed at /metrics
    get_tracer().count(f"sweep.executor.requested.{requested}")
    cpus = cpu_count if cpu_count is not None else available_cpus()
    n_pts = len(points)
    cap = workers if workers is not None and workers > 0 else cpus
    pool_workers = max(1, min(cap, cpus, max(n_pts, 1)))

    if requested == "thread" and traced:
        raise ValueError(
            "executor 'thread' cannot run under an enabled tracer: the "
            "tracer is process-global; use 'serial' or 'process'"
        )
    if requested == "serial":
        return ExecutorDecision(
            executor="serial", requested=requested, workers=1,
            reason="forced by caller", cpu_count=cpus,
        )
    if requested == "thread":
        return ExecutorDecision(
            executor="thread", requested=requested, workers=pool_workers,
            reason="forced by caller", cpu_count=cpus,
        )
    if requested == "process":
        return ExecutorDecision(
            executor="process", requested=requested, workers=pool_workers,
            reason="forced by caller", cpu_count=cpus,
        )

    # -- auto ---------------------------------------------------------------
    if n_pts <= 1:
        return ExecutorDecision(
            executor="serial", requested=requested, workers=1,
            reason=f"{n_pts} pending point(s): nothing to fan out",
            cpu_count=cpus,
        )
    if cpus <= 1:
        # The 0.87x regression, fixed at the source: on one CPU a pool
        # adds spawn + pickling on top of the same serial compute.
        return ExecutorDecision(
            executor="serial", requested=requested, workers=1,
            reason="single CPU: a pool only adds dispatch overhead",
            cpu_count=cpus,
        )
    est_total = estimate_grid_cost(points)
    if est_total is None:
        return ExecutorDecision(
            executor="serial", requested=requested, workers=1,
            reason="cost model uncalibrated: probe serially first",
            cpu_count=cpus,
        )
    if est_total < MIN_PARALLEL_S:
        return ExecutorDecision(
            executor="serial", requested=requested, workers=1,
            reason=(
                f"grid too cheap to parallelise "
                f"(est {est_total:.3f}s < {MIN_PARALLEL_S}s)"
            ),
            cpu_count=cpus, est_total_s=est_total,
        )
    spawn_s = measure_spawn_overhead(mp_context)
    t_process = spawn_s + est_total / pool_workers
    if t_process < PROCESS_ADVANTAGE * est_total:
        return ExecutorDecision(
            executor="process", requested=requested, workers=pool_workers,
            reason=(
                f"pool predicted {t_process:.3f}s vs serial "
                f"{est_total:.3f}s across {pool_workers} workers"
            ),
            cpu_count=cpus, est_total_s=est_total, spawn_overhead_s=spawn_s,
        )
    if store_attached and not traced:
        # Mid-band: compute is GIL-bound either way, but threads overlap
        # the store's file writes and advisory-lock waits at zero spawn
        # cost, sharing the trace/plan/memo caches.
        return ExecutorDecision(
            executor="thread", requested=requested, workers=pool_workers,
            reason=(
                f"pool predicted {t_process:.3f}s vs serial "
                f"{est_total:.3f}s: not worth spawning; threads overlap "
                "store I/O with shared caches"
            ),
            cpu_count=cpus, est_total_s=est_total, spawn_overhead_s=spawn_s,
        )
    return ExecutorDecision(
        executor="serial", requested=requested, workers=1,
        reason=(
            f"pool predicted {t_process:.3f}s vs serial {est_total:.3f}s: "
            "spawn overhead eats the gain"
        ),
        cpu_count=cpus, est_total_s=est_total, spawn_overhead_s=spawn_s,
    )

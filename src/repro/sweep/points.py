"""Sweep grids: the unit of work of the parallel sweep engine.

A :class:`SweepPoint` names one GE evaluation — exactly the key of one
:class:`repro.experiments.ExperimentStore` entry — and
:func:`expand_grid` turns the usual ``(n, block sizes, layouts, seeds)``
study description into a validated, deterministically ordered tuple of
points.  The grid order is the contract the runner keeps no matter how
many workers execute it: results come back in grid order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..layouts import LAYOUTS

__all__ = ["SweepPoint", "expand_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """One (n, b, layout, seed) evaluation point of a sweep."""

    n: int
    b: int
    layout: str
    seed: int = 0
    with_measured: bool = True

    def __post_init__(self) -> None:
        if self.n < 1 or self.b < 1:
            raise ValueError(f"n and b must be >= 1, got n={self.n}, b={self.b}")
        if self.n % self.b:
            raise ValueError(f"block size {self.b} does not divide n={self.n}")
        if self.layout not in LAYOUTS:
            raise ValueError(
                f"unknown layout {self.layout!r}; known: {sorted(LAYOUTS)}"
            )

    def describe(self) -> str:
        """Short human-readable label (progress lines, errors)."""
        return f"n={self.n} b={self.b} {self.layout} seed={self.seed}"


def expand_grid(
    ns: Union[int, Sequence[int]],
    block_sizes: Sequence[int],
    layouts: Sequence[str],
    seeds: Sequence[int] = (0,),
    with_measured: bool = True,
) -> tuple[SweepPoint, ...]:
    """The full cartesian grid as an ordered, validated point tuple.

    Order is ``n``-major, then layout, then block size, then seed — the
    (layout, block) inner order matches the serial
    :func:`repro.core.predictor.run_ge_sweep`, so a one-``n``,
    one-seed grid enumerates points exactly like the serial sweep does.
    Duplicate configurations are dropped (first occurrence wins) so a
    sloppy grid never evaluates a point twice.
    """
    if isinstance(ns, int):
        ns = [ns]
    if not ns or not block_sizes or not layouts or not seeds:
        raise ValueError("grid axes must all be non-empty")
    seen: set[SweepPoint] = set()
    points: list[SweepPoint] = []
    for n in ns:
        for layout in layouts:
            for b in block_sizes:
                for seed in seeds:
                    point = SweepPoint(
                        n=n, b=b, layout=layout, seed=seed,
                        with_measured=with_measured,
                    )
                    if point not in seen:
                        seen.add(point)
                        points.append(point)
    return tuple(points)

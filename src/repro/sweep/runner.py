"""The parallel sweep runner: grid points fanned across worker processes.

The paper's headline result (Figures 7-9) is a 14-block-size ×
multi-layout GE sweep; serially that is minutes of simulation.  This
runner executes the same grid across ``workers`` processes:

* **Chunked scheduling.**  Pending points are split into contiguous
  chunks (default: ~4 chunks per worker) dispatched to a process pool as
  workers free up, so a few slow points (large ``b``, measured runs)
  don't serialise the tail.
* **Deterministic results.**  Whatever order chunks complete in, the
  returned summaries are in grid order — ``result.summaries[i]`` always
  belongs to ``points[i]``, and a ``--workers 8`` sweep is bit-identical
  to a ``--workers 1`` sweep.
* **Shared-store coordination.**  With an :class:`ExperimentStore`
  attached, already-stored points are short-circuited *before* dispatch
  (``resume=True``), and each worker persists every point it computes
  through the store's atomic, advisory-locked writes — so an interrupted
  sweep resumes where it stopped, and concurrent sweeps sharing a store
  never corrupt or duplicate entries.

Workers receive only picklable payloads (the point list, the LogGP
parameters, the cost model, the store *directory*) and re-open the store
themselves; results travel back as :class:`PointSummary` values.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

from ..core.costmodel import CostModel
from ..core.loggp import LogGPParameters
from ..core.predictor import summarize_ge_point, summarize_uq_point
from ..experiments import ExperimentStore, PointSummary
from ..kernel import flags as _kernel_flags
from ..obs import TraceConfig, Tracer, get_tracer, tracing
from ..uq.spec import UQSpec
from .points import SweepPoint

__all__ = ["SweepStats", "SweepResult", "run_sweep"]

#: progress callback signature: (points done, points total, point, source)
#: where ``source`` is ``"cached"`` or ``"computed"``.
ProgressFn = Callable[[int, int, SweepPoint, str], None]

StoreLike = Union[ExperimentStore, str, Path, None]


@dataclass
class SweepStats:
    """How one sweep executed (the manifest's ``sweep`` block)."""

    total: int
    cached: int
    computed: int
    workers: int
    chunks: int
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SweepResult:
    """A completed sweep: summaries in grid order plus execution stats."""

    points: tuple[SweepPoint, ...]
    summaries: list[PointSummary]
    stats: SweepStats

    def rows(self) -> list[dict]:
        """JSON-ready rows in grid order (full totals and breakdowns)."""
        return [dict(s.__dict__) for s in self.summaries]

    def digest(self) -> str:
        """SHA-256 over the canonical result rows.

        Timing-free and order-stable, so two sweeps of the same grid
        agree on the digest iff they agree on every value — the
        cross-engine differential gate CI checks.
        """
        payload = json.dumps(self.rows(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


def _evaluate_point(
    point: SweepPoint,
    params: LogGPParameters,
    cost_model: CostModel,
    store: Optional[ExperimentStore],
    uq: Optional[UQSpec] = None,
) -> PointSummary:
    """One point, through the store when there is one (compute + persist).

    With a UQ spec the point's seed selects a perturbed machine replicate
    (:func:`repro.core.predictor.summarize_uq_point`); the store —
    already keyed with the spec's tag — caches replicates like any other
    point.
    """
    if uq is not None and not uq.is_identity():
        hit = (
            store.get(
                point.n, point.b, point.layout,
                seed=point.seed, with_measured=point.with_measured,
            )
            if store is not None
            else None
        )
        if hit is not None:
            return hit
        summary = PointSummary(
            **summarize_uq_point(
                point.n, point.b, point.layout, params, cost_model, uq,
                with_measured=point.with_measured, seed=point.seed,
            )
        )
        if store is not None:
            store.put(summary, with_measured=point.with_measured)
        return summary
    if store is not None:
        return store.point(
            point.n, point.b, point.layout,
            seed=point.seed, with_measured=point.with_measured,
        )
    return PointSummary(
        **summarize_ge_point(
            point.n, point.b, point.layout, params, cost_model,
            with_measured=point.with_measured, seed=point.seed,
        )
    )


def _run_chunk(payload):
    """Worker entrypoint: evaluate one chunk of (index, point) pairs.

    Module-level (hence picklable by reference) and self-contained: the
    worker re-opens the store from its directory so every process holds
    its own handle, coordinated only through the store's atomic writes.

    When the parent sweep is traced, its :class:`TraceConfig` travels in
    the payload: the worker traces its chunk locally (filters and
    deterministic sampling applied here, so retention cannot depend on
    the worker count) and ships the materialised rows plus a metrics
    snapshot back for the parent to absorb.  Returns
    ``(chunk_no, results, rows, metrics_snapshot)`` with the last two
    ``None`` for untraced sweeps.
    """
    store_dir, params, cost_model, uq, fast, trace_doc, chunk_no, indexed = payload
    # A spawn-context worker does not inherit a parent's set_enabled(), so
    # the flag travels in the payload (proven result-neutral by the
    # differential harness, but the dispatch must still be consistent).
    _kernel_flags.set_enabled(fast)
    store = (
        ExperimentStore(
            store_dir, params, cost_model,
            extra_tag=uq.store_tag() if uq is not None else None,
        )
        if store_dir is not None
        else None
    )
    if trace_doc is None:
        results = [
            (idx, _evaluate_point(point, params, cost_model, store, uq))
            for idx, point in indexed
        ]
        return chunk_no, results, None, None
    tracer = Tracer(config=TraceConfig.from_dict(trace_doc))
    with tracing(tracer):
        with tracer.span("sweep.chunk", chunk=chunk_no, points=len(indexed)):
            results = [
                (idx, _evaluate_point(point, params, cost_model, store, uq))
                for idx, point in indexed
            ]
    rows = tracer.export_rows()
    snap = tracer.metrics.snapshot()
    # the parent re-counts obs.events.* when it materialises the absorbed
    # rows; shipping the worker's copies too would double the tallies
    snap["counters"] = {
        k: v for k, v in snap["counters"].items()
        if not k.startswith("obs.events.")
    }
    return chunk_no, results, rows, snap


def _chunked(items: list, size: int) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


def run_sweep(
    points: Sequence[SweepPoint],
    params: LogGPParameters,
    cost_model: CostModel,
    *,
    workers: int = 1,
    store: StoreLike = None,
    resume: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    mp_context: Optional[str] = None,
    uq: Optional[UQSpec] = None,
) -> SweepResult:
    """Evaluate a sweep grid, optionally in parallel and store-backed.

    Parameters
    ----------
    points:
        The grid (see :func:`repro.sweep.expand_grid`); results come
        back in this order regardless of ``workers``.
    workers:
        Process count.  ``<= 1`` runs in-process (no pool, no pickling)
        — the reference path the differential tests compare against.
    store:
        An :class:`ExperimentStore`, a directory for one, or ``None``
        (compute-only).  Workers persist what they compute.
    resume:
        With a store, short-circuit already-stored points before
        dispatch.  ``False`` recomputes (and overwrites) everything.
    chunk_size:
        Points per dispatched chunk (default: grid split into ~4 chunks
        per worker).
    progress:
        ``(done, total, point, source)`` callback, invoked once per
        point as its result lands (cached points first, then computed
        points in completion order).
    mp_context:
        :mod:`multiprocessing` start method (``"fork"``, ``"spawn"``,
        ...); ``None`` uses the platform default.
    uq:
        Optional :class:`repro.uq.UQSpec`: each point's seed then selects
        a perturbed machine replicate instead of the base machine (the
        Monte Carlo path of :func:`repro.uq.run_uq`).  An identity spec
        behaves exactly like ``None``.
    """
    points = tuple(points)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if isinstance(store, (str, Path)):
        store = ExperimentStore(
            store, params, cost_model,
            extra_tag=uq.store_tag() if uq is not None else None,
        )
    tracer = get_tracer()
    t0 = time.perf_counter()

    total = len(points)
    summaries: list[Optional[PointSummary]] = [None] * total
    done = 0

    # -- short-circuit stored points before any dispatch --------------------
    pending: list[tuple[int, SweepPoint]] = []
    for idx, point in enumerate(points):
        hit = (
            store.get(
                point.n, point.b, point.layout,
                seed=point.seed, with_measured=point.with_measured,
            )
            if (store is not None and resume)
            else None
        )
        if hit is not None:
            summaries[idx] = hit
            done += 1
            if progress is not None:
                progress(done, total, point, "cached")
        else:
            pending.append((idx, point))
    cached = done
    tracer.count("sweep.points_cached", cached)

    def finish_point(idx: int, point: SweepPoint, summary: PointSummary) -> None:
        nonlocal done
        summaries[idx] = summary
        done += 1
        tracer.count("sweep.points_computed")
        if progress is not None:
            progress(done, total, point, "computed")

    n_chunks = 0
    if pending and workers <= 1:
        with tracer.span("sweep.chunk", chunk=0, points=len(pending)):
            for idx, point in pending:
                finish_point(
                    idx, point, _evaluate_point(point, params, cost_model, store, uq)
                )
        n_chunks = len(pending)
    elif pending:
        eff_workers = min(workers, len(pending))
        size = chunk_size or max(1, math.ceil(len(pending) / (eff_workers * 4)))
        store_dir = str(store.directory) if store is not None else None
        trace_doc = tracer.config.to_dict() if tracer.enabled else None
        payloads = [
            (store_dir, params, cost_model, uq, _kernel_flags.enabled,
             trace_doc, chunk_no, chunk)
            for chunk_no, chunk in enumerate(_chunked(pending, size))
        ]
        n_chunks = len(payloads)
        index_of = dict(pending)
        chunk_rows: list = [None] * n_chunks
        chunk_metrics: list = [None] * n_chunks
        ctx = multiprocessing.get_context(mp_context)
        with ctx.Pool(processes=eff_workers) as pool:
            for chunk_no, chunk_result, rows, snap in pool.imap_unordered(
                _run_chunk, payloads
            ):
                chunk_rows[chunk_no] = rows
                chunk_metrics[chunk_no] = snap
                for idx, summary in chunk_result:
                    finish_point(idx, index_of[idx], summary)
        # Chunks are contiguous slices of ``pending`` in grid order, so
        # absorbing their event rows in chunk order reproduces exactly the
        # stream a serial sweep emits inline — completion order never shows.
        if tracer.enabled:
            for rows, snap in zip(chunk_rows, chunk_metrics):
                if rows:
                    tracer.absorb_rows(rows)
                if snap:
                    tracer.metrics.merge(snap)

    missing = [i for i, s in enumerate(summaries) if s is None]
    if missing:  # pragma: no cover - defensive: a worker dropped results
        raise RuntimeError(f"sweep lost results for point indices {missing}")

    wall_s = time.perf_counter() - t0
    tracer.observe("sweep.wall_s", wall_s)
    stats = SweepStats(
        total=total,
        cached=cached,
        computed=total - cached,
        workers=max(1, workers),
        chunks=n_chunks,
        wall_s=wall_s,
    )
    return SweepResult(points=points, summaries=summaries, stats=stats)
